"""Figure 14 — dictionary-compressed hash probe vs memory budget (§4.5).

The probe side of a hash join is dictionary-encoded; the order-preserving
dictionary is compressed with LeCo, FOR, or kept raw.  Sweeping the memory
budget down, the big dictionaries spill out of the buffer pool and every
probe pays page misses; LeCo's dictionary stays resident throughout.
"""

import sys

from repro.bench import render_table
from repro.datasets import load
from repro.engine import run_hash_probe

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, headline

#: scaled-down analogue of the paper's 3GB -> 500MB sweep; the points
#: bracket the three dictionary sizes (raw ~96KB > FOR ~28KB > LeCo ~9KB)
#: so each scheme falls off the buffer-pool cliff at a different budget
_HASH_TABLE = 128 << 10
BUDGETS = [_HASH_TABLE + extra for extra in
           (4 << 20, 128 << 10, 32 << 10, 16 << 10, 8 << 10, 4 << 10)]


def run_experiment(n: int = 120_000) -> str:
    probe = load("medicare", n=n).values
    hash_table_bytes = _HASH_TABLE  # the paper's fixed build-side table
    rows = []
    for budget in sorted(BUDGETS, reverse=True):
        entry = [f"{budget >> 10}KB"]
        results = {}
        for method in ("leco", "for", "raw"):
            results[method] = run_hash_probe(
                probe, method, memory_budget_bytes=budget,
                hash_table_bytes=hash_table_bytes)
            entry.append(f"{results[method].throughput_gbps:.3f}")
        speedup = (results["leco"].throughput_gbps
                   / max(results["for"].throughput_gbps, 1e-12))
        entry.append(f"{speedup:.1f}x")
        rows.append(entry)
    dict_sizes = {m: run_hash_probe(probe, m, 1 << 30,
                                    hash_table_bytes).dictionary_bytes
                  for m in ("leco", "for", "raw")}
    caption = (f"dictionary bytes: leco={dict_sizes['leco']} "
               f"for={dict_sizes['for']} raw={dict_sizes['raw']}")
    return headline("Figure 14: hash-probe throughput vs memory budget",
                    caption) + render_table(
        ["budget", "leco GB/s", "for GB/s", "raw GB/s", "leco/for"], rows)


def test_fig14_hashprobe(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(result)


if __name__ == "__main__":
    emit(run_experiment())
