"""Shared configuration for the benchmark suite.

Every ``bench_*.py`` file reproduces one table or figure from the paper.
Each defines ``run_experiment() -> str`` (the printed rows/series) plus a
pytest-benchmark entry that times the experiment's representative kernel and
prints the full table.  Run everything with::

    pytest benchmarks/ --benchmark-only

or a single experiment standalone::

    python benchmarks/bench_fig10_micro.py

Sizes are scaled down from the paper's 10^8 rows (pure-Python substrate);
set ``REPRO_BENCH_N`` to override the default per-dataset row count.
"""

from __future__ import annotations

import os

#: default rows per dataset in benchmark runs
BENCH_N = int(os.environ.get("REPRO_BENCH_N", "30000"))
#: random-access probes per (codec, dataset) pair
BENCH_PROBES = int(os.environ.get("REPRO_BENCH_PROBES", "300"))


def headline(title: str, caption: str) -> str:
    bar = "=" * len(title)
    return f"\n{title}\n{bar}\n{caption}\n"


def emit(text: str) -> None:
    """Print experiment tables past pytest's output capture.

    ``pytest benchmarks/ --benchmark-only`` captures stdout; the whole point
    of these benches is the printed rows/series, so they write to the real
    stdout handle.
    """
    import sys

    print(text, file=sys.__stdout__, flush=True)
