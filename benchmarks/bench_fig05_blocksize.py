"""Figure 5 — compression ratio vs fixed partition size (the U-shape).

Sweeps the fixed block size on ``booksale`` and ``normal`` and prints the
ratio trend; the paper's point is the U-shape that motivates the sampling
search of §3.2.1.
"""

import sys

from repro.baselines import LecoCodec
from repro.bench import render_table
from repro.datasets import load

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, BENCH_N, headline

SIZES = [4, 16, 64, 256, 1024, 4096, 16384]


def run_experiment(n: int = BENCH_N) -> str:
    rows = []
    for name in ("booksale", "normal"):
        ds = load(name, n=n)
        for size in SIZES:
            if size > n:
                continue
            enc = LecoCodec("linear", partitioner=size).encode(ds.values)
            ratio = enc.compressed_size_bytes() / ds.uncompressed_bytes
            rows.append([name, size, f"{ratio:.1%}"])
    return headline(
        "Figure 5: compression ratio vs block size",
        "the U-shape motivating the sampling-based size search (§3.2.1)",
    ) + render_table(["dataset", "block size", "ratio"], rows)


def test_fig05_blocksize(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(result)


if __name__ == "__main__":
    emit(run_experiment())
