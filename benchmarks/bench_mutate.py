"""Mutation-layer benchmark: churn ingestion, DV scans, compaction.

Drives the ``repro.mutate`` subsystem through the churn fixture — a
base telemetry table plus a stream of appends, range/targeted deletes,
and update-by-key status flips — and measures the three costs that
matter for a mutable store:

* **write path** — rows/s through WAL + memtable, and flush wall time
  (encode + deletion-vector sidecars + manifest commit);
* **read-under-churn** — the same selective and full scans on the
  delete-heavy snapshot (deletion vectors masking dead rows) vs after
  compaction folded the vectors away;
* **compaction** — wall time, physical rows and stored bytes reclaimed.

Writes a ``BENCH_mutable.json`` trajectory with pass/fail checks (the
DV scan equals the post-compaction scan and a plain-numpy reference;
compaction shrinks physical rows and stored bytes; reopening after an
unflushed tail loses nothing)::

    python benchmarks/bench_mutate.py [--quick] [--json PATH] [--dir D]
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time

import numpy as np

from repro.datasets import apply_churn_op, churn_fixture
from repro.mutate import MutableTable, live_fractions
from repro.store import Table

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, headline

FULL_N = 200_000
QUICK_N = 40_000
FULL_OPS = 120
QUICK_OPS = 40
#: flush after this many churn ops (commit cadence under load)
FLUSH_EVERY = 10


def _scan_entry(result, wall_s: float) -> dict:
    stats = result.stats  # legacy ScanStats shape (Table.scan)
    return {
        "wall_ms": wall_s * 1e3,
        "rows_out": result.n_rows,
        "rows_masked": stats.rows_masked,
        "chunks_pruned": stats.chunks_pruned,
        "chunks_scanned": stats.chunks_scanned,
        "bytes_read": stats.bytes_read,
    }


def _measure(fn, repeats: int = 3):
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run(directory: str, n: int, n_ops: int) -> dict:
    base, ops = churn_fixture(n, n_ops=n_ops, seed=0)

    # ---------------------------------------------------------- write path
    table = MutableTable.create(directory, schema=tuple(base),
                                shard_rows=max(n // 8, 1024),
                                chunk_rows=2048)
    start = time.perf_counter()
    table.append(base)
    append_s = time.perf_counter() - start
    start = time.perf_counter()
    table.flush()
    base_flush_s = time.perf_counter() - start

    touched = 0
    flush_s = 0.0
    start = time.perf_counter()
    for i, op in enumerate(ops):
        touched += apply_churn_op(table, op)
        if (i + 1) % FLUSH_EVERY == 0:
            t0 = time.perf_counter()
            table.flush()
            flush_s += time.perf_counter() - t0
    churn_s = time.perf_counter() - start

    # leave a WAL tail unflushed, prove reopen replays it, then commit
    rng = np.random.default_rng(1)
    tail_ts = int(table.scan(columns=["ts"]).columns["ts"].max()) + 1
    table.append({"ts": tail_ts + np.arange(500),
                  "sensor_id": rng.integers(0, 64, 500),
                  "reading": rng.integers(800, 1200, 500),
                  "status": np.zeros(500, dtype=np.int64)})
    table.delete(("sensor_id", 63, 64))
    tail_rows = table.pending_rows
    live_before = table.scan().columns["ts"]
    table.close()
    table = MutableTable.open(directory)
    recovered = np.array_equal(table.scan().columns["ts"], live_before)
    table.flush()

    write = {
        "base_rows": n,
        "base_append_rows_per_s": n / max(append_s, 1e-9),
        "base_flush_ms": base_flush_s * 1e3,
        "churn_ops": n_ops,
        "churn_rows_touched": touched,
        "churn_wall_ms": churn_s * 1e3,
        "churn_flush_ms": flush_s * 1e3,
        "wal_tail_rows_recovered": tail_rows,
    }

    # ------------------------------------------------- scans under deletes
    with table.snapshot() as snap:
        reference = dict(snap.scan().columns)
        dv_stats = {
            "generation": snap.generation,
            "physical_rows": snap.n_rows,
            "live_rows": snap.live_rows,
            "stored_bytes": snap.stored_bytes(),
            "min_shard_live_fraction": min(live_fractions(snap)),
        }
    # scan order is not ts order (updates move rows to the tail): pick a
    # ~0.5%-of-rows window from the sorted value domain instead
    ts = reference["ts"]
    ts_sorted = np.sort(ts)
    mid = len(ts_sorted) // 2
    lo = int(ts_sorted[mid])
    hi = max(int(ts_sorted[min(mid + max(len(ts_sorted) // 200, 1),
                               len(ts_sorted) - 1)]), lo + 1)

    def scans():
        with Table.open(directory, cache_bytes=0) as snap:
            t_full, full = _measure(lambda: snap.scan())
            t_sel, sel = _measure(
                lambda: snap.scan(columns=["sensor_id", "reading"],
                                  where=(("ts"), lo, hi)))
        return {"full": _scan_entry(full, t_full),
                "selective": _scan_entry(sel, t_sel)}, full, sel

    with_dv, full_dv, sel_dv = scans()

    # ------------------------------------------------------------ compact
    start = time.perf_counter()
    # threshold 1.0 = rewrite every shard carrying a deletion vector, so
    # the post-compaction scans measure a fully-folded table
    compacted_gen = table.compact(threshold=1.0)
    compact_s = time.perf_counter() - start
    with table.snapshot() as snap:
        compact_stats = {
            "generation": snap.generation,
            "wall_ms": compact_s * 1e3,
            "physical_rows": snap.n_rows,
            "live_rows": snap.live_rows,
            "stored_bytes": snap.stored_bytes(),
        }
    post, full_post, sel_post = scans()
    versions = table.versions()
    table.close()

    # ------------------------------------------------------------- checks
    sel_mask = (ts >= lo) & (ts < hi)
    checks = {
        "wal_tail_recovered_on_reopen": bool(recovered
                                             and tail_rows > 0),
        "dv_scan_matches_reference": bool(
            np.array_equal(full_dv.columns["ts"], ts)
            and np.array_equal(sel_dv.columns["reading"],
                               reference["reading"][sel_mask])),
        "post_compaction_scan_identical": bool(
            np.array_equal(full_post.columns["ts"],
                           full_dv.columns["ts"])
            and np.array_equal(sel_post.columns["reading"],
                               sel_dv.columns["reading"])),
        "compaction_shrinks_physical_rows": bool(
            compacted_gen is not None
            and compact_stats["physical_rows"]
            < dv_stats["physical_rows"]),
        "compaction_reclaims_bytes": bool(
            compact_stats["stored_bytes"] < dv_stats["stored_bytes"]),
        "post_compaction_masks_nothing": bool(
            post["full"]["rows_masked"] == 0),
        "every_version_still_opens": all(
            Table.open(directory, version=g).close() or True
            for g in versions),
    }

    rows = [
        ["with deletion vectors", "full", f"{with_dv['full']['wall_ms']:.2f}",
         f"{with_dv['full']['rows_out']}",
         f"{with_dv['full']['rows_masked']}",
         f"{with_dv['full']['bytes_read']}"],
        ["", "selective", f"{with_dv['selective']['wall_ms']:.2f}",
         f"{with_dv['selective']['rows_out']}",
         f"{with_dv['selective']['rows_masked']}",
         f"{with_dv['selective']['bytes_read']}"],
        ["post-compaction", "full", f"{post['full']['wall_ms']:.2f}",
         f"{post['full']['rows_out']}",
         f"{post['full']['rows_masked']}",
         f"{post['full']['bytes_read']}"],
        ["", "selective", f"{post['selective']['wall_ms']:.2f}",
         f"{post['selective']['rows_out']}",
         f"{post['selective']['rows_masked']}",
         f"{post['selective']['bytes_read']}"],
    ]
    widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
    emit(f"write path: base {n} rows at "
         f"{write['base_append_rows_per_s'] / 1e6:.1f}M rows/s, "
         f"{n_ops} churn ops touched {touched} rows in "
         f"{churn_s * 1e3:.0f} ms (+{flush_s * 1e3:.0f} ms flushing)")
    emit(f"snapshot: {dv_stats['live_rows']} live / "
         f"{dv_stats['physical_rows']} physical rows, min shard "
         f"liveness {dv_stats['min_shard_live_fraction']:.0%}")
    emit(f"compaction: -> gen {compact_stats['generation']} in "
         f"{compact_s * 1e3:.0f} ms, physical "
         f"{dv_stats['physical_rows']} -> "
         f"{compact_stats['physical_rows']} rows, "
         f"{dv_stats['stored_bytes']} -> "
         f"{compact_stats['stored_bytes']} B; "
         f"{len(versions)} versions openable")
    for r in rows:
        emit("  ".join(f"{c:>{w}}" for c, w in zip(r, widths)))
    emit("checks: " + ", ".join(f"{k}={v}" for k, v in checks.items()))

    return {
        "n": n, "n_ops": n_ops, "write": write,
        "snapshot_with_dv": dv_stats, "scans_with_dv": with_dv,
        "compaction": compact_stats, "scans_post_compaction": post,
        "versions": versions, "checks": checks,
    }


def main(argv=None) -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--json", default="BENCH_mutable.json")
    parser.add_argument("--dir", default=None,
                        help="table directory (default: a temp dir)")
    args = parser.parse_args(argv)
    n = QUICK_N if args.quick else FULL_N
    n_ops = QUICK_OPS if args.quick else FULL_OPS
    emit(headline(
        "Mutable table benchmark",
        f"churn fixture, base n={n}, {n_ops} append/delete/update ops, "
        "scan with deletion vectors vs post-compaction"))
    directory = args.dir or tempfile.mkdtemp(prefix="repro_mutate_bench_")
    directory = f"{directory}/table"
    try:
        payload = run(directory, n, n_ops)
    finally:
        if args.dir is None:
            shutil.rmtree(directory.rsplit("/", 1)[0],
                          ignore_errors=True)
    with open(args.json, "w") as fh:
        json.dump(payload, fh, indent=2)
    emit(f"\nwrote {args.json}")
    failed = [name for name, ok in payload["checks"].items() if not ok]
    if failed:  # the CI smoke step must go red, not just record it
        raise SystemExit(f"mutate bench checks failed: {', '.join(failed)}")


if __name__ == "__main__":
    main()
