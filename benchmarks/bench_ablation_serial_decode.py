"""Ablation (§3.3) — serial-accumulation range decoding.

Full-sequence decode via the direct per-position model inference vs the
slope-accumulation path with its correction list.  The paper reports
10–20% higher range-decompression throughput from saving the per-position
multiplication; we verify losslessness and report the measured speedup on
our substrate.
"""

import sys
import time

import numpy as np

from repro.baselines import LecoCodec
from repro.bench import render_table
from repro.datasets import load

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, headline

DATASETS = ("linear", "booksale", "ml")


def run_experiment(n: int = 100_000, repeats: int = 5) -> str:
    rows = []
    for name in DATASETS:
        values = load(name, n=n).values
        arr = LecoCodec("linear", partitioner=10_000).encode(values).array
        assert np.array_equal(arr.decode_all_serial(), values)
        direct = min(_time(arr.decode_all) for _ in range(repeats))
        serial = min(_time(arr.decode_all_serial) for _ in range(repeats))
        corrections = sum(len(p.corrections) for p in arr.partitions)
        rows.append([
            name, f"{direct * 1e3:.1f}", f"{serial * 1e3:.1f}",
            f"{direct / serial - 1:+.1%}", corrections,
        ])
    return headline(
        "Ablation: serial range-decode optimisation (§3.3)",
        "direct vs accumulation decode, bit-identical output",
    ) + render_table(["dataset", "direct ms", "serial ms", "speedup",
                      "corrections"], rows)


def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_ablation_serial_decode(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(result)


if __name__ == "__main__":
    emit(run_experiment())
