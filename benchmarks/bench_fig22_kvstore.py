"""Figure 22 — RocksDB-style Seek throughput vs block-cache size (§5.2).

A mini LSM with 4KB data blocks and pinned index blocks, index codecs
LeCo vs restart-interval {1, 16, 128}, skewed (80/20) Seek workload,
sweeping the block-cache budget.  Mechanisms reproduced: (a) smaller index
blocks leave more cache for data blocks; (b) LeCo answers an index lookup
with O(log n) random accesses while large restart intervals decode a whole
interval per lookup.
"""

import sys

from repro.bench import render_table
from repro.kvstore import MiniLSM, make_records, skewed_seek_keys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, headline

CONFIGS = [
    ("baseline_1", "restart", 1),
    ("baseline_16", "restart", 16),
    ("baseline_128", "restart", 128),
    ("leco", "leco", 1),
]
#: scaled-down analogue of the paper's 2GB..10GB cache sweep
CACHE_SIZES = [1 << 16, 1 << 17, 1 << 18, 1 << 19, 1 << 21]


def run_experiment(n_records: int = 60_000, n_seeks: int = 8000) -> str:
    records = make_records(n_records, value_bytes=100)
    keys = skewed_seek_keys(records, n_seeks)
    rows = []
    index_sizes = {}
    for cache in CACHE_SIZES:
        for label, codec, ri in CONFIGS:
            db = MiniLSM(records, codec, restart_interval=ri,
                         table_records=20_000, cache_bytes=cache)
            index_sizes[label] = db.index_bytes()
            stats = db.run_seeks(keys)
            hit_rate = stats.cache_hits / max(
                stats.cache_hits + stats.cache_misses, 1)
            rows.append([
                f"{cache >> 10}KB", label,
                f"{db.index_bytes() / 1024:.0f}KB",
                f"{stats.throughput_mops * 1000:.1f}",
                f"{hit_rate:.2f}",
            ])
    raw = MiniLSM(records, "restart", restart_interval=1,
                  table_records=20_000).raw_index_bytes()
    caption = "index bytes vs raw separators ({}): ".format(raw) + ", ".join(
        f"{k}={v / raw:.1%}" for k, v in index_sizes.items())
    return headline("Figure 22: KV-store Seek throughput vs cache size",
                    caption) + render_table(
        ["cache", "config", "index", "kops/s", "data hit rate"], rows)


def test_fig22_kvstore(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(result)


if __name__ == "__main__":
    emit(run_experiment())
