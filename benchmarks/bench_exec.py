"""Exec-layer benchmark: pushdown vs naive execution on both backends.

The same logical plans — 1-, 2-, and 3-predicate conjunctions at several
selectivities over the sensor fixture — execute through ``repro.exec``
twice per backend:

* **pushdown** — zone-map granule pruning, ``filter_range`` inside
  surviving chunks, residual on gathered batches, late materialization;
* **naive** — ``pushdown=False, prune=False``: decode every needed
  column fully, then filter (the decode-all-then-filter baseline).

Backends are the persistent store (``StoreSource``, chunk-level zone
maps from the footer catalog, cache disabled for honest bytes) and the
in-memory row-grouped file (``ParquetSource``, model-derived bounds via
the codecs' ``supports_model_bounds`` capability).  Also verifies the
acceptance path: one logical 2-predicate filter + groupby-avg plan
returns identical groups on both backends, and the 1-predicate version
matches the legacy ``run_filter_groupby_query`` answer exactly.

Writes ``BENCH_exec.json`` with wall clocks, speedups, pruning counts,
an ``explain()`` transcript of the selective store query, and pass/fail
checks::

    python benchmarks/bench_exec.py [--quick] [--json PATH]
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time

import numpy as np

from repro.datasets import sensor_fixture
from repro.engine import ParquetLikeFile, ParquetSource, \
    run_filter_groupby_query
from repro.exec import Plan, col
from repro.store import Table, write_table
from repro.store.executor import StoreSource

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, headline

FULL_N = 300_000
QUICK_N = 60_000
SELECTIVITIES = (0.005, 0.05, 0.25)
PROJECTION = ("sensor_id", "reading")
REPEATS = 5


def _measure(fn, repeats: int):
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _predicate(columns, n_preds: int, lo: int, hi: int):
    """1..3-conjunct expression + the equivalent numpy mask."""
    ts, sid, reading = (columns["ts"], columns["sensor_id"],
                        columns["reading"])
    expr = col("ts").between(lo, hi)
    mask = (ts >= lo) & (ts < hi)
    if n_preds >= 2:
        n_sensors = int(sid.max()) + 1
        expr = expr & col("sensor_id").between(0, n_sensors // 2)
        mask = mask & (sid < n_sensors // 2)
    if n_preds >= 3:
        r_lo, r_hi = (int(np.quantile(reading, 0.25)),
                      int(np.quantile(reading, 0.75)))
        expr = expr & col("reading").between(r_lo, r_hi)
        mask = mask & (reading >= r_lo) & (reading < r_hi)
    return expr, mask


def _ts_window(ts: np.ndarray, selectivity: float):
    n = len(ts)
    i0 = n // 2
    i1 = i0 + max(int(n * selectivity), 1)
    return int(ts[i0]), int(ts[i1])


def run(directory: str, n: int, repeats: int) -> dict:
    columns = sensor_fixture(n, seed=0)
    write_table(directory, columns, codec="auto",
                shard_rows=max(n // 8, 1024), chunk_rows=2048,
                overwrite=True)
    file = ParquetLikeFile.write(columns, "leco",
                                 row_group_size=max(n // 24, 2048),
                                 partition_size=1024)

    results: dict[str, dict] = {"store": {}, "parquet": {}}
    checks: dict[str, bool] = {}
    explain_transcript = ""
    with Table.open(directory, cache_bytes=0) as table:
        sources = {"store": StoreSource(table),
                   "parquet": ParquetSource(file)}
        for backend, source in sources.items():
            for n_preds in (1, 2, 3):
                for selectivity in SELECTIVITIES:
                    lo, hi = _ts_window(columns["ts"], selectivity)
                    expr, mask = _predicate(columns, n_preds, lo, hi)
                    plan = Plan.scan(PROJECTION).where(expr)
                    t_push, pushed = _measure(
                        lambda: plan.execute(source), repeats)
                    t_naive, naive = _measure(
                        lambda: plan.execute(source, prune=False,
                                             pushdown=False), repeats)
                    ok = (np.array_equal(pushed.row_ids,
                                         np.flatnonzero(mask))
                          and np.array_equal(pushed.row_ids,
                                             naive.row_ids)
                          and all(np.array_equal(pushed.columns[c],
                                                 naive.columns[c])
                                  for c in PROJECTION))
                    checks.setdefault("pushdown_matches_naive", True)
                    if not ok:
                        checks["pushdown_matches_naive"] = False
                    key = f"preds{n_preds}_sel{selectivity}"
                    results[backend][key] = {
                        "rows_out": pushed.n_rows,
                        "pushdown_ms": t_push * 1e3,
                        "naive_ms": t_naive * 1e3,
                        "speedup": t_naive / max(t_push, 1e-9),
                        "granules_pruned": pushed.stats.granules_pruned,
                        "granules_total": pushed.stats.granules_total,
                        "bytes_read_pushdown": pushed.stats.bytes_read,
                        "bytes_read_naive": naive.stats.bytes_read,
                    }
                    if backend == "store" and n_preds == 1 and \
                            selectivity == SELECTIVITIES[0]:
                        explain_transcript = pushed.explain()
                        checks["store_pushdown_beats_naive"] = \
                            bool(t_push < t_naive)
                        checks["store_explain_reports_pruning"] = bool(
                            pushed.stats.granules_pruned > 0
                            and "pruned" in explain_transcript)

        # acceptance: one logical groupby plan, both backends, == legacy
        lo, hi = _ts_window(columns["ts"], SELECTIVITIES[1])
        expr2, mask2 = _predicate(columns, 2, lo, hi)
        agg = (Plan.scan()
               .where(expr2)
               .aggregate({"avg": ("avg", "reading")},
                          group_by="sensor_id"))
        groups = {backend: agg.execute(source).groups
                  for backend, source in sources.items()}
        reference = {
            int(k): columns["reading"][mask2][
                columns["sensor_id"][mask2] == k].mean()
            for k in np.unique(columns["sensor_id"][mask2])}
        checks["two_pred_groupby_backends_agree"] = bool(
            groups["store"] == groups["parquet"]
            and {k: v["avg"] for k, v in groups["store"].items()}
            == reference)
        legacy_file = ParquetLikeFile.write(
            {"ts": columns["ts"], "id": columns["sensor_id"],
             "val": columns["reading"]}, "leco",
            row_group_size=max(n // 24, 2048), partition_size=1024)
        legacy = run_filter_groupby_query(legacy_file, lo, hi).answer
        one_pred = (Plan.scan()
                    .where(col("ts").between(lo, hi))
                    .aggregate({"avg": ("avg", "reading")},
                               group_by="sensor_id"))
        checks["groupby_matches_legacy"] = all(
            {k: v["avg"] for k, v in one_pred.execute(src).groups.items()}
            == legacy for src in sources.values())

    rows = []
    for backend in results:
        for key, entry in results[backend].items():
            rows.append([
                backend, key, f"{entry['rows_out']}",
                f"{entry['pushdown_ms']:.2f}", f"{entry['naive_ms']:.2f}",
                f"{entry['speedup']:.1f}x",
                f"{entry['granules_pruned']}/{entry['granules_total']}"])
    emit(render_table(
        ["backend", "query", "rows", "pushdown ms", "naive ms",
         "speedup", "pruned/granules"], rows))
    emit("checks: " + ", ".join(f"{k}={v}" for k, v in checks.items()))
    emit("\nexplain (store, 1 predicate, 0.5% selectivity):\n"
         + explain_transcript)
    return {"n": n, "selectivities": list(SELECTIVITIES),
            "backends": results, "checks": checks,
            "explain": explain_transcript}


def render_table(header, rows) -> str:
    widths = [max(len(str(r[i])) for r in [header] + rows)
              for i in range(len(header))]
    lines = ["  ".join(f"{str(c):>{w}}" for c, w in zip(r, widths))
             for r in [header] + rows]
    lines.insert(1, "  ".join("-" * w for w in widths))
    return "\n".join(lines)


def main(argv=None) -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--json", default="BENCH_exec.json")
    parser.add_argument("--dir", default=None,
                        help="store table directory (default: a temp dir)")
    args = parser.parse_args(argv)
    n = QUICK_N if args.quick else FULL_N
    repeats = 3 if args.quick else REPEATS
    emit(headline(
        "Unified execution layer benchmark",
        f"pushdown vs naive, 1-3 predicates, n={n}, "
        f"selectivities {SELECTIVITIES}, store + parquet backends"))
    directory = args.dir or tempfile.mkdtemp(prefix="repro_exec_bench_")
    try:
        payload = run(directory, n, repeats)
    finally:
        if args.dir is None:
            shutil.rmtree(directory, ignore_errors=True)
    with open(args.json, "w") as fh:
        json.dump(payload, fh, indent=2)
    emit(f"\nwrote {args.json}")
    failed = [name for name, ok in payload["checks"].items() if not ok]
    if failed:  # the CI smoke step must go red, not just record it
        raise SystemExit(f"exec bench checks failed: {', '.join(failed)}")


if __name__ == "__main__":
    main()
