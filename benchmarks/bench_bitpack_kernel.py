"""Bit-packing kernel microbenchmark — pack/unpack/gather GB/s by width.

Times the word-parallel kernels in ``repro.bitio.bitpack`` against the
seed's per-bit ``packbits``/``unpackbits`` formulation (embedded below as
the reference baseline) across residual widths 1–64, plus the batch
``BitPackedArray.gather`` path against a scalar ``read_slot`` loop.

Writes a ``BENCH_bitpack.json`` trajectory so later PRs can detect kernel
regressions::

    python benchmarks/bench_bitpack_kernel.py [--quick] [--json PATH]

Throughput is reported over the *packed* payload bytes (``n * width / 8``),
so widths compete on the bytes they actually move.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.bitio.bitpack import BitPackedArray, pack_unsigned, read_slot, \
    unpack_unsigned

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, headline

FULL_WIDTHS = (1, 2, 3, 4, 6, 8, 12, 16, 20, 24, 32, 40, 48, 56, 63, 64)
QUICK_WIDTHS = (3, 8, 13, 32, 63)

FULL_N = 1_000_000
QUICK_N = 100_000

GATHER_K = 10_000


# ---------------------------------------------------------------- baseline
def _seed_pack(values: np.ndarray, width: int) -> bytes:
    """The seed's pack kernel: per-bit uint8 matrix + ``np.packbits``."""
    values = np.ascontiguousarray(values, dtype=np.uint64)
    shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
    bits = ((values[:, None] >> shifts[None, :]) & np.uint64(1)).astype(
        np.uint8)
    flat = bits.ravel()
    pad = (-flat.size) % 8
    if pad:
        flat = np.concatenate([flat, np.zeros(pad, dtype=np.uint8)])
    return np.packbits(flat).tobytes()


def _seed_unpack(data: bytes, width: int, count: int) -> np.ndarray:
    """The seed's unpack kernel: ``np.unpackbits`` + per-bit shift matrix."""
    raw = np.frombuffer(data, dtype=np.uint8)
    bits = np.unpackbits(raw)[: count * width].reshape(count, width)
    shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
    return (bits.astype(np.uint64) << shifts[None, :]).sum(
        axis=1, dtype=np.uint64)


def _seed_gather(data: bytes, width: int, indices: np.ndarray) -> np.ndarray:
    """The seed's batch random access: a scalar ``read_slot`` loop."""
    return np.array([read_slot(data, width, int(i)) for i in indices],
                    dtype=np.uint64)


# ------------------------------------------------------------------ timing
def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_width(width: int, n: int, repeats: int = 5,
                  baseline: bool = True) -> dict:
    rng = np.random.default_rng(width)
    if width == 64:
        values = (rng.integers(0, 1 << 62, n, dtype=np.uint64)
                  * np.uint64(4) + rng.integers(0, 4, n, dtype=np.uint64))
    else:
        values = rng.integers(0, 1 << width, n, dtype=np.uint64)
    payload_gb = n * width / 8 / 1e9

    packed = pack_unsigned(values, width)
    t_pack = _best_of(lambda: pack_unsigned(values, width), repeats)
    t_unpack = _best_of(lambda: unpack_unsigned(packed, width, n), repeats)

    arr = BitPackedArray(packed, width, n)
    indices = rng.integers(0, n, GATHER_K)
    arr.gather(indices)  # warm the padded gather buffer
    t_gather = _best_of(lambda: arr.gather(indices), repeats)

    row = {
        "width": width,
        "n": n,
        "pack_gbps": payload_gb / t_pack,
        "unpack_gbps": payload_gb / t_unpack,
        "gather_mops": GATHER_K / t_gather / 1e6,
    }
    if baseline:
        # the seed kernels get pricey at large widths; best-of-2 only where
        # they are cheap enough for the extra noise reduction to be free
        base_reps = 2 if width <= 24 else 1
        t_pack0 = _best_of(lambda: _seed_pack(values, width), base_reps)
        t_unpack0 = _best_of(lambda: _seed_unpack(packed, width, n),
                             base_reps)
        t_gather0 = _best_of(lambda: _seed_gather(packed, width, indices),
                             base_reps)
        row["speedup_pack"] = t_pack0 / t_pack
        row["speedup_unpack"] = t_unpack0 / t_unpack
        # pack+unpack round trip: width 1 pack is the same memory-bound
        # packbits call in both implementations, so the combined number is
        # the honest one there
        row["speedup_roundtrip"] = (t_pack0 + t_unpack0) / (t_pack + t_unpack)
        row["speedup_gather"] = t_gather0 / t_gather
        assert _seed_pack(values, width) == packed
        assert np.array_equal(_seed_unpack(packed, width, n),
                              unpack_unsigned(packed, width, n))
        assert np.array_equal(_seed_gather(packed, width, indices),
                              arr.gather(indices))
    return row


def collect(quick: bool = False) -> list[dict]:
    widths = QUICK_WIDTHS if quick else FULL_WIDTHS
    n = QUICK_N if quick else FULL_N
    return [measure_width(w, n) for w in widths]


def run_experiment(quick: bool = False,
                   json_path: str = "BENCH_bitpack.json") -> str:
    rows = collect(quick)
    report = {
        "bench": "bitpack_kernel",
        "n": rows[0]["n"] if rows else 0,
        "gather_indices": GATHER_K,
        "results": rows,
    }
    with open(json_path, "w") as fh:
        json.dump(report, fh, indent=2)

    lines = [f"{'width':>5} {'pack GB/s':>10} {'unpack GB/s':>12} "
             f"{'gather Mop/s':>13} {'pack x':>7} {'unpack x':>9} "
             f"{'gather x':>9}"]
    for r in rows:
        lines.append(
            f"{r['width']:>5} {r['pack_gbps']:>10.3f} "
            f"{r['unpack_gbps']:>12.3f} {r['gather_mops']:>13.2f} "
            f"{r.get('speedup_pack', 0):>7.1f} "
            f"{r.get('speedup_unpack', 0):>9.1f} "
            f"{r.get('speedup_gather', 0):>9.1f}")
    return headline(
        "Bit-packing kernel microbenchmark",
        f"word-parallel kernels vs. the seed per-bit formulation; "
        f"trajectory written to {json_path}",
    ) + "\n".join(lines) + "\n"


def test_bitpack_kernel(benchmark):
    """Representative kernel: width-13 pack+unpack at 100k values."""
    rng = np.random.default_rng(13)
    values = rng.integers(0, 1 << 13, QUICK_N, dtype=np.uint64)

    def kernel():
        packed = pack_unsigned(values, 13)
        return unpack_unsigned(packed, 13, QUICK_N)

    benchmark.pedantic(kernel, rounds=3, iterations=1)
    emit(run_experiment(quick=True))


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="fewer widths, 100k values")
    parser.add_argument("--json", default="BENCH_bitpack.json",
                        help="trajectory output path")
    args = parser.parse_args()
    emit(run_experiment(quick=args.quick, json_path=args.json))
