"""Figure 20 — file sizes with block compression stacked on top (§5.1.3).

Writes normal/booksale/poisson/ml columns as files under Default, FOR, and
LeCo encodings, with and without the zstd stand-in (DEFLATE), reporting the
additional improvement block compression brings.  The paper's observation:
LeCo + zstd still improves (serial redundancy removal is complementary to
general-purpose block compression).
"""

import sys

from repro.bench import render_table
from repro.datasets import load
from repro.engine import ParquetLikeFile

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, headline

DATASETS = ("normal", "booksale", "poisson", "ml")
ENCODINGS = ["dict", "for", "leco"]


def run_experiment(n: int = 60_000) -> str:
    rows = []
    for name in DATASETS:
        values = load(name, n=n).values
        for enc in ENCODINGS:
            plain = ParquetLikeFile.write({"v": values}, enc,
                                          partition_size=1000)
            squeezed = ParquetLikeFile.write({"v": values}, enc,
                                             partition_size=1000,
                                             block_compression=True)
            a = plain.file_size_bytes()
            b = squeezed.file_size_bytes()
            rows.append([name, enc, f"{a / 1e6:.3f}MB", f"{b / 1e6:.3f}MB",
                         f"{a / max(b, 1):.1f}x"])
    return headline(
        "Figure 20: Parquet with block compression",
        "file sizes without/with the zstd stand-in; last column is the "
        "additional improvement from block compression",
    ) + render_table(["dataset", "encoding", "plain", "+zstd", "gain"],
                     rows)


def test_fig20_zstd_size(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(result)


if __name__ == "__main__":
    emit(run_experiment())
