"""Table 1 — compression throughput (GB/s), weighted mean ± std.

Six schemes over the twelve integer datasets.  The paper's finding: the
fixed-partition schemes compress at comparable speed, while the
variable-length partitioners (Delta-var, LeCo-var) are an order of
magnitude slower — the classic ratio-vs-build-time trade.
"""

import sys

import numpy as np

from repro.baselines import EliasFanoCodec, standard_codecs
from repro.bench import measure_codec, render_table
from repro.datasets import FIG10_DATASETS, load

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, BENCH_N, headline


def run_experiment(n: int = min(BENCH_N, 20_000)) -> str:
    per_codec: dict[str, list[float]] = {}
    for name in FIG10_DATASETS:
        ds = load(name, n=n)
        for codec in standard_codecs(include_rans=False):
            m = measure_codec(codec, ds, n_random=5, repeats=1)
            per_codec.setdefault(codec.name, []).append(m.compress_gbps)
        if ds.sorted:
            m = measure_codec(EliasFanoCodec(), ds, n_random=5, repeats=1)
            per_codec.setdefault("elias-fano", []).append(m.compress_gbps)
    rows = []
    for name, values in per_codec.items():
        arr = np.array(values)
        rows.append([name, f"{arr.mean():.4f}", f"{arr.std():.4f}"])
    return headline(
        "Table 1: compression throughput (GB/s)",
        "mean +- std across the twelve integer datasets",
    ) + render_table(["codec", "mean GB/s", "std"], rows)


def test_tab01_compress_tps(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(result)


if __name__ == "__main__":
    emit(run_experiment())
