"""Registry conformance smoke benchmark — every codec through one harness.

Enumerates ``repro.codecs.available()`` and runs the §4.2 measurement
protocol (ratio, batch ``gather`` random access, decode/encode throughput)
against each integer codec, so a newly registered codec is benchmark-
smoke-run without editing this file.  Writes a ``BENCH_registry.json``
trajectory for regression tracking::

    python benchmarks/bench_registry_smoke.py [--quick] [--json PATH]
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro import codecs
from repro.bench import measure_codec, render_table
from repro.datasets.registry import Dataset

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, headline

FULL_N = 100_000
QUICK_N = 10_000


def _dataset(name: str, n: int, seed: int = 11) -> Dataset:
    """Serial-correlated non-negative keys every scheme can encode."""
    rng = np.random.default_rng(seed)
    values = np.cumsum(rng.integers(0, 40, n)).astype(np.int64)
    if codecs.info(name).requires_sorted:
        values = np.sort(values)
    return Dataset(name="smoke", values=values, width_bytes=8, sorted=True)


def run(n: int, probes: int) -> dict:
    rows = []
    results = {}
    for name in codecs.available():
        info = codecs.info(name)
        if not info.supports_integers:
            continue  # string codecs are covered by the conformance tests
        ds = _dataset(name, n)
        m = measure_codec(codecs.get(name), ds, n_random=probes,
                          repeats=1, access_mode="gather")
        rows.append([name, f"{100 * m.compression_ratio:.1f}%",
                     m.random_access_ns, m.decode_gbps, m.compress_gbps])
        results[name] = {
            "compression_ratio": m.compression_ratio,
            "gather_ns_per_elem": m.random_access_ns,
            "decode_gbps": m.decode_gbps,
            "compress_gbps": m.compress_gbps,
        }
    emit(render_table(
        ["codec", "ratio", "gather ns/elem", "decode GB/s", "encode GB/s"],
        rows))
    return results


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--json", default="BENCH_registry.json")
    args = parser.parse_args()
    n = QUICK_N if args.quick else FULL_N
    probes = 1_000 if args.quick else 5_000
    emit(headline(
        "Registry smoke benchmark",
        f"every registered integer codec, n={n}, {probes} gather probes"))
    results = run(n, probes)
    payload = {"n": n, "probes": probes, "codecs": results}
    with open(args.json, "w") as fh:
        json.dump(payload, fh, indent=2)
    emit(f"\nwrote {args.json}")


if __name__ == "__main__":
    main()
