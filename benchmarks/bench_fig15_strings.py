"""Figure 15 — string compression: LeCo's extension vs FSST (§4.7).

On email / hex / word: FSST with offset delta-block sizes
{0, 20, 40, 60, 80, 100} (trading random access for ratio) against LeCo
with the power-of-two and tight character-set bases.  The paper's claims:
LeCo is faster at random access with competitive ratios on email/hex;
FSST's dictionary approach wins on human-readable words.
"""

import sys
import time

import numpy as np

from repro.baselines import FSSTCodec
from repro.bench import render_table
from repro.core.strings import StringCompressor
from repro.datasets import load_strings

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, headline

FSST_BLOCKS = [0, 20, 40, 60, 80, 100]


def _measure(encoded, data, probes: int = 400):
    rng = np.random.default_rng(0)
    positions = rng.integers(0, len(data), probes)
    start = time.perf_counter()
    for pos in positions:
        encoded.get(int(pos))
    ra_ns = (time.perf_counter() - start) / probes * 1e9
    raw = sum(len(s) for s in data)
    return encoded.compressed_size_bytes() / raw, ra_ns


def run_experiment(n: int = 8000) -> str:
    rows = []
    for name in ("email", "hex", "word"):
        data = load_strings(name, n)
        for block in FSST_BLOCKS:
            enc = FSSTCodec(offset_block=block).encode(data)
            assert enc.decode_all() == data
            ratio, ra = _measure(enc, data)
            rows.append([name, f"fsst(b={block})", f"{ratio:.1%}",
                         f"{ra:.0f}"])
        for pow2 in (True, False):
            comp = StringCompressor(partition_size=128,
                                    power_of_two_base=pow2).encode(data)
            assert comp.decode_all() == data
            ratio, ra = _measure(comp, data)
            base = comp.partitions[0].base
            rows.append([name, f"leco(base={base})", f"{ratio:.1%}",
                         f"{ra:.0f}"])
    return headline(
        "Figure 15: string evaluation",
        "ratio and random-access latency; FSST sweeps the offset "
        "delta-block, LeCo sweeps the character-set base",
    ) + render_table(["dataset", "config", "ratio", "RA ns"], rows)


def test_fig15_strings(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(result)


if __name__ == "__main__":
    emit(run_experiment())
