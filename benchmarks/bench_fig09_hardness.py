"""Figure 9b — the local/global hardness scatter of the twelve datasets.

Prints H_l and H_g (§3.2.3) per dataset with its quadrant, the grouping
used to organise Fig. 10's x-axis.
"""

import sys

from repro.bench import render_table
from repro.core.partitioners import advise_partitioning
from repro.datasets import FIG10_DATASETS, load

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, BENCH_N, headline


def run_experiment(n: int = BENCH_N) -> str:
    rows = []
    for name in FIG10_DATASETS:
        ds = load(name, n=n)
        report = advise_partitioning(ds.values)
        rows.append([name, f"{report.local:.2f}", f"{report.global_:.2f}",
                     report.quadrant,
                     "var" if report.recommend_variable else "fix"])
    return headline(
        "Figure 9b: dataset hardness",
        "local/global hardness scores and the advised partitioning",
    ) + render_table(["dataset", "H_l", "H_g", "quadrant", "advice"], rows)


def test_fig09_hardness(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(result)


if __name__ == "__main__":
    emit(run_experiment())
