"""Figure 17 — hyperparameter robustness: tau (LeCo-var) vs epsilon (PLA).

Sweeps the split threshold tau in [0, 0.2] and PLA's error-bound exponent
in [3, 13] on booksale.  The paper's claim: LeCo-var's ratio is flat in tau
while LeCo-PLA's swings with epsilon — the greedy split–merge needs no
tuning.
"""

import sys

import numpy as np

from repro.baselines import LecoCodec
from repro.bench import render_table
from repro.core.partitioners import PLAPartitioner
from repro.datasets import load

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, headline

TAUS = [0.0, 0.04, 0.08, 0.12, 0.16, 0.20]
EPS_EXPONENTS = [3, 5, 7, 9, 11, 13]


def run_experiment(n: int = 20_000) -> str:
    ds = load("booksale", n=n)
    raw = ds.uncompressed_bytes
    rows = []
    var_ratios = []
    for tau in TAUS:
        enc = LecoCodec("linear", partitioner="variable",
                        tau=tau).encode(ds.values)
        ratio = enc.compressed_size_bytes() / raw
        var_ratios.append(ratio)
        rows.append(["leco-var", f"tau={tau:.2f}", f"{ratio:.1%}"])
    pla_ratios = []
    for exp in EPS_EXPONENTS:
        codec = LecoCodec("linear",
                          partitioner=PLAPartitioner(epsilon=2.0 ** exp),
                          name="leco-pla")
        enc = codec.encode(ds.values)
        ratio = enc.compressed_size_bytes() / raw
        pla_ratios.append(ratio)
        rows.append(["leco-pla", f"eps=2^{exp}", f"{ratio:.1%}"])
    spread_var = max(var_ratios) - min(var_ratios)
    spread_pla = max(pla_ratios) - min(pla_ratios)
    caption = (f"ratio spread across the sweep: leco-var {spread_var:.1%}, "
               f"leco-pla {spread_pla:.1%}")
    return headline("Figure 17: hyperparameter robustness", caption
                    ) + render_table(["scheme", "hyperparameter", "ratio"],
                                     rows)


def test_fig17_robustness(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(result)


if __name__ == "__main__":
    emit(run_experiment())
