"""Figure 13 — multi-column tabular compression.

Nine tables (TPC-H/TPC-DS-like + real-world shapes), each sorted by its
primary key: compression ratio of FOR, Delta-fix/var, LeCo-fix/var averaged
over (a) all numeric columns and (b) only high-cardinality columns
(NDV > 10% rows), plus each table's sortedness.  The paper's claim: LeCo
beats FOR on every table, most on highly sorted ones.
"""

import sys

import numpy as np

from repro.baselines import DeltaCodec, FORCodec, LecoCodec
from repro.bench import render_table
from repro.datasets import TABLE_NAMES, load_table

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, headline

CODECS = [
    ("for", lambda: FORCodec()),
    ("delta-fix", lambda: DeltaCodec("fix")),
    ("delta-var", lambda: DeltaCodec("var")),
    ("leco-fix", lambda: LecoCodec("linear", partitioner="fixed")),
    ("leco-var", lambda: LecoCodec("linear", partitioner="variable")),
]


def _table_ratio(columns: dict[str, np.ndarray], codec_factory) -> float:
    total_raw = 0
    total_compressed = 0
    for col in columns.values():
        enc = codec_factory().encode(col)
        total_raw += col.nbytes
        total_compressed += enc.compressed_size_bytes()
    return total_compressed / max(total_raw, 1)


def run_experiment(n: int = 6000) -> str:
    rows = []
    for name in TABLE_NAMES:
        table = load_table(name, n=n)
        high = table.high_cardinality_columns()
        entry = [name, f"{table.average_sortedness():.2f}",
                 f"{len(high)}/{table.numeric_column_count}"]
        for _, factory in CODECS:
            entry.append(f"{_table_ratio(table.columns, factory):.1%}")
        if high:
            leco_high = _table_ratio(high, CODECS[3][1])
            for_high = _table_ratio(high, CODECS[0][1])
            entry.append(f"{leco_high:.1%} vs {for_high:.1%}")
        else:
            entry.append("-")
        rows.append(entry)
    return headline(
        "Figure 13: multi-column benchmark",
        "per-table ratios (all numeric columns); last column: LeCo-fix vs "
        "FOR on high-cardinality columns only",
    ) + render_table(
        ["table", "sortedness", "high-card", "for", "delta-fix",
         "delta-var", "leco-fix", "leco-var", "highcard leco/for"], rows)


def test_fig13_multicolumn(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(result)


if __name__ == "__main__":
    emit(run_experiment())
