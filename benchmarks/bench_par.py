"""Process-tier benchmark: thread scheduler vs process scheduler (PR 9).

A codec-decode-bound scan — a full-table sum over a rANS-encoded
column, chunk caches disabled on both sides so every run pays the
entropy decode — executed through the thread-tier
:class:`~repro.exec.pool.MorselScheduler` and the process-tier
:class:`~repro.par.ProcessScheduler` at matched worker counts.  The
thread tier shares one GIL no matter how many workers it has; the
process tier decodes on real cores.  Reports scan wall time and
rows/s per (tier, workers), verifies every configuration returns the
identical aggregate, and checks:

* **parity at 1 worker** — the process tier's descriptor/IPC overhead
  stays within tolerance of the thread tier (the CI gate);
* **scaling at 4 workers** — process >= 2x thread, evaluated only on
  machines with >= 4 CPUs (recorded as skipped elsewhere);
* **serve QPS 8 -> 64 clients** (full mode) — a process-tier
  :class:`~repro.serve.TableServer` keeps gaining throughput as
  concurrency rises.

Writes ``BENCH_par.json``::

    python benchmarks/bench_par.py [--quick] [--json PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import threading
import time

import numpy as np

from repro.datasets import sensor_fixture
from repro.exec import MorselScheduler, Plan, col
from repro.exec.run import execute
from repro.par import ProcessScheduler, default_start_method
from repro.serve import ServeClient, TableServer
from repro.store import Table, write_table
from repro.store.executor import StoreSource

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, headline

FULL_N = 300_000
QUICK_N = 100_000
WORKERS_FULL = (1, 2, 4, 8)
WORKERS_QUICK = (1, 2)
REPEATS = 3
#: decode-bound: byte-wise rANS entropy coding, the heaviest decode in
#: the registry — the thread tier serializes it on the GIL
CODEC = "rans"
#: 1-worker parity tolerance (process QPS >= thread QPS * tolerance);
#: quick mode is looser — CI machines are small and noisy
PARITY_FULL = 0.90
PARITY_QUICK = 0.75

SERVE_CLIENTS = (8, 64)
REQUESTS_PER_CLIENT = 4


def _build(n: int) -> str:
    root = tempfile.mkdtemp(prefix="repro_par_bench_")
    write_table(os.path.join(root, "events"), sensor_fixture(n, seed=0),
                codec=CODEC, shard_rows=max(n // 8, 8192),
                chunk_rows=4096)
    return root


SCAN = Plan.scan(["reading"]).aggregate(
    {"total": ("sum", "reading"), "n": ("count", "reading")})


def _time_scan(source, scheduler) -> tuple[float, dict]:
    best = float("inf")
    groups = None
    execute(SCAN, source, scheduler=scheduler)  # warm page cache / lanes
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = execute(SCAN, source, scheduler=scheduler)
        best = min(best, time.perf_counter() - start)
        groups = result.groups
    return best, groups[None]


def _scan_modes(root: str, n: int, worker_counts) -> tuple[dict, dict]:
    results: dict[str, dict] = {"thread": {}, "process": {}}
    answers = []
    # cache_bytes=0 on the driver rides the descriptor to every worker:
    # both tiers decode every chunk on every run (decode-bound, not
    # cache-bound)
    with Table.open(os.path.join(root, "events"), cache_bytes=0) as table:
        source = StoreSource(table)
        for workers in worker_counts:
            for tier in ("thread", "process"):
                sched = (MorselScheduler(workers=workers,
                                         name="par-bench-thread")
                         if tier == "thread" else
                         ProcessScheduler(workers=workers,
                                          name="par-bench-process"))
                try:
                    wall, answer = _time_scan(source, sched)
                finally:
                    sched.close()
                answers.append(answer)
                results[tier][str(workers)] = {
                    "workers": workers,
                    "wall_s": wall,
                    "rows_per_s": n / wall,
                }
    checks = {"results_identical": bool(
        all(a == answers[0] for a in answers))}
    return results, checks


def _drive_serve(server: TableServer, n_clients: int, plan,
                 expected_rows: int) -> dict:
    host, port = server.address
    latencies: list[float] = []
    errors: list[str] = []
    lock = threading.Lock()

    def client(idx: int) -> None:
        try:
            with ServeClient(host, port) as c:
                for _ in range(REQUESTS_PER_CLIENT):
                    start = time.perf_counter()
                    res = c.query("events", plan, timeout_s=300.0,
                                  limit=64)
                    elapsed = time.perf_counter() - start
                    with lock:
                        latencies.append(elapsed)
                        if res["n_rows"] != expected_rows:
                            errors.append(f"client {idx}: wrong rows")
        except Exception as exc:
            with lock:
                errors.append(f"client {idx}: {exc!r}")

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(n_clients)]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - start
    lats = np.asarray(latencies) * 1e3
    return {"clients": n_clients, "requests": len(latencies),
            "errors": errors, "wall_s": wall,
            "qps": len(latencies) / wall,
            "p50_ms": float(np.percentile(lats, 50)),
            "p99_ms": float(np.percentile(lats, 99))}


def _serve_mode(root: str, n: int) -> tuple[dict, dict]:
    columns = sensor_fixture(n, seed=0)
    ts = columns["ts"]
    lo = int(ts[n // 2])
    hi = int(ts[n // 2 + max(int(n * 0.005), 1)])
    plan = (Plan.scan(["sensor_id", "reading"])
            .where(col("ts").between(lo, hi)))
    expected = int(((ts >= lo) & (ts < hi)).sum())

    results: dict[str, dict] = {}
    server = TableServer(root, workers=2, worker_tier="process",
                         max_inflight=None, queue_depth=None).start()
    try:
        _drive_serve(server, 1, plan, expected)  # warm
        for n_clients in SERVE_CLIENTS:
            results[str(n_clients)] = _drive_serve(
                server, n_clients, plan, expected)
    finally:
        server.shutdown()
    lo_qps = results[str(SERVE_CLIENTS[0])]["qps"]
    hi_qps = results[str(SERVE_CLIENTS[-1])]["qps"]
    ok = all(not results[k]["errors"] for k in results)
    checks = {"serve_responses_correct": bool(ok)}
    if (os.cpu_count() or 1) >= 4:
        key = (f"serve_qps_increases_{SERVE_CLIENTS[0]}"
               f"_to_{SERVE_CLIENTS[-1]}")
        checks[key] = bool(hi_qps > lo_qps)
    else:
        emit(f"note: serve QPS-scaling check skipped "
             f"(cpus={os.cpu_count()}); recorded "
             f"{lo_qps:.1f} -> {hi_qps:.1f} QPS")
    return results, checks


def run(n: int, worker_counts, quick: bool) -> dict:
    root = _build(n)
    try:
        scan, checks = _scan_modes(root, n, worker_counts)

        parity = PARITY_QUICK if quick else PARITY_FULL
        thread_1 = scan["thread"]["1"]["rows_per_s"]
        process_1 = scan["process"]["1"]["rows_per_s"]
        checks["process_parity_at_1_worker"] = bool(
            process_1 >= thread_1 * parity)

        cpus = os.cpu_count() or 1
        if not quick and 4 in worker_counts and cpus >= 4:
            checks["process_2x_thread_at_4_workers"] = bool(
                scan["process"]["4"]["rows_per_s"]
                >= 2.0 * scan["thread"]["4"]["rows_per_s"])
        else:
            emit(f"note: 2x-at-4-workers check skipped "
                 f"(quick={quick}, cpus={cpus})")

        serve: dict = {}
        if not quick:
            serve, serve_checks = _serve_mode(root, n)
            checks.update(serve_checks)
    finally:
        shutil.rmtree(root, ignore_errors=True)

    rows = []
    for tier in ("thread", "process"):
        for workers in worker_counts:
            e = scan[tier][str(workers)]
            rows.append([tier, f"{workers}", f"{e['wall_s'] * 1e3:.1f}",
                         f"{e['rows_per_s'] / 1e6:.2f}"])
    emit(render_table(["tier", "workers", "scan ms", "Mrows/s"], rows))
    if serve:
        srows = [[k, f"{serve[k]['qps']:.1f}",
                  f"{serve[k]['p50_ms']:.1f}",
                  f"{serve[k]['p99_ms']:.1f}"] for k in serve]
        emit(render_table(["clients", "QPS", "p50 ms", "p99 ms"], srows))
    emit("checks: " + ", ".join(f"{k}={v}" for k, v in checks.items()))
    return {"n": n, "codec": CODEC, "repeats": REPEATS,
            "cpu_count": os.cpu_count(),
            "start_method": default_start_method(),
            "worker_counts": list(worker_counts),
            "parity_tolerance": parity,
            "scan": scan, "serve": serve, "checks": checks}


def render_table(header, rows) -> str:
    widths = [max(len(str(r[i])) for r in [header] + rows)
              for i in range(len(header))]
    lines = ["  ".join(f"{str(c):>{w}}" for c, w in zip(r, widths))
             for r in [header] + rows]
    lines.insert(1, "  ".join("-" * w for w in widths))
    return "\n".join(lines)


def main(argv=None) -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--json", default="BENCH_par.json")
    args = parser.parse_args(argv)
    n = QUICK_N if args.quick else FULL_N
    worker_counts = WORKERS_QUICK if args.quick else WORKERS_FULL
    emit(headline(
        "Process-tier benchmark",
        f"thread vs process scheduler on a {CODEC}-decode-bound scan, "
        f"n={n}, workers {worker_counts}, "
        f"start method {default_start_method()}"))
    payload = run(n, worker_counts, args.quick)
    with open(args.json, "w") as fh:
        json.dump(payload, fh, indent=2)
    emit(f"\nwrote {args.json}")
    failed = [name for name, ok in payload["checks"].items() if not ok]
    if failed:  # the CI smoke step must go red, not just record it
        raise SystemExit(f"par bench checks failed: {', '.join(failed)}")


if __name__ == "__main__":
    main()
