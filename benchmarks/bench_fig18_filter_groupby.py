"""Figure 18 — filter-groupby-aggregation query time vs selectivity (§5.1.1).

    SELECT AVG(val) FROM T WHERE ts_begin < ts < ts_end GROUP BY id

over a sensor table (ts/id/val) in two flavours — ``random`` (id and val
incompressible) and ``correlated`` (clustered ids, trending vals) — with
Default (dictionary), Delta, FOR, and LeCo column encodings.  Reports the
CPU (filter/groupby) and simulated-I/O breakdown per selectivity.
"""

import sys

import numpy as np

from repro.bench import render_table
from repro.datasets.synthetic import gen_ml
from repro.engine import ParquetLikeFile, run_filter_groupby_query

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, headline

SELECTIVITIES = [0.0001, 0.001, 0.01, 0.1]
ENCODINGS = ["dict", "delta", "for", "leco"]


def make_sensor_table(n: int, flavour: str, seed: int = 0):
    rng = np.random.default_rng(seed)
    ts = gen_ml(n, seed)
    if flavour == "random":
        ids = rng.integers(1, 10_000, n).astype(np.int64)
        vals = rng.integers(0, 1 << 40, n).astype(np.int64)
    else:  # correlated: clustered ids, vals trending across groups
        ids = (np.arange(n) // 100 % 10_000).astype(np.int64)
        base = (np.arange(n) // 100) * 1000
        vals = base + rng.integers(0, 1000, n)
    return {"ts": ts, "id": ids, "val": vals.astype(np.int64)}


def run_experiment(n: int = 60_000) -> str:
    rows = []
    for flavour in ("random", "correlated"):
        table = make_sensor_table(n, flavour)
        ts = table["ts"]
        files = {
            enc: ParquetLikeFile.write(table, enc, row_group_size=20_000,
                                       partition_size=1000)
            for enc in ENCODINGS
        }
        for sel in SELECTIVITIES:
            span = max(int(n * sel), 1)
            lo = int(ts[n // 3])
            hi = int(ts[min(n // 3 + span, n - 1)])
            reference = None
            for enc in ENCODINGS:
                result = run_filter_groupby_query(files[enc], lo, hi)
                if reference is None:
                    reference = result.answer
                assert result.answer == reference, enc
                rows.append([
                    flavour, f"{sel:.2%}", enc,
                    f"{files[enc].file_size_bytes() / 1e6:.2f}MB",
                    f"{result.cpu_filter_s * 1e3:.1f}",
                    f"{result.cpu_groupby_s * 1e3:.1f}",
                    f"{result.io_s * 1e3:.2f}",
                    f"{result.total_s * 1e3:.1f}",
                ])
    return headline(
        "Figure 18: filter-groupby-aggregation",
        "per-encoding CPU/IO breakdown across selectivities (ms)",
    ) + render_table(
        ["flavour", "selectivity", "encoding", "file", "filter ms",
         "groupby ms", "io ms", "total ms"], rows)


def test_fig18_filter_groupby(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(result)


if __name__ == "__main__":
    emit(run_experiment())
