"""Ablation (§3.2.2 claim) — split–merge greedy vs the DP optimum.

The paper reports the greedy variable-length partitioner within 3% of the
dynamic-programming optimal plan.  We measure the gap on four dataset
shapes under the shared cost model, plus the wall-clock advantage.
"""

import sys
import time

from repro.bench import render_table
from repro.core.partitioners import (
    OptimalPartitioner,
    SplitMergePartitioner,
    plan_cost_bits,
)
from repro.core.regressors import LinearRegressor
from repro.datasets import load

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, headline

DATASETS = ("booksale", "movieid", "house_price", "ml")


def run_experiment(n: int = 4000) -> str:
    reg = LinearRegressor()
    rows = []
    for name in DATASETS:
        values = load(name, n=n).values
        start = time.perf_counter()
        greedy = SplitMergePartitioner(tau=0.05).partition(values, reg)
        greedy_s = time.perf_counter() - start
        start = time.perf_counter()
        optimal = OptimalPartitioner(window=n).partition(values, reg)
        optimal_s = time.perf_counter() - start
        greedy_cost = plan_cost_bits(values, greedy, reg, exact=True)
        optimal_cost = plan_cost_bits(values, optimal, reg, exact=True)
        gap = greedy_cost / optimal_cost - 1.0
        rows.append([name, len(greedy), len(optimal), f"{gap:+.2%}",
                     f"{greedy_s:.2f}s", f"{optimal_s:.2f}s"])
    return headline(
        "Ablation: greedy split-merge vs DP optimum",
        "compressed-size gap of the greedy plan (paper claims < 3%)",
    ) + render_table(["dataset", "greedy parts", "optimal parts", "gap",
                      "greedy time", "DP time"], rows)


def test_ablation_optimal_gap(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(result)


if __name__ == "__main__":
    emit(run_experiment())
