"""Store scan benchmark: cold mmap vs warm cache vs zone-map pruning.

Ingests the sensor telemetry fixture into a ``repro.store`` table, then
measures three scan regimes over the same projection — all executed as
:class:`repro.exec.Plan` objects over a ``StoreSource`` (the unified
execution layer the store CLI and the engine helpers share):

* **full cold** — fresh ``Table``, every chunk read from the mmap;
* **full warm** — second scan on the same instance, served from the
  bounded LRU chunk cache (zero bytes read);
* **selective** — a ~0.5%-selectivity timestamp range, pruned (zone maps
  skip non-overlapping chunks) vs unpruned (filter pushed into every
  chunk), cache disabled so both pay honest read costs.

Writes a ``BENCH_store.json`` trajectory with rows/s, bytes actually
read, and pass/fail checks (pruned == naive answer, pruned reads fewer
bytes than full, pruned beats unpruned on wall clock)::

    python benchmarks/bench_store_scan.py [--quick] [--json PATH] [--dir D]
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time

import numpy as np

from repro.datasets import sensor_fixture
from repro.exec import Plan, Range
from repro.store import Table, write_table
from repro.store.executor import StoreSource

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, headline

FULL_N = 300_000
QUICK_N = 60_000
#: selective range covers ~0.5% of the rows
SELECTIVITY = 0.005
REPEATS = 5


def _measure(fn, repeats: int):
    """Best-of-``repeats`` wall time for ``fn()`` (returns last result)."""
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _entry(n_table: int, wall_s: float, stats, rows_out: int) -> dict:
    return {
        "wall_ms": wall_s * 1e3,
        "rows_per_s": n_table / max(wall_s, 1e-9),
        "rows_out": rows_out,
        "bytes_read": stats.bytes_read,
        "bytes_scanned": stats.bytes_scanned,
        "chunks_pruned": stats.granules_pruned,
        "chunks_scanned": stats.chunks_scanned,
        "cache_hits": stats.cache_hits,
    }


def run(directory: str, n: int, repeats: int = REPEATS) -> dict:
    columns = sensor_fixture(n, seed=0)
    write_table(directory, columns, codec="auto",
                shard_rows=max(n // 8, 1024), chunk_rows=2048,
                overwrite=True)
    projection = ["sensor_id", "reading"]
    ts = columns["ts"]
    i0 = n // 2
    i1 = i0 + max(int(n * SELECTIVITY), 1)
    lo, hi = int(ts[i0]), int(ts[i1])
    mask = (ts >= lo) & (ts < hi)

    full_plan = Plan.scan(projection)
    selective_plan = Plan.scan(projection).where(Range("ts", lo, hi))

    scans = {}
    with Table.open(directory) as table:
        source = StoreSource(table)
        cold = full_plan.execute(source)
        scans["full_cold"] = _entry(n, cold.stats.wall_s, cold.stats,
                                    cold.n_rows)
        warm = full_plan.execute(source)
        scans["full_warm"] = _entry(n, warm.stats.wall_s, warm.stats,
                                    warm.n_rows)

    with Table.open(directory, cache_bytes=0) as table:
        source = StoreSource(table)
        t_pruned, pruned = _measure(
            lambda: selective_plan.execute(source), repeats)
        t_unpruned, unpruned = _measure(
            lambda: selective_plan.execute(source, prune=False), repeats)
    scans["selective_pruned"] = _entry(n, t_pruned, pruned.stats,
                                       pruned.n_rows)
    scans["selective_unpruned"] = _entry(n, t_unpruned, unpruned.stats,
                                         unpruned.n_rows)

    matches = (
        np.array_equal(pruned.row_ids, np.flatnonzero(mask))
        and np.array_equal(pruned.columns["reading"],
                           columns["reading"][mask])
        and np.array_equal(pruned.columns["reading"],
                           unpruned.columns["reading"])
    )
    checks = {
        "pruned_matches_naive": bool(matches),
        "pruned_reads_fewer_bytes": bool(
            pruned.stats.bytes_read < scans["full_cold"]["bytes_read"]),
        "warm_reads_zero_bytes": bool(warm.stats.bytes_read == 0),
        "pruned_faster_than_unpruned": bool(t_pruned < t_unpruned),
    }

    rows = [
        [name,
         f"{entry['wall_ms']:.2f}",
         f"{entry['rows_per_s'] / 1e6:.1f}M",
         f"{entry['rows_out']}",
         f"{entry['bytes_read']}",
         f"{entry['chunks_pruned']}/{entry['chunks_scanned']}",
         f"{entry['cache_hits']}"]
        for name, entry in scans.items()
    ]
    emit(render_table(
        ["scan", "wall ms", "rows/s", "rows out", "bytes read",
         "pruned/scanned", "cache hits"], rows))
    emit("checks: " + ", ".join(f"{k}={v}" for k, v in checks.items()))
    return {"n": n, "selectivity": SELECTIVITY, "scans": scans,
            "checks": checks}


def render_table(header, rows) -> str:
    widths = [max(len(str(r[i])) for r in [header] + rows)
              for i in range(len(header))]
    lines = ["  ".join(f"{str(c):>{w}}" for c, w in zip(r, widths))
             for r in [header] + rows]
    lines.insert(1, "  ".join("-" * w for w in widths))
    return "\n".join(lines)


def main(argv=None) -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--json", default="BENCH_store.json")
    parser.add_argument("--dir", default=None,
                        help="table directory (default: a temp dir)")
    args = parser.parse_args(argv)
    n = QUICK_N if args.quick else FULL_N
    emit(headline(
        "Persistent store scan benchmark",
        f"sensor fixture, n={n}, selective range ~{SELECTIVITY:.1%} "
        "of rows"))
    directory = args.dir or tempfile.mkdtemp(prefix="repro_store_bench_")
    try:
        payload = run(directory, n)
    finally:
        if args.dir is None:
            shutil.rmtree(directory, ignore_errors=True)
    with open(args.json, "w") as fh:
        json.dump(payload, fh, indent=2)
    emit(f"\nwrote {args.json}")
    failed = [name for name, ok in payload["checks"].items() if not ok]
    if failed:  # the CI smoke step must go red, not just record it
        raise SystemExit(f"store bench checks failed: {', '.join(failed)}")


if __name__ == "__main__":
    main()
