"""Figure 16 — partitioner quality (§4.8).

normal / house_price / booksale / movieid compressed with the linear
regressor under five partitioning schemes: LeCo-fix, LeCo-PLA, LeCo-la-vec,
Sim-Piece, and LeCo-var.  The paper's claim: the split–merge Partitioner
(LeCo-var) dominates the time-series partitioners, whose fixed global error
bounds or model-count-blind shortest paths misfire on columnar data.
"""

import sys

import numpy as np

from repro.baselines import LecoCodec
from repro.bench import render_table
from repro.core.partitioners import (
    LaVectorPartitioner,
    PLAPartitioner,
    SimPiecePartitioner,
)
from repro.datasets import load

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, headline

DATASETS = ("normal", "house_price", "booksale", "movieid")


def _configs():
    return [
        ("leco-fix", LecoCodec("linear", partitioner="fixed")),
        ("leco-pla", LecoCodec("linear",
                               partitioner=PLAPartitioner(epsilon=64),
                               name="leco-pla")),
        ("leco-la-vec", LecoCodec("linear",
                                  partitioner=LaVectorPartitioner(),
                                  name="leco-la-vec")),
        ("sim-piece", LecoCodec("linear",
                                partitioner=SimPiecePartitioner(epsilon=64),
                                name="sim-piece")),
        ("leco-var", LecoCodec("linear", partitioner="variable",
                               tau=0.05)),
    ]


def run_experiment(n: int = 20_000) -> str:
    rows = []
    for name in DATASETS:
        ds = load(name, n=n)
        entry = [name]
        for label, codec in _configs():
            enc = codec.encode(ds.values)
            assert np.array_equal(enc.decode_all(), ds.values), label
            ratio = enc.compressed_size_bytes() / ds.uncompressed_bytes
            parts = len(enc.array.partitions)
            entry.append(f"{ratio:.1%} ({parts}p)")
        rows.append(entry)
    return headline(
        "Figure 16: partitioner efficiency",
        "compression ratio (and partition count) with the linear regressor",
    ) + render_table(
        ["dataset", "leco-fix", "leco-pla", "leco-la-vec", "sim-piece",
         "leco-var"], rows)


def test_fig16_partitioners(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(result)


if __name__ == "__main__":
    emit(run_experiment())
