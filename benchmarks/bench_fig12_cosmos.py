"""Figure 12 — higher-order and domain-specific models on ``cosmos``.

Compression ratio of rANS, FOR, LeCo-fix/var (linear), LeCo-Poly-fix/var,
and the domain-extended sine regressors: one sine term, two sine terms, and
two sine terms with known frequencies.  The paper's point: LeCo's framework
accepts domain knowledge, and every extra term buys compression.
"""

import sys

import numpy as np

from repro.baselines import FORCodec, LecoCodec, RansCodec
from repro.bench import render_table
from repro.core.regressors import PolynomialRegressor, SinusoidalRegressor
from repro.datasets import load

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, BENCH_N, headline

#: the generator's true angular frequencies (see datasets.synthetic)
TRUE_FREQS = np.array([1.0 / (60 * np.pi), 3.0 / (60 * np.pi)])


def run_experiment(n: int = min(BENCH_N, 30_000)) -> str:
    ds = load("cosmos", n=n)
    raw = ds.uncompressed_bytes
    configs = [
        ("rans", RansCodec()),
        ("for", FORCodec()),
        ("leco-fix", LecoCodec("linear", partitioner="fixed")),
        ("leco-var", LecoCodec("linear", partitioner="variable")),
        ("leco-poly-fix", LecoCodec(PolynomialRegressor(3),
                                    partitioner=2000, name="poly-fix")),
        ("sin", LecoCodec(SinusoidalRegressor(1), partitioner="fixed",
                          name="sin")),
        ("2sin", LecoCodec(SinusoidalRegressor(2), partitioner="fixed",
                           name="2sin")),
        ("2sin-freq", LecoCodec(SinusoidalRegressor(2, freqs=TRUE_FREQS),
                                partitioner="fixed", name="2sin-freq")),
    ]
    rows = []
    for label, codec in configs:
        data = ds.values if label != "rans" else ds.values[:8000]
        denom = raw if label != "rans" else 8000 * ds.width_bytes
        enc = codec.encode(data)
        assert np.array_equal(enc.decode_all(), data), label
        rows.append([label, f"{enc.compressed_size_bytes() / denom:.1%}"])
    return headline(
        "Figure 12: compression ratio on cosmos",
        "domain models (sine terms) extend the LeCo framework",
    ) + render_table(["config", "ratio"], rows)


def test_fig12_cosmos(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(result)


if __name__ == "__main__":
    emit(run_experiment())
