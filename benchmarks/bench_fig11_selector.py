"""Figure 11 — Regressor Selector vs FOR / LeCo-linear / optimal.

On the eight non-linear datasets (§4.4) compare compression ratios of:
FOR, LeCo with the linear regressor, the CART-recommended regressor per
partition, and the exhaustive-search optimum.  The paper's claim:
``recommend`` tracks ``optimal`` closely and beats plain linear LeCo where
higher-order patterns exist.
"""

import sys

import numpy as np

from repro.baselines import FORCodec
from repro.bench import render_table
from repro.core.advisor import RegressorSelector, optimal_regressor_name
from repro.core.encoding import CompressedArray, encode_partition
from repro.core.partitioners import fixed_bounds
from repro.core.regressors import get_regressor
from repro.datasets import NONLINEAR_DATASETS, load

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, BENCH_N, headline

PARTITION = 1000


def _encode_with(values: np.ndarray, chooser) -> int:
    partitions = []
    for start, end in fixed_bounds(len(values), PARTITION):
        seg = values[start:end]
        reg = get_regressor(chooser(seg))
        if len(seg) < reg.min_partition_size:
            reg = get_regressor("constant")
        partitions.append(encode_partition(seg, start, reg,
                                           build_corrections=False))
    arr = CompressedArray(len(values), partitions, PARTITION, "linear")
    return arr.compressed_size_bytes()


def run_experiment(n: int = min(BENCH_N, 20_000)) -> str:
    selector = RegressorSelector()
    rows = []
    for name in NONLINEAR_DATASETS:
        ds = load(name, n=n)
        values = ds.values
        raw = ds.uncompressed_bytes
        for_size = FORCodec(frame_size=PARTITION).encode(
            values).compressed_size_bytes()
        linear = _encode_with(values, lambda seg: "linear")
        recommend = _encode_with(values, selector.recommend_name)
        optimal = _encode_with(values, optimal_regressor_name)
        rows.append([
            name, f"{for_size / raw:.1%}", f"{linear / raw:.1%}",
            f"{recommend / raw:.1%}", f"{optimal / raw:.1%}",
        ])
    return headline(
        "Figure 11: regressor selection",
        "FOR vs LeCo-linear vs CART-recommended vs exhaustive optimum",
    ) + render_table(["dataset", "FOR", "LeCo(lin)", "recommend",
                      "optimal"], rows)


def test_fig11_selector(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(result)


if __name__ == "__main__":
    emit(run_experiment())
