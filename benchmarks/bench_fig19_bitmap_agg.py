"""Figure 19 — single-column bitmap aggregation vs selectivity (§5.1.2).

Sum the bitmap-selected entries of one column (normal, booksale, poisson,
ml), with zipf-clustered bitmaps, skipping row groups whose bitmap region is
empty.  LeCo's advantage combines I/O reduction with random-access decode of
only the selected entries.
"""

import sys

from repro.bench import render_table
from repro.datasets import load
from repro.engine import ParquetLikeFile, run_bitmap_aggregation, \
    zipf_cluster_bitmap

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, headline

DATASETS = ("normal", "booksale", "poisson", "ml")
ENCODINGS = ["dict", "delta", "for", "leco"]
SELECTIVITIES = [0.0001, 0.001, 0.01, 0.1]


def run_experiment(n: int = 60_000) -> str:
    rows = []
    for name in DATASETS:
        values = load(name, n=n).values
        files = {
            enc: ParquetLikeFile.write({"val": values}, enc,
                                       row_group_size=10_000,
                                       partition_size=1000)
            for enc in ENCODINGS
        }
        for sel in SELECTIVITIES:
            bitmap = zipf_cluster_bitmap(n, sel, seed=7)
            reference = None
            for enc in ENCODINGS:
                result = run_bitmap_aggregation(files[enc], "val", bitmap)
                if reference is None:
                    reference = result.answer
                assert result.answer == reference, (name, enc)
                rows.append([
                    name, f"{sel:.2%}", enc,
                    f"{result.cpu_groupby_s * 1e3:.1f}",
                    f"{result.io_s * 1e3:.2f}",
                    f"{result.total_s * 1e3:.1f}",
                ])
    return headline(
        "Figure 19: bitmap aggregation",
        "CPU/IO per encoding and selectivity (ms); row groups with empty "
        "bitmap regions are skipped",
    ) + render_table(["dataset", "selectivity", "encoding", "cpu ms",
                      "io ms", "total ms"], rows)


def test_fig19_bitmap_agg(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(result)


if __name__ == "__main__":
    emit(run_experiment())
