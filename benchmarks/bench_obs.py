"""Observability overhead benchmark: what the metrics + tracing cost.

PR 8 wires always-on metrics through the scheduler, cache, executor,
store, and mutate layers, plus opt-in per-query tracing.  Both were
budgeted: metrics must stay within **5%** on the executor's
0.5%-selectivity store scan (the pruning-heavy path where per-granule
bookkeeping is the largest relative cost), and a full trace within
**15%**.  This bench measures all three arms best-of-N against the
``set_enabled(False)`` kill switch, then runs a mixed query +
mutation + compaction workload and fetches the ``metrics`` wire op
from a live :class:`TableServer`, asserting every core family is
populated — the series a Prometheus scraper would actually see.

Writes a ``BENCH_obs.json`` trajectory with pass/fail checks::

    python benchmarks/bench_obs.py [--quick] [--json PATH] [--dir D]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

import numpy as np

from repro.exec import Plan, Range
from repro.mutate import MutableTable
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import parse_text, set_enabled
from repro.obs.trace import Trace
from repro.serve import ServeClient, TableServer
from repro.store import StoreSource, Table, write_table

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, headline

FULL_N = 500_000
QUICK_N = 100_000
#: best-of repeats per arm (the overheads are small; noise is not)
REPEATS = 9
#: regression gates (relative to the kill-switch baseline)
MAX_METRICS_OVERHEAD = 0.05
MAX_TRACE_OVERHEAD = 0.15

#: wire-op families that must be non-zero after the mixed workload
CORE_FAMILIES = (
    "repro_serve_requests_total",
    "repro_sched_granules_total",
    "repro_cache_lookups_total",
    "repro_exec_queries_total",
    "repro_exec_rows_total",
    "repro_wal_appends_total",
    "repro_mutate_generations_total",
    "repro_mutate_compact_passes_total",
)


def _measure(fn, repeats: int = REPEATS):
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _overhead_arms(directory: str, n: int) -> dict:
    """Best-of timings for the 0.5%-selectivity scan: metrics off /
    metrics on / metrics on + full trace."""
    plan = Plan.scan(["val"]).where(Range("ts", 0, n // 200))
    with Table.open(directory) as table:
        source = StoreSource(table)
        run = lambda **opts: plan.execute(source, threads=2, **opts)
        run()  # warm the chunk cache: measure bookkeeping, not IO

        set_enabled(False)
        try:
            t_off, res_off = _measure(run)
        finally:
            set_enabled(True)
        t_on, res_on = _measure(run)
        t_trace, res_trace = _measure(
            lambda: run(trace=Trace("bench", table=directory)))

    metrics_overhead = t_on / max(t_off, 1e-9) - 1.0
    trace_overhead = t_trace / max(t_off, 1e-9) - 1.0
    return {
        "selectivity": 1 / 200,
        "scan_off_ms": t_off * 1e3,
        "scan_metrics_ms": t_on * 1e3,
        "scan_traced_ms": t_trace * 1e3,
        "metrics_overhead": metrics_overhead,
        "trace_overhead": trace_overhead,
        "trace_spans": len(res_trace.trace),
        "rows": {"off": res_off.n_rows, "metrics": res_on.n_rows,
                 "traced": res_trace.n_rows},
    }


def _mixed_workload(root: str, mutate_dir: str, n: int) -> dict:
    """Queries through a live server + WAL churn, flush, and
    compaction in the same process, then the ``metrics`` wire op."""
    rng = np.random.default_rng(1)
    with MutableTable.create(mutate_dir,
                             schema=("ts", "val")) as mutable:
        for batch in range(4):
            size = n // 40
            mutable.append({
                "ts": np.arange(batch * size, (batch + 1) * size,
                                dtype=np.int64),
                "val": rng.integers(0, 1000, size).astype(np.int64)})
            mutable.flush()
        mutable.delete(("val", 0, 500))
        mutable.flush()
        mutable.compact()

    with TableServer(root) as server:
        host, port = server.address
        with ServeClient(host, port) as client:
            plan = Plan.scan(["val"]).where(Range("ts", 0, n // 200))
            for _ in range(10):
                client.query("events", plan, limit=16)
            client.explain("events", plan)
            text = client.metrics()

    families = parse_text(text)
    populated = {}
    for name in CORE_FAMILIES:
        samples = families.get(name, {}).get("samples", ())
        populated[name] = sum(v for _, _, v in samples)
    return {"series_rendered": len(families),
            "core_family_totals": populated}


def run(root: str, n: int) -> dict:
    directory = os.path.join(root, "events")
    rng = np.random.default_rng(0)
    write_table(directory, {
        "ts": np.arange(n, dtype=np.int64),
        "val": np.cumsum(rng.integers(-5, 6, n)).astype(np.int64),
    }, shard_rows=max(n // 8, 4096))

    arms = _overhead_arms(directory, n)
    mixed = _mixed_workload(root, os.path.join(root, "churn"), n)

    checks = {
        "metrics_overhead_within_budget": bool(
            arms["metrics_overhead"] <= MAX_METRICS_OVERHEAD),
        "trace_overhead_within_budget": bool(
            arms["trace_overhead"] <= MAX_TRACE_OVERHEAD),
        "instrumented_results_identical": bool(
            arms["rows"]["off"] == arms["rows"]["metrics"]
            == arms["rows"]["traced"]),
        "trace_captured_spans": bool(arms["trace_spans"] > 0),
        "wire_metrics_all_core_families_populated": all(
            total > 0
            for total in mixed["core_family_totals"].values()),
    }

    emit(f"scan (0.5% selectivity, n={n}): "
         f"off {arms['scan_off_ms']:.3f} ms   "
         f"metrics {arms['scan_metrics_ms']:.3f} ms "
         f"({arms['metrics_overhead']:+.2%}, "
         f"budget {MAX_METRICS_OVERHEAD:.0%})   "
         f"traced {arms['scan_traced_ms']:.3f} ms "
         f"({arms['trace_overhead']:+.2%}, "
         f"budget {MAX_TRACE_OVERHEAD:.0%}, "
         f"{arms['trace_spans']} spans)")
    emit(f"mixed workload: {mixed['series_rendered']} families "
         f"rendered over the wire")
    for name, total in mixed["core_family_totals"].items():
        emit(f"  {name:<42} {total:>12g}")
    emit("checks: " + ", ".join(f"{k}={v}" for k, v in checks.items()))

    return {
        "n": n,
        "overhead": arms,
        "budgets": {"metrics": MAX_METRICS_OVERHEAD,
                    "trace": MAX_TRACE_OVERHEAD},
        "mixed_workload": mixed,
        "checks": checks,
    }


def main(argv=None) -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--json", default="BENCH_obs.json")
    parser.add_argument("--dir", default=None,
                        help="working directory (default: a temp dir)")
    args = parser.parse_args(argv)
    n = QUICK_N if args.quick else FULL_N
    emit(headline(
        "Observability overhead benchmark",
        f"metrics + tracing cost on a 0.5%-selectivity scan (n={n}), "
        "then a mixed query/mutation workload scraped over the wire"))
    root = args.dir or tempfile.mkdtemp(prefix="repro_obs_bench_")
    try:
        payload = run(root, n)
    finally:
        set_enabled(True)  # never leave the kill switch thrown
        if args.dir is None:
            shutil.rmtree(root, ignore_errors=True)
    with open(args.json, "w") as fh:
        json.dump(payload, fh, indent=2)
    emit(f"\nwrote {args.json}")
    failed = [name for name, ok in payload["checks"].items() if not ok]
    if failed:  # the CI smoke step must go red, not just record it
        raise SystemExit(f"obs bench checks failed: {', '.join(failed)}")


if __name__ == "__main__":
    main()
