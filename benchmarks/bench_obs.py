"""Observability overhead benchmark: what the metrics + tracing cost.

PR 8 wires always-on metrics through the scheduler, cache, executor,
store, and mutate layers, plus opt-in per-query tracing.  Both were
budgeted: metrics must stay within **5%** on the executor's
0.5%-selectivity store scan (the pruning-heavy path where per-granule
bookkeeping is the largest relative cost), and a full trace within
**15%**.  This bench measures all three arms best-of-N against the
``set_enabled(False)`` kill switch, then runs a mixed query +
mutation + compaction workload and fetches the ``metrics`` wire op
from a live :class:`TableServer`, asserting every core family is
populated — the series a Prometheus scraper would actually see.

Writes a ``BENCH_obs.json`` trajectory with pass/fail checks::

    python benchmarks/bench_obs.py [--quick] [--json PATH] [--dir D]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

import numpy as np

from repro.exec import Plan, Range
from repro.mutate import MutableTable
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import parse_text, set_enabled
from repro.obs.trace import Trace
from repro.serve import ServeClient, TableServer
from repro.store import StoreSource, Table, write_table

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, headline

FULL_N = 500_000
QUICK_N = 100_000
#: best-of repeats per arm (the overheads are small; noise is not —
#: sub-millisecond quick-mode runs need many rounds for a tight min)
REPEATS = 25
#: back-to-back runs per timing sample: a single quick-mode run is
#: ~1 ms, inside scheduler-jitter territory for a 5% gate, so each
#: sample times a small batch and divides
BATCH = 4
#: process-tier arms interleave and need more rounds: pipe scheduling
#: on a shared box adds variance the thread tier doesn't have
PROC_REPEATS = 35
PROC_BATCH = 3
#: regression gates (relative to the kill-switch baseline)
MAX_METRICS_OVERHEAD = 0.05
MAX_TRACE_OVERHEAD = 0.15

#: wire-op families that must be non-zero after the mixed workload
CORE_FAMILIES = (
    "repro_serve_requests_total",
    "repro_sched_granules_total",
    "repro_cache_lookups_total",
    "repro_exec_queries_total",
    "repro_exec_rows_total",
    "repro_wal_appends_total",
    "repro_mutate_generations_total",
    "repro_mutate_compact_passes_total",
)


def _overhead_arms(directory: str, n: int) -> dict:
    """Best-of timings for the 0.5%-selectivity scan: metrics off /
    metrics on / metrics on + full trace."""
    plan = Plan.scan(["val"]).where(Range("ts", 0, n // 200))
    with Table.open(directory) as table:
        source = StoreSource(table)
        run = lambda **opts: plan.execute(source, threads=2, **opts)
        run()  # warm the chunk cache: measure bookkeeping, not IO

        # interleave the arms round-robin (see _process_tier_arms):
        # sequential best-of lets machine drift bias whichever arm
        # happens to run during the quiet stretch
        t_off = t_on = t_trace = float("inf")
        res_off = res_on = res_trace = None
        for _ in range(REPEATS):
            set_enabled(False)
            try:
                start = time.perf_counter()
                for _ in range(BATCH):
                    res_off = run()
                t_off = min(t_off,
                            (time.perf_counter() - start) / BATCH)
            finally:
                set_enabled(True)
            start = time.perf_counter()
            for _ in range(BATCH):
                res_on = run()
            t_on = min(t_on, (time.perf_counter() - start) / BATCH)
            start = time.perf_counter()
            for _ in range(BATCH):
                res_trace = run(trace=Trace("bench", table=directory))
            t_trace = min(t_trace,
                          (time.perf_counter() - start) / BATCH)

    metrics_overhead = t_on / max(t_off, 1e-9) - 1.0
    trace_overhead = t_trace / max(t_off, 1e-9) - 1.0
    return {
        "selectivity": 1 / 200,
        "scan_off_ms": t_off * 1e3,
        "scan_metrics_ms": t_on * 1e3,
        "scan_traced_ms": t_trace * 1e3,
        "metrics_overhead": metrics_overhead,
        "trace_overhead": trace_overhead,
        "trace_spans": len(res_trace.trace),
        "rows": {"off": res_off.n_rows, "metrics": res_on.n_rows,
                 "traced": res_trace.n_rows},
    }


def _process_tier_arms(directory: str, n: int) -> dict:
    """The same three arms on the process tier (PR 10): telemetry now
    crosses the lane pipe as snapshot deltas, and traced runs ship
    spans back in every result envelope — both must fit the same
    budgets.  Each arm gets a *fresh* scheduler built after the kill
    switch is set, so the ``obs_enabled`` ctor spec reaches the
    workers exactly as it would in production."""
    from repro.par import ProcessScheduler

    plan = Plan.scan(["val"]).where(Range("ts", 0, n // 200))
    registry = obs_metrics.default_registry()

    def timed(fn):
        start = time.perf_counter()
        for _ in range(PROC_BATCH):
            result = fn()
        return (time.perf_counter() - start) / PROC_BATCH, result

    with Table.open(directory) as table:
        source = StoreSource(table)
        # one scheduler per arm, built under that arm's kill-switch
        # state (the ctor spec is what reaches the workers); timed runs
        # are *interleaved* round-robin so scheduler drift on a busy
        # box lands on every arm equally instead of biasing one
        set_enabled(False)
        sched_off = ProcessScheduler(workers=2, name="bench-obs-off")
        set_enabled(True)
        sched_on = ProcessScheduler(workers=2, name="bench-obs-on")
        t_off = t_on = t_trace = float("inf")
        res_off = res_on = res_trace = None
        try:
            run_off = lambda: plan.execute(source, scheduler=sched_off)
            run_on = lambda: plan.execute(source, scheduler=sched_on)
            run_traced = lambda: plan.execute(
                source, scheduler=sched_on, trace=Trace("bench"))
            # warm per-worker chunk caches and descriptor pipelines
            run_off(), run_on(), run_traced()
            for _ in range(PROC_REPEATS):
                set_enabled(False)
                try:
                    t, res_off = timed(run_off)
                finally:
                    set_enabled(True)
                t_off = min(t_off, t)
                t, res_on = timed(run_on)
                t_on = min(t_on, t)
                t, res_trace = timed(run_traced)
                t_trace = min(t_trace, t)
        finally:
            set_enabled(True)
            sched_on.close()
            sched_off.close()
        merged = [
            (inst.name, key, child.value)
            for inst in registry.instruments()
            if inst.name == "repro_par_worker_granules_total"
            for key, child in inst.remote_children().items()]

    metrics_overhead = t_on / max(t_off, 1e-9) - 1.0
    trace_overhead = t_trace / max(t_off, 1e-9) - 1.0
    worker_spans = sum(
        1 for s in res_trace.trace.spans if "proc" in s.attrs)
    return {
        "scan_off_ms": t_off * 1e3,
        "scan_metrics_ms": t_on * 1e3,
        "scan_traced_ms": t_trace * 1e3,
        "metrics_overhead": metrics_overhead,
        "trace_overhead": trace_overhead,
        "merged_worker_granules": sum(v for _, _, v in merged),
        "merged_lanes": sorted(key[-1] for _, key, _ in merged),
        "worker_spans": worker_spans,
        "rows": {"off": res_off.n_rows, "metrics": res_on.n_rows,
                 "traced": res_trace.n_rows},
    }


def _over_budget(arms: dict) -> bool:
    return (arms["metrics_overhead"] > MAX_METRICS_OVERHEAD
            or arms["trace_overhead"] > MAX_TRACE_OVERHEAD)


def _best_of(first: dict, second: dict) -> dict:
    """Fold two measurement passes of the same arms: keep each arm's
    best (min) time — exactly what doubling the repeat count would
    have produced — and recompute the overheads from those."""
    out = dict(second)
    for key in ("scan_off_ms", "scan_metrics_ms", "scan_traced_ms"):
        out[key] = min(first[key], second[key])
    base = max(out["scan_off_ms"], 1e-9)
    out["metrics_overhead"] = out["scan_metrics_ms"] / base - 1.0
    out["trace_overhead"] = out["scan_traced_ms"] / base - 1.0
    out["retried"] = True
    return out


def _mixed_workload(root: str, mutate_dir: str, n: int) -> dict:
    """Queries through a live server + WAL churn, flush, and
    compaction in the same process, then the ``metrics`` wire op."""
    rng = np.random.default_rng(1)
    with MutableTable.create(mutate_dir,
                             schema=("ts", "val")) as mutable:
        for batch in range(4):
            size = n // 40
            mutable.append({
                "ts": np.arange(batch * size, (batch + 1) * size,
                                dtype=np.int64),
                "val": rng.integers(0, 1000, size).astype(np.int64)})
            mutable.flush()
        mutable.delete(("val", 0, 500))
        mutable.flush()
        mutable.compact()

    with TableServer(root) as server:
        host, port = server.address
        with ServeClient(host, port) as client:
            plan = Plan.scan(["val"]).where(Range("ts", 0, n // 200))
            for _ in range(10):
                client.query("events", plan, limit=16)
            client.explain("events", plan)
            text = client.metrics()

    families = parse_text(text)
    populated = {}
    for name in CORE_FAMILIES:
        samples = families.get(name, {}).get("samples", ())
        populated[name] = sum(v for _, _, v in samples)
    return {"series_rendered": len(families),
            "core_family_totals": populated}


def run(root: str, n: int) -> dict:
    directory = os.path.join(root, "events")
    rng = np.random.default_rng(0)
    write_table(directory, {
        "ts": np.arange(n, dtype=np.int64),
        "val": np.cumsum(rng.integers(-5, 6, n)).astype(np.int64),
    }, shard_rows=max(n // 8, 4096))

    # a shared box stalls for whole-second stretches; repeat passes
    # (folded as extra best-of rounds) separate a real regression from
    # having measured through such a stall
    arms = _overhead_arms(directory, n)
    for _ in range(2):
        if not _over_budget(arms):
            break
        time.sleep(1.0)  # let a whole-box stall pass before retrying
        arms = _best_of(arms, _overhead_arms(directory, n))
    proc = _process_tier_arms(directory, n)
    for _ in range(2):
        if not _over_budget(proc):
            break
        time.sleep(1.0)
        proc = _best_of(proc, _process_tier_arms(directory, n))
    mixed = _mixed_workload(root, os.path.join(root, "churn"), n)

    checks = {
        "metrics_overhead_within_budget": bool(
            arms["metrics_overhead"] <= MAX_METRICS_OVERHEAD),
        "trace_overhead_within_budget": bool(
            arms["trace_overhead"] <= MAX_TRACE_OVERHEAD),
        "instrumented_results_identical": bool(
            arms["rows"]["off"] == arms["rows"]["metrics"]
            == arms["rows"]["traced"]),
        "trace_captured_spans": bool(arms["trace_spans"] > 0),
        "process_metrics_overhead_within_budget": bool(
            proc["metrics_overhead"] <= MAX_METRICS_OVERHEAD),
        "process_trace_overhead_within_budget": bool(
            proc["trace_overhead"] <= MAX_TRACE_OVERHEAD),
        "process_results_identical": bool(
            proc["rows"]["off"] == proc["rows"]["metrics"]
            == proc["rows"]["traced"] == arms["rows"]["off"]),
        "worker_telemetry_merged": bool(
            proc["merged_worker_granules"] > 0
            and proc["merged_lanes"]),
        "worker_spans_crossed_the_pipe": bool(
            proc["worker_spans"] > 0),
        "wire_metrics_all_core_families_populated": all(
            total > 0
            for total in mixed["core_family_totals"].values()),
    }

    emit(f"scan (0.5% selectivity, n={n}): "
         f"off {arms['scan_off_ms']:.3f} ms   "
         f"metrics {arms['scan_metrics_ms']:.3f} ms "
         f"({arms['metrics_overhead']:+.2%}, "
         f"budget {MAX_METRICS_OVERHEAD:.0%})   "
         f"traced {arms['scan_traced_ms']:.3f} ms "
         f"({arms['trace_overhead']:+.2%}, "
         f"budget {MAX_TRACE_OVERHEAD:.0%}, "
         f"{arms['trace_spans']} spans)")
    emit(f"process tier: "
         f"off {proc['scan_off_ms']:.3f} ms   "
         f"metrics {proc['scan_metrics_ms']:.3f} ms "
         f"({proc['metrics_overhead']:+.2%})   "
         f"traced {proc['scan_traced_ms']:.3f} ms "
         f"({proc['trace_overhead']:+.2%}, "
         f"{proc['worker_spans']} worker spans)   "
         f"merged granules "
         f"{proc['merged_worker_granules']:g} over lanes "
         f"{','.join(proc['merged_lanes'])}")
    emit(f"mixed workload: {mixed['series_rendered']} families "
         f"rendered over the wire")
    for name, total in mixed["core_family_totals"].items():
        emit(f"  {name:<42} {total:>12g}")
    emit("checks: " + ", ".join(f"{k}={v}" for k, v in checks.items()))

    return {
        "n": n,
        "overhead": arms,
        "process_tier": proc,
        "budgets": {"metrics": MAX_METRICS_OVERHEAD,
                    "trace": MAX_TRACE_OVERHEAD},
        "mixed_workload": mixed,
        "checks": checks,
    }


def main(argv=None) -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--json", default="BENCH_obs.json")
    parser.add_argument("--dir", default=None,
                        help="working directory (default: a temp dir)")
    args = parser.parse_args(argv)
    n = QUICK_N if args.quick else FULL_N
    emit(headline(
        "Observability overhead benchmark",
        f"metrics + tracing cost on a 0.5%-selectivity scan (n={n}), "
        "then a mixed query/mutation workload scraped over the wire"))
    root = args.dir or tempfile.mkdtemp(prefix="repro_obs_bench_")
    try:
        payload = run(root, n)
    finally:
        set_enabled(True)  # never leave the kill switch thrown
        if args.dir is None:
            shutil.rmtree(root, ignore_errors=True)
    with open(args.json, "w") as fh:
        json.dump(payload, fh, indent=2)
    emit(f"\nwrote {args.json}")
    failed = [name for name, ok in payload["checks"].items() if not ok]
    if failed:  # the CI smoke step must go red, not just record it
        raise SystemExit(f"obs bench checks failed: {', '.join(failed)}")


if __name__ == "__main__":
    main()
