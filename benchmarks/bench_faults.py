"""Fault-tolerance benchmark: what end-to-end checksums cost.

The v2 shard layout crc32-checksums every chunk envelope and footer
catalog, verified on each cache-miss revive.  This bench measures the
price of that guarantee on the worst case — a full cold scan
(``cache_bytes=0``, so every chunk is revived and verified every time)
— against the same scan with ``verify_checksums=False``, plus the
offline ``scrub`` walk.  A corruption drill (one flipped bit in a
shard copy) proves the machinery actually detects what it charges for.

Writes a ``BENCH_faults.json`` trajectory with pass/fail checks (the
verified scan returns identical rows; the checksum overhead stays
within the 5% budget; scrub is clean on the intact table; the flipped
bit is caught by scan, skip-policy, and scrub)::

    python benchmarks/bench_faults.py [--quick] [--json PATH] [--dir D]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

import numpy as np

from repro.store import CorruptChunkError, Table, scrub_table, write_table
from repro.store.format import unpack_footer

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, headline

FULL_N = 500_000
QUICK_N = 100_000
#: best-of repeats per timed scan (crc32 cost is small; noise is not)
REPEATS = 5
#: the regression gate: verified full scan at most this much slower
MAX_OVERHEAD = 0.05


def _measure(fn, repeats: int = REPEATS):
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _full_scan(directory: str, verify: bool):
    with Table.open(directory, cache_bytes=0,
                    verify_checksums=verify) as table:
        return _measure(lambda: table.scan())


def _first_chunk(directory: str):
    """(shard path, first chunk meta) of the table's first shard."""
    with Table.open(directory) as table:
        shard = table.shards[0]
        return shard.path, shard.footer.chunks[0]


def _corruption_drill(directory: str, flip_dir: str) -> dict:
    """Flip one bit in a copy of the table; every detector must fire."""
    shutil.copytree(directory, flip_dir)
    shard_path, meta = _first_chunk(flip_dir)
    offset = meta.offset + meta.nbytes // 2
    with open(shard_path, "r+b") as fh:
        fh.seek(offset)
        byte = fh.read(1)[0]
        fh.seek(offset)
        fh.write(bytes([byte ^ 0x10]))

    scan_raised = False
    try:
        with Table.open(flip_dir, cache_bytes=0) as table:
            table.scan()
    except CorruptChunkError:
        scan_raised = True

    with Table.open(flip_dir, cache_bytes=0) as table:
        skipped = table.scan(on_corruption="skip")
    report = scrub_table(flip_dir)
    return {
        "flipped": {"file": os.path.basename(shard_path),
                    "column": meta.column, "byte_offset": offset},
        "scan_raised": scan_raised,
        "skip_rows_out": skipped.n_rows,
        "skip_chunks_quarantined": skipped.stats.chunks_corrupt,
        "scrub_errors": report.errors,
    }


def run(directory: str, n: int) -> dict:
    rng = np.random.default_rng(0)
    columns = {
        "ts": np.arange(n, dtype=np.int64),
        "id": rng.integers(0, 4096, n).astype(np.int64),
        "val": np.cumsum(rng.integers(-5, 6, n)).astype(np.int64),
    }
    write_table(directory, columns, shard_rows=max(n // 8, 4096))
    with Table.open(directory) as table:
        info = {"n_rows": table.n_rows, "n_shards": len(table.shards),
                "stored_bytes": table.stored_bytes()}

    t_verified, res_verified = _full_scan(directory, verify=True)
    t_unverified, res_unverified = _full_scan(directory, verify=False)
    overhead = t_verified / max(t_unverified, 1e-9) - 1.0

    t_scrub, report = _measure(lambda: scrub_table(directory), repeats=1)
    drill = _corruption_drill(directory, directory + "_flip")

    checks = {
        "verified_scan_identical": all(
            np.array_equal(res_verified.columns[c],
                           res_unverified.columns[c]) for c in columns),
        "checksum_overhead_within_budget": bool(overhead <= MAX_OVERHEAD),
        "scrub_clean_on_intact_table": report.ok,
        "bit_flip_raises_on_scan": drill["scan_raised"],
        "bit_flip_quarantined_by_skip_policy": bool(
            drill["skip_chunks_quarantined"] == 1
            and drill["skip_rows_out"] < n),
        "bit_flip_reported_by_scrub": bool(drill["scrub_errors"]),
    }

    emit(f"table: {info['n_rows']} rows x {len(columns)} columns, "
         f"{info['n_shards']} shards, {info['stored_bytes']} B stored")
    emit(f"full cold scan:   verified {t_verified * 1e3:7.2f} ms   "
         f"unverified {t_unverified * 1e3:7.2f} ms   "
         f"overhead {overhead:+.2%} (budget {MAX_OVERHEAD:.0%})")
    emit(f"scrub: {report.summary().splitlines()[-1]} "
         f"in {t_scrub * 1e3:.1f} ms "
         f"({sum(s.chunks_checked for s in report.shards)} chunks)")
    emit(f"corruption drill: scan_raised={drill['scan_raised']}, "
         f"skip kept {drill['skip_rows_out']}/{n} rows "
         f"({drill['skip_chunks_quarantined']} chunk quarantined), "
         f"scrub found {len(drill['scrub_errors'])} error(s)")
    emit("checks: " + ", ".join(f"{k}={v}" for k, v in checks.items()))

    return {
        "n": n, "table": info,
        "scan_verified_ms": t_verified * 1e3,
        "scan_unverified_ms": t_unverified * 1e3,
        "checksum_overhead": overhead,
        "overhead_budget": MAX_OVERHEAD,
        "scrub_ms": t_scrub * 1e3,
        "corruption_drill": drill,
        "checks": checks,
    }


def main(argv=None) -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--json", default="BENCH_faults.json")
    parser.add_argument("--dir", default=None,
                        help="table directory (default: a temp dir)")
    args = parser.parse_args(argv)
    n = QUICK_N if args.quick else FULL_N
    emit(headline(
        "Fault-tolerance benchmark",
        f"checksum overhead on a cold full scan (n={n}), scrub walk, "
        "single-bit corruption drill"))
    directory = args.dir or tempfile.mkdtemp(prefix="repro_faults_bench_")
    directory = f"{directory}/table"
    try:
        payload = run(directory, n)
    finally:
        if args.dir is None:
            shutil.rmtree(directory.rsplit("/", 1)[0],
                          ignore_errors=True)
    with open(args.json, "w") as fh:
        json.dump(payload, fh, indent=2)
    emit(f"\nwrote {args.json}")
    failed = [name for name, ok in payload["checks"].items() if not ok]
    if failed:  # the CI smoke step must go red, not just record it
        raise SystemExit(f"faults bench checks failed: {', '.join(failed)}")


if __name__ == "__main__":
    main()
