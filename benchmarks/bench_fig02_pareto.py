"""Figure 2 — the Pareto frontier: compression ratio vs random access.

Weighted-average ratio and random-access latency over the twelve integer
datasets for FOR, Elias-Fano, Delta, LeCo(-fix) and LeCo-var.  The paper's
claim: LeCo variants sit on the Pareto frontier — better ratio than
FOR/Elias-Fano at comparable access speed, and orders of magnitude faster
access than Delta at comparable ratio.
"""

import sys

from repro.baselines import DeltaCodec, EliasFanoCodec, FORCodec, LecoCodec
from repro.bench import measure_codec, render_table, weighted_average
from repro.datasets import FIG10_DATASETS, load

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, BENCH_N, BENCH_PROBES, headline

CODECS = [
    FORCodec(),
    EliasFanoCodec(),
    DeltaCodec("fix"),
    LecoCodec("linear", partitioner="fixed"),
    LecoCodec("linear", partitioner="variable"),
]


def run_experiment(n: int = min(BENCH_N, 20_000)) -> str:
    per_codec: dict[str, list] = {}
    for name in FIG10_DATASETS:
        ds = load(name, n=n)
        for codec in CODECS:
            if isinstance(codec, EliasFanoCodec) and not ds.sorted:
                continue
            m = measure_codec(codec, ds, n_random=BENCH_PROBES, repeats=1)
            per_codec.setdefault(codec.name, []).append(m)
    rows = []
    for name, ms in per_codec.items():
        rows.append([
            name,
            f"{weighted_average(ms, 'compression_ratio'):.1%}",
            f"{weighted_average(ms, 'random_access_ns'):.0f}",
        ])
    return headline(
        "Figure 2: performance-space trade-offs",
        "weighted average over the twelve Fig. 10 datasets",
    ) + render_table(["codec", "avg ratio", "avg RA ns"], rows)


def test_fig02_pareto(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(result)
    # Pareto claims: LeCo-fix compresses better than FOR at comparable RA;
    # checked numerically in tests/test_integration.py


if __name__ == "__main__":
    emit(run_experiment())
