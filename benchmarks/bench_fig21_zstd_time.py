"""Figure 21 — CPU/IO breakdown of block compression on the query path.

Repeats the bitmap-selection query (ml, selectivity 0.01%) with block
compression on and off, for Default/FOR/LeCo encodings.  The paper's
finding: zstd's I/O savings are outweighed by its decompression CPU — the
motivation for lightweight compression in §2.
"""

import sys

from repro.bench import render_table
from repro.datasets import load
from repro.engine import ParquetLikeFile, run_bitmap_aggregation, \
    zipf_cluster_bitmap

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, headline

ENCODINGS = ["dict", "for", "leco"]


def run_experiment(n: int = 60_000) -> str:
    values = load("ml", n=n).values
    bitmap = zipf_cluster_bitmap(n, 0.0001, seed=3)
    rows = []
    for enc in ENCODINGS:
        for compressed in (False, True):
            file = ParquetLikeFile.write({"v": values}, enc,
                                         row_group_size=10_000,
                                         partition_size=1000,
                                         block_compression=compressed)
            result = run_bitmap_aggregation(file, "v", bitmap)
            rows.append([
                enc, "on" if compressed else "off",
                f"{file.file_size_bytes() / 1e6:.3f}MB",
                f"{result.cpu_groupby_s * 1e3:.2f}",
                f"{result.io_s * 1e3:.3f}",
                f"{result.total_s * 1e3:.2f}",
            ])
    return headline(
        "Figure 21: time breakdown with block compression",
        "bitmap query on ml at 0.01% selectivity (ms); block decompression "
        "CPU vs I/O savings",
    ) + render_table(["encoding", "zstd", "file", "cpu ms", "io ms",
                      "total ms"], rows)


def test_fig21_zstd_time(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(result)


if __name__ == "__main__":
    emit(run_experiment())
