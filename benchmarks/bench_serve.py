"""Serving-layer benchmark: shared morsel scheduler vs pool-per-query.

Concurrent clients hammer one :class:`repro.serve.TableServer` over
real sockets with a mixed workload — 0.5%-selectivity row queries
(limit-capped responses) alternating with full-scan aggregates — at
1, 8, and 64 connections.  Each client count runs twice:

* **shared** — the PR 7 serving shape: every query's granules
  interleave on one bounded :class:`~repro.exec.pool.MorselScheduler`;
* **pool-per-query** — the pre-PR shape: each request spins its own
  ``ThreadPoolExecutor`` (``threads=WORKERS``), so N concurrent queries
  oversubscribe N pools onto the same cores.

Both modes share everything else (wire protocol, chunk cache size,
table).  Reports QPS and p50/p99 latency per mode and client count,
verifies every response row-for-row, and checks that the shared
scheduler wins at >= 8 clients.  Writes ``BENCH_serve.json``::

    python benchmarks/bench_serve.py [--quick] [--json PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import threading
import time

import numpy as np

from repro.datasets import sensor_fixture
from repro.exec import Plan, col
from repro.serve import ServeClient, TableServer
from repro.store import TableWriter

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, headline

FULL_N = 200_000
QUICK_N = 40_000
CLIENTS_FULL = (1, 8, 64)
CLIENTS_QUICK = (1, 8)
#: requests per client per run (alternating selective / full scan)
REQUESTS_PER_CLIENT = 6
#: worker threads per scheduler (shared) / per query pool (baseline)
WORKERS = 4


def _build_root(n: int) -> tuple[str, dict]:
    root = tempfile.mkdtemp(prefix="repro_serve_bench_")
    columns = sensor_fixture(n, seed=0)
    with TableWriter(os.path.join(root, "events"), codec="auto",
                     shard_rows=max(n // 8, 4096),
                     chunk_rows=2048) as writer:
        writer.append(columns)
    return root, columns


def _workload(columns) -> list[tuple]:
    """(name, plan, checker) for the two request shapes in the mix."""
    ts = columns["ts"]
    n = len(ts)
    i0 = n // 2
    i1 = i0 + max(int(n * 0.005), 1)  # ~0.5% selectivity
    lo, hi = int(ts[i0]), int(ts[i1])
    n_selected = int(((ts >= lo) & (ts < hi)).sum())
    selective = (Plan.scan(["sensor_id", "reading"])
                 .where(col("ts").between(lo, hi)))
    fullscan = Plan.scan(["reading"]).aggregate(
        {"total": ("sum", "reading"), "n": ("count", "reading")})
    total = int(columns["reading"].sum())
    return [
        ("selective", selective,
         lambda res: res["n_rows"] == n_selected),
        ("fullscan", fullscan,
         lambda res: res["groups"][0][1] == {"total": total, "n": n}),
    ]


def _drive(server: TableServer, n_clients: int, workload) -> dict:
    """Hammer ``server`` with ``n_clients`` concurrent connections."""
    host, port = server.address
    per_client: list[list] = [[] for _ in range(n_clients)]
    errors: list[str] = []

    def client(idx: int) -> None:
        try:
            with ServeClient(host, port) as c:
                for r in range(REQUESTS_PER_CLIENT):
                    name, plan, check = workload[(idx + r)
                                                 % len(workload)]
                    start = time.perf_counter()
                    res = c.query("events", plan, timeout_s=300.0,
                                  limit=64)
                    per_client[idx].append(
                        (name, time.perf_counter() - start))
                    if not check(res):
                        errors.append(f"{name}: wrong answer")
        except Exception as exc:
            errors.append(f"client {idx}: {exc!r}")

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(n_clients)]
    wall_start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - wall_start

    samples = [s for client_samples in per_client
               for s in client_samples]
    lats = np.asarray([dt for _, dt in samples]) * 1e3
    out = {
        "clients": n_clients,
        "requests": len(samples),
        "errors": errors,
        "wall_s": wall,
        "qps": len(samples) / wall,
        "p50_ms": float(np.percentile(lats, 50)),
        "p99_ms": float(np.percentile(lats, 99)),
    }
    for name in ("selective", "fullscan"):
        sub = np.asarray([dt for k, dt in samples if k == name]) * 1e3
        out[f"p50_{name}_ms"] = float(np.percentile(sub, 50))
    return out


def run(n: int, client_counts) -> dict:
    root, columns = _build_root(n)
    workload = _workload(columns)
    results: dict[str, dict] = {"shared": {}, "pool_per_query": {}}
    checks: dict[str, bool] = {"responses_correct": True}
    try:
        for mode, shared in (("shared", True), ("pool_per_query", False)):
            for n_clients in client_counts:
                server = TableServer(
                    root, workers=WORKERS, max_inflight=None,
                    queue_depth=None, shared=shared).start()
                try:
                    _drive(server, 1, workload)  # warm cache + threads
                    entry = _drive(server, n_clients, workload)
                    entry["server"] = {
                        k: server.stats()[k]
                        for k in ("queries_ok", "rejected_busy")}
                    entry["cache_hit_rate"] = \
                        server.stats()["cache"]["hit_rate"]
                finally:
                    server.shutdown()
                if entry["errors"]:
                    checks["responses_correct"] = False
                results[mode][str(n_clients)] = entry
    finally:
        shutil.rmtree(root, ignore_errors=True)

    for n_clients in client_counts:
        if n_clients >= 8:
            shared_qps = results["shared"][str(n_clients)]["qps"]
            pool_qps = results["pool_per_query"][str(n_clients)]["qps"]
            checks[f"shared_beats_pool_at_{n_clients}_clients"] = \
                bool(shared_qps > pool_qps)

    rows = []
    for mode in results:
        for n_clients in client_counts:
            e = results[mode][str(n_clients)]
            rows.append([
                mode, f"{n_clients}", f"{e['requests']}",
                f"{e['qps']:.1f}", f"{e['p50_ms']:.1f}",
                f"{e['p99_ms']:.1f}", f"{e['p50_selective_ms']:.1f}",
                f"{e['p50_fullscan_ms']:.1f}",
                f"{len(e['errors'])}"])
    emit(render_table(
        ["mode", "clients", "reqs", "QPS", "p50 ms", "p99 ms",
         "p50 sel", "p50 full", "errs"], rows))
    emit("checks: " + ", ".join(f"{k}={v}" for k, v in checks.items()))
    return {"n": n, "workers": WORKERS,
            "requests_per_client": REQUESTS_PER_CLIENT,
            "client_counts": list(client_counts),
            "modes": results, "checks": checks}


def render_table(header, rows) -> str:
    widths = [max(len(str(r[i])) for r in [header] + rows)
              for i in range(len(header))]
    lines = ["  ".join(f"{str(c):>{w}}" for c, w in zip(r, widths))
             for r in [header] + rows]
    lines.insert(1, "  ".join("-" * w for w in widths))
    return "\n".join(lines)


def main(argv=None) -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--json", default="BENCH_serve.json")
    args = parser.parse_args(argv)
    n = QUICK_N if args.quick else FULL_N
    client_counts = CLIENTS_QUICK if args.quick else CLIENTS_FULL
    emit(headline(
        "Serving-layer benchmark",
        f"shared morsel scheduler vs pool-per-query, n={n}, "
        f"clients {client_counts}, {REQUESTS_PER_CLIENT} requests each "
        f"(0.5% selective + full-scan aggregate mix)"))
    payload = run(n, client_counts)
    with open(args.json, "w") as fh:
        json.dump(payload, fh, indent=2)
    emit(f"\nwrote {args.json}")
    failed = [name for name, ok in payload["checks"].items() if not ok]
    if failed:  # the CI smoke step must go red, not just record it
        raise SystemExit(f"serve bench checks failed: {', '.join(failed)}")


if __name__ == "__main__":
    main()
