"""Figure 10 — the main integer microbenchmark.

Twelve datasets x {rANS, FOR, Elias-Fano, Delta-fix, Delta-var, LeCo-fix,
LeCo-var}: compression ratio (with the model-size share), random-access
latency, and full-decompression throughput.  Elias-Fano is skipped on the
unsorted sets (poisson, movieid), as in the paper; rANS runs on a reduced
slice because its Python decode is strictly sequential.
"""

import sys

from repro.baselines import EliasFanoCodec, RansCodec, standard_codecs
from repro.bench import measure_codec, render_table
from repro.datasets import FIG10_DATASETS, load

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, BENCH_N, BENCH_PROBES, headline

_RANS_N = min(BENCH_N, 8000)


def collect(n: int = BENCH_N):
    rows = []
    for name in FIG10_DATASETS:
        ds = load(name, n=n)
        for codec in standard_codecs(include_rans=False):
            rows.append(measure_codec(codec, ds, n_random=BENCH_PROBES,
                                      repeats=1))
        if ds.sorted:
            rows.append(measure_codec(EliasFanoCodec(), ds,
                                      n_random=BENCH_PROBES, repeats=1))
        rows.append(measure_codec(RansCodec(), load(name, n=_RANS_N),
                                  n_random=10, repeats=1))
    return rows


def run_experiment(n: int = BENCH_N) -> str:
    measurements = collect(n)
    by_ds: dict[str, list] = {}
    for m in measurements:
        by_ds.setdefault(m.dataset, []).append(m)
    table_rows = []
    for name in FIG10_DATASETS:
        for m in by_ds[name]:
            table_rows.append([
                name, m.codec, f"{m.compression_ratio:.1%}",
                f"{m.model_ratio:.2%}", f"{m.random_access_ns:.0f}",
                f"{m.decode_gbps:.3f}", f"{m.compress_gbps:.4f}",
            ])
    return headline(
        "Figure 10: compression microbenchmark",
        "ratio (model share) / random access / decode and compress "
        "throughput on the twelve integer datasets",
    ) + render_table(
        ["dataset", "codec", "ratio", "model", "RA ns", "dec GB/s",
         "enc GB/s"], table_rows)


def test_fig10_micro(benchmark):
    """Representative kernel: LeCo-fix encode+decode on booksale."""
    from repro.baselines import LecoCodec

    ds = load("booksale", n=min(BENCH_N, 20_000))

    def kernel():
        enc = LecoCodec("linear", partitioner="fixed").encode(ds.values)
        enc.decode_all()
        return enc

    benchmark.pedantic(kernel, rounds=1, iterations=1)
    emit(run_experiment())


if __name__ == "__main__":
    emit(run_experiment())
