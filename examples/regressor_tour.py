"""A tour of LeCo's regressors and the Hyperparameter-Advisor (paper §3.1, §4.4).

Fits each model family to data it should excel at, shows the residual
bit-widths that drive the compressed size, and lets the CART-based
Regressor Selector pick models automatically — including a domain-extended
sine model on the paper's ``cosmos`` signal.

Run:  python examples/regressor_tour.py
"""

import numpy as np

from repro import compress
from repro.core.advisor import RegressorSelector, optimal_regressor_name
from repro.core.regressors import SinusoidalRegressor, get_regressor
from repro.datasets import load

rng = np.random.default_rng(0)
x = np.arange(4000, dtype=np.float64)

candidates = {
    "linear ramp": (5_000 + 13 * x + rng.normal(0, 4, 4000)),
    "quadratic": (0.4 * x ** 2 + rng.normal(0, 4, 4000)),
    "exponential": (50 * np.exp(0.002 * x) + rng.normal(0, 4, 4000)),
    "logarithmic": (20_000 * np.log1p(x) + rng.normal(0, 4, 4000)),
}

selector = RegressorSelector()
print(f"{'data':>12}  {'recommended':>12}  {'optimal':>12}  "
      f"{'lin bits':>8}  {'best bits':>9}")
for name, series in candidates.items():
    values = np.round(series).astype(np.int64)
    recommended = selector.recommend_name(values)
    optimal = optimal_regressor_name(values)
    lin_bits = get_regressor("linear").delta_bits(values)
    best_bits = get_regressor(optimal).delta_bits(values)
    print(f"{name:>12}  {recommended:>12}  {optimal:>12}  "
          f"{lin_bits:>8}  {best_bits:>9}")

print("\nresidual bit-width = bits per value in the delta array, so every "
      "bit the right model saves is ~n bits of compressed size.")

# Domain knowledge: the cosmos signal is two sine carriers (paper Fig. 12).
cosmos = load("cosmos", n=20_000)
raw = cosmos.uncompressed_bytes
linear_arr = compress(cosmos.values, mode="fix")
print(f"\ncosmos with linear models: "
      f"{linear_arr.compressed_size_bytes() / raw:.1%}")

from repro.core.encoding import LecoEncoder

freqs = np.array([1.0 / (60 * np.pi), 3.0 / (60 * np.pi)])
sine = LecoEncoder(SinusoidalRegressor(2, freqs=freqs),
                   partitioner=5000).encode(cosmos.values)
assert np.array_equal(sine.decode_all(), cosmos.values)
print(f"cosmos with 2 known sine terms: "
      f"{sine.compressed_size_bytes() / raw:.1%} (lossless)")
print("\nany linear combination of terms plugs into the framework — "
      "that is the extensibility argument of §4.4.")
