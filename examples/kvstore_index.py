"""Compressing LSM index blocks with LeCo (paper §5.2).

Builds a mini RocksDB-style store (4KB data blocks, pinned index blocks,
LRU block cache), loads it with key/value records, and compares Seek
throughput and index sizes between RocksDB's restart-interval delta codec
and LeCo's string extension.

Run:  python examples/kvstore_index.py
"""

from repro.kvstore import MiniLSM, make_records, skewed_seek_keys

N_RECORDS = 40_000
N_SEEKS = 4_000
CACHE = 256 << 10

print(f"loading {N_RECORDS:,} records (20B keys, 100B values)")
records = make_records(N_RECORDS, value_bytes=100)
keys = skewed_seek_keys(records, N_SEEKS)  # 80% of seeks hit 20% of keys

print(f"running {N_SEEKS:,} skewed Seek queries, cache={CACHE >> 10}KB\n")
print(f"{'config':>14}  {'index':>8}  {'kops/s':>7}  {'hit rate':>8}")
for label, codec, ri in [("baseline_1", "restart", 1),
                         ("baseline_16", "restart", 16),
                         ("baseline_128", "restart", 128),
                         ("leco", "leco", 1)]:
    db = MiniLSM(records, codec, restart_interval=ri,
                 table_records=20_000, cache_bytes=CACHE)
    # sanity: Seek returns the exact record for existing keys
    key, value = records[1234]
    assert db.seek(key) == (key, value)
    stats = db.run_seeks(keys)
    hit = stats.cache_hits / max(stats.cache_hits + stats.cache_misses, 1)
    print(f"{label:>14}  {db.index_bytes() / 1024:6.0f}KB  "
          f"{stats.throughput_mops * 1000:7.1f}  {hit:8.2f}")

raw = db.raw_index_bytes()
print(f"\nuncompressed index layout would be {raw / 1024:.0f}KB; "
      "LeCo compresses separator keys (string extension) and block "
      "handles (linear models) while keeping binary search random-access.")
