"""Columnar analytics on LeCo-encoded sensor data (paper §5.1).

The paper's motivating query: 10k sensors log (timestamp, id, reading);
analysts run highly selective filter-groupby-aggregation queries.  This
example writes the table into the Parquet-like columnar format under
different encodings and compares the full query pipeline — filter pushdown,
late-materialised groupby — including the simulated I/O bill.

Run:  python examples/sensor_analytics.py
"""

import numpy as np

from repro.datasets.synthetic import gen_ml
from repro.engine import ParquetLikeFile, run_filter_groupby_query

N = 80_000
rng = np.random.default_rng(7)

print("building sensor table:", N, "rows (ts, id, val)")
ids = (np.arange(N) // 100 % 10_000).astype(np.int64)     # clustered ids
vals = (np.arange(N) // 100) * 1000 + rng.integers(0, 1000, N)
table = {"ts": gen_ml(N), "id": ids, "val": vals.astype(np.int64)}

# a one-hour-style window: ~0.5% of the rows
ts = table["ts"]
lo, hi = int(ts[N // 2]), int(ts[N // 2 + N // 200])

print(f"\nquery: SELECT AVG(val) WHERE {lo} <= ts < {hi} GROUP BY id\n")
print(f"{'encoding':>8}  {'file':>9}  {'filter':>9}  {'groupby':>9}  "
      f"{'io':>8}  {'total':>9}")
reference = None
for encoding in ("dict", "delta", "for", "leco"):
    file = ParquetLikeFile.write(table, encoding, row_group_size=20_000,
                                 partition_size=1000)
    result = run_filter_groupby_query(file, lo, hi)
    if reference is None:
        reference = result.answer
    assert result.answer == reference, "encodings must agree"
    print(f"{encoding:>8}  {file.file_size_bytes() / 1e6:7.2f}MB  "
          f"{result.cpu_filter_s * 1e3:7.1f}ms  "
          f"{result.cpu_groupby_s * 1e3:7.1f}ms  "
          f"{result.io_s * 1e3:6.2f}ms  {result.total_s * 1e3:7.1f}ms")

groups = len(reference)
print(f"\nanswer: {groups} sensor groups; e.g. "
      f"{dict(list(sorted(reference.items()))[:3])}")
print("\nLeCo gets the dictionary-free file size of Delta with the "
      "random-access groupby speed of FOR — the paper's §5.1 result.")
