"""Quickstart: the unified codec registry, LeCo first.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import CodecSpec, codecs, compress, decompress

# A typical "serial correlated" column: event timestamps with jitter.
rng = np.random.default_rng(42)
timestamps = 1_700_000_000 + np.cumsum(rng.poisson(40, 100_000))

# ---------------------------------------------------------------- registry
# Every scheme the paper evaluates is reachable through one registry.
print("registered codecs:", ", ".join(codecs.available()))

# Construct a codec by name; encode returns the vectorised sequence
# protocol: gather / decode_range / decode_all / size_bytes / to_bytes.
leco = codecs.get("leco")
seq = leco.encode(timestamps)

raw_bytes = timestamps.nbytes
print(f"\nrows:              {len(seq):,}")
print(f"raw size:          {raw_bytes:,} bytes")
print(f"compressed size:   {seq.size_bytes():,} bytes "
      f"({seq.size_bytes() / raw_bytes:.1%})")

# Batch random access is the first-class path: one vectorised gather.
positions = rng.integers(0, len(timestamps), 10_000)
assert np.array_equal(seq.gather(positions), timestamps[positions])
print(f"gather(10k probes) matches; scalar seq[12345] = {seq[12345]}")

# Range decode touches only the partitions covering [lo, hi).
assert np.array_equal(seq.decode_range(500, 600), timestamps[500:600])

# ---------------------------------------------------------------- envelope
# to_bytes() writes a self-describing envelope (magic + codec id +
# version + payload): from_bytes revives it without knowing the scheme.
blob = seq.to_bytes()
revived = codecs.from_bytes(blob)
assert np.array_equal(revived.decode_all(), timestamps)
print(f"\nenvelope:          {len(blob):,} bytes, round trip OK")

# The same call revives any registered codec's blob.
delta_blob = codecs.get("delta").encode(timestamps).to_bytes()
assert np.array_equal(codecs.from_bytes(delta_blob).decode_all(),
                      timestamps)

# Capability flags drive generic consumers (engine, benchmarks, tests).
info = codecs.info("delta")
print(f"delta: sequential_access={info.sequential_access}, "
      f"pruning={info.supports_range_pruning}")

# ---------------------------------------------------------------- CodecSpec
# Configuration travels as one CodecSpec instead of loose kwargs; the
# classic compress/decompress shims accept it (and the legacy keywords).
spec = CodecSpec(mode="var", regressor="auto", tau=0.05)
arr = compress(timestamps, spec)
print(f"\nvariable+auto:     {arr.compressed_size_bytes():,} bytes "
      f"({len(arr.partitions)} partitions)")
assert np.array_equal(decompress(arr), timestamps)

# Strings go through the same registry (LeCo §3.4 and FSST).
urls = [f"https://example.com/item/{i:07d}".encode() for i in range(2000)]
for name in ("leco-str", "fsst"):
    s = codecs.get(name).encode(urls)
    assert codecs.from_bytes(s.to_bytes()).decode_all() == urls
    print(f"{name:9s} strings:  {s.size_bytes():,} bytes "
          f"(raw {sum(len(u) for u in urls):,})")
