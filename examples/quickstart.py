"""Quickstart: compress an integer column with LeCo.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import compress, decompress

# A typical "serial correlated" column: event timestamps with jitter.
rng = np.random.default_rng(42)
timestamps = 1_700_000_000 + np.cumsum(rng.poisson(40, 100_000))

# One call compresses: fit models per partition, bit-pack the residuals.
arr = compress(timestamps, mode="fix")

raw_bytes = timestamps.nbytes
print(f"rows:              {len(arr):,}")
print(f"raw size:          {raw_bytes:,} bytes")
print(f"compressed size:   {arr.compressed_size_bytes():,} bytes "
      f"({arr.compressed_size_bytes() / raw_bytes:.1%})")
print(f"model share:       {arr.model_size_bytes():,} bytes")
print(f"partitions:        {len(arr.partitions)}")

# Random access decodes one value without touching the rest of the column.
print(f"\ntimestamps[12345]  = {timestamps[12345]}")
print(f"arr[12345]         = {arr[12345]}")
assert arr[12345] == timestamps[12345]

# Range decode and full decode are exact.
assert np.array_equal(arr.decode_range(500, 600), timestamps[500:600])
assert np.array_equal(decompress(arr), timestamps)

# The format is self-describing: serialise, ship, reload.
blob = arr.to_bytes()
assert np.array_equal(decompress(blob), timestamps)
print(f"\nserialised format: {len(blob):,} bytes, round trip OK")

# Variable-length partitioning squeezes harder on irregular data.
var = compress(timestamps, mode="var", tau=0.05)
print(f"variable-length:   {var.compressed_size_bytes():,} bytes "
      f"({len(var.partitions)} partitions)")
