"""Compressing string columns: LeCo's extension vs FSST (paper §3.4, §4.7).

Order-preserving string-to-integer mapping with common-prefix extraction,
character-set shrinking, and adaptive padding — versus the dictionary-based
FSST baseline — on email / hex / word shaped data.

Run:  python examples/string_columns.py
"""

import time

import numpy as np

from repro.baselines import FSSTCodec
from repro.core.strings import StringCompressor
from repro.datasets import load_strings

rng = np.random.default_rng(0)

print(f"{'dataset':>7}  {'codec':>14}  {'ratio':>6}  {'RA us':>6}")
for name in ("email", "hex", "word"):
    data = load_strings(name, 6000)
    raw = sum(len(s) for s in data)
    configs = [
        ("leco(pow2)", StringCompressor(128, power_of_two_base=True)),
        ("leco(tight)", StringCompressor(128, power_of_two_base=False)),
        ("fsst(b=0)", FSSTCodec(offset_block=0)),
        ("fsst(b=100)", FSSTCodec(offset_block=100)),
    ]
    for label, codec in configs:
        enc = codec.encode(data)
        assert enc.decode_all() == data, label   # lossless, order intact
        probes = rng.integers(0, len(data), 300)
        start = time.perf_counter()
        for pos in probes:
            enc.get(int(pos))
        ra_us = (time.perf_counter() - start) / len(probes) * 1e6
        ratio = enc.compressed_size_bytes() / raw
        print(f"{name:>7}  {label:>14}  {ratio:6.1%}  {ra_us:6.1f}")

print("\nLeCo leverages serial order (sorted keys map to near-linear "
      "integers); FSST leverages substring repetition — which is why FSST "
      "wins on human-readable words and LeCo on machine-generated keys.")
