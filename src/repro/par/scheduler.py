"""`ProcessScheduler`: the morsel scheduler's multiprocessing tier.

Same interface, same admission control, same policies — the only thing
that changes is *where a granule's CPU burns*.  The scheduler keeps the
base class's worker threads, but each thread owns a **lane**: one
long-lived worker process plus a duplex pipe.  A descriptor-bearing job
(see :mod:`repro.par.descriptor`) is executed by sending the lane's
worker a compact ``(seq, desc_id, desc?, granule_index)`` task and
waiting for the partial to come back; pure-python codec decode then
runs under the *worker's* GIL, N of them truly in parallel.  Jobs with
no descriptor (in-memory sources) simply run the driver closure on the
lane thread — thread-tier semantics, transparently.

Death is a first-class event, not a hang: the lane thread polls with a
short timeout and watches ``Process.is_alive()``.  A dead worker's
in-flight granule is retried **once** on a freshly respawned worker;
dying again surfaces a typed :class:`~repro.exec.errors.GranuleError`
through the ordinary first-failure-cancels-the-job machinery.  Query
cancellation (deadline, sibling failure) *abandons* the wait instead —
the worker finishes its granule into the pipe, and stale results are
discarded by sequence number on the lane's next dispatch.

The driver keeps everything else: merge, ``ExecStats`` accounting,
deadlines, metrics (plus the per-worker ``repro_par_*`` families this
module adds).
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
import time

from repro.exec.errors import GranuleError
from repro.exec.pool import MorselScheduler, _Job
from repro.obs import metrics as obs_metrics
from repro.par.worker import revive_error, worker_main

__all__ = ["ProcessScheduler", "default_start_method"]

#: env var overriding the default multiprocessing start method
START_METHOD_ENV = "REPRO_PAR_START_METHOD"

#: seconds between liveness/cancel checks while a lane waits on its pipe
POLL_INTERVAL_S = 0.05

#: 1-in-N sampling for the per-granule lane-health histograms
#: (roundtrip, dispatch wait).  Granules can be microseconds; two
#: histogram observes per granule is real overhead against the obs
#: budget, and latency quantiles survive sampling just fine
OBS_SAMPLE = 4

_M_WORKERS = obs_metrics.gauge(
    "repro_par_workers", "live worker processes per process scheduler",
    labels=("sched",))
_M_GRANULES = obs_metrics.counter(
    "repro_par_granules_total",
    "granules dispatched to worker processes by outcome "
    "(ok/error/retried/abandoned)",
    labels=("sched", "outcome"))
_M_RESPAWNS = obs_metrics.counter(
    "repro_par_respawns_total",
    "worker processes respawned after an unexpected death",
    labels=("sched",))
_M_BYTES = obs_metrics.counter(
    "repro_par_bytes_total",
    "bytes crossing worker pipes (descriptors+tasks sent, "
    "partials received)",
    labels=("sched", "direction"))
_M_ROUNDTRIP = obs_metrics.histogram(
    "repro_par_pipe_roundtrip_seconds",
    "task send to result receive per granule, per lane pipe",
    labels=("sched",))
_M_DISPATCH_WAIT = obs_metrics.histogram(
    "repro_par_dispatch_wait_seconds",
    "time a granule sat queued before a lane picked it up",
    labels=("sched",))
_M_NEEDDESC = obs_metrics.counter(
    "repro_par_needdesc_total",
    "descriptor resends after a worker-side pipeline-LRU eviction",
    labels=("sched",))


def default_start_method() -> str:
    """``REPRO_PAR_START_METHOD`` if set, else ``fork`` where the
    platform offers it (cheapest: workers inherit imports and the
    installed fault injector), else ``spawn``."""
    env = os.environ.get(START_METHOD_ENV)
    if env:
        return env
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class _LaneDead(Exception):
    """Internal: the lane's worker process died mid-conversation."""

    def __init__(self, exitcode):
        super().__init__(f"worker exitcode {exitcode}")
        self.exitcode = exitcode


class _WireDescriptor:
    """A query descriptor prepared for the pipe: stable id + JSON."""

    __slots__ = ("desc_id", "payload")

    def __init__(self, desc_id: int, payload: dict):
        self.desc_id = desc_id
        self.payload = payload


class _Lane:
    """One worker process + pipe, owned by exactly one lane thread."""

    __slots__ = ("ctx", "name", "index", "fault_spec", "proc", "conn",
                 "seq", "sent_descs", "pid", "tid", "epoch0")

    def __init__(self, ctx, name: str, index: int,
                 fault_spec: dict | None):
        self.ctx = ctx
        self.name = name
        self.index = index
        self.fault_spec = fault_spec
        self.proc = None
        self.conn = None
        self.seq = 0
        self.sent_descs: set[int] = set()
        # filled in by the worker's hello envelope: its real pid and
        # main-thread id, and its wall-clock value at
        # perf_counter()==0 — the anchor that re-maps worker span
        # timestamps onto a driver trace
        self.pid: int | None = None
        self.tid: int = 0
        self.epoch0: float | None = None
        self.start()

    def start(self) -> None:
        parent_conn, child_conn = self.ctx.Pipe(duplex=True)
        proc = self.ctx.Process(
            target=worker_main,
            # the obs kill switch rides the ctor spec like fault_spec
            # does — spawn-started workers inherit no module globals
            args=(child_conn, self.fault_spec, obs_metrics.enabled()),
            name=self.name, daemon=True)
        proc.start()
        child_conn.close()  # the worker holds the only live child end
        self.proc = proc
        self.conn = parent_conn
        self.sent_descs = set()  # a fresh worker has no cached pipelines
        self.pid = None          # re-learned from the next hello
        self.tid = 0
        self.epoch0 = None

    def exitcode(self):
        if self.proc is None:
            return None
        self.proc.join(timeout=0.2)  # reap so the exitcode is visible
        return self.proc.exitcode

    def shutdown(self, timeout: float = 2.0) -> None:
        if self.conn is not None:
            try:
                self.conn.send_bytes(pickle.dumps(("exit",)))
            except (BrokenPipeError, OSError, ValueError):
                pass
        if self.proc is not None:
            self.proc.join(timeout=timeout)
            if self.proc.is_alive():
                self.proc.terminate()
                self.proc.join(timeout=timeout)
            if self.proc.is_alive():
                self.proc.kill()
                self.proc.join(timeout=timeout)
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:
                pass
        self.conn = None


class ProcessScheduler(MorselScheduler):
    """A :class:`MorselScheduler` whose granules run in worker processes.

    Parameters beyond the base class:

    start_method:
        ``"fork"`` / ``"spawn"`` / ``"forkserver"``; ``None`` picks
        :func:`default_start_method`.  ``fork`` is cheapest and shares
        the parent's imports; ``spawn`` is the portable/cautious choice
        (and what macOS and Windows force).
    fault_spec:
        A :meth:`repro.faults.FaultInjector.to_spec` dict installed in
        every worker — how the crash matrix arms ``granule.exec`` rules
        under ``spawn``, where workers inherit nothing.
    """

    tier = "process"
    wants_descriptors = True

    def __init__(self, workers: int | None = None, policy: str = "fair",
                 max_inflight: int | None = None,
                 queue_depth: int | None = None,
                 name: str = "process-scheduler",
                 start_method: str | None = None,
                 fault_spec: dict | None = None):
        if start_method is None:
            start_method = default_start_method()
        if start_method not in multiprocessing.get_all_start_methods():
            raise ValueError(
                f"start_method {start_method!r} unavailable here; "
                f"supported: "
                f"{', '.join(multiprocessing.get_all_start_methods())}")
        self.start_method = start_method
        self._ctx = multiprocessing.get_context(start_method)
        self._fault_spec = fault_spec
        self._desc_ids = itertools.count(1)
        self._terminating = False
        self.respawns = 0
        self._m_workers = _M_WORKERS.labels(sched=name)
        self._m_ok = _M_GRANULES.labels(sched=name, outcome="ok")
        self._m_error = _M_GRANULES.labels(sched=name, outcome="error")
        self._m_retried = _M_GRANULES.labels(sched=name,
                                             outcome="retried")
        self._m_abandoned = _M_GRANULES.labels(sched=name,
                                               outcome="abandoned")
        self._m_respawns = _M_RESPAWNS.labels(sched=name)
        self._m_sent = _M_BYTES.labels(sched=name, direction="sent")
        self._m_received = _M_BYTES.labels(sched=name,
                                           direction="received")
        self._m_roundtrip = _M_ROUNDTRIP.labels(sched=name)
        self._m_dispatch_wait = _M_DISPATCH_WAIT.labels(sched=name)
        self._m_needdesc = _M_NEEDDESC.labels(sched=name)
        self._obs_tick = 0
        # build lanes BEFORE the base class starts its threads: forking
        # a process that is not yet multi-threaded sidesteps the whole
        # fork-with-held-locks class of bugs for the children
        resolved = workers
        if resolved is None:
            from repro.exec.pool import MAX_AUTO_WORKERS

            resolved = max(1, min(os.cpu_count() or 1, MAX_AUTO_WORKERS))
        if resolved < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        self._lanes = [
            _Lane(self._ctx, f"{name}-worker-{i}", i, fault_spec)
            for i in range(resolved)]
        self._m_workers.set(len(self._lanes))
        try:
            super().__init__(workers=resolved, policy=policy,
                             max_inflight=max_inflight,
                             queue_depth=queue_depth, name=name)
        except BaseException:
            for lane in self._lanes:
                lane.shutdown(timeout=0.5)
            self._m_workers.set(0)
            raise

    # -------------------------------------------------------- run_query
    def run_query(self, fn, items, cancel, deadline=None, trace=None,
                  descriptor=None) -> list:
        if descriptor is not None and \
                not isinstance(descriptor, _WireDescriptor):
            descriptor = _WireDescriptor(next(self._desc_ids),
                                         descriptor.to_json())
        return super().run_query(fn, items, cancel, deadline,
                                 trace=trace, descriptor=descriptor)

    # ------------------------------------------------------- lane logic
    def _run_item(self, worker_idx: int, job: _Job, item):
        wire = job.descriptor
        if wire is None:
            # no descriptor (in-memory source): thread-tier fallback
            return job.fn(item)
        lane = self._lanes[worker_idx]
        # racy tick is fine: approximate 1-in-OBS_SAMPLE is the goal
        self._obs_tick += 1
        if self._obs_tick % OBS_SAMPLE == 0:
            self._m_dispatch_wait.observe(
                max(0.0, time.perf_counter() - job.t_enqueued))
        attempt = 0
        while True:
            try:
                return self._dispatch(lane, job, wire, item)
            except _LaneDead as dead:
                self._respawn(lane)
                attempt += 1
                if attempt >= 2:
                    self._m_error.inc()
                    raise GranuleError(
                        RuntimeError(
                            f"worker process died twice running this "
                            f"granule (last exitcode {dead.exitcode})"),
                        granule=getattr(item, "index", -1)) from None
                self._m_retried.inc()

    def _respawn(self, lane: _Lane) -> None:
        if self._terminating:
            return
        try:
            lane.conn.close()
        except (OSError, AttributeError):
            pass
        if lane.proc is not None:
            lane.proc.join(timeout=1.0)
        lane.start()
        self.respawns += 1
        self._m_respawns.inc()

    def _dispatch(self, lane: _Lane, job: _Job, wire: _WireDescriptor,
                  item):
        for _ in range(2):
            result = self._dispatch_once(lane, job, wire, item)
            if result is not _NEED_DESC:
                return result
            # the worker's pipeline LRU evicted this descriptor (many
            # concurrent queries on one lane): resend it with the
            # granule — one extra round-trip, never a failed query
            self._m_needdesc.inc()
            lane.sent_descs.discard(wire.desc_id)
        raise GranuleError(
            RuntimeError("worker kept requesting a descriptor that "
                         "was just resent"),
            granule=getattr(item, "index", -1))

    def _dispatch_once(self, lane: _Lane, job: _Job,
                       wire: _WireDescriptor, item):
        if lane.conn is None or lane.proc is None or \
                not lane.proc.is_alive():
            raise _LaneDead(lane.exitcode())
        lane.seq += 1
        seq = lane.seq
        desc_json = None if wire.desc_id in lane.sent_descs \
            else wire.payload
        message = pickle.dumps(
            ("task", seq, wire.desc_id, desc_json,
             getattr(item, "index", item)),
            protocol=pickle.HIGHEST_PROTOCOL)
        try:
            lane.conn.send_bytes(message)
        except (BrokenPipeError, OSError, ValueError):
            raise _LaneDead(lane.exitcode()) from None
        lane.sent_descs.add(wire.desc_id)
        self._m_sent.inc(len(message))
        t_sent = time.perf_counter()
        while True:
            try:
                ready = lane.conn.poll(POLL_INTERVAL_S)
            except (AttributeError, BrokenPipeError, OSError):
                # AttributeError: close() tore the lane down under us
                raise _LaneDead(lane.exitcode()) from None
            if ready:
                result = self._receive(lane, seq, job, item)
                if result is not _PENDING:
                    if self._obs_tick % OBS_SAMPLE == 0:
                        self._m_roundtrip.observe(
                            time.perf_counter() - t_sent)
                    return result
                continue
            if not lane.proc.is_alive():
                # drain anything written just before death; the result
                # for our seq may have made it out
                try:
                    while lane.conn.poll(0):
                        result = self._receive(lane, seq, job, item)
                        if result is not _PENDING:
                            return result
                except (BrokenPipeError, OSError, EOFError):
                    pass
                raise _LaneDead(lane.exitcode())
            if self._terminating or job.cancel.is_set() or (
                    job.deadline is not None
                    and time.perf_counter() > job.deadline):
                # abandon: the worker finishes into the pipe; the stale
                # result is skipped by seq on this lane's next dispatch
                if job.deadline is not None and \
                        time.perf_counter() > job.deadline:
                    job.cancel.set()
                self._m_abandoned.inc()
                return None

    def _receive(self, lane: _Lane, seq: int, job: _Job | None, item):
        """One message off the lane pipe; ``_PENDING`` when it was a
        handshake, telemetry, or a stale (abandoned) result for an
        earlier seq.  Telemetry deltas are folded into the process-wide
        registry whatever envelope they rode in on — a stale result's
        worker activity still happened."""
        try:
            raw = lane.conn.recv_bytes()
        except (AttributeError, EOFError, OSError):
            raise _LaneDead(lane.exitcode()) from None
        status, rseq, payload, delta = pickle.loads(raw)
        if delta is not None:
            self._fold_telemetry(lane, delta)
        if status == "hello":
            lane.pid = payload["pid"]
            lane.tid = payload.get("tid", 0)
            lane.epoch0 = payload["epoch0"]
            return _PENDING
        if status == "telemetry" or rseq != seq:
            return _PENDING
        self._m_received.inc(len(raw))
        if status == "ok":
            self._m_ok.inc()
            self._adopt_spans(lane, job, payload, item)
            return payload
        if status == "needdesc":
            return _NEED_DESC
        self._m_error.inc()
        raise revive_error(payload, getattr(item, "index", -1))

    def _fold_telemetry(self, lane: _Lane, delta: dict) -> None:
        try:
            obs_metrics.default_registry().merge(
                delta, proc=f"w{lane.index}")
        except ValueError:
            # a conflicting family must not fail the query it rode
            # along with; the conformance tests keep both sides honest
            pass

    def _adopt_spans(self, lane: _Lane, job: _Job | None,
                     part, item) -> None:
        """Fold a worker partial's spans into the query trace.  The
        wire carries ``(granule_start, granule_end, extra_spans)`` —
        the "granule" span's attrs are resynthesized here from
        ``part.stats`` (the worker ships only its two timestamps; see
        :meth:`repro.par.worker.WorkerState.run_granule`)."""
        wire = getattr(part, "spans", None)
        if not wire:
            return
        part.spans = None
        if job is None or job.trace is None or lane.epoch0 is None:
            return
        shift = lane.epoch0 - job.trace.epoch
        pid = lane.pid or 0
        proc = f"w{lane.index}"
        g_start, g_end, extra = wire
        if g_start is not None:
            st = part.stats
            job.trace.adopt(
                [("granule", g_start, g_end, lane.tid,
                  {"granule": getattr(item, "index", item),
                   "pruned": bool(st.granules_pruned),
                   "cache_hits": st.cache_hits,
                   "cache_misses": st.cache_misses,
                   "rows": st.rows_scanned})],
                shift=shift, pid=pid, proc=proc)
        if extra:
            job.trace.adopt(extra, shift=shift, pid=pid, proc=proc)

    # ------------------------------------------------------------ stats
    def stats(self) -> dict:
        out = super().stats()
        out["start_method"] = self.start_method
        out["respawns"] = self.respawns
        out["workers_alive"] = sum(
            1 for lane in self._lanes
            if lane.proc is not None and lane.proc.is_alive())
        return out

    # -------------------------------------------------------- lifecycle
    def close(self, drain: bool = True, timeout: float | None = None
              ) -> None:
        super().close(drain, timeout)
        # after this point any lane death is teardown, not a failure
        self._terminating = True
        for lane in self._lanes:
            # ask the worker out, then drain everything it wrote until
            # the pipe goes EOF — idle flushes, stale abandoned
            # results, and the final telemetry it sends on exit
            try:
                lane.conn.send_bytes(pickle.dumps(("exit",)))
                while lane.conn.poll(1.0):
                    msg = pickle.loads(lane.conn.recv_bytes())
                    if len(msg) == 4 and msg[3] is not None:
                        self._fold_telemetry(lane, msg[3])
            except (EOFError, OSError, ValueError,
                    pickle.UnpicklingError, AttributeError):
                pass
            lane.shutdown()
        self._m_workers.set(0)


#: sentinel for "message consumed but not ours" in the receive loop
_PENDING = object()
#: sentinel for "worker evicted this descriptor; resend and retry"
_NEED_DESC = object()
