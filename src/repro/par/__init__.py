"""``repro.par`` — process-parallel granule execution.

The exec layer's morsel-driven design (PR 4) and the shared
:class:`~repro.exec.pool.MorselScheduler` (PR 7) made granules the unit
of scheduling; this package makes them the unit of *multiprocessing*.
Pure-python codec decode (LeCo residuals, rANS, fsst, varint blocks)
serializes under one GIL no matter how many threads run it —
``BENCH_serve.json`` showed QPS flat from 8 to 64 clients.  Shards are
mmap-able and snapshots immutable, so worker processes can open tables
read-only (page cache shared for free), be told *which* granule of
*which* pinned query to run via a compact JSON descriptor, and ship
back only partial results — the same order-independent merge contract
the driver already enforces.

Three pieces:

* :class:`~repro.par.descriptor.QueryDescriptor` /
  :func:`~repro.par.descriptor.describe_query` — the picklable,
  JSON-able wire form of one query (table path + pinned generation +
  the PR 7 plan/expr JSON, which carries the pushdown expression).
* :mod:`repro.par.worker` — the long-lived worker process: lazy mmap
  opens, cached :class:`~repro.exec.run.GranulePipeline` per
  descriptor, typed error envelopes, and the ``granule.exec`` fault
  hook that lets the crash matrix kill it for real.
* :class:`~repro.par.scheduler.ProcessScheduler` — a drop-in
  :class:`~repro.exec.pool.MorselScheduler` whose lanes dispatch to
  worker processes, with respawn + retry-once-then-
  :class:`~repro.exec.errors.GranuleError` death semantics.

Pass one to ``execute(..., scheduler=ProcessScheduler(...))``, point
the server at it with ``--worker-tier process``, or make it the
process-wide default via
``configure_shared_scheduler(tier="process")``.
"""

from repro.par.descriptor import (
    DESCRIPTOR_VERSION,
    QueryDescriptor,
    describe_query,
)
from repro.par.scheduler import ProcessScheduler, default_start_method
from repro.par.worker import WorkerState, worker_main

__all__ = [
    "DESCRIPTOR_VERSION",
    "ProcessScheduler",
    "QueryDescriptor",
    "WorkerState",
    "default_start_method",
    "describe_query",
    "worker_main",
]
