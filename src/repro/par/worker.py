"""The worker-process side of the process tier: loop, caches, errors.

:func:`worker_main` is the entry point of one long-lived worker.  It
speaks a tiny length-prefixed pickle protocol over its duplex pipe::

    ("task", seq, desc_id, desc_json | None, granule_index)   # driver →
    ("ok",  seq, _Partial)                                    # ← worker
    ("err", seq, error_envelope_dict)                         # ← worker
    ("needdesc", seq, None)                                   # ← worker
    ("ping", seq) / ("pong", seq)                             # liveness
    ("exit",)                                                 # driver →

``desc_json`` rides along only the first time a lane sees a descriptor
(and again after a respawn); afterwards ``desc_id`` alone names the
cached, already-validated :class:`~repro.exec.run.GranulePipeline`.
When enough concurrent queries thrash the pipeline LRU that a bare
``desc_id`` no longer resolves, the worker answers ``needdesc`` and
the driver re-dispatches the granule with the descriptor attached —
eviction costs one round-trip, never a wrong answer.
Tables are opened lazily, read-only, via mmap — the OS page cache is
shared between workers, so N workers do not read the bytes N times.

Exceptions cannot cross the pipe as-is (the exec error types take
keyword-only constructor context, which default pickling loses), so
:func:`encode_error` flattens them into plain dicts and
:func:`revive_error` rebuilds the *same* typed exception driver-side —
a worker-side :class:`~repro.exec.errors.CorruptChunkError` or
:class:`~repro.exec.errors.GranuleError` surfaces to callers exactly
like its in-process twin.

Fault injection: the loop fires the ``granule.exec`` hook before each
granule.  A ``crash`` rule there calls ``os._exit`` — the worker
*really* dies mid-granule, so the crash matrix exercises the driver's
true death-detection / respawn / retry path, not a simulation of it.
``fork``-started workers inherit the installed injector; spawned ones
receive a :meth:`~repro.faults.FaultInjector.to_spec` dict.
"""

from __future__ import annotations

import os
import pickle
import traceback
from collections import OrderedDict

from repro import faults
from repro.exec.errors import CorruptChunkError, GranuleError
from repro.exec.run import GranulePipeline, _Partial
from repro.faults import FaultInjector, SimulatedCrash
from repro.par.descriptor import QueryDescriptor

__all__ = ["CRASH_EXIT_CODE", "NeedDescriptor", "WorkerState",
           "encode_error", "revive_error", "worker_main"]

#: exit status of a worker killed by an injected ``granule.exec`` crash
CRASH_EXIT_CODE = 113

#: prepared pipelines kept per worker (descriptors are per-query, so
#: this bounds memory across many concurrent queries, LRU)
MAX_CACHED_PIPELINES = 16


class NeedDescriptor(Exception):
    """A bare ``desc_id`` no longer resolves (evicted from the pipeline
    LRU under many concurrent queries); the driver must resend it."""

    def __init__(self, desc_id: int):
        super().__init__(f"descriptor {desc_id} not cached")
        self.desc_id = desc_id


# ----------------------------------------------------------- error wire
def encode_error(err: BaseException) -> dict:
    """Flatten an exception into a picklable/JSON-able envelope."""
    if isinstance(err, GranuleError):
        return {
            "kind": "granule",
            "message": str(err),
            "granule": err.granule,
            "shard": err.shard,
            "column": err.column,
            "cause": encode_error(err.cause),
        }
    if isinstance(err, CorruptChunkError):
        return {
            "kind": "corrupt",
            "message": str(err),
            "file": err.file,
            "column": err.column,
            "row_start": err.row_start,
            "n_rows": err.n_rows,
        }
    return {
        "kind": "other",
        "type": type(err).__name__,
        "message": str(err),
        "traceback": "".join(traceback.format_exception(err))[-2000:],
    }


def revive_error(info: dict, granule_index: int) -> BaseException:
    """Rebuild the typed exception a worker shipped as an envelope.

    The exec error types carry keyword-only context appended into their
    message by ``__init__``; reviving through ``__new__`` + attribute
    assignment preserves the worker's exact message without
    double-rendering that suffix.
    """
    kind = info.get("kind")
    if kind == "corrupt":
        err = CorruptChunkError.__new__(CorruptChunkError)
        ValueError.__init__(err, info["message"])
        err.file = info.get("file")
        err.column = info.get("column")
        err.row_start = info.get("row_start")
        err.n_rows = info.get("n_rows")
        return err
    if kind == "granule":
        gerr = GranuleError.__new__(GranuleError)
        RuntimeError.__init__(gerr, info["message"])
        gerr.granule = info.get("granule", granule_index)
        gerr.shard = info.get("shard")
        gerr.column = info.get("column")
        gerr.cause = revive_error(info.get("cause") or {}, granule_index)
        gerr.__cause__ = gerr.cause
        return gerr
    # protocol-level worker failures (generation drift, bad descriptor,
    # unexpected exceptions outside the pipeline) arrive typed too
    cause = RuntimeError(
        f"{info.get('type', 'Error')}: {info.get('message', '')}")
    return GranuleError(cause, granule=granule_index)


# -------------------------------------------------------- worker caches
class WorkerState:
    """Per-process lazy caches: open tables and prepared pipelines."""

    def __init__(self, max_pipelines: int = MAX_CACHED_PIPELINES):
        self.max_pipelines = max_pipelines
        self._sources: dict[tuple, object] = {}
        self._pipelines: OrderedDict[int, tuple] = OrderedDict()

    def _source_for(self, desc: QueryDescriptor):
        key = (desc.table_path, desc.version, desc.verify_checksums,
               desc.cache_bytes)
        source = self._sources.get(key)
        if source is None:
            from repro.store.executor import StoreSource
            from repro.store.table import Table

            table = Table.open(desc.table_path, version=desc.version,
                               verify_checksums=desc.verify_checksums,
                               cache_bytes=desc.cache_bytes)
            source = StoreSource(table)
            self._sources[key] = source
        return source

    def pipeline_for(self, desc_id: int, desc: QueryDescriptor | None):
        """The prepared (pipeline, source) for ``desc_id``, building it
        from ``desc`` on first sight.  A miss with ``desc=None`` raises
        :class:`NeedDescriptor` — the driver thinks this lane has the
        pipeline but the LRU evicted it, so ask for a resend."""
        entry = self._pipelines.get(desc_id)
        if entry is not None:
            self._pipelines.move_to_end(desc_id)
            return entry
        if desc is None:
            raise NeedDescriptor(desc_id)
        source = self._source_for(desc)
        if source.n_rows != desc.n_rows or \
                len(source.granules()) != desc.n_granules:
            raise RuntimeError(
                f"generation drift: descriptor pinned "
                f"{desc.table_path!r} version={desc.version} with "
                f"{desc.n_rows} rows / {desc.n_granules} granules, "
                f"worker opened {source.n_rows} rows / "
                f"{len(source.granules())} granules")
        pipeline = GranulePipeline(
            desc.build_plan(), source, prune=desc.prune,
            pushdown=desc.pushdown, on_corruption=desc.on_corruption,
            io_retries=desc.io_retries)
        self._pipelines[desc_id] = entry = (pipeline, source)
        while len(self._pipelines) > self.max_pipelines:
            self._pipelines.popitem(last=False)
        return entry

    def run_granule(self, desc_id: int, desc: QueryDescriptor | None,
                    granule_index: int) -> _Partial | None:
        pipeline, source = self.pipeline_for(desc_id, desc)
        granules = source.granules()
        if not 0 <= granule_index < len(granules):
            raise RuntimeError(
                f"granule index {granule_index} out of range "
                f"(worker sees {len(granules)} granules)")
        # the crash-matrix hook: a crash rule here kills the *process*
        faults.fire("granule.exec", granule=granule_index,
                    table=os.path.basename(
                        getattr(source.table, "path", "")))
        return pipeline.run(granules[granule_index])


# ----------------------------------------------------------- main loop
def worker_main(conn, fault_spec: dict | None = None) -> None:
    """Run one worker process until ``("exit",)`` or pipe EOF."""
    if fault_spec is not None and faults.active() is None:
        faults.install(FaultInjector.from_spec(fault_spec))
    state = WorkerState()
    while True:
        try:
            raw = conn.recv_bytes()
        except (EOFError, OSError):
            break
        request = pickle.loads(raw)
        op = request[0]
        if op == "exit":
            break
        if op == "ping":
            conn.send_bytes(pickle.dumps(("pong", request[1])))
            continue
        _, seq, desc_id, desc_json, granule_index = request
        try:
            desc = None if desc_json is None else \
                QueryDescriptor.from_json(desc_json)
            part = state.run_granule(desc_id, desc, granule_index)
            response = ("ok", seq, part)
        except SimulatedCrash:
            # die for real: no reply, no cleanup — the driver's poll
            # loop must notice the corpse and respawn the lane
            os._exit(CRASH_EXIT_CODE)
        except NeedDescriptor:
            response = ("needdesc", seq, None)
        except BaseException as err:  # noqa: BLE001 — everything ships back
            response = ("err", seq, encode_error(err))
        try:
            payload = pickle.dumps(response,
                                   protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as err:  # unpicklable partial: report, not hang
            payload = pickle.dumps(("err", seq, encode_error(err)))
        try:
            conn.send_bytes(payload)
        except (BrokenPipeError, OSError):
            break
    try:
        conn.close()
    except OSError:
        pass
