"""The worker-process side of the process tier: loop, caches, errors.

:func:`worker_main` is the entry point of one long-lived worker.  It
speaks a tiny length-prefixed pickle protocol over its duplex pipe::

    ("task", seq, desc_id, desc_json | None, granule_index)   # driver →
    ("ok",  seq, _Partial, delta | None)                      # ← worker
    ("err", seq, error_envelope_dict, delta | None)           # ← worker
    ("needdesc", seq, None, delta | None)                     # ← worker
    ("hello", 0, {"pid", "epoch0"}, None)                     # ← worker
    ("telemetry", 0, None, delta)                             # ← worker
    ("ping", seq) / ("pong", seq, None, delta | None)         # liveness
    ("exit",)                                                 # driver →

Every worker → driver envelope carries an optional *telemetry delta* —
a :func:`repro.obs.metrics.snapshot_delta` of the worker's own metrics
registry since the last envelope — which the driver folds into the
process-wide registry under the lane's ``proc`` label.  ``hello`` is
sent once at startup (and after every respawn) and carries the
worker's pid plus its wall-clock epoch at ``perf_counter() == 0``, the
anchor the driver uses to re-map worker span timestamps onto a query
trace.  When the pipe stays quiet for :data:`IDLE_FLUSH_S`, the worker
pushes an unsolicited ``telemetry`` envelope so gauges and background
activity reach ``/metrics`` without query traffic.

``desc_json`` rides along only the first time a lane sees a descriptor
(and again after a respawn); afterwards ``desc_id`` alone names the
cached, already-validated :class:`~repro.exec.run.GranulePipeline`.
When enough concurrent queries thrash the pipeline LRU that a bare
``desc_id`` no longer resolves, the worker answers ``needdesc`` and
the driver re-dispatches the granule with the descriptor attached —
eviction costs one round-trip, never a wrong answer.
Tables are opened lazily, read-only, via mmap — the OS page cache is
shared between workers, so N workers do not read the bytes N times.

Exceptions cannot cross the pipe as-is (the exec error types take
keyword-only constructor context, which default pickling loses), so
:func:`encode_error` flattens them into plain dicts and
:func:`revive_error` rebuilds the *same* typed exception driver-side —
a worker-side :class:`~repro.exec.errors.CorruptChunkError` or
:class:`~repro.exec.errors.GranuleError` surfaces to callers exactly
like its in-process twin.

Fault injection: the loop fires the ``granule.exec`` hook before each
granule.  A ``crash`` rule there calls ``os._exit`` — the worker
*really* dies mid-granule, so the crash matrix exercises the driver's
true death-detection / respawn / retry path, not a simulation of it.
``fork``-started workers inherit the installed injector; spawned ones
receive a :meth:`~repro.faults.FaultInjector.to_spec` dict.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
import traceback
from collections import OrderedDict

from repro import faults
from repro.exec.errors import CorruptChunkError, GranuleError
from repro.exec.run import GranulePipeline, _Partial
from repro.faults import FaultInjector, SimulatedCrash
from repro.obs import metrics as obs_metrics
from repro.obs.trace import Trace
from repro.par.descriptor import QueryDescriptor

__all__ = ["CRASH_EXIT_CODE", "IDLE_FLUSH_S", "NeedDescriptor",
           "WorkerState", "encode_error", "revive_error", "worker_main"]

#: exit status of a worker killed by an injected ``granule.exec`` crash
CRASH_EXIT_CODE = 113

#: prepared pipelines kept per worker (descriptors are per-query, so
#: this bounds memory across many concurrent queries, LRU)
MAX_CACHED_PIPELINES = 16

#: quiet-pipe interval after which a worker flushes telemetry unasked
IDLE_FLUSH_S = 0.5

#: floor between registry snapshots — a snapshot walks every series,
#: which dwarfs a microsecond granule, so result envelopes carry a
#: delta at most this often (forced flushes — idle, ping, exit —
#: bypass it)
TELEMETRY_MIN_INTERVAL_S = 0.05

# Charged worker-side, merged into the driver under the lane's ``proc``
# label — the per-lane work signal ``obs top`` reads (the driver never
# increments its own unlabelled series).
_M_WORKER_GRANULES = obs_metrics.counter(
    "repro_par_worker_granules_total",
    "granules executed inside this worker process")


class NeedDescriptor(Exception):
    """A bare ``desc_id`` no longer resolves (evicted from the pipeline
    LRU under many concurrent queries); the driver must resend it."""

    def __init__(self, desc_id: int):
        super().__init__(f"descriptor {desc_id} not cached")
        self.desc_id = desc_id


# ----------------------------------------------------------- error wire
def encode_error(err: BaseException) -> dict:
    """Flatten an exception into a picklable/JSON-able envelope."""
    if isinstance(err, GranuleError):
        return {
            "kind": "granule",
            "message": str(err),
            "granule": err.granule,
            "shard": err.shard,
            "column": err.column,
            "cause": encode_error(err.cause),
        }
    if isinstance(err, CorruptChunkError):
        return {
            "kind": "corrupt",
            "message": str(err),
            "file": err.file,
            "column": err.column,
            "row_start": err.row_start,
            "n_rows": err.n_rows,
        }
    return {
        "kind": "other",
        "type": type(err).__name__,
        "message": str(err),
        "traceback": "".join(traceback.format_exception(err))[-2000:],
    }


def revive_error(info: dict, granule_index: int) -> BaseException:
    """Rebuild the typed exception a worker shipped as an envelope.

    The exec error types carry keyword-only context appended into their
    message by ``__init__``; reviving through ``__new__`` + attribute
    assignment preserves the worker's exact message without
    double-rendering that suffix.
    """
    kind = info.get("kind")
    if kind == "corrupt":
        err = CorruptChunkError.__new__(CorruptChunkError)
        ValueError.__init__(err, info["message"])
        err.file = info.get("file")
        err.column = info.get("column")
        err.row_start = info.get("row_start")
        err.n_rows = info.get("n_rows")
        return err
    if kind == "granule":
        gerr = GranuleError.__new__(GranuleError)
        RuntimeError.__init__(gerr, info["message"])
        gerr.granule = info.get("granule", granule_index)
        gerr.shard = info.get("shard")
        gerr.column = info.get("column")
        gerr.cause = revive_error(info.get("cause") or {}, granule_index)
        gerr.__cause__ = gerr.cause
        return gerr
    # protocol-level worker failures (generation drift, bad descriptor,
    # unexpected exceptions outside the pipeline) arrive typed too
    cause = RuntimeError(
        f"{info.get('type', 'Error')}: {info.get('message', '')}")
    return GranuleError(cause, granule=granule_index)


# -------------------------------------------------------- worker caches
class WorkerState:
    """Per-process lazy caches: open tables and prepared pipelines."""

    def __init__(self, max_pipelines: int = MAX_CACHED_PIPELINES):
        self.max_pipelines = max_pipelines
        self._sources: dict[tuple, object] = {}
        self._pipelines: OrderedDict[int, tuple] = OrderedDict()
        # one reusable span recorder for every traced granule: a fresh
        # Trace per granule costs a wall-clock read + two allocations
        # inside the hot loop, and only the span list and t0 matter
        # here — timestamps ship as absolute perf_counter values, so a
        # long-lived t0 rebases exactly the same way
        self._trace: Trace | None = None

    def _source_for(self, desc: QueryDescriptor):
        key = (desc.table_path, desc.version, desc.verify_checksums,
               desc.cache_bytes)
        source = self._sources.get(key)
        if source is None:
            from repro.store.executor import StoreSource
            from repro.store.table import Table

            table = Table.open(desc.table_path, version=desc.version,
                               verify_checksums=desc.verify_checksums,
                               cache_bytes=desc.cache_bytes)
            source = StoreSource(table)
            self._sources[key] = source
        return source

    def pipeline_for(self, desc_id: int, desc: QueryDescriptor | None):
        """The prepared (pipeline, source, trace_enabled) for
        ``desc_id``, building it from ``desc`` on first sight.  A miss
        with ``desc=None`` raises :class:`NeedDescriptor` — the driver
        thinks this lane has the pipeline but the LRU evicted it, so
        ask for a resend."""
        entry = self._pipelines.get(desc_id)
        if entry is not None:
            self._pipelines.move_to_end(desc_id)
            return entry
        if desc is None:
            raise NeedDescriptor(desc_id)
        source = self._source_for(desc)
        if source.n_rows != desc.n_rows or \
                len(source.granules()) != desc.n_granules:
            raise RuntimeError(
                f"generation drift: descriptor pinned "
                f"{desc.table_path!r} version={desc.version} with "
                f"{desc.n_rows} rows / {desc.n_granules} granules, "
                f"worker opened {source.n_rows} rows / "
                f"{len(source.granules())} granules")
        pipeline = GranulePipeline(
            desc.build_plan(), source, prune=desc.prune,
            pushdown=desc.pushdown, on_corruption=desc.on_corruption,
            io_retries=desc.io_retries)
        entry = (pipeline, source, desc.trace_enabled)
        self._pipelines[desc_id] = entry
        while len(self._pipelines) > self.max_pipelines:
            self._pipelines.popitem(last=False)
        return entry

    def run_granule(self, desc_id: int, desc: QueryDescriptor | None,
                    granule_index: int) -> _Partial | None:
        pipeline, source, trace_enabled = \
            self.pipeline_for(desc_id, desc)
        granules = source.granules()
        if not 0 <= granule_index < len(granules):
            raise RuntimeError(
                f"granule index {granule_index} out of range "
                f"(worker sees {len(granules)} granules)")
        # the crash-matrix hook: a crash rule here kills the *process*
        faults.fire("granule.exec", granule=granule_index,
                    table=os.path.basename(
                        getattr(source.table, "path", "")))
        _M_WORKER_GRANULES.inc()
        if not trace_enabled:
            return pipeline.run(granules[granule_index])
        # Record spans into the reused local trace, then ship them
        # re-based to *absolute* perf_counter timestamps — the driver
        # turns those into trace offsets via the hello epoch.  The
        # trailing "granule" span only repeats numbers that already
        # travel in ``part.stats``, so it collapses to its two
        # timestamps on the wire and the driver resynthesizes the
        # attrs (a traced scan records one such span per granule; the
        # pickle cost of its attrs dict is the bulk of the tracing
        # overhead budget on the process tier).
        local = self._trace
        if local is None:
            local = self._trace = Trace("granule")
        spans = local._spans
        spans.clear()
        part = pipeline.run(granules[granule_index], trace=local)
        if part is not None and spans:
            t0 = local.t0
            if spans[-1][0] == "granule":
                _, g_start, g_end, _tid, _attrs = spans[-1]
                rest = spans[:-1]
                part.spans = (
                    t0 + g_start, t0 + g_end,
                    [(name, t0 + start, t0 + end, tid, attrs)
                     for name, start, end, tid, attrs in rest]
                    or None)
            else:  # unexpected layout: ship everything verbatim
                part.spans = (
                    None, None,
                    [(name, t0 + start, t0 + end, tid, attrs)
                     for name, start, end, tid, attrs in spans])
        return part


# ----------------------------------------------------------- main loop
def _telemetry_delta(prev: dict | None) -> tuple[dict | None, dict | None]:
    """(delta to ship or None, new baseline snapshot).

    Skipped entirely when the kill switch is off — function-backed
    gauges read live state regardless of the switch, so snapshotting
    while disabled would leak telemetry the ≤5 % budget promised away.
    """
    if not obs_metrics.enabled():
        return None, prev
    snap = obs_metrics.default_registry().snapshot()
    delta = obs_metrics.snapshot_delta(prev, snap)
    return (delta or None), snap


def worker_main(conn, fault_spec: dict | None = None,
                obs_enabled: bool = True) -> None:
    """Run one worker process until ``("exit",)`` or pipe EOF.

    ``obs_enabled`` mirrors the driver's :func:`repro.obs.set_enabled`
    state at lane start — spawn-started workers do not inherit module
    globals, so the kill switch rides the ctor spec like ``fault_spec``
    does.
    """
    if not obs_enabled:
        obs_metrics.set_enabled(False)
    if fault_spec is not None and faults.active() is None:
        faults.install(FaultInjector.from_spec(fault_spec))
    state = WorkerState()
    # baseline immediately: a fork-started worker inherits the driver's
    # whole registry, and shipping that inheritance as a first delta
    # would double-count every pre-fork series under the proc label —
    # only activity *since* this process began belongs to it
    prev_snap: dict | None = (
        obs_metrics.default_registry().snapshot()
        if obs_metrics.enabled() else None)
    last_snap = time.perf_counter()

    def maybe_delta(force: bool = False) -> dict | None:
        """Rate-limited telemetry: a registry snapshot costs far more
        than a microsecond-scale granule, so per-response deltas are
        throttled to one per ``TELEMETRY_MIN_INTERVAL_S``.  ``force``
        bypasses the throttle (idle flush, ping, exit)."""
        nonlocal prev_snap, last_snap
        now = time.perf_counter()
        if not force and now - last_snap < TELEMETRY_MIN_INTERVAL_S:
            return None
        delta, prev_snap = _telemetry_delta(prev_snap)
        last_snap = now
        return delta
    try:
        conn.send_bytes(pickle.dumps(
            ("hello", 0,
             {"pid": os.getpid(),
              "tid": threading.get_ident(),
              "epoch0": time.time() - time.perf_counter()},
             None)))
    except (BrokenPipeError, OSError):
        return
    while True:
        try:
            if not conn.poll(IDLE_FLUSH_S):
                delta = maybe_delta(force=True)
                if delta is not None:
                    conn.send_bytes(pickle.dumps(
                        ("telemetry", 0, None, delta)))
                continue
            raw = conn.recv_bytes()
        except (EOFError, OSError):
            break
        request = pickle.loads(raw)
        op = request[0]
        if op == "exit":
            # final flush on the way out, so close()'s drain folds the
            # tail of this worker's activity before the process dies
            delta = maybe_delta(force=True)
            if delta is not None:
                try:
                    conn.send_bytes(pickle.dumps(
                        ("telemetry", 0, None, delta)))
                except (BrokenPipeError, OSError):
                    pass
            break
        if op == "ping":
            delta = maybe_delta(force=True)
            try:
                conn.send_bytes(pickle.dumps(
                    ("pong", request[1], None, delta)))
            except (BrokenPipeError, OSError):
                break
            continue
        _, seq, desc_id, desc_json, granule_index = request
        try:
            desc = None if desc_json is None else \
                QueryDescriptor.from_json(desc_json)
            part = state.run_granule(desc_id, desc, granule_index)
            response = ("ok", seq, part)
        except SimulatedCrash:
            # die for real: no reply, no cleanup — the driver's poll
            # loop must notice the corpse and respawn the lane
            os._exit(CRASH_EXIT_CODE)
        except NeedDescriptor:
            response = ("needdesc", seq, None)
        except BaseException as err:  # noqa: BLE001 — everything ships back
            response = ("err", seq, encode_error(err))
        delta = maybe_delta()
        response = response + (delta,)
        try:
            payload = pickle.dumps(response,
                                   protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as err:  # unpicklable partial: report, not hang
            payload = pickle.dumps(
                ("err", seq, encode_error(err), delta))
        try:
            conn.send_bytes(payload)
            # becoming idle? push the throttled tail now (still rate
            # limited) instead of waiting out the idle-flush poll, so a
            # scrape right after a query sees this granule's work
            if delta is None and not conn.poll(0):
                tail = maybe_delta()
                if tail is not None:
                    conn.send_bytes(pickle.dumps(
                        ("telemetry", 0, None, tail)))
        except (BrokenPipeError, OSError):
            break
    try:
        conn.close()
    except OSError:
        pass
