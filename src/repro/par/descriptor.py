"""Granule descriptors: the compact wire format of the process tier.

A worker process never receives data — shards are mmap-able, so it
opens the table itself (read-only; the OS page cache is shared across
every worker for free) and only needs to be told *which* query and
*which* granule to run.  :class:`QueryDescriptor` is that telling: the
table directory, the pinned manifest generation, the plan (reusing the
PR 7 :meth:`~repro.exec.plan.Plan.to_json` wire format, which carries
the pushdown expression — ranges, IN-sets, OR trees and positional
bitmaps alike), and the executor knobs (``prune`` / ``pushdown`` /
``on_corruption`` / ``io_retries``) so the worker-side
:class:`~repro.exec.run.GranulePipeline` is configured exactly like the
driver's.

Two deliberate choices:

* **Generation pinning.**  ``version`` names the manifest generation
  the driver's snapshot was opened at (``None`` for a legacy
  single-manifest table, which has no ``CURRENT`` chain).  The worker
  re-opens that exact generation, so deletion-vector sidecars — the
  source's implicit Bitmap filter — are re-derived identically rather
  than shipped.  ``n_rows`` / ``n_granules`` are cross-checked after
  the open: any drift (a reaped generation, a half-visible publish)
  fails loudly before a single granule runs.
* **JSON-able throughout.**  The descriptor round-trips through
  :meth:`to_json`/:meth:`from_json` losslessly, and the process tier
  sends the JSON form over the pipe — so "survives pickle *and* JSON"
  is a property of the actual wire, not an aspiration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exec.plan import Plan

__all__ = ["DESCRIPTOR_VERSION", "QueryDescriptor", "describe_query"]

#: bumped on any incompatible change to the descriptor wire format
DESCRIPTOR_VERSION = 1


@dataclass(frozen=True)
class QueryDescriptor:
    """Everything a worker needs to rebuild one query's pipeline."""

    table_path: str            # absolute table directory
    version: int | None        # pinned generation (None = legacy manifest)
    verify_checksums: bool     # match the driver's open
    cache_bytes: int           # per-worker chunk-cache budget (0 = none)
    n_rows: int                # drift guard: snapshot row count
    n_granules: int            # drift guard: snapshot granule count
    plan: dict                 # Plan.to_json() (carries the pushdown expr)
    prune: bool
    pushdown: bool
    on_corruption: str         # "raise" | "skip"
    io_retries: int
    trace_enabled: bool = False  # worker records per-granule spans

    def to_json(self) -> dict:
        """A JSON-able dict (also the pickled pipe payload)."""
        return {
            "v": DESCRIPTOR_VERSION,
            "table_path": self.table_path,
            "version": self.version,
            "verify_checksums": self.verify_checksums,
            "cache_bytes": self.cache_bytes,
            "n_rows": self.n_rows,
            "n_granules": self.n_granules,
            "plan": self.plan,
            "prune": self.prune,
            "pushdown": self.pushdown,
            "on_corruption": self.on_corruption,
            "io_retries": self.io_retries,
            "trace_enabled": self.trace_enabled,
        }

    @classmethod
    def from_json(cls, obj: dict) -> "QueryDescriptor":
        version = obj.get("v")
        if version != DESCRIPTOR_VERSION:
            raise ValueError(
                f"unsupported descriptor version {version!r} "
                f"(this worker speaks {DESCRIPTOR_VERSION})")
        return cls(
            table_path=obj["table_path"],
            version=obj["version"],
            verify_checksums=bool(obj["verify_checksums"]),
            cache_bytes=int(obj["cache_bytes"]),
            n_rows=int(obj["n_rows"]),
            n_granules=int(obj["n_granules"]),
            plan=obj["plan"],
            prune=bool(obj["prune"]),
            pushdown=bool(obj["pushdown"]),
            on_corruption=obj["on_corruption"],
            io_retries=int(obj["io_retries"]),
            # added by the cross-process tracing work; absent in wire
            # payloads from older drivers, same descriptor version
            trace_enabled=bool(obj.get("trace_enabled", False)),
        )

    def build_plan(self) -> Plan:
        return Plan.from_json(self.plan)


def describe_query(plan: Plan, source, *, prune: bool, pushdown: bool,
                   on_corruption: str, io_retries: int,
                   trace_enabled: bool = False
                   ) -> QueryDescriptor | None:
    """Describe ``plan`` over ``source`` for out-of-process execution.

    Returns ``None`` when the source cannot be rebuilt from a path — an
    in-memory :class:`~repro.exec.source.ArraySource`, a memtable
    :class:`~repro.exec.source.ChainSource` — in which case the process
    tier falls back to running the driver's closure on its lane threads
    (thread-tier semantics, still correct).
    """
    wire = getattr(source, "wire_descriptor", None)
    if not callable(wire):
        return None
    base = wire()
    if base is None:
        return None
    return QueryDescriptor(
        plan=plan.to_json(), prune=prune, pushdown=pushdown,
        on_corruption=on_corruption, io_retries=io_retries,
        trace_enabled=trace_enabled, **base)
