"""Zigzag transform between signed and unsigned integer arrays.

Maps 0, -1, 1, -2, 2, ... onto 0, 1, 2, 3, 4, ... so that small-magnitude
signed residuals pack into few bits.  Vectorised over numpy arrays; the
object-dtype path handles values outside the int64 range (e.g. 64-bit keys
with large model errors).
"""

from __future__ import annotations

import numpy as np


def zigzag_encode(values: np.ndarray) -> np.ndarray:
    """Signed -> unsigned zigzag.  Accepts int64 or object arrays."""
    values = np.asarray(values)
    if values.dtype == object:
        return np.array(
            [v * 2 if v >= 0 else -v * 2 - 1 for v in values], dtype=object
        )
    v = values.astype(np.int64)
    return ((v << np.int64(1)) ^ (v >> np.int64(63))).astype(np.uint64)


def zigzag_decode(values: np.ndarray) -> np.ndarray:
    """Unsigned -> signed zigzag inverse."""
    values = np.asarray(values)
    if values.dtype == object:
        return np.array(
            [v // 2 if v % 2 == 0 else -(v + 1) // 2 for v in values],
            dtype=object,
        )
    u = values.astype(np.uint64)
    return ((u >> np.uint64(1)).astype(np.int64)
            ^ -(u & np.uint64(1)).astype(np.int64))
