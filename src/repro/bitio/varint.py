"""LEB128-style variable-length integers (a.k.a. Google varints).

Used for headers, the block compressor's literal lengths, and the string
codec's offsets.  Unsigned varints store 7 payload bits per byte with a
continuation flag; signed varints zigzag first.
"""

from __future__ import annotations


def encode_uvarint(value: int) -> bytes:
    """Encode a non-negative integer as a LEB128 varint."""
    if value < 0:
        raise ValueError(f"uvarint requires value >= 0, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_uvarint(buf: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a varint from ``buf`` at ``offset``; returns (value, new_offset)."""
    result = 0
    shift = 0
    while True:
        if offset >= len(buf):
            raise ValueError("truncated varint")
        byte = buf[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7


def encode_svarint(value: int) -> bytes:
    """Encode a signed integer using zigzag + LEB128 (arbitrary precision)."""
    zz = value * 2 if value >= 0 else -value * 2 - 1
    return encode_uvarint(zz)


def decode_svarint(buf: bytes, offset: int = 0) -> tuple[int, int]:
    """Inverse of :func:`encode_svarint`."""
    zz, offset = decode_uvarint(buf, offset)
    value = (zz >> 1) ^ -(zz & 1)
    return value, offset
