"""Bit-level I/O primitives shared by every codec in the library.

The module provides three building blocks:

* :class:`BitPackedArray` — a fixed-width bit-packed vector of unsigned
  integers with O(1) random slot access and vectorised full decode.
* zigzag transforms for mapping signed integers onto unsigned ones.
* LEB128-style varints used by the block compressor and string codecs.
"""

from repro.bitio.bitpack import (
    BitPackedArray,
    bits_for_unsigned,
    bits_for_signed_maxabs,
    bits_for_range,
    pack_unsigned,
    pack_unsigned_big,
    unpack_unsigned,
    unpack_unsigned_big,
    read_slot,
)
from repro.bitio.varint import (
    encode_uvarint,
    decode_uvarint,
    encode_svarint,
    decode_svarint,
)
from repro.bitio.zigzag import zigzag_encode, zigzag_decode

__all__ = [
    "BitPackedArray",
    "bits_for_unsigned",
    "bits_for_signed_maxabs",
    "bits_for_range",
    "pack_unsigned",
    "pack_unsigned_big",
    "unpack_unsigned",
    "unpack_unsigned_big",
    "read_slot",
    "encode_uvarint",
    "decode_uvarint",
    "encode_svarint",
    "decode_svarint",
    "zigzag_encode",
    "zigzag_decode",
]
