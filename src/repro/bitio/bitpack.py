"""Fixed-width bit packing with O(1) random access.

All codecs in the library store their residual ("delta") arrays with this
format: ``n`` unsigned integers, each occupying exactly ``width`` bits,
concatenated MSB-first into a byte buffer.  ``width == 0`` encodes the
degenerate (but common) case where every value is zero and no payload is
stored at all.

Kernel design
=============

The pack/unpack kernels are *word-parallel*: they never materialise the
``n x width`` per-bit matrix the obvious ``np.unpackbits`` formulation
needs (an O(64x) memory blowup).  Two complementary strategies cover the
access patterns:

**Group (dis)assembly — contiguous pack/unpack.**  ``lcm(width, 8)`` bits
is the smallest byte-aligned repeating unit of the stream, covering
``g = lcm(width, 8) / width`` slots in ``B = lcm(width, 8) / 8`` bytes.
Reshaping the value array into ``(m, g)`` groups (and the byte buffer into
``(m, B)``) makes every group structurally identical, so the slot<->byte
bit routing is a *static* table of at most ``B + g`` (byte, slot) overlap
pairs.  Each pair becomes one whole-array shift/mask/or over the ``m``
groups — roughly 1–9 vector ops per value instead of ``width`` per-bit
ops.  Byte-aligned widths (8/16/32/64) skip even that and go through a
big-endian dtype view (a single ``astype``).

**Covering-word gather — random access.**  For a batch of arbitrary slot
indices, each ``width``-bit slot (``width <= 64``) starts at bit
``i * width`` and is covered by at most 9 bytes.  The kernel gathers the
first (at most) 8 covering bytes of *all* indices at once into a
big-endian ``uint64`` window, then shifts/masks per element.  Only widths
>= 58 can spill into a ninth byte; that branch reads one extra byte gather
and stitches the two parts.  Slots whose window fits inside the buffer
gather off a zero-copy view; the few slots near the buffer end use a
~25-byte zero-padded copy of the tail, so no full-payload copy is ever
made.

:meth:`BitPackedArray.gather` exposes the batch kernel; its contract is
``gather(idx)[k] == arr[idx[k]]`` for any integer array ``idx`` (negative
indices wrap once, out-of-range raises ``IndexError``), returning
``uint64`` for ``width <= 64`` and an object array beyond that.  Scalar
``read_slot`` / ``__getitem__`` remain the true O(1) point-read path and
do not touch numpy.
"""

from __future__ import annotations

from functools import lru_cache
from math import gcd

import numpy as np

_U64_MAX = (1 << 64) - 1
_U64_MAX_NP = np.uint64(_U64_MAX)

#: big-endian dtypes for the byte-aligned fast path
_ALIGNED_DTYPES = {8: ">u1", 16: ">u2", 32: ">u4", 64: ">u8"}

#: zero padding (bytes) appended to gather buffers so the 8-byte covering
#: window (plus the possible ninth byte) of the last slot stays in bounds
_GATHER_PAD = 9


def bits_for_unsigned(value: int) -> int:
    """Number of bits needed to represent the unsigned integer ``value``.

    ``bits_for_unsigned(0) == 0`` by convention: an all-zero array packs to an
    empty payload.
    """
    if value < 0:
        raise ValueError(f"expected unsigned value, got {value}")
    return int(value).bit_length()


def bits_for_signed_maxabs(maxabs: int) -> int:
    """Bits needed for a signed value whose magnitude is at most ``maxabs``.

    This matches the paper's ``ceil(log2(delta_maxabs))`` plus one sign bit,
    implemented as the zigzag width of the worst case.
    """
    if maxabs < 0:
        raise ValueError(f"maxabs must be non-negative, got {maxabs}")
    if maxabs == 0:
        return 0
    return bits_for_unsigned(2 * maxabs)


def bits_for_range(span: int) -> int:
    """Bits needed for bias-encoded values covering ``[0, span]``."""
    return bits_for_unsigned(span)


@lru_cache(maxsize=None)
def _group_pieces(width: int) -> tuple[int, int, tuple]:
    """Static bit-routing table for the group (dis)assembly kernels.

    Returns ``(g, B, pieces)`` where ``g`` slots occupy ``B`` bytes per
    byte-aligned group and each piece ``(k, b, shift_r, shift_l, mask)``
    routes ``mask``'s worth of bits between slot ``k`` (``>> shift_r``
    from its LSB) and byte ``b`` (``<< shift_l`` from its LSB).
    """
    g = 8 // gcd(width, 8)
    nbytes = width * g // 8
    pieces = []
    for k in range(g):
        lo_bit = k * width
        hi_bit = lo_bit + width
        for b in range(lo_bit // 8, (hi_bit - 1) // 8 + 1):
            lo = max(8 * b, lo_bit)
            hi = min(8 * b + 8, hi_bit)
            shift_r = hi_bit - hi
            shift_l = 8 * b + 8 - hi
            pieces.append((k, b, np.uint64(shift_r), np.uint64(shift_l),
                           np.uint64((1 << (hi - lo)) - 1)))
    return g, nbytes, tuple(pieces)


def pack_unsigned(values: np.ndarray, width: int) -> bytes:
    """Pack ``values`` (unsigned, each < 2**width) into an MSB-first buffer."""
    values = np.ascontiguousarray(values, dtype=np.uint64)
    if width < 0 or width > 64:
        raise ValueError(f"width must be in [0, 64], got {width}")
    if width == 0:
        if values.size and int(values.max()) != 0:
            raise ValueError("width 0 requires all values to be zero")
        return b""
    if values.size == 0:
        return b""
    limit = _U64_MAX if width == 64 else (1 << width) - 1
    if int(values.max()) > limit:
        raise ValueError(f"value {int(values.max())} does not fit in {width} bits")
    if width in _ALIGNED_DTYPES:
        return values.astype(_ALIGNED_DTYPES[width]).tobytes()
    n = values.size
    if width == 1:
        return np.packbits(values.astype(np.uint8)).tobytes()
    g = 8 // gcd(width, 8)
    m = -(-n // g)
    if m * g != n:
        padded = np.zeros(m * g, dtype=np.uint64)
        padded[:n] = values
        values = padded
    total = (n * width + 7) // 8
    if width * g <= 64:
        return _pack_tree(values, width, g)[:total]
    return _pack_groups(values, width, m)[:total]


def _pack_tree(values: np.ndarray, width: int, g: int) -> bytes:
    """Pairwise shift/or tree pack for widths with ``lcm(width, 8) <= 64``.

    Adjacent slots merge into double-width words until one byte-aligned
    ``lcm``-bit word per group remains, then the word bytes are emitted
    big-endian — all contiguous (stride-2) array ops, no bit matrices.
    """
    a = values
    combined = width
    for _ in range(g.bit_length() - 1):
        a = (a[0::2] << np.uint64(combined)) | a[1::2]
        combined *= 2
    nbytes = combined // 8
    m = a.size
    out = np.empty((m, nbytes), dtype=np.uint8)
    for b in range(nbytes):
        out[:, b] = (a >> np.uint64(8 * (nbytes - 1 - b))).astype(np.uint8)
    return out.tobytes()


def _pack_groups(values: np.ndarray, width: int, m: int) -> bytes:
    """Group-assembly pack via the static bit-routing table (any width)."""
    g, group_bytes, pieces = _group_pieces(width)
    cols = values.reshape(m, g)
    out = np.zeros((m, group_bytes), dtype=np.uint8)
    for k, b, shift_r, shift_l, mask in pieces:
        piece = (cols[:, k] >> shift_r) & mask
        out[:, b] |= (piece << shift_l).astype(np.uint8)
    return out.tobytes()


def unpack_unsigned(data: bytes, width: int, count: int) -> np.ndarray:
    """Vectorised inverse of :func:`pack_unsigned`; returns ``uint64`` array."""
    if width < 0 or width > 64:
        raise ValueError(f"width must be in [0, 64], got {width}")
    if width == 0 or count == 0:
        return np.zeros(count, dtype=np.uint64)
    if width in _ALIGNED_DTYPES:
        return np.frombuffer(data, dtype=_ALIGNED_DTYPES[width],
                             count=count).astype(np.uint64)
    raw = np.frombuffer(data, dtype=np.uint8)
    return _decode_contiguous(raw, width, count)


def _decode_contiguous(raw: np.ndarray, width: int, count: int) -> np.ndarray:
    """Decode ``count`` slots from a byte-aligned ``uint8`` view."""
    if width in _ALIGNED_DTYPES:
        k = width // 8
        if raw.size == count * k and raw.flags.c_contiguous:
            return raw.view(_ALIGNED_DTYPES[width]).astype(np.uint64)
        return np.frombuffer(raw[: count * k].tobytes(),
                             dtype=_ALIGNED_DTYPES[width]).astype(np.uint64)
    if width <= 7:
        return _unpack_bits_small(raw, width, count)
    g = 8 // gcd(width, 8)
    m = -(-count // g)
    need = m * (width * g // 8)
    if raw.size < need:
        padded = np.zeros(need, dtype=np.uint8)
        padded[: raw.size] = raw
        raw = padded
    if width * g <= 64:
        return _unpack_tree(raw[:need], width, count, g)
    return _unpack_groups(raw[:need], width, count, g)


def _unpack_bits_small(raw: np.ndarray, width: int,
                       count: int) -> np.ndarray:
    """Decode widths <= 7 via ``np.unpackbits`` + uint8 column combine."""
    bits = np.unpackbits(raw[: (count * width + 7) // 8],
                         count=count * width)
    if width == 1:
        return bits.astype(np.uint64)
    cols = bits.reshape(count, width)
    acc = cols[:, 0]
    for j in range(1, width):
        acc = (acc << np.uint8(1)) | cols[:, j]
    return acc.astype(np.uint64)


def _unpack_tree(raw: np.ndarray, width: int, count: int,
                 g: int) -> np.ndarray:
    """Pairwise split-tree decode for widths with ``lcm(width, 8) <= 64``."""
    combined = width * g
    nbytes = combined // 8
    byt = np.ascontiguousarray(raw).reshape(-1, nbytes)
    a = byt[:, 0].astype(np.uint64)
    for b in range(1, nbytes):
        a = (a << np.uint64(8)) | byt[:, b]
    while combined > width:
        half = combined // 2
        nxt = np.empty(a.size * 2, dtype=np.uint64)
        nxt[0::2] = a >> np.uint64(half)
        nxt[1::2] = a & np.uint64((1 << half) - 1)
        a = nxt
        combined = half
    return a[:count]


def _unpack_groups(raw: np.ndarray, width: int, count: int,
                   g: int) -> np.ndarray:
    """Group-disassembly decode via the static bit-routing table."""
    _, group_bytes, pieces = _group_pieces(width)
    byt = np.ascontiguousarray(raw).reshape(-1, group_bytes)
    out = np.zeros((byt.shape[0], g), dtype=np.uint64)
    for k, b, shift_r, shift_l, mask in pieces:
        piece = (byt[:, b].astype(np.uint64) >> shift_l) & mask
        out[:, k] |= piece << shift_r
    return out.reshape(-1)[:count]


def _gather_slots(buf: np.ndarray, width: int,
                  bit_starts: np.ndarray) -> np.ndarray:
    """Batch-read ``width``-bit fields starting at ``bit_starts`` (uint64).

    ``buf`` must be a ``uint8`` array zero-padded by at least
    ``_GATHER_PAD`` bytes past the last payload byte.  Gathers the covering
    big-endian 64-bit window of every field at once, then shifts/masks;
    widths >= 58 may spill into a ninth byte, stitched via a second gather.
    """
    byte_start = (bit_starts >> np.uint64(3)).astype(np.int64)
    bit_off = bit_starts & np.uint64(7)
    nb = min(8, (width + 14) // 8)
    if width <= 8 * nb - 7:
        # an nb-byte window always contains the whole field
        word = buf[byte_start].astype(np.uint64)
        for j in range(1, nb):
            word = (word << np.uint64(8)) | buf[byte_start + j]
        mask = _U64_MAX_NP if width == 64 else np.uint64((1 << width) - 1)
        return (word >> (np.uint64(8 * nb) - bit_off - np.uint64(width))) \
            & mask
    # width >= 58: the field may not fit any single 64-bit window, so
    # stitch it (branch-free) from its first covering byte and the 64-bit
    # window one byte later, which always holds the remaining bits
    head = buf[byte_start].astype(np.uint64) & (np.uint64(0xFF) >> bit_off)
    word = buf[byte_start + 1].astype(np.uint64)
    for j in range(2, 9):
        word = (word << np.uint64(8)) | buf[byte_start + j]
    tail_len = np.uint64(width - 8) + bit_off
    return (head << tail_len) | (word >> (np.uint64(64) - tail_len))


def pack_unsigned_big(values: list[int], width: int) -> bytes:
    """Pack arbitrary-precision unsigned ints (width may exceed 64 bits).

    Used by the string extension, whose order-preserving string-to-integer
    mapping can exceed the machine word.  A classic MSB-first bit writer.
    """
    if width == 0:
        if any(v != 0 for v in values):
            raise ValueError("width 0 requires all values to be zero")
        return b""
    out = bytearray()
    acc = 0
    nbits = 0
    limit = 1 << width
    for value in values:
        if not 0 <= value < limit:
            raise ValueError(f"value {value} does not fit in {width} bits")
        acc = (acc << width) | value
        nbits += width
        while nbits >= 8:
            nbits -= 8
            out.append((acc >> nbits) & 0xFF)
        acc &= (1 << nbits) - 1
    if nbits:
        out.append((acc << (8 - nbits)) & 0xFF)
    return bytes(out)


def unpack_unsigned_big(data: bytes, width: int, count: int,
                        bit_offset: int = 0) -> list[int]:
    """Chunked inverse of :func:`pack_unsigned_big` for any ``width``.

    Streams the buffer once through a small accumulator (mirroring the
    writer) instead of re-reading the covering bytes per slot, so a range
    decode costs O(total bits) instead of O(count * width) buffer slices.
    ``bit_offset`` positions the first slot at an arbitrary bit.
    """
    if width == 0 or count == 0:
        return [0] * count
    pos = bit_offset >> 3
    skew = bit_offset & 7
    if skew:
        acc = data[pos] & ((1 << (8 - skew)) - 1)
        nbits = 8 - skew
        pos += 1
    else:
        acc = 0
        nbits = 0
    out = []
    mask = (1 << width) - 1
    for _ in range(count):
        while nbits < width:
            acc = (acc << 8) | data[pos]
            pos += 1
            nbits += 8
        nbits -= width
        out.append((acc >> nbits) & mask)
        acc &= (1 << nbits) - 1
    return out


def read_slot(data: bytes, width: int, index: int) -> int:
    """Read the ``index``-th ``width``-bit slot from ``data`` in O(1).

    This is the random-access path used by the decoders: two bounded memory
    reads (the covering bytes) plus shift/mask arithmetic.
    """
    if width == 0:
        return 0
    bit_start = index * width
    bit_end = bit_start + width
    byte_start = bit_start >> 3
    byte_end = (bit_end + 7) >> 3
    chunk = int.from_bytes(data[byte_start:byte_end], "big")
    tail = byte_end * 8 - bit_end
    return (chunk >> tail) & ((1 << width) - 1)


class BitPackedArray:
    """An immutable fixed-width bit-packed vector of unsigned integers.

    Supports O(1) ``__getitem__``, vectorised slicing, batch random access
    via :meth:`gather`, and round-trip serialisation via :meth:`to_bytes` /
    :meth:`from_bytes`.
    """

    __slots__ = ("_data", "_width", "_count")

    def __init__(self, data: bytes, width: int, count: int):
        expected = (count * width + 7) // 8
        if len(data) < expected:
            raise ValueError(
                f"buffer of {len(data)} bytes too small for "
                f"{count} x {width}-bit slots"
            )
        self._data = data
        self._width = width
        self._count = count

    @classmethod
    def from_values(cls, values: np.ndarray, width: int | None = None
                    ) -> "BitPackedArray":
        values = np.asarray(values)
        if values.dtype == object:
            ints = [int(v) for v in values]
            if width is None:
                width = max((v.bit_length() for v in ints), default=0)
            return cls(pack_unsigned_big(ints, width), width, len(ints))
        values = np.ascontiguousarray(values, dtype=np.uint64)
        if width is None:
            width = bits_for_unsigned(int(values.max())) if values.size else 0
        return cls(pack_unsigned(values, width), width, values.size)

    @property
    def width(self) -> int:
        return self._width

    @property
    def nbytes(self) -> int:
        return len(self._data)

    @property
    def data(self) -> bytes:
        return self._data

    def __len__(self) -> int:
        return self._count

    def __getitem__(self, index: int) -> int:
        if index < 0:
            index += self._count
        if not 0 <= index < self._count:
            raise IndexError(f"index {index} out of range [0, {self._count})")
        return read_slot(self._data, self._width, index)

    def _gather_bits(self, bit_starts: np.ndarray) -> np.ndarray:
        """Run the gather kernel against the payload without copying it.

        The kernel reads a fixed-size byte window per field, so slots whose
        window stays inside the buffer gather straight off a zero-copy view;
        the handful of slots near the buffer end go through a ~25-byte
        zero-padded copy of the tail instead of padding the whole payload.
        """
        raw = np.frombuffer(self._data, dtype=np.uint8)
        width = self._width
        need = 9 if width >= 58 else min(8, (width + 14) // 8)
        safe = (bit_starts >> np.uint64(3)).astype(np.int64) \
            <= raw.size - need
        if safe.all():
            return _gather_slots(raw, width, bit_starts)
        tail_off = max(0, raw.size - 16)
        tail = np.zeros(raw.size - tail_off + _GATHER_PAD, dtype=np.uint8)
        tail[: raw.size - tail_off] = raw[tail_off:]
        out = np.empty(bit_starts.size, dtype=np.uint64)
        out[safe] = _gather_slots(raw, width, bit_starts[safe])
        unsafe = ~safe
        out[unsafe] = _gather_slots(
            tail, width, bit_starts[unsafe] - np.uint64(8 * tail_off))
        return out

    def gather(self, indices: np.ndarray) -> np.ndarray:
        """Batch random access: ``gather(idx)[k] == self[idx[k]]``.

        Computes the covering-byte windows of all indices at once — the
        vectorised replacement for scalar ``read_slot`` loops.  Returns
        ``uint64`` for ``width <= 64``, an object array beyond that.
        Negative indices wrap once; out-of-range raises ``IndexError``.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size == 0:
            return np.zeros(0, dtype=np.uint64)
        indices = np.where(indices < 0, indices + self._count, indices)
        if np.any((indices < 0) | (indices >= self._count)):
            raise IndexError(f"gather index out of range [0, {self._count})")
        if self._width == 0:
            return np.zeros(indices.size, dtype=np.uint64)
        if self._width > 64:
            return np.array(
                [read_slot(self._data, self._width, int(i)) for i in indices],
                dtype=object,
            )
        bit_starts = indices.astype(np.uint64) * np.uint64(self._width)
        return self._gather_bits(bit_starts)

    def slice(self, start: int, stop: int) -> np.ndarray:
        """Decode slots ``[start, stop)`` as a ``uint64`` array."""
        if not 0 <= start <= stop <= self._count:
            raise IndexError(f"bad slice [{start}, {stop}) for {self._count}")
        n = stop - start
        if n == 0 or self._width == 0:
            return np.zeros(n, dtype=np.uint64)
        if self._width > 64:
            return np.array(
                unpack_unsigned_big(self._data, self._width, n,
                                    bit_offset=start * self._width),
                dtype=object,
            )
        bit_lo = start * self._width
        if bit_lo & 7 == 0:
            raw = np.frombuffer(self._data, dtype=np.uint8,
                                offset=bit_lo >> 3)
            return _decode_contiguous(raw, self._width, n)
        # unaligned start: batch-gather the n slot windows
        bit_starts = (np.uint64(bit_lo)
                      + np.arange(n, dtype=np.uint64) * np.uint64(self._width))
        return self._gather_bits(bit_starts)

    def to_numpy(self) -> np.ndarray:
        return self.slice(0, self._count)

    def to_bytes(self) -> bytes:
        header = self._width.to_bytes(1, "big") + self._count.to_bytes(8, "big")
        return header + self._data

    @classmethod
    def from_bytes(cls, buf: bytes, offset: int = 0
                   ) -> tuple["BitPackedArray", int]:
        if len(buf) < offset + 9:
            raise ValueError(
                f"truncated BitPackedArray header: need 9 bytes at offset "
                f"{offset}, buffer has {len(buf)}"
            )
        width = buf[offset]
        count = int.from_bytes(buf[offset + 1: offset + 9], "big")
        nbytes = (count * width + 7) // 8
        end = offset + 9 + nbytes
        if len(buf) < end:
            raise ValueError(
                f"truncated BitPackedArray payload: header declares "
                f"{nbytes} bytes, buffer has {len(buf) - offset - 9}"
            )
        payload = buf[offset + 9: end]
        return cls(payload, width, count), end
