"""Fixed-width bit packing with O(1) random access.

All codecs in the library store their residual ("delta") arrays with this
format: ``n`` unsigned integers, each occupying exactly ``width`` bits,
concatenated MSB-first into a byte buffer.  ``width == 0`` encodes the
degenerate (but common) case where every value is zero and no payload is
stored at all.
"""

from __future__ import annotations

import numpy as np

_U64_MAX = (1 << 64) - 1


def bits_for_unsigned(value: int) -> int:
    """Number of bits needed to represent the unsigned integer ``value``.

    ``bits_for_unsigned(0) == 0`` by convention: an all-zero array packs to an
    empty payload.
    """
    if value < 0:
        raise ValueError(f"expected unsigned value, got {value}")
    return int(value).bit_length()


def bits_for_signed_maxabs(maxabs: int) -> int:
    """Bits needed for a signed value whose magnitude is at most ``maxabs``.

    This matches the paper's ``ceil(log2(delta_maxabs))`` plus one sign bit,
    implemented as the zigzag width of the worst case.
    """
    if maxabs < 0:
        raise ValueError(f"maxabs must be non-negative, got {maxabs}")
    if maxabs == 0:
        return 0
    return bits_for_unsigned(2 * maxabs)


def bits_for_range(span: int) -> int:
    """Bits needed for bias-encoded values covering ``[0, span]``."""
    return bits_for_unsigned(span)


def pack_unsigned(values: np.ndarray, width: int) -> bytes:
    """Pack ``values`` (unsigned, each < 2**width) into an MSB-first buffer."""
    values = np.ascontiguousarray(values, dtype=np.uint64)
    if width < 0 or width > 64:
        raise ValueError(f"width must be in [0, 64], got {width}")
    if width == 0:
        if values.size and int(values.max()) != 0:
            raise ValueError("width 0 requires all values to be zero")
        return b""
    if values.size == 0:
        return b""
    limit = _U64_MAX if width == 64 else (1 << width) - 1
    if int(values.max()) > limit:
        raise ValueError(f"value {int(values.max())} does not fit in {width} bits")
    shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
    bits = ((values[:, None] >> shifts[None, :]) & np.uint64(1)).astype(np.uint8)
    flat = bits.ravel()
    pad = (-flat.size) % 8
    if pad:
        flat = np.concatenate([flat, np.zeros(pad, dtype=np.uint8)])
    return np.packbits(flat).tobytes()


def unpack_unsigned(data: bytes, width: int, count: int) -> np.ndarray:
    """Vectorised inverse of :func:`pack_unsigned`; returns ``uint64`` array."""
    if width == 0 or count == 0:
        return np.zeros(count, dtype=np.uint64)
    raw = np.frombuffer(data, dtype=np.uint8)
    bits = np.unpackbits(raw)[: count * width].reshape(count, width)
    shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
    return (bits.astype(np.uint64) << shifts[None, :]).sum(
        axis=1, dtype=np.uint64
    )


def pack_unsigned_big(values: list[int], width: int) -> bytes:
    """Pack arbitrary-precision unsigned ints (width may exceed 64 bits).

    Used by the string extension, whose order-preserving string-to-integer
    mapping can exceed the machine word.  A classic MSB-first bit writer.
    """
    if width == 0:
        if any(v != 0 for v in values):
            raise ValueError("width 0 requires all values to be zero")
        return b""
    out = bytearray()
    acc = 0
    nbits = 0
    limit = 1 << width
    for value in values:
        if not 0 <= value < limit:
            raise ValueError(f"value {value} does not fit in {width} bits")
        acc = (acc << width) | value
        nbits += width
        while nbits >= 8:
            nbits -= 8
            out.append((acc >> nbits) & 0xFF)
        acc &= (1 << nbits) - 1
    if nbits:
        out.append((acc << (8 - nbits)) & 0xFF)
    return bytes(out)


def read_slot(data: bytes, width: int, index: int) -> int:
    """Read the ``index``-th ``width``-bit slot from ``data`` in O(1).

    This is the random-access path used by the decoders: two bounded memory
    reads (the covering bytes) plus shift/mask arithmetic.
    """
    if width == 0:
        return 0
    bit_start = index * width
    bit_end = bit_start + width
    byte_start = bit_start >> 3
    byte_end = (bit_end + 7) >> 3
    chunk = int.from_bytes(data[byte_start:byte_end], "big")
    tail = byte_end * 8 - bit_end
    return (chunk >> tail) & ((1 << width) - 1)


class BitPackedArray:
    """An immutable fixed-width bit-packed vector of unsigned integers.

    Supports O(1) ``__getitem__``, vectorised slicing, and round-trip
    serialisation via :meth:`to_bytes` / :meth:`from_bytes`.
    """

    __slots__ = ("_data", "_width", "_count")

    def __init__(self, data: bytes, width: int, count: int):
        expected = (count * width + 7) // 8
        if len(data) < expected:
            raise ValueError(
                f"buffer of {len(data)} bytes too small for "
                f"{count} x {width}-bit slots"
            )
        self._data = data
        self._width = width
        self._count = count

    @classmethod
    def from_values(cls, values: np.ndarray, width: int | None = None
                    ) -> "BitPackedArray":
        values = np.asarray(values)
        if values.dtype == object:
            ints = [int(v) for v in values]
            if width is None:
                width = max((v.bit_length() for v in ints), default=0)
            return cls(pack_unsigned_big(ints, width), width, len(ints))
        values = np.ascontiguousarray(values, dtype=np.uint64)
        if width is None:
            width = bits_for_unsigned(int(values.max())) if values.size else 0
        return cls(pack_unsigned(values, width), width, values.size)

    @property
    def width(self) -> int:
        return self._width

    @property
    def nbytes(self) -> int:
        return len(self._data)

    @property
    def data(self) -> bytes:
        return self._data

    def __len__(self) -> int:
        return self._count

    def __getitem__(self, index: int) -> int:
        if index < 0:
            index += self._count
        if not 0 <= index < self._count:
            raise IndexError(f"index {index} out of range [0, {self._count})")
        return read_slot(self._data, self._width, index)

    def slice(self, start: int, stop: int) -> np.ndarray:
        """Decode slots ``[start, stop)`` as a ``uint64`` array."""
        if not 0 <= start <= stop <= self._count:
            raise IndexError(f"bad slice [{start}, {stop}) for {self._count}")
        n = stop - start
        if n == 0 or self._width == 0:
            return np.zeros(n, dtype=np.uint64)
        if self._width > 64:
            return np.array(
                [read_slot(self._data, self._width, i)
                 for i in range(start, stop)],
                dtype=object,
            )
        bit_lo = start * self._width
        byte_lo = bit_lo >> 3
        raw = np.frombuffer(
            self._data,
            dtype=np.uint8,
            count=min(len(self._data) - byte_lo,
                      (n * self._width + (bit_lo & 7) + 7) // 8 + 1),
            offset=byte_lo,
        )
        bits = np.unpackbits(raw)
        off = bit_lo & 7
        bits = bits[off: off + n * self._width].reshape(n, self._width)
        shifts = np.arange(self._width - 1, -1, -1, dtype=np.uint64)
        return (bits.astype(np.uint64) << shifts[None, :]).sum(
            axis=1, dtype=np.uint64
        )

    def to_numpy(self) -> np.ndarray:
        return self.slice(0, self._count)

    def to_bytes(self) -> bytes:
        header = self._width.to_bytes(1, "big") + self._count.to_bytes(8, "big")
        return header + self._data

    @classmethod
    def from_bytes(cls, buf: bytes, offset: int = 0
                   ) -> tuple["BitPackedArray", int]:
        width = buf[offset]
        count = int.from_bytes(buf[offset + 1: offset + 9], "big")
        nbytes = (count * width + 7) // 8
        payload = buf[offset + 9: offset + 9 + nbytes]
        return cls(payload, width, count), offset + 9 + nbytes
