"""Offline integrity scrub: ``python -m repro.store scrub DIR``.

Walks one published snapshot of a table directory and verifies every
integrity invariant the formats promise, without trusting any of them
on the way in:

* the manifest's shard chain (row counts and ``row_start`` continuity),
* each shard's footer catalog — magic, version, footer-body crc32,
* every chunk envelope — its catalogued crc32 against the bytes on
  disk, that the envelope actually revives through the codec registry,
  that it decodes to the catalogued row count, and that the decoded
  values respect the zone map (``zmin <= min`` and ``max <= zmax`` —
  the invariant pruning correctness rests on),
* every deletion-vector sidecar — crc, row count versus its shard.

Unlike :class:`~repro.store.table.Table` (which refuses to open broken
state), the scrubber keeps going after the first failure and reports
*everything* it found, per shard — it is the tool you run when a scan
raised :class:`CorruptChunkError` and you want the blast radius.
Chunks written before the checksummed v2 layout scrub everything except
the (absent) envelope crc.
"""

from __future__ import annotations

import os
import time
import zlib
from dataclasses import dataclass, field

from repro import codecs
from repro.store.format import (
    read_manifest,
    unpack_deletion_vector,
    unpack_footer,
)


@dataclass
class ShardReport:
    """Scrub outcome for one shard file (plus its sidecar, if any)."""

    file: str
    chunks_checked: int = 0
    chunks_crc_verified: int = 0   # chunks that carried a v2 crc
    dv_checked: bool = False
    bytes_walked: int = 0          # shard + sidecar bytes read
    elapsed_s: float = 0.0         # wall time scrubbing this shard
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors


@dataclass
class ScrubReport:
    """Scrub outcome for one table snapshot."""

    path: str
    generation: int
    n_rows: int
    shards: list[ShardReport] = field(default_factory=list)
    manifest_errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.manifest_errors and all(s.ok for s in self.shards)

    @property
    def bytes_walked(self) -> int:
        return sum(s.bytes_walked for s in self.shards)

    @property
    def elapsed_s(self) -> float:
        return sum(s.elapsed_s for s in self.shards)

    @property
    def errors(self) -> list[str]:
        out = list(self.manifest_errors)
        for shard in self.shards:
            out.extend(f"{shard.file}: {err}" for err in shard.errors)
        return out

    def summary(self) -> str:
        lines = [f"scrub {self.path} (generation {self.generation}, "
                 f"{self.n_rows} rows, {len(self.shards)} shards)"]
        for shard in self.shards:
            status = "ok" if shard.ok else \
                f"FAILED ({len(shard.errors)} error(s))"
            dv = ", dv ok" if shard.dv_checked and shard.ok else ""
            lines.append(
                f"  {shard.file}: {shard.chunks_checked} chunks "
                f"({shard.chunks_crc_verified} crc-verified{dv}), "
                f"{shard.bytes_walked} bytes in "
                f"{shard.elapsed_s * 1e3:.1f} ms ... {status}")
            lines.extend(f"    - {err}" for err in shard.errors)
        lines.extend(f"  manifest: {err}" for err in self.manifest_errors)
        lines.append(
            f"walked: {self.bytes_walked} bytes in "
            f"{self.elapsed_s * 1e3:.1f} ms")
        lines.append("result: " + ("CLEAN" if self.ok else
                                   f"{len(self.errors)} error(s)"))
        return "\n".join(lines)


def _scrub_chunk(blob: bytes, meta, report: ShardReport) -> None:
    where = f"column {meta.column!r} rows {meta.row_start}+{meta.n_rows}"
    if meta.crc is not None:
        report.chunks_crc_verified += 1
        if zlib.crc32(blob) != meta.crc:
            report.errors.append(f"{where}: envelope crc32 mismatch")
            return  # decoding corrupt bytes proves nothing further
    try:
        seq = codecs.from_bytes(blob)
        values = seq.decode_all()
    except Exception as exc:
        report.errors.append(f"{where}: envelope does not revive "
                             f"({type(exc).__name__}: {exc})")
        return
    if len(values) != meta.n_rows:
        report.errors.append(
            f"{where}: decoded {len(values)} rows, catalog says "
            f"{meta.n_rows}")
        return
    if len(values):
        lo, hi = int(values.min()), int(values.max())
        if lo < meta.zmin or hi > meta.zmax:
            report.errors.append(
                f"{where}: values [{lo}, {hi}] escape the zone map "
                f"[{meta.zmin}, {meta.zmax}] — pruning would drop "
                "matching rows")


def _scrub_shard(directory: str, entry: dict) -> ShardReport:
    report = ShardReport(file=entry["file"])
    t_start = time.perf_counter()
    try:
        return _scrub_shard_inner(directory, entry, report)
    finally:
        report.elapsed_s = time.perf_counter() - t_start


def _scrub_shard_inner(directory: str, entry: dict,
                       report: ShardReport) -> ShardReport:
    path = os.path.join(directory, entry["file"])
    try:
        with open(path, "rb") as fh:
            blob = fh.read()
    except OSError as exc:
        report.errors.append(f"unreadable: {exc}")
        return report
    report.bytes_walked += len(blob)
    try:
        footer = unpack_footer(blob)
    except ValueError as exc:
        report.errors.append(f"footer: {exc}")
        return report
    if footer.n_rows != entry["n_rows"]:
        report.errors.append(
            f"footer holds {footer.n_rows} rows, manifest says "
            f"{entry['n_rows']}")
    for meta in footer.chunks:
        report.chunks_checked += 1
        if meta.offset < 0 or meta.offset + meta.nbytes > len(blob):
            report.errors.append(
                f"column {meta.column!r} rows {meta.row_start}+"
                f"{meta.n_rows}: byte extent [{meta.offset}, "
                f"{meta.offset + meta.nbytes}) escapes the file")
            continue
        _scrub_chunk(blob[meta.offset: meta.offset + meta.nbytes], meta,
                     report)
    if entry.get("dv"):
        report.dv_checked = True
        dv_path = os.path.join(directory, entry["dv"])
        try:
            with open(dv_path, "rb") as fh:
                dv_blob = fh.read()
            report.bytes_walked += len(dv_blob)
            deleted = unpack_deletion_vector(dv_blob)
        except (OSError, ValueError) as exc:
            report.errors.append(f"deletion vector {entry['dv']!r}: {exc}")
        else:
            if len(deleted) != entry["n_rows"]:
                report.errors.append(
                    f"deletion vector {entry['dv']!r} covers "
                    f"{len(deleted)} rows, shard holds {entry['n_rows']}")
    return report


def scrub_table(path: str, version: int | None = None) -> ScrubReport:
    """Verify every checksum and zone-map invariant of one snapshot.

    Never raises on corrupt *data* — broken shards, chunks, and sidecars
    are collected into the report (a table whose manifest itself cannot
    be read still raises, there is nothing to walk).
    """
    manifest = read_manifest(path, version=version)
    report = ScrubReport(path=path, generation=manifest.generation,
                         n_rows=manifest.n_rows)
    row_start = 0
    for entry in manifest.shards:
        report.shards.append(_scrub_shard(path, entry))
        if entry["row_start"] != row_start:
            report.manifest_errors.append(
                f"shard {entry['file']!r} starts at row "
                f"{entry['row_start']}, chain expects {row_start}")
        row_start += entry["n_rows"]
    if row_start != manifest.n_rows:
        report.manifest_errors.append(
            f"manifest declares {manifest.n_rows} rows, shard chain "
            f"holds {row_start}")
    return report
