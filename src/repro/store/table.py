"""``Table`` — the mmap-backed read side of the persistent store.

Opening a table reads one manifest — the ``CURRENT`` generation of a
mutated table, a ``version=`` pinned older generation (time travel), or
the legacy single ``_table.json`` — memory-maps every shard file it
names, parses each shard's footer catalog (schema, codec ids, row
counts, zone maps), and loads any deletion-vector sidecars the manifest
references.  A :class:`Table` is therefore an immutable *snapshot*:
commits publish new manifests and swap ``CURRENT`` atomically, so a
concurrent reader never sees a torn table.  No chunk bytes are touched
until a scan asks for them, and zone-map-pruned chunks are never touched
at all — the page cache plus the bounded LRU chunk cache are the only
state between scans.
"""

from __future__ import annotations

import mmap
import os
import time
import zlib

import numpy as np

from repro import codecs, faults
from repro.exec.errors import CorruptChunkError
from repro.obs import metrics as obs_metrics
from repro.store.cache import DEFAULT_CAPACITY_BYTES, ChunkCache
from repro.store.executor import ScanResult, run_scan
from repro.store.format import (
    ChunkMeta,
    Manifest,
    ShardFooter,
    list_versions,
    read_manifest,
    unpack_deletion_vector,
    unpack_footer,
)

_M_TABLES_OPENED = obs_metrics.counter(
    "repro_store_tables_opened_total", "table snapshots opened")
_M_SHARDS_OPENED = obs_metrics.counter(
    "repro_store_shards_opened_total", "shard files opened (mmap)")


class Shard:
    """One opened shard file: mmap + parsed footer catalog.

    ``row_start`` is the shard's *global* first row in the snapshot it
    was opened for (manifest-assigned — compaction can shift a shard's
    position in the chain without rewriting its footer);
    ``deleted`` is the generation's deletion vector for this shard
    (shard-local boolean mask, ``None`` when every row is live).
    """

    def __init__(self, path: str):
        self.path = path
        self._file = open(path, "rb")
        try:
            self.mmap = mmap.mmap(self._file.fileno(), 0,
                                  access=mmap.ACCESS_READ)
            try:
                self.footer: ShardFooter = unpack_footer(self.mmap)
            except BaseException:
                self.mmap.close()
                raise
        except BaseException:
            self._file.close()
            raise
        self.row_start: int = self.footer.row_start
        self.deleted: np.ndarray | None = None
        self.by_column: dict[str, tuple[ChunkMeta, ...]] = {}
        for chunk in self.footer.chunks:
            self.by_column.setdefault(chunk.column, ())
        for column in self.by_column:
            self.by_column[column] = self.footer.column_chunks(column)

    def close(self) -> None:
        self.mmap.close()
        self._file.close()


class Table:
    """Read-only snapshot of one store directory (use :meth:`open`)."""

    def __init__(self, path: str, cache_bytes: int = DEFAULT_CAPACITY_BYTES,
                 version: int | None = None, verify_checksums: bool = True,
                 cache: ChunkCache | None = None):
        self.path = path
        self.verify_checksums = verify_checksums
        self.manifest: Manifest = read_manifest(path, version=version)
        self.shards: list[Shard] = []
        try:
            row_start = 0
            for entry in self.manifest.shards:
                t_open = time.perf_counter()
                shard = Shard(os.path.join(path, entry["file"]))
                shard.open_s = time.perf_counter() - t_open
                _M_SHARDS_OPENED.inc()
                self.shards.append(shard)
                if shard.footer.n_rows != entry["n_rows"] or \
                        entry["row_start"] != row_start:
                    raise ValueError(
                        f"shard {entry['file']!r} footer disagrees with "
                        "the manifest (mixed table versions?)")
                shard.row_start = row_start
                row_start += entry["n_rows"]
                if entry.get("dv"):
                    with open(os.path.join(path, entry["dv"]), "rb") as fh:
                        deleted = unpack_deletion_vector(fh.read())
                    if len(deleted) != entry["n_rows"]:
                        raise ValueError(
                            f"deletion vector {entry['dv']!r} covers "
                            f"{len(deleted)} rows, shard holds "
                            f"{entry['n_rows']}")
                    shard.deleted = deleted
            if row_start != self.manifest.n_rows:
                raise ValueError(
                    f"manifest declares {self.manifest.n_rows} rows, "
                    f"shards hold {row_start}")
        except BaseException:
            for shard in self.shards:
                shard.close()
            raise
        # a caller-supplied cache is *shared* (the table server hands one
        # cache to every table it opens) and survives this table's close
        self._owns_cache = cache is None
        self.cache: ChunkCache | None = cache if cache is not None else (
            ChunkCache(cache_bytes) if cache_bytes else None)
        self._live_mask: np.ndarray | None = None
        _M_TABLES_OPENED.inc()

    @classmethod
    def open(cls, path: str, cache_bytes: int = DEFAULT_CAPACITY_BYTES,
             version: int | None = None,
             verify_checksums: bool = True,
             cache: ChunkCache | None = None) -> "Table":
        """Open the current snapshot, or pin an older published
        ``version`` of a mutated table (time travel).

        ``verify_checksums=False`` skips the per-chunk crc32 check on
        cache-miss revive (the un-checksummed baseline the faults bench
        measures against); corruption then surfaces only as codec decode
        errors or silently wrong rows — leave it on outside benchmarks.
        ``cache`` injects a shared :class:`ChunkCache` (the table server
        gives every open table one cache); it overrides ``cache_bytes``
        and is left intact when this table closes.
        """
        return cls(path, cache_bytes=cache_bytes, version=version,
                   verify_checksums=verify_checksums, cache=cache)

    @staticmethod
    def versions(path: str) -> list[int]:
        """Published manifest generations of a mutable table, oldest
        first (empty for a plain immutable table)."""
        return list_versions(path)

    # ------------------------------------------------------------ catalog
    @property
    def column_names(self) -> tuple[str, ...]:
        return self.manifest.columns

    @property
    def n_rows(self) -> int:
        return self.manifest.n_rows

    @property
    def chunk_rows(self) -> int:
        return self.manifest.chunk_rows

    @property
    def generation(self) -> int:
        return self.manifest.generation

    @property
    def live_rows(self) -> int:
        """Rows visible after deletion vectors (= ``n_rows`` when no
        shard carries one)."""
        return self.n_rows - self.deleted_rows

    @property
    def deleted_rows(self) -> int:
        return sum(int(s.deleted.sum()) for s in self.shards
                   if s.deleted is not None)

    def live_mask(self) -> np.ndarray | None:
        """Table-global boolean mask of live rows, or ``None`` when every
        physical row is live (no deletion vectors in this snapshot).
        Built once and cached — the snapshot is immutable, and every
        executed plan asks for it.  Treat the array as read-only."""
        if self._live_mask is None:
            if all(s.deleted is None for s in self.shards):
                return None
            mask = np.ones(self.n_rows, dtype=bool)
            for shard in self.shards:
                if shard.deleted is not None:
                    mask[shard.row_start: shard.row_start
                         + shard.footer.n_rows] = ~shard.deleted
            self._live_mask = mask
        return self._live_mask

    def stored_bytes(self) -> int:
        """Stored chunk bytes across all shards (excluding footers)."""
        return sum(c.nbytes for s in self.shards for c in s.footer.chunks)

    def info(self) -> dict:
        """Catalog summary (the CLI's ``info`` payload)."""
        codec_mix: dict[str, int] = {}
        for shard in self.shards:
            for chunk in shard.footer.chunks:
                codec_mix[chunk.codec] = codec_mix.get(chunk.codec, 0) + 1
        return {
            "path": self.path,
            "columns": list(self.column_names),
            "generation": self.generation,
            "n_rows": self.n_rows,
            "live_rows": self.live_rows,
            "n_shards": len(self.shards),
            "shard_rows": self.manifest.shard_rows,
            "chunk_rows": self.chunk_rows,
            "requested_codecs": dict(self.manifest.codecs),
            "chunk_codec_mix": codec_mix,
            "stored_bytes": self.stored_bytes(),
            # per-shard open cost — CI logs diff these, so a shard that
            # got slow or fat between runs is visible at a glance
            "shards": [
                {"file": os.path.basename(shard.path),
                 "n_rows": shard.footer.n_rows,
                 "stored_bytes": sum(c.nbytes
                                     for c in shard.footer.chunks),
                 "deleted_rows": int(shard.deleted.sum())
                 if shard.deleted is not None else 0,
                 "open_ms": round(
                     getattr(shard, "open_s", 0.0) * 1e3, 3)}
                for shard in self.shards],
        }

    # ------------------------------------------------------------- access
    def chunk_bytes(self, shard_idx: int, meta: ChunkMeta) -> bytes:
        """Raw envelope bytes of one chunk (an mmap copy)."""
        shard = self.shards[shard_idx]
        faults.fire("chunk.read", file=shard.path, column=meta.column)
        return shard.mmap[meta.offset: meta.offset + meta.nbytes]

    def revive_chunk(self, shard_idx: int, meta: ChunkMeta):
        """Revive one chunk's encoded sequence from its envelope.

        On a cache miss this is the end-to-end verification point: the
        envelope's crc32 (format v2) is checked against the bytes that
        actually came back from storage, so bit rot anywhere between the
        writer and the mmap raises :class:`CorruptChunkError` instead of
        decoding into silently wrong rows.  v1 shards carry no chunk crc
        and skip the check.
        """
        blob = self.chunk_bytes(shard_idx, meta)
        if self.verify_checksums and meta.crc is not None \
                and zlib.crc32(blob) != meta.crc:
            raise CorruptChunkError(
                "chunk envelope checksum mismatch",
                file=os.path.basename(self.shards[shard_idx].path),
                column=meta.column, row_start=meta.row_start,
                n_rows=meta.n_rows)
        return codecs.from_bytes(blob)

    def scan(self, columns: list[str] | tuple[str, ...] | None = None,
             where: tuple[str, int, int] | None = None, prune: bool = True,
             threads: int | None = None, **opts) -> ScanResult:
        """Projection + predicate-pushdown scan.

        Parameters
        ----------
        columns:
            Projected column names (``None`` = all columns).
        where:
            Optional ``(column, lo, hi)`` range predicate selecting rows
            with ``lo <= value < hi``.  The predicate is pushed down:
            zone maps prune whole chunks, survivors filter through the
            codecs' vectorised ``filter_range``, and projected columns
            ``gather`` only surviving positions.
        prune:
            Disable to force the filter onto every chunk (the benchmark's
            unpruned baseline); results are identical.
        threads:
            Shard-level parallelism (``None`` = auto).
        **opts:
            Resilience knobs forwarded to the executor —
            ``on_corruption="raise"|"skip"``, ``timeout_s``,
            ``io_retries`` (see :func:`repro.exec.run.execute`).
        """
        projection = tuple(columns) if columns is not None \
            else self.column_names
        available = ", ".join(self.column_names)
        for name in projection:
            if name not in self.column_names:
                raise KeyError(f"unknown projection column {name!r}; "
                               f"available: {available}")
        if where is not None:
            pred_col, lo, hi = where
            if pred_col not in self.column_names:
                raise KeyError(f"unknown predicate column {pred_col!r}; "
                               f"available: {available}")
            where = (pred_col, int(lo), int(hi))
        return run_scan(self, projection, where, prune, threads, **opts)

    def read_column(self, name: str, threads: int | None = None
                    ) -> np.ndarray:
        """Decode one full column (naive no-predicate scan)."""
        return self.scan(columns=[name], threads=threads).columns[name]

    # ---------------------------------------------------------- lifecycle
    def close(self) -> None:
        for shard in self.shards:
            shard.close()
        self.shards = []
        if self.cache is not None and self._owns_cache:
            self.cache.clear()

    def __enter__(self) -> "Table":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __len__(self) -> int:
        return self.n_rows
