"""Bounded, thread-safe LRU cache for decoded column chunks.

Scan workers revive each surviving chunk from its envelope bytes
(``codecs.from_bytes``) before filtering/gathering; the cache keeps those
revived sequences across scans so warm queries skip the mmap read and the
envelope parse entirely.  Capacity is bounded in *stored chunk bytes* (the
honest proxy for the decoded footprint of the lightweight codecs), entries
are evicted least-recently-used, and all operations are lock-protected so
the thread-pool executor can share one cache.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable

#: default cache budget: 64 MiB of stored chunk bytes
DEFAULT_CAPACITY_BYTES = 64 << 20


class ChunkCache:
    """LRU map from chunk key to revived sequence, bounded in bytes."""

    def __init__(self, capacity_bytes: int = DEFAULT_CAPACITY_BYTES):
        if capacity_bytes < 0:
            raise ValueError(f"negative capacity {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, tuple[Any, int]] = OrderedDict()
        self._used_bytes = 0
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def used_bytes(self) -> int:
        with self._lock:
            return self._used_bytes

    def get_or_load(self, key: Hashable, loader: Callable[[], Any],
                    nbytes: int) -> tuple[Any, bool]:
        """Return ``(value, was_hit)``; ``loader`` runs outside the lock.

        Two threads racing on the same absent key may both load; the second
        insert wins harmlessly (values are immutable revived sequences).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry[0], True
            self.misses += 1
        value = loader()
        with self._lock:
            if key not in self._entries:
                self._entries[key] = (value, nbytes)
                self._used_bytes += nbytes
                self._evict_locked()
        return value, False

    def _evict_locked(self) -> None:
        while self._used_bytes > self.capacity_bytes and len(self._entries) > 1:
            _, (_, dropped) = self._entries.popitem(last=False)
            self._used_bytes -= dropped

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._used_bytes = 0
