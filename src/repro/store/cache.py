"""Bounded, thread-safe LRU cache for decoded column chunks.

Scan workers revive each surviving chunk from its envelope bytes
(``codecs.from_bytes``) before filtering/gathering; the cache keeps those
revived sequences across scans so warm queries skip the mmap read and the
envelope parse entirely.  Capacity is bounded in *stored chunk bytes* (the
honest proxy for the decoded footprint of the lightweight codecs), entries
are evicted least-recently-used, and all operations are lock-protected so
the thread-pool executor — and, since PR 7, *every query of a table
server* — can share one cache.

Attribution contract: the global :attr:`hits` / :attr:`misses` /
:attr:`evictions` counters are monotonic totals for operators (the
server's ``/stats`` hit rate).  Per-query accounting never reads them —
:meth:`get_or_load` returns this call's own ``(hit, evictions)`` outcome
so concurrent queries each charge exactly their own deltas to their own
:class:`~repro.exec.run.ExecStats`, instead of diffing a racy global
snapshot.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from typing import Any, Callable, Hashable

from repro.obs import metrics as obs_metrics

#: default cache budget: 64 MiB of stored chunk bytes
DEFAULT_CAPACITY_BYTES = 64 << 20

# process-wide cache metrics: every ChunkCache instance charges the same
# series (an operator wants total cache pressure, not per-instance).
# Counters simply sum; the gauges are *function-backed* — rendered as
# the sum over every live cache instance, so N open tables (or serve +
# per-worker caches) no longer clobber each other last-writer-wins,
# and the hot path pays no per-insert gauge writes at all.
_M_LOOKUPS = obs_metrics.counter(
    "repro_cache_lookups_total", "chunk cache lookups by outcome",
    labels=("outcome",))
_M_HIT = _M_LOOKUPS.labels(outcome="hit")
_M_MISS = _M_LOOKUPS.labels(outcome="miss")
_M_EVICTIONS = obs_metrics.counter(
    "repro_cache_evictions_total", "chunk cache entries evicted")
_M_USED = obs_metrics.gauge(
    "repro_cache_used_bytes",
    "stored chunk bytes held across all live caches")
_M_ENTRIES = obs_metrics.gauge(
    "repro_cache_entries", "entries held across all live caches")

_LIVE_LOCK = threading.Lock()
_LIVE_CACHES: "weakref.WeakSet[ChunkCache]" = weakref.WeakSet()


def _sum_live(attr: str) -> int:
    with _LIVE_LOCK:
        caches = list(_LIVE_CACHES)
    total = 0
    for cache in caches:
        with cache._lock:
            total += cache._used_bytes if attr == "bytes" \
                else len(cache._entries)
    return total


_M_USED.set_function(lambda: _sum_live("bytes"))
_M_ENTRIES.set_function(lambda: _sum_live("entries"))


class ChunkCache:
    """LRU map from chunk key to revived sequence, bounded in bytes."""

    def __init__(self, capacity_bytes: int = DEFAULT_CAPACITY_BYTES):
        if capacity_bytes < 0:
            raise ValueError(f"negative capacity {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, tuple[Any, int]] = OrderedDict()
        self._used_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        with _LIVE_LOCK:
            _LIVE_CACHES.add(self)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def used_bytes(self) -> int:
        with self._lock:
            return self._used_bytes

    def stats(self) -> dict:
        """One consistent snapshot of the global counters (operators
        only — per-query attribution uses :meth:`get_or_load`'s return)."""
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "used_bytes": self._used_bytes,
                "capacity_bytes": self.capacity_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self.hits / lookups if lookups else 0.0,
            }

    def get_or_load(self, key: Hashable, loader: Callable[[], Any],
                    nbytes: int) -> tuple[Any, bool, int]:
        """Return ``(value, was_hit, evictions)``; ``loader`` runs outside
        the lock.  ``evictions`` counts the entries *this call's* insert
        pushed out — the caller charges them to its own query stats.

        Two threads racing on the same absent key may both load; the second
        insert wins harmlessly (values are immutable revived sequences).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                _M_HIT.inc()
                return entry[0], True, 0
            self.misses += 1
            _M_MISS.inc()
        value = loader()
        evicted = 0
        with self._lock:
            if key not in self._entries:
                self._entries[key] = (value, nbytes)
                self._used_bytes += nbytes
                evicted = self._evict_locked()
        if evicted:
            _M_EVICTIONS.inc(evicted)
        return value, False, evicted

    def _evict_locked(self) -> int:
        evicted = 0
        while self._used_bytes > self.capacity_bytes and len(self._entries) > 1:
            _, (_, dropped) = self._entries.popitem(last=False)
            self._used_bytes -= dropped
            evicted += 1
        self.evictions += evicted
        return evicted

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._used_bytes = 0
