"""The store's execution adapter: ``StoreSource`` + the scan shim.

Since PR 4 the store has no private scan executor: scans run through
the unified :mod:`repro.exec` layer.  This module contributes

* :class:`StoreSource` — the :class:`~repro.exec.source.ColumnSource`
  over an open :class:`~repro.store.table.Table`.  Granules are the
  column-aligned chunks (morsel = one chunk row range across all
  columns); zone maps come straight from the footer catalog; loads
  revive envelopes through the table's bounded LRU chunk cache, and the
  source is ``parallel_safe`` (the hot paths release the GIL), so the
  executor fans granules out on its thread pool.
* :func:`run_scan` — the legacy entry :meth:`Table.scan` still calls.
  It builds a one-predicate plan, executes it, and folds the unified
  :class:`~repro.exec.run.ExecStats` back into the historical
  :class:`ScanStats` shape (bytes *scanned* vs bytes *read* etc.) so
  existing callers and benchmarks keep their accounting.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.exec import Plan, Range, execute
from repro.exec.source import ColumnSource, Granule

#: cap on auto-selected scan threads (kept for backward compatibility;
#: the exec layer applies its own identical cap)
MAX_AUTO_THREADS = 8


@dataclass
class ScanStats:
    """Work accounting for one scan (legacy shape; see ``ExecStats``)."""

    chunks_total: int = 0     # predicate granules considered by the planner
    chunks_pruned: int = 0    # skipped whole via zone maps
    chunks_scanned: int = 0   # chunks materialized (predicate + projection)
    bytes_scanned: int = 0    # stored bytes of materialized chunks
    bytes_read: int = 0       # stored bytes actually read (cache misses)
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0  # entries this scan's inserts evicted
    rows_scanned: int = 0     # rows surviving the predicate
    rows_masked: int = 0      # rows deletion vectors suppressed
    chunks_corrupt: int = 0   # granules quarantined (on_corruption=skip)
    wall_s: float = 0.0

    def merge(self, other: "ScanStats") -> None:
        self.chunks_total += other.chunks_total
        self.chunks_pruned += other.chunks_pruned
        self.chunks_scanned += other.chunks_scanned
        self.bytes_scanned += other.bytes_scanned
        self.bytes_read += other.bytes_read
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.cache_evictions += other.cache_evictions
        self.rows_scanned += other.rows_scanned
        self.rows_masked += other.rows_masked
        self.chunks_corrupt += other.chunks_corrupt


@dataclass
class ScanResult:
    """Projected columns + global row ids + work accounting."""

    columns: dict[str, np.ndarray]
    row_ids: np.ndarray
    stats: ScanStats = field(default_factory=ScanStats)

    @property
    def n_rows(self) -> int:
        return len(self.row_ids)


class StoreSource(ColumnSource):
    """:class:`ColumnSource` over an open persistent-store table."""

    parallel_safe = True  # numpy/bit-kernel hot paths release the GIL

    def __init__(self, table):
        self.table = table
        granules: list[Granule] = []
        chunks: list[tuple[int, int]] = []  # granule -> (shard, chunk idx)
        first = table.column_names[0]
        for shard_idx, shard in enumerate(table.shards):
            for chunk_idx, meta in enumerate(shard.by_column[first]):
                granules.append(Granule(
                    len(granules), shard.row_start + meta.row_start,
                    meta.n_rows))
                chunks.append((shard_idx, chunk_idx))
        self._granules = tuple(granules)
        self._chunks = tuple(chunks)

    def implicit_filter(self):
        """The snapshot's deletion vectors as one positional Bitmap term
        (``None`` when every physical row is live)."""
        mask = self.table.live_mask()
        if mask is None:
            return None
        from repro.exec.expr import Bitmap

        return Bitmap(mask)

    @property
    def column_names(self) -> tuple:
        return self.table.column_names

    @property
    def n_rows(self) -> int:
        return self.table.n_rows

    def granules(self) -> tuple:
        return self._granules

    def _meta(self, granule: Granule, column: str):
        shard_idx, chunk_idx = self._chunks[granule.index]
        return shard_idx, \
            self.table.shards[shard_idx].by_column[column][chunk_idx]

    def granule_shard(self, granule: Granule) -> str:
        """Shard file holding this granule (executor error context)."""
        shard_idx, _ = self._chunks[granule.index]
        return os.path.basename(self.table.shards[shard_idx].path)

    def bounds(self, granule: Granule, column: str):
        _, meta = self._meta(granule, column)
        return meta.zmin, meta.zmax

    def load(self, granule: Granule, column: str, stats):
        """Revive one chunk through the table's cache, charging stats."""
        shard_idx, meta = self._meta(granule, column)
        table = self.table
        if stats is not None:
            stats.chunks_scanned += 1
            stats.bytes_scanned += meta.nbytes

        def loader():
            return table.revive_chunk(shard_idx, meta)

        if table.cache is None:
            if stats is not None:
                stats.bytes_read += meta.nbytes
                stats.reads += 1
            return loader()
        # the key is (shard *path*, offset), not (index, offset): a
        # server-shared cache spans many tables, and shard indices —
        # unlike generation-suffixed shard file paths — collide
        seq, hit, evicted = table.cache.get_or_load(
            (table.shards[shard_idx].path, meta.offset),
            loader, meta.nbytes)
        if stats is not None:
            if hit:
                stats.cache_hits += 1
            else:
                stats.cache_misses += 1
                stats.cache_evictions += evicted
                stats.bytes_read += meta.nbytes
                stats.reads += 1
        return seq

    def describe(self) -> str:
        return f"store:{self.table.path}"

    def wire_descriptor(self) -> dict:
        """The fields a :class:`repro.par.QueryDescriptor` needs to
        rebuild this exact snapshot in a worker process: the table
        directory plus the pinned generation (``None`` pins a legacy
        single-manifest table, which has no ``CURRENT`` chain), and the
        row/granule counts the worker cross-checks against its own open
        to detect generation drift before running anything."""
        generation = self.table.generation
        return {
            "table_path": os.path.abspath(self.table.path),
            "version": generation if generation else None,
            "verify_checksums": self.table.verify_checksums,
            "cache_bytes": self.table.cache.capacity_bytes
            if self.table.cache is not None else 0,
            "n_rows": self.table.n_rows,
            "n_granules": len(self._granules),
        }


def run_scan(table, projection: tuple[str, ...],
             where: tuple[str, int, int] | None, prune: bool,
             threads: int | None, **opts) -> ScanResult:
    """Execute one scan over ``table`` (see :meth:`Table.scan`).

    A thin shim over :func:`repro.exec.execute`: the historical
    ``(column, lo, hi)`` predicate becomes a pushable range term, and
    the unified stats fold back into :class:`ScanStats`.  Resilience
    knobs (``on_corruption``, ``timeout_s``, ``io_retries``) pass
    through ``**opts``.
    """
    plan = Plan.scan(projection)
    if where is not None:
        column, lo, hi = where
        plan = plan.where(Range(column, int(lo), int(hi)))
    res = execute(plan, StoreSource(table), threads=threads, prune=prune,
                  **opts)
    stats = ScanStats(
        chunks_total=res.stats.granules_total if where is not None else 0,
        chunks_pruned=res.stats.granules_pruned,
        chunks_scanned=res.stats.chunks_scanned,
        bytes_scanned=res.stats.bytes_scanned,
        bytes_read=res.stats.bytes_read,
        cache_hits=res.stats.cache_hits,
        cache_misses=res.stats.cache_misses,
        cache_evictions=res.stats.cache_evictions,
        rows_scanned=res.stats.rows_scanned,
        rows_masked=res.stats.rows_masked,
        chunks_corrupt=res.stats.chunks_corrupt,
        wall_s=res.stats.wall_s,
    )
    return ScanResult(columns=res.columns, row_ids=res.row_ids,
                      stats=stats)
