"""The parallel scan executor: pruning, pushdown, late materialization.

One scan is planned per shard and the shards run concurrently on a thread
pool — the hot paths (envelope parsing into numpy views, the word-parallel
bit-unpack kernels, vectorised ``filter_range``/``gather``) spend their
time in numpy, which releases the GIL, so shard-level threads overlap for
real.  Per shard the plan is:

1. **Zone-map pruning** — every chunk of the predicate column whose
   footer ``[zmin, zmax]`` band cannot intersect ``[lo, hi)`` is skipped
   without touching its bytes (the store-level analogue of LeCo's §5.1.1
   partition pruning, one level up).
2. **Predicate pushdown** — surviving chunks are revived and filtered
   through the sequence protocol's ``filter_range`` (LeCo-family chunks
   prune again at partition granularity inside the chunk).
3. **Late materialization** — projected columns ``gather`` only the
   surviving positions, chunk by chunk; a full scan (no predicate) takes
   the cheaper ``decode_all`` path.

Chunk loads go through the table's bounded LRU :class:`ChunkCache`; the
:class:`ScanStats` returned with every result distinguish bytes *scanned*
(chunk bytes the plan touched) from bytes *read* (cache misses that hit
the mmap), which is what the store benchmark reports.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

#: cap on auto-selected scan threads
MAX_AUTO_THREADS = 8


@dataclass
class ScanStats:
    """Work accounting for one scan (merged across shard workers)."""

    chunks_total: int = 0     # predicate chunks considered by the planner
    chunks_pruned: int = 0    # skipped whole via zone maps
    chunks_scanned: int = 0   # chunks materialized (predicate + projection)
    bytes_scanned: int = 0    # stored bytes of materialized chunks
    bytes_read: int = 0       # stored bytes actually read (cache misses)
    cache_hits: int = 0
    rows_scanned: int = 0     # rows surviving the predicate
    wall_s: float = 0.0

    def merge(self, other: "ScanStats") -> None:
        self.chunks_total += other.chunks_total
        self.chunks_pruned += other.chunks_pruned
        self.chunks_scanned += other.chunks_scanned
        self.bytes_scanned += other.bytes_scanned
        self.bytes_read += other.bytes_read
        self.cache_hits += other.cache_hits
        self.rows_scanned += other.rows_scanned


@dataclass
class ScanResult:
    """Projected columns + global row ids + work accounting."""

    columns: dict[str, np.ndarray]
    row_ids: np.ndarray
    stats: ScanStats = field(default_factory=ScanStats)

    @property
    def n_rows(self) -> int:
        return len(self.row_ids)


def _auto_threads(n_shards: int) -> int:
    return max(1, min(n_shards, os.cpu_count() or 1, MAX_AUTO_THREADS))


def run_scan(table, projection: tuple[str, ...],
             where: tuple[str, int, int] | None, prune: bool,
             threads: int | None) -> ScanResult:
    """Execute one scan over ``table`` (see :meth:`Table.scan`)."""
    start = time.perf_counter()
    n_shards = len(table.shards)
    threads = _auto_threads(n_shards) if threads is None else max(threads, 1)

    def job(idx: int):
        return _scan_shard(table, idx, projection, where, prune)

    if threads == 1 or n_shards <= 1:
        parts = [job(i) for i in range(n_shards)]
    else:
        with ThreadPoolExecutor(max_workers=threads) as pool:
            parts = list(pool.map(job, range(n_shards)))

    stats = ScanStats()
    for _, _, shard_stats in parts:
        stats.merge(shard_stats)
    row_ids = np.concatenate([p[0] for p in parts]) if parts else \
        np.empty(0, dtype=np.int64)
    columns = {
        name: np.concatenate([p[1][name] for p in parts]) if parts else
        np.empty(0, dtype=np.int64)
        for name in projection
    }
    stats.wall_s = time.perf_counter() - start
    return ScanResult(columns=columns, row_ids=row_ids, stats=stats)


def _load_chunk(table, shard_idx: int, meta, stats: ScanStats):
    """Revive one chunk through the table's cache, updating accounting."""
    stats.chunks_scanned += 1
    stats.bytes_scanned += meta.nbytes

    def loader():
        return table.revive_chunk(shard_idx, meta)

    if table.cache is None:
        stats.bytes_read += meta.nbytes
        return loader()
    seq, hit = table.cache.get_or_load((shard_idx, meta.offset), loader,
                                       meta.nbytes)
    if hit:
        stats.cache_hits += 1
    else:
        stats.bytes_read += meta.nbytes
    return seq


def _scan_shard(table, shard_idx: int, projection: tuple[str, ...],
                where, prune: bool):
    """One shard's plan; returns (global row ids, columns, stats)."""
    shard = table.shards[shard_idx]
    stats = ScanStats()
    out: dict[str, np.ndarray] = {}

    if where is None:
        # full scan: decode every chunk of the projected columns
        for name in projection:
            out[name] = np.concatenate(
                [_load_chunk(table, shard_idx, meta, stats).decode_all()
                 for meta in shard.by_column[name]])
        stats.rows_scanned += shard.footer.n_rows
        row_ids = shard.footer.row_start + np.arange(shard.footer.n_rows,
                                                     dtype=np.int64)
        return row_ids, out, stats

    pred_col, lo, hi = where
    position_runs = []
    pred_seqs: dict[int, object] = {}  # chunk index -> revived sequence
    for idx, meta in enumerate(shard.by_column[pred_col]):
        stats.chunks_total += 1
        if prune and (meta.zmax < lo or meta.zmin >= hi):
            stats.chunks_pruned += 1
            continue
        seq = _load_chunk(table, shard_idx, meta, stats)
        pred_seqs[idx] = seq
        hits = np.flatnonzero(seq.filter_range(lo, hi))
        if hits.size:
            position_runs.append(meta.row_start + hits)
    if not position_runs:
        empty = np.empty(0, dtype=np.int64)
        return empty, {name: empty.copy() for name in projection}, stats
    positions = np.concatenate(position_runs)
    stats.rows_scanned += len(positions)

    # late materialization: chunk boundaries are aligned across columns,
    # so one chunk-id split of the (sorted) positions serves every column
    chunk_ids = positions // table.chunk_rows
    boundaries = np.flatnonzero(np.diff(chunk_ids)) + 1
    groups = np.split(np.arange(len(positions)), boundaries)
    for name in projection:
        column_chunks = shard.by_column[name]
        gathered = np.empty(len(positions), dtype=np.int64)
        for group in groups:
            cid = int(chunk_ids[group[0]])
            meta = column_chunks[cid]
            if name == pred_col:
                # the filter stage already revived this chunk
                seq = pred_seqs[cid]
            else:
                seq = _load_chunk(table, shard_idx, meta, stats)
            gathered[group] = seq.gather(positions[group] - meta.row_start)
        out[name] = gathered
    return shard.footer.row_start + positions, out, stats
