"""On-disk layout of the persistent table store (shards + footer catalog).

A table is a directory: a ``_table.json`` manifest naming the schema and
the shard files, plus one ``shard-NNNNN.rps`` file per row-group shard::

    table_dir/
      _table.json          manifest: schema, shard list, writer geometry
      shard-00000.rps
      shard-00001.rps

Each shard file is self-describing — concatenated codec envelopes
(:mod:`repro.codecs.envelope`, so any chunk revives via
``codecs.from_bytes``) followed by a footer catalog::

    +------+-----+----------------------+-------------+------------+------+
    | RPSH | ver | chunk envelopes      | footer JSON | footer len | RPSF |
    | 4 B  | 1 B | RPRC... RPRC... ...  | utf-8       | 8 B LE     | 4 B  |
    +------+-----+----------------------+-------------+------------+------+

The footer carries, per column chunk: byte extent, row extent, the codec
that encoded it, and its **zone map** — conservative ``[zmin, zmax]``
value bounds taken from the codec's ``model_bounds()`` where exposed
(LeCo's model + residual-width band) and computed from the raw values
otherwise.  Readers parse the footer from the end of the file, so a scan
never touches chunk bytes the zone maps prune.  Everything malformed
raises :class:`ValueError`.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field

#: shard file leading magic
SHARD_MAGIC = b"RPSH"
#: shard file trailing magic (after the footer length)
FOOTER_MAGIC = b"RPSF"
#: current shard layout version
VERSION = 1
#: manifest file name inside a table directory
MANIFEST_NAME = "_table.json"
#: manifest format identifier
MANIFEST_FORMAT = "repro.store"

#: leading header: magic + version byte
HEADER_LEN = len(SHARD_MAGIC) + 1
#: trailing bytes after the footer: 8-byte LE length + magic
TRAILER_LEN = 8 + len(FOOTER_MAGIC)


@dataclass(frozen=True)
class ChunkMeta:
    """Catalog entry for one encoded column chunk inside a shard."""

    column: str
    row_start: int        # first row, local to the shard
    n_rows: int
    offset: int           # byte offset of the envelope inside the file
    nbytes: int           # envelope length in bytes
    codec: str            # registry name that encoded the chunk
    zmin: int             # zone map: conservative minimum value
    zmax: int             # zone map: conservative maximum value
    bounds: str           # "model" (codec-derived) or "computed"


@dataclass(frozen=True)
class ShardFooter:
    """Parsed footer catalog of one shard file."""

    row_start: int        # first row, global to the table
    n_rows: int
    chunks: tuple[ChunkMeta, ...]

    def column_chunks(self, column: str) -> tuple[ChunkMeta, ...]:
        return tuple(c for c in self.chunks if c.column == column)


def pack_footer(footer: ShardFooter) -> bytes:
    """Serialise the footer catalog + trailer (appended after the chunks)."""
    doc = {
        "version": VERSION,
        "row_start": footer.row_start,
        "n_rows": footer.n_rows,
        "chunks": [asdict(c) for c in footer.chunks],
    }
    body = json.dumps(doc, separators=(",", ":")).encode("utf-8")
    return body + len(body).to_bytes(8, "little") + FOOTER_MAGIC


def unpack_footer(blob: bytes) -> ShardFooter:
    """Parse a whole shard image's footer (header is validated too)."""
    if len(blob) < HEADER_LEN + TRAILER_LEN:
        raise ValueError(
            f"truncated shard: {len(blob)} bytes is shorter than the "
            f"{HEADER_LEN + TRAILER_LEN}-byte minimum")
    if blob[:4] != SHARD_MAGIC:
        raise ValueError(
            f"not a repro store shard (magic {bytes(blob[:4])!r}, "
            f"expected {SHARD_MAGIC!r})")
    if blob[4] > VERSION:
        raise ValueError(f"unsupported shard version {blob[4]}")
    if blob[-4:] != FOOTER_MAGIC:
        raise ValueError("shard trailer magic missing (truncated file?)")
    body_len = int.from_bytes(blob[-TRAILER_LEN:-4], "little")
    body_end = len(blob) - TRAILER_LEN
    if body_len > body_end - HEADER_LEN:
        raise ValueError(
            f"footer declares {body_len} bytes, shard too short")
    try:
        doc = json.loads(bytes(blob[body_end - body_len: body_end]))
    except json.JSONDecodeError as exc:
        raise ValueError(f"corrupt shard footer: {exc}") from None
    chunks = tuple(ChunkMeta(**c) for c in doc["chunks"])
    return ShardFooter(row_start=doc["row_start"], n_rows=doc["n_rows"],
                       chunks=chunks)


@dataclass(frozen=True)
class Manifest:
    """The table-level catalog (``_table.json``)."""

    columns: tuple[str, ...]
    n_rows: int
    shard_rows: int
    chunk_rows: int
    codecs: dict[str, str] = field(default_factory=dict)  # requested, per col
    shards: tuple[dict, ...] = ()  # {"file", "row_start", "n_rows"}


def shard_file_name(index: int) -> str:
    return f"shard-{index:05d}.rps"


def write_manifest(directory: str, manifest: Manifest) -> None:
    doc = {
        "format": MANIFEST_FORMAT,
        "version": VERSION,
        "columns": list(manifest.columns),
        "n_rows": manifest.n_rows,
        "shard_rows": manifest.shard_rows,
        "chunk_rows": manifest.chunk_rows,
        "codecs": dict(manifest.codecs),
        "shards": list(manifest.shards),
    }
    path = os.path.join(directory, MANIFEST_NAME)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)


def read_manifest(directory: str) -> Manifest:
    path = os.path.join(directory, MANIFEST_NAME)
    if not os.path.exists(path):
        raise ValueError(f"{directory!r} is not a store table "
                         f"(missing {MANIFEST_NAME})")
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("format") != MANIFEST_FORMAT:
        raise ValueError(f"foreign manifest format {doc.get('format')!r}")
    if doc.get("version", 0) > VERSION:
        raise ValueError(f"unsupported manifest version {doc.get('version')}")
    return Manifest(
        columns=tuple(doc["columns"]),
        n_rows=doc["n_rows"],
        shard_rows=doc["shard_rows"],
        chunk_rows=doc["chunk_rows"],
        codecs=dict(doc.get("codecs", {})),
        shards=tuple(doc.get("shards", ())),
    )
