"""On-disk layout of the persistent table store (shards + footer catalog).

A table is a directory: a manifest naming the schema and the shard
files, plus one ``shard-NNNNN.rps`` file per row-group shard.  Immutable
tables written by :class:`~repro.store.writer.TableWriter` keep the
original single-manifest layout; tables that have been mutated through
:mod:`repro.mutate` carry a *generation chain* — every commit publishes
a fresh ``_table.<gen>.json`` and atomically swaps the ``CURRENT``
pointer, so a reader always opens one consistent snapshot and older
generations stay readable for time travel::

    table_dir/
      _table.json          manifest: schema, shard list, writer geometry
      CURRENT              (mutable tables) text file naming the live gen
      _table.000001.json   one immutable manifest per committed generation
      shard-00000.rps
      shard-00001.rps
      shard-00001.rps.000002.dv   deletion-vector sidecar (bit = deleted)

Each shard file is self-describing — concatenated codec envelopes
(:mod:`repro.codecs.envelope`, so any chunk revives via
``codecs.from_bytes``) followed by a footer catalog (layout version 2)::

    +------+-----+----------------------+-------------+-----+-----+------+
    | RPSH | ver | chunk envelopes      | footer JSON | crc | len | RPSF |
    | 4 B  | 1 B | RPRC... RPRC... ...  | utf-8       | 4 B | 8 B | 4 B  |
    +------+-----+----------------------+-------------+-----+-----+------+

The footer carries, per column chunk: byte extent, row extent, the codec
that encoded it, its **zone map** — conservative ``[zmin, zmax]`` value
bounds taken from the codec's ``model_bounds()`` where exposed (LeCo's
model + residual-width band) and computed from the raw values otherwise
— and the **crc32 of its envelope bytes**, verified when the chunk is
revived on a cache miss.  The 4-byte crc32 of the footer JSON itself
sits between the body and its length, so a corrupted catalog (flipped
zone maps would silently mis-prune) is detected before it is trusted.
Version-1 files — no chunk or footer checksums — remain fully readable;
their chunks simply skip verification.  Readers parse the footer from
the end of the file, so a scan never touches chunk bytes the zone maps
prune.  Everything malformed raises :class:`ValueError`.
"""

from __future__ import annotations

import json
import os
import re
import zlib
from dataclasses import asdict, dataclass, field

import numpy as np

from repro import faults

#: shard file leading magic
SHARD_MAGIC = b"RPSH"
#: shard file trailing magic (after the footer length)
FOOTER_MAGIC = b"RPSF"
#: deletion-vector sidecar magic
DV_MAGIC = b"RPDV"
#: current shard layout version (2 = checksummed chunks + footer)
VERSION = 2
#: first shard layout version carrying crc32 checksums
CHECKSUM_VERSION = 2
#: deletion-vector sidecar layout version
DV_VERSION = 1
#: manifest file name inside a table directory
MANIFEST_NAME = "_table.json"
#: generation pointer file name (mutable tables)
CURRENT_NAME = "CURRENT"
#: manifest format identifier
MANIFEST_FORMAT = "repro.store"

#: leading header: magic + version byte
HEADER_LEN = len(SHARD_MAGIC) + 1
#: trailing bytes after the footer body: 8-byte LE length + magic
TRAILER_LEN = 8 + len(FOOTER_MAGIC)
#: extra trailing bytes in checksummed (v2+) shards: footer-body crc32
FOOTER_CRC_LEN = 4
#: dv sidecar header: magic + version + 8-byte LE row count + 4-byte crc
DV_HEADER_LEN = len(DV_MAGIC) + 1 + 8 + 4

GEN_MANIFEST_RE = re.compile(r"_table\.(\d{6})\.json$")


@dataclass(frozen=True)
class ChunkMeta:
    """Catalog entry for one encoded column chunk inside a shard."""

    column: str
    row_start: int        # first row, local to the shard
    n_rows: int
    offset: int           # byte offset of the envelope inside the file
    nbytes: int           # envelope length in bytes
    codec: str            # registry name that encoded the chunk
    zmin: int             # zone map: conservative minimum value
    zmax: int             # zone map: conservative maximum value
    bounds: str           # "model" (codec-derived) or "computed"
    crc: int | None = None  # crc32 of the envelope bytes (None: v1 file,
    #                         written before checksums — never verified)


@dataclass(frozen=True)
class ShardFooter:
    """Parsed footer catalog of one shard file."""

    row_start: int        # first row, global to the table
    n_rows: int
    chunks: tuple[ChunkMeta, ...]

    def column_chunks(self, column: str) -> tuple[ChunkMeta, ...]:
        return tuple(c for c in self.chunks if c.column == column)


def pack_footer(footer: ShardFooter) -> bytes:
    """Serialise the footer catalog + trailer (appended after the chunks).

    The body's crc32 sits between the JSON and its length (v2 layout),
    so a reader validates the catalog before trusting a single zone map.
    """
    doc = {
        "version": VERSION,
        "row_start": footer.row_start,
        "n_rows": footer.n_rows,
        "chunks": [asdict(c) for c in footer.chunks],
    }
    body = json.dumps(doc, separators=(",", ":")).encode("utf-8")
    return (body + zlib.crc32(body).to_bytes(4, "little")
            + len(body).to_bytes(8, "little") + FOOTER_MAGIC)


def unpack_footer(blob: bytes) -> ShardFooter:
    """Parse a whole shard image's footer (header is validated too)."""
    if len(blob) < HEADER_LEN + TRAILER_LEN:
        raise ValueError(
            f"truncated shard: {len(blob)} bytes is shorter than the "
            f"{HEADER_LEN + TRAILER_LEN}-byte minimum")
    if blob[:4] != SHARD_MAGIC:
        raise ValueError(
            f"not a repro store shard (magic {bytes(blob[:4])!r}, "
            f"expected {SHARD_MAGIC!r})")
    version = blob[4]
    if version > VERSION:
        raise ValueError(
            f"shard format version {version} is newer than the supported "
            f"version {VERSION}; upgrade the reader")
    if blob[-4:] != FOOTER_MAGIC:
        raise ValueError("shard trailer magic missing (truncated file?)")
    body_len = int.from_bytes(blob[-TRAILER_LEN:-4], "little")
    body_end = len(blob) - TRAILER_LEN
    crc_len = FOOTER_CRC_LEN if version >= CHECKSUM_VERSION else 0
    if body_len > body_end - HEADER_LEN - crc_len:
        raise ValueError(
            f"footer declares {body_len} bytes, shard too short")
    body = bytes(blob[body_end - crc_len - body_len: body_end - crc_len])
    if crc_len:
        crc = int.from_bytes(blob[body_end - crc_len: body_end], "little")
        if zlib.crc32(body) != crc:
            raise ValueError(
                "shard footer checksum mismatch (corrupt catalog: "
                "zone maps and chunk extents are not trustworthy)")
    try:
        doc = json.loads(body)
    except json.JSONDecodeError as exc:
        raise ValueError(f"corrupt shard footer: {exc}") from None
    chunks = tuple(ChunkMeta(**c) for c in doc["chunks"])
    return ShardFooter(row_start=doc["row_start"], n_rows=doc["n_rows"],
                       chunks=chunks)


@dataclass(frozen=True)
class Manifest:
    """The table-level catalog (one immutable generation of it).

    ``shards`` entries are ``{"file", "row_start", "n_rows"}`` dicts; a
    mutated table's entries may additionally carry ``"dv"`` — the name
    of the shard's deletion-vector sidecar for this generation — and
    ``"live_rows"`` (rows the vector leaves visible).
    """

    columns: tuple[str, ...]
    n_rows: int
    shard_rows: int
    chunk_rows: int
    codecs: dict[str, str] = field(default_factory=dict)  # requested, per col
    shards: tuple[dict, ...] = ()
    generation: int = 0

    @property
    def live_rows(self) -> int:
        """Rows visible after deletion vectors (physical when none)."""
        return sum(entry.get("live_rows", entry["n_rows"])
                   for entry in self.shards)


def shard_file_name(index: int, generation: int | None = None) -> str:
    """Shard file name; generation-suffixed names never collide across
    the commits of a mutable table's manifest chain."""
    if generation is None:
        return f"shard-{index:05d}.rps"
    return f"shard-{index:05d}.g{generation:06d}.rps"


def dv_file_name(shard_file: str, generation: int) -> str:
    """Deletion-vector sidecar name for one shard at one generation."""
    return f"{shard_file}.{generation:06d}.dv"


def manifest_file_name(generation: int) -> str:
    return f"_table.{generation:06d}.json"


def write_atomic(path: str, data: bytes, point: str = "atomic") -> None:
    """Publish ``data`` at ``path`` via a same-directory rename, so a
    concurrent reader sees the old file or the new one, never a torn
    half-written mix.

    ``point`` names the fault-injection hooks (``{point}.write`` /
    ``.fsync`` / ``.rename``) so the crash-matrix suite can kill the
    protocol between any two of its steps.
    """
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        faults.write_through(f"{point}.write", fh, data)
        fh.flush()
        faults.fire(f"{point}.fsync", path=tmp)
        os.fsync(fh.fileno())
    faults.fire(f"{point}.rename", src=tmp, dst=path)
    os.replace(tmp, path)


def write_manifest(directory: str, manifest: Manifest,
                   generation: int | None = None) -> None:
    """Write one manifest file (atomically).

    ``generation=None`` writes the legacy single ``_table.json``;
    otherwise the immutable ``_table.<gen>.json`` of a generation chain
    (the commit only becomes visible once ``write_current`` swaps the
    pointer).
    """
    doc = {
        "format": MANIFEST_FORMAT,
        "version": VERSION,
        "generation": generation if generation is not None
        else manifest.generation,
        "columns": list(manifest.columns),
        "n_rows": manifest.n_rows,
        "shard_rows": manifest.shard_rows,
        "chunk_rows": manifest.chunk_rows,
        "codecs": dict(manifest.codecs),
        "shards": list(manifest.shards),
    }
    name = MANIFEST_NAME if generation is None \
        else manifest_file_name(generation)
    body = json.dumps(doc, indent=1).encode("utf-8")
    write_atomic(os.path.join(directory, name), body, point="manifest")


def read_current(directory: str) -> int | None:
    """The generation the ``CURRENT`` pointer names (``None`` = legacy
    single-manifest table)."""
    path = os.path.join(directory, CURRENT_NAME)
    try:
        with open(path, encoding="utf-8") as fh:
            text = fh.read().strip()
    except FileNotFoundError:
        return None
    try:
        return int(text)
    except ValueError:
        raise ValueError(
            f"corrupt {CURRENT_NAME} pointer {text!r} in {directory!r}"
        ) from None


def write_current(directory: str, generation: int) -> None:
    """Atomically point ``CURRENT`` at ``generation`` — the commit."""
    write_atomic(os.path.join(directory, CURRENT_NAME),
                  f"{generation}\n".encode("utf-8"), point="current")


def list_versions(directory: str) -> list[int]:
    """Published manifest generations, oldest first (time travel menu).

    Only generations the ``CURRENT`` pointer has reached count: a
    manifest staged by a commit that crashed before the pointer swap is
    an orphan, not a version (the next mutable open reaps it).
    """
    current = read_current(directory)
    gens = []
    for name in os.listdir(directory):
        match = GEN_MANIFEST_RE.fullmatch(name)
        if match:
            gen = int(match.group(1))
            if current is None or gen <= current:
                gens.append(gen)
    return sorted(gens)


def read_manifest(directory: str, version: int | None = None) -> Manifest:
    """Read one manifest: a pinned ``version`` generation, else whatever
    ``CURRENT`` points at, else the legacy ``_table.json``."""
    if version is None:
        version = read_current(directory)
    if version is None:
        path = os.path.join(directory, MANIFEST_NAME)
        if not os.path.exists(path):
            raise ValueError(f"{directory!r} is not a store table "
                             f"(missing {MANIFEST_NAME})")
    else:
        path = os.path.join(directory, manifest_file_name(version))
        if not os.path.exists(path):
            known = ", ".join(str(g) for g in list_versions(directory))
            raise ValueError(
                f"no manifest for version {version} in {directory!r}"
                + (f" (published: {known})" if known else ""))
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("format") != MANIFEST_FORMAT:
        raise ValueError(f"foreign manifest format {doc.get('format')!r}")
    if doc.get("version", 0) > VERSION:
        raise ValueError(
            f"manifest format version {doc.get('version')} is newer than "
            f"the supported version {VERSION}; upgrade the reader")
    return Manifest(
        columns=tuple(doc["columns"]),
        n_rows=doc["n_rows"],
        shard_rows=doc["shard_rows"],
        chunk_rows=doc["chunk_rows"],
        codecs=dict(doc.get("codecs", {})),
        shards=tuple(doc.get("shards", ())),
        generation=int(doc.get("generation", version or 0)),
    )


# ------------------------------------------------------- deletion vectors
def pack_deletion_vector(deleted: np.ndarray) -> bytes:
    """Serialise a shard-local deleted-row bitmap (bit set = deleted)."""
    deleted = np.asarray(deleted, dtype=bool)
    payload = np.packbits(deleted).tobytes()
    return (DV_MAGIC + bytes([DV_VERSION])
            + len(deleted).to_bytes(8, "little")
            + zlib.crc32(payload).to_bytes(4, "little")
            + payload)


def unpack_deletion_vector(blob: bytes) -> np.ndarray:
    """Parse a sidecar back into a boolean deleted mask."""
    if len(blob) < DV_HEADER_LEN or blob[:4] != DV_MAGIC:
        raise ValueError(
            f"not a deletion-vector sidecar (magic {bytes(blob[:4])!r}, "
            f"expected {DV_MAGIC!r})")
    if blob[4] > DV_VERSION:
        raise ValueError(
            f"deletion-vector version {blob[4]} is newer than the "
            f"supported version {DV_VERSION}; upgrade the reader")
    n_rows = int.from_bytes(blob[5:13], "little")
    crc = int.from_bytes(blob[13:17], "little")
    payload = blob[DV_HEADER_LEN:]
    if len(payload) != (n_rows + 7) // 8:
        raise ValueError(
            f"deletion vector for {n_rows} rows wants "
            f"{(n_rows + 7) // 8} payload bytes, found {len(payload)}")
    if zlib.crc32(payload) != crc:
        raise ValueError("deletion-vector checksum mismatch (corrupt "
                         "sidecar)")
    bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8),
                         count=n_rows)
    return bits.astype(bool)
