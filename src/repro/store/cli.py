"""Command-line interface of the store: ``python -m repro.store``.

Read-side subcommands::

    python -m repro.store ingest --out DIR --fixture sensors --rows 100000
    python -m repro.store info DIR [--chunks]
    python -m repro.store scan DIR --columns id,val --where ts:1000:2000

and the mutation layer (:mod:`repro.mutate`)::

    python -m repro.store append DIR --fixture sensors --rows 10000
    python -m repro.store delete DIR --where ts:1000:2000
    python -m repro.store compact DIR [--threshold 0.5]
    python -m repro.store versions DIR
    python -m repro.store scrub DIR [--version G] [--json]

``ingest`` materialises one of the named dataset fixtures (any table from
``repro.datasets.load_table`` or the ``sensors`` stream) into a table
directory; ``scan`` builds a :class:`repro.exec.Plan` over the unified
execution layer, runs it morsel-parallel with pruning + pushdown, and
prints the work accounting next to the first result rows (pass
``--explain`` for the annotated plan).  ``append``/``delete`` adopt the
table into the generation chain, log through the WAL, and flush a new
snapshot (``--no-flush`` leaves the mutation buffered for a later
commit); ``versions`` lists every published generation a reader can
time-travel to (``scan --version G``).  Unknown projection or predicate
columns exit with a clean one-line error naming the available columns.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.exec import ExecTimeout, Plan, Range
from repro.store.executor import StoreSource
from repro.store.table import Table
from repro.store.writer import (
    DEFAULT_CHUNK_ROWS,
    DEFAULT_SHARD_ROWS,
    TableWriter,
)


def _cmd_ingest(args) -> int:
    from repro.datasets.store_fixtures import ingest_fixture

    columns = ingest_fixture(args.fixture, n=args.rows, seed=args.seed)
    start = time.perf_counter()
    with TableWriter(args.out, codec=args.codec,
                     shard_rows=args.shard_rows,
                     chunk_rows=args.chunk_rows,
                     overwrite=args.overwrite) as writer:
        writer.append(columns)
    elapsed = time.perf_counter() - start
    with Table.open(args.out) as table:
        info = table.info()
    raw = sum(col.nbytes for col in columns.values())
    print(f"ingested {info['n_rows']} rows x "
          f"{len(info['columns'])} columns -> {args.out}")
    print(f"  shards: {info['n_shards']}  stored: {info['stored_bytes']} B "
          f"({info['stored_bytes'] / max(raw, 1):.1%} of raw)  "
          f"codecs: {info['chunk_codec_mix']}  {elapsed:.2f}s")
    return 0


def _cmd_info(args) -> int:
    with Table.open(args.table) as table:
        print(json.dumps(table.info(), indent=2))
        if args.chunks:
            for idx, shard in enumerate(table.shards):
                print(f"shard {idx} ({shard.path}): "
                      f"rows [{shard.row_start}, "
                      f"{shard.row_start + shard.footer.n_rows})")
                for c in shard.footer.chunks:
                    print(f"  {c.column:>16} rows {c.row_start:>8}+"
                          f"{c.n_rows:<7} {c.codec:>6} {c.nbytes:>8} B  "
                          f"zone [{c.zmin}, {c.zmax}] ({c.bounds})")
    return 0


def _parse_where(text: str) -> tuple[str, int, int]:
    parts = text.split(":")
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            f"--where wants column:lo:hi, got {text!r}")
    return parts[0], int(parts[1]), int(parts[2])


def _cmd_append(args) -> int:
    from repro.datasets.store_fixtures import ingest_fixture
    from repro.mutate import MutableTable

    columns = ingest_fixture(args.fixture, n=args.rows, seed=args.seed)
    with MutableTable.open(args.table) as table:
        appended = table.append(columns)
        print(f"appended {appended} rows "
              f"({table.pending_rows} buffered in the memtable)")
        if not args.no_flush:
            generation = table.flush()
            print(f"flushed: generation {generation}, "
                  f"{table.n_rows} live rows")
    return 0


def _cmd_delete(args) -> int:
    from repro.mutate import MutableTable

    with MutableTable.open(args.table) as table:
        column, lo, hi = args.where
        if column not in table.schema:
            print(f"error: unknown predicate column {column!r}; "
                  f"available: {', '.join(table.schema)}",
                  file=sys.stderr)
            return 2
        deleted = table.delete((column, lo, hi))
        print(f"deleted {deleted} rows "
              f"({table.pending_deletes} pending against the snapshot)")
        if not args.no_flush:
            generation = table.flush()
            print(f"flushed: generation {generation}, "
                  f"{table.n_rows} live rows")
    return 0


def _cmd_compact(args) -> int:
    from repro.mutate import MutableTable, live_fractions

    with MutableTable.open(args.table) as table:
        with table.snapshot() as snap:
            before = snap.info()
        generation = table.compact(threshold=args.threshold)
        if generation is None:
            print(f"nothing to compact: every shard is above "
                  f"{args.threshold:.0%} live")
            return 0
        with table.snapshot() as snap:
            after = snap.info()
            fractions = live_fractions(snap)
        print(f"compacted -> generation {generation}: "
              f"{before['n_rows']} physical rows -> {after['n_rows']} "
              f"({after['live_rows']} live), "
              f"{before['stored_bytes']} B -> {after['stored_bytes']} B")
        print("  shard live fractions: "
              + ", ".join(f"{f:.0%}" for f in fractions))
    return 0


def _cmd_versions(args) -> int:
    versions = Table.versions(args.table)
    if not versions:
        print(f"{args.table}: no published generations "
              "(immutable table; mutate it once to start the chain)")
        return 0
    for generation in versions:
        with Table.open(args.table, version=generation) as table:
            mark = "*" if generation == versions[-1] else " "
            print(f"{mark} generation {generation:>4}: "
                  f"{table.live_rows:>10} live / {table.n_rows:>10} "
                  f"physical rows, {len(table.shards):>3} shards, "
                  f"{table.stored_bytes():>10} B")
    return 0


def _cmd_scrub(args) -> int:
    from dataclasses import asdict

    from repro.store.scrub import scrub_table

    try:
        report = scrub_table(args.table, version=args.version)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        payload = asdict(report)
        # asdict only walks dataclass fields; surface the derived
        # totals CI log-diffs watch for regressions
        payload["ok"] = report.ok
        payload["bytes_walked"] = report.bytes_walked
        payload["elapsed_s"] = report.elapsed_s
        print(json.dumps(payload, indent=2, default=str))
    else:
        print(report.summary())
    return 0 if report.ok else 1


def _cmd_scan(args) -> int:
    with Table.open(args.table, version=args.version) as table:
        columns = args.columns.split(",") if args.columns else None
        # validate names here so a typo is one clean line, while
        # unexpected internal errors keep their tracebacks
        requested = list(columns or [])
        if args.where is not None:
            requested.append(args.where[0])
        unknown = [c for c in requested if c not in table.column_names]
        if unknown:
            print("error: unknown column(s) "
                  + ", ".join(repr(c) for c in unknown)
                  + f"; available: {', '.join(table.column_names)}",
                  file=sys.stderr)
            return 2
        plan = Plan.scan(tuple(columns) if columns else None)
        if args.where is not None:
            pred_col, lo, hi = args.where
            plan = plan.where(Range(pred_col, lo, hi))
        try:
            result = plan.execute(StoreSource(table),
                                  threads=args.threads,
                                  prune=not args.no_prune,
                                  timeout_s=args.timeout_s)
        except ExecTimeout as exc:
            stats = exc.stats
            print(f"error: {exc}", file=sys.stderr)
            if stats is not None:
                print(f"  partial work before the deadline: "
                      f"{stats.chunks_scanned} chunks scanned, "
                      f"{stats.granules_pruned} pruned, "
                      f"{stats.bytes_read} bytes read in "
                      f"{stats.wall_s * 1e3:.1f} ms", file=sys.stderr)
            return 1
        stats = result.stats
        rate = result.n_rows / max(stats.wall_s, 1e-9)
        print(f"{result.n_rows} rows in {stats.wall_s * 1e3:.1f} ms "
              f"({rate:,.0f} rows/s, {stats.rows_masked} deleted rows "
              "masked)")
        print(f"  chunks: {stats.granules_pruned} pruned / "
              f"{stats.chunks_scanned} scanned  "
              f"bytes read: {stats.bytes_read}  "
              f"(scanned: {stats.bytes_scanned}, cache: "
              f"{stats.cache_hits} hits, {stats.cache_misses} misses, "
              f"{stats.cache_evictions} evicted)")
        if args.explain:
            print(result.explain())
        names = list(result.columns)
        head = min(args.limit, result.n_rows)
        if head:
            print("  row_id  " + "  ".join(f"{n:>12}" for n in names))
            for i in range(head):
                cells = "  ".join(f"{int(result.columns[n][i]):>12}"
                                  for n in names)
                print(f"  {int(result.row_ids[i]):>6}  {cells}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store",
        description="persistent sharded columnar table store")
    sub = parser.add_subparsers(dest="command", required=True)

    ingest = sub.add_parser("ingest", help="materialise a dataset fixture")
    ingest.add_argument("--out", required=True, help="table directory")
    ingest.add_argument("--fixture", default="sensors",
                        help="fixture name (sensors or a datasets table)")
    ingest.add_argument("--rows", type=int, default=100_000)
    ingest.add_argument("--codec", default="auto")
    ingest.add_argument("--shard-rows", type=int,
                        default=DEFAULT_SHARD_ROWS)
    ingest.add_argument("--chunk-rows", type=int,
                        default=DEFAULT_CHUNK_ROWS)
    ingest.add_argument("--seed", type=int, default=0)
    ingest.add_argument("--overwrite", action="store_true")
    ingest.set_defaults(func=_cmd_ingest)

    info = sub.add_parser("info", help="print the table catalog")
    info.add_argument("table", help="table directory")
    info.add_argument("--chunks", action="store_true",
                      help="list every chunk with its zone map")
    info.set_defaults(func=_cmd_info)

    scan = sub.add_parser("scan", help="run a pruned parallel scan")
    scan.add_argument("table", help="table directory")
    scan.add_argument("--columns", default=None,
                      help="comma-separated projection (default: all)")
    scan.add_argument("--where", type=_parse_where, default=None,
                      metavar="COL:LO:HI",
                      help="range predicate lo <= col < hi")
    scan.add_argument("--version", type=int, default=None,
                      help="time-travel to a published generation")
    scan.add_argument("--threads", type=int, default=None)
    scan.add_argument("--timeout-s", type=float, default=None,
                      help="cancel the scan after this many seconds "
                           "(prints partial stats, exits 1)")
    scan.add_argument("--no-prune", action="store_true",
                      help="disable zone-map pruning (baseline)")
    scan.add_argument("--explain", action="store_true",
                      help="print the executed plan with pruning counts")
    scan.add_argument("--limit", type=int, default=5,
                      help="result rows to print")
    scan.set_defaults(func=_cmd_scan)

    append = sub.add_parser(
        "append", help="append fixture rows through the mutation layer")
    append.add_argument("table", help="table directory")
    append.add_argument("--fixture", default="sensors")
    append.add_argument("--rows", type=int, default=10_000)
    append.add_argument("--seed", type=int, default=0)
    append.add_argument("--no-flush", action="store_true",
                        help="leave the batch buffered (WAL + memtable)")
    append.set_defaults(func=_cmd_append)

    delete = sub.add_parser(
        "delete", help="delete rows matching a range predicate")
    delete.add_argument("table", help="table directory")
    delete.add_argument("--where", type=_parse_where, required=True,
                        metavar="COL:LO:HI",
                        help="delete rows with lo <= col < hi")
    delete.add_argument("--no-flush", action="store_true",
                        help="leave the deletes pending (WAL + memtable)")
    delete.set_defaults(func=_cmd_delete)

    compact = sub.add_parser(
        "compact", help="rewrite shards below a live-row threshold")
    compact.add_argument("table", help="table directory")
    compact.add_argument("--threshold", type=float, default=0.5,
                         help="rewrite shards below this live fraction")
    compact.set_defaults(func=_cmd_compact)

    versions = sub.add_parser(
        "versions", help="list published (time-travelable) generations")
    versions.add_argument("table", help="table directory")
    versions.set_defaults(func=_cmd_versions)

    scrub = sub.add_parser(
        "scrub",
        help="verify every checksum and zone-map invariant, per shard")
    scrub.add_argument("table", help="table directory")
    scrub.add_argument("--version", type=int, default=None,
                       help="scrub a pinned published generation")
    scrub.add_argument("--json", action="store_true",
                       help="emit the full report as JSON")
    scrub.set_defaults(func=_cmd_scrub)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
