"""``repro.store`` — persistent sharded columnar table store (§5.1 on disk).

The reproduction's first real persistence layer: a table is a directory of
row-group *shard* files, each a sequence of codec-registry envelopes plus
a footer catalog carrying schema, codec ids, row counts, and per-chunk
zone maps.  Reads go through ``mmap``; scans prune whole chunks on zone
maps, push range predicates into the codecs' vectorised paths, gather
projected columns late, run shards concurrently on a thread pool, and
keep revived chunks in a bounded LRU cache::

    from repro.store import Table, write_table

    write_table("t", {"ts": ts, "id": ids, "val": vals}, codec="auto")
    with Table.open("t") as table:
        res = table.scan(columns=["id", "val"], where=("ts", lo, hi))
        res.columns["val"], res.row_ids, res.stats.bytes_read

Tables mutated through :mod:`repro.mutate` carry a manifest generation
chain: ``Table.open(path, version=g)`` pins any published snapshot
(time travel), and deletion-vector sidecars mask deleted rows through
the executor's positional ``Bitmap`` machinery.

Since the v2 shard layout every chunk envelope and footer catalog is
crc32-checksummed end to end: a cache-miss revive that fails
verification raises :class:`CorruptChunkError` (or quarantines the
chunk under ``scan(..., on_corruption="skip")``), and the offline
``python -m repro.store scrub`` walks every invariant per shard.

``python -m repro.store`` exposes ``ingest`` / ``scan`` / ``info`` plus
the mutation cycle ``append`` / ``delete`` / ``compact`` / ``versions``
and the integrity check ``scrub``.
"""

from repro.exec.errors import CorruptChunkError
from repro.store.cache import ChunkCache
from repro.store.executor import ScanResult, ScanStats, StoreSource
from repro.store.format import ChunkMeta, Manifest, ShardFooter
from repro.store.scrub import ScrubReport, ShardReport, scrub_table
from repro.store.table import Shard, Table
from repro.store.writer import (
    DEFAULT_CHUNK_ROWS,
    DEFAULT_SHARD_ROWS,
    TableWriter,
    write_table,
)

__all__ = [
    "ChunkCache",
    "ChunkMeta",
    "CorruptChunkError",
    "DEFAULT_CHUNK_ROWS",
    "DEFAULT_SHARD_ROWS",
    "Manifest",
    "ScanResult",
    "ScanStats",
    "ScrubReport",
    "Shard",
    "ShardReport",
    "StoreSource",
    "ShardFooter",
    "Table",
    "TableWriter",
    "scrub_table",
    "write_table",
]
