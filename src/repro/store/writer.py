"""``TableWriter`` — ingest columns into a persistent sharded table.

The writer buffers appended batches, partitions them into row-group
*shards* of ``shard_rows`` rows, and within each shard slices every column
into aligned *chunks* of ``chunk_rows`` rows.  Each chunk is encoded
through the codec registry and written as a self-describing envelope, so
the reader revives it with :func:`repro.codecs.from_bytes` without store-
side per-codec knowledge.

Codec selection is :class:`~repro.codecs.CodecSpec`-driven and per
column: pass one spec/name for every column, or a mapping, or ``"auto"``
— the writer then trial-encodes each chunk with the lightweight
candidates and keeps the smallest envelope (the store-level analogue of
the engine's encoding choice).

Zone maps follow one rule, uniformly: codecs whose registry entry sets
the ``supports_model_bounds`` capability flag provide their own bounds
via ``model_bounds()`` (LeCo's model + residual-width band, no decode);
for everything else the writer computes exact min/max from the raw
values it is holding anyway.  New codecs therefore get zone maps with
zero store-side special-casing — set the flag only if the format can
bound values cheaper than the computed fallback.  The exec planner
reads the same flag when deriving pruning bounds for in-memory sources.
"""

from __future__ import annotations

import os
import re
import zlib

import numpy as np

from repro import codecs, faults
from repro.codecs.spec import CodecSpec
from repro.faults import SimulatedCrash
from repro.store.format import (
    CURRENT_NAME,
    SHARD_MAGIC,
    VERSION,
    ChunkMeta,
    Manifest,
    ShardFooter,
    pack_footer,
    read_manifest,
    shard_file_name,
    write_manifest,
)

_SHARD_INDEX_RE = re.compile(r"shard-(\d+)\b.*\.rps$")
_GEN_STATE_RE = re.compile(
    r"(_table\.\d{6}\.json|.*\.dv|wal-\d+\.log(\.corrupt)?)$")

#: default shard (row group) size in rows
DEFAULT_SHARD_ROWS = 1 << 16
#: default chunk size in rows (aligned across all columns of a shard)
DEFAULT_CHUNK_ROWS = 1 << 12
#: trial candidates for ``codec="auto"`` (smallest envelope wins)
AUTO_CANDIDATES = ("leco", "dict", "plain")


def next_shard_index(path: str) -> int:
    """One past the highest shard index named by any ``.rps`` file, so
    new shards never clobber files a concurrent reader (or an older
    manifest generation) may still reference."""
    highest = -1
    for name in os.listdir(path):
        match = _SHARD_INDEX_RE.fullmatch(name)
        if match:
            highest = max(highest, int(match.group(1)))
    return highest + 1


def _partition_rows(chunk_rows: int) -> int:
    """LeCo/delta partition length used inside one chunk."""
    return max(min(1024, chunk_rows), 16)


def _build_codec(spec, chunk_rows: int):
    """Construct one registry codec from a name or a :class:`CodecSpec`."""
    if isinstance(spec, CodecSpec):
        if spec.codec.startswith("leco"):
            return codecs.get(spec.codec, spec=spec)
        return codecs.get(spec.codec)
    name = str(spec)
    part = _partition_rows(chunk_rows)
    if name in ("leco", "leco-fix", "leco-var", "leco-auto"):
        if name == "leco":
            return codecs.get("leco", partitioner=part)
        return codecs.get(name, max_partition_size=part)
    if name == "delta":
        return codecs.get("delta", partition_size=part)
    if name == "for":
        return codecs.get("for", frame_size=part)
    return codecs.get(name)


class TableWriter:
    """Streaming writer for one table directory.

    Usage::

        with TableWriter(path, codec="auto") as w:
            w.append({"ts": ts_batch, "val": val_batch})
        # or the one-shot convenience:
        write_table(path, {"ts": ts, "val": val})

    ``codec`` is a registry name, a :class:`CodecSpec`, ``"auto"``, or a
    per-column mapping of any of those.  ``schema`` optionally declares
    the column names up front: malformed schemas (duplicates, zero
    columns) and per-column codec mappings that do not cover them are
    rejected here, at construction, instead of surfacing when the first
    batch arrives.

    ``publish_manifest=False`` switches the writer into *extend* mode
    for the mutation layer: shards are still staged and renamed into
    place at ``close``, but no manifest is written and nothing existing
    is touched — the caller folds :attr:`shard_entries` into its own
    manifest generation (``start_row`` offsets their global row starts,
    ``generation`` suffixes the file names so commits never collide).
    """

    def __init__(self, path: str, codec="auto",
                 shard_rows: int = DEFAULT_SHARD_ROWS,
                 chunk_rows: int = DEFAULT_CHUNK_ROWS,
                 overwrite: bool = False, schema=None,
                 publish_manifest: bool = True, start_row: int = 0,
                 generation: int | None = None):
        if shard_rows <= 0 or chunk_rows <= 0:
            raise ValueError("shard_rows and chunk_rows must be positive")
        if chunk_rows > shard_rows:
            chunk_rows = shard_rows
        schema = self._validate_schema(schema, codec)
        self.path = path
        self.codec = codec
        self.shard_rows = shard_rows
        self.chunk_rows = chunk_rows
        self._publish_manifest = publish_manifest
        self._start_row = start_row
        self._generation = generation
        self._name_base = 0
        os.makedirs(path, exist_ok=True)
        if publish_manifest:
            try:
                read_manifest(path)
            except ValueError:
                pass
            else:
                if not overwrite:
                    raise ValueError(
                        f"{path!r} already holds a store table "
                        "(pass overwrite=True to replace it)")
                # republish under fresh names: a reader holding the old
                # manifest keeps resolving the old files until the new
                # manifest is swapped in and the old files are reaped
                self._name_base = next_shard_index(path)
            # leftovers of a writer that crashed mid-write are never data
            for stale in os.listdir(path):
                if stale.endswith(".rps.tmp"):
                    os.remove(os.path.join(path, stale))
        else:
            self._name_base = next_shard_index(path)
        self._schema: tuple[str, ...] | None = schema
        self._buffer: dict[str, list[np.ndarray]] = \
            {name: [] for name in schema} if schema else {}
        self._buffered = 0
        self._rows_written = 0
        self._shards: list[dict] = []
        self._codec_cache: dict[object, object] = {}
        self._closed = False

    @staticmethod
    def _validate_schema(schema, codec) -> tuple[str, ...] | None:
        """Construction-time schema checks (duplicates, zero columns)."""
        if schema is None:
            return None
        names = tuple(str(name) for name in schema)
        if not names:
            raise ValueError(
                "zero-column schema: a table needs at least one column")
        dupes = sorted({n for n in names if names.count(n) > 1})
        if dupes:
            raise ValueError(
                f"duplicate column name(s) in schema: {', '.join(dupes)}")
        if isinstance(codec, dict):
            missing = [n for n in names if n not in codec]
            if missing:
                raise ValueError(
                    "no codec configured for column(s): "
                    + ", ".join(repr(n) for n in missing))
        return names

    # ------------------------------------------------------------- ingest
    def append(self, batch: dict[str, np.ndarray]) -> None:
        """Buffer one batch of equal-length integer columns.

        The whole batch is validated and converted before any column is
        committed to the buffer: a rejected batch leaves the writer
        exactly as it was (no partial, misaligned state).
        """
        if self._closed:
            raise ValueError("writer is closed")
        if not batch:
            raise ValueError("empty batch")
        if self._schema is not None and tuple(batch) != self._schema:
            raise ValueError(
                f"batch columns {tuple(batch)} do not match the schema "
                f"{self._schema}")
        staged: dict[str, np.ndarray] = {}
        n = None
        for name, col in batch.items():
            col = np.asarray(col)
            if col.dtype.kind not in "iu":
                raise TypeError(
                    f"column {name!r}: integer input required, "
                    f"got {col.dtype}")
            if col.dtype.kind == "u" and col.size and \
                    int(col.max()) > np.iinfo(np.int64).max:
                raise ValueError(
                    f"column {name!r}: value {int(col.max())} exceeds the "
                    "int64 range the store encodes")
            col = col.astype(np.int64)
            if n is None:
                n = len(col)
            elif len(col) != n:
                raise ValueError(f"column {name!r} length mismatch")
            staged[name] = col
        if self._schema is None:
            self._schema = tuple(staged)
            self._buffer = {name: [] for name in self._schema}
        for name, col in staged.items():
            self._buffer[name].append(col)
        self._buffered += n
        while self._buffered >= self.shard_rows:
            self._flush_shard(self.shard_rows)

    def close(self) -> None:
        """Publish the table: finalise shards, then write the manifest.

        Shards are staged as ``.rps.tmp`` files and only renamed into
        place here, so a writer that fails before ``close`` (the context
        manager skips it on exceptions) leaves a pre-existing table — and
        its still-valid manifest — untouched.
        """
        if self._closed:
            return
        if self._buffered:
            self._flush_shard(self._buffered)
        if self._rows_written == 0:
            raise ValueError("cannot close a writer that ingested no rows")
        for entry in self._shards:
            final = os.path.join(self.path, entry["file"])
            faults.fire("shard.publish", src=final + ".tmp", dst=final)
            os.replace(final + ".tmp", final)
        if not self._publish_manifest:
            self._closed = True
            return
        # the manifest swap is the publication point: it lands atomically
        # before any superseded file is reaped, so a concurrent reader
        # resolves either the complete old table or the complete new one
        write_manifest(self.path, Manifest(
            columns=self._schema,
            n_rows=self._rows_written,
            shard_rows=self.shard_rows,
            chunk_rows=self.chunk_rows,
            codecs={name: self._codec_label(name) for name in self._schema},
            shards=tuple(self._shards),
        ))
        live = {entry["file"] for entry in self._shards}
        for name in os.listdir(self.path):
            if name.endswith(".rps") and name not in live:
                os.remove(os.path.join(self.path, name))
            elif name == CURRENT_NAME or _GEN_STATE_RE.fullmatch(name):
                # a full overwrite replaces a mutable table's whole
                # generation chain, not just its newest snapshot
                os.remove(os.path.join(self.path, name))
        self._closed = True

    def abort(self) -> None:
        """Discard the write: remove every staged ``.rps.tmp`` file.

        Leaves a previously published table byte-identical — failure
        paths (batch rejection, ENOSPC mid-shard, ...) call this so no
        staging debris survives the writer.  Idempotent.
        """
        for entry in self._shards:
            tmp = os.path.join(self.path, entry["file"] + ".tmp")
            try:
                os.remove(tmp)
            except OSError:
                pass
        self._shards = []
        self._closed = True

    @property
    def shard_entries(self) -> tuple[dict, ...]:
        """Manifest entries of the published shards (after ``close``)."""
        if not self._closed:
            raise ValueError("shard entries exist only after close()")
        return tuple(self._shards)

    def __enter__(self) -> "TableWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        elif not issubclass(exc_type, SimulatedCrash):
            # real failures clean their staging files; a simulated crash
            # leaves them (the process "died") for recovery to reap
            self.abort()

    # ----------------------------------------------------------- encoding
    def _codec_spec_for(self, column: str):
        if isinstance(self.codec, dict):
            try:
                return self.codec[column]
            except KeyError:
                raise ValueError(
                    f"no codec configured for column {column!r}") from None
        return self.codec

    def _codec_label(self, column: str) -> str:
        spec = self._codec_spec_for(column)
        if isinstance(spec, CodecSpec):
            return spec.codec
        return str(spec)

    def _encode_chunk(self, column: str, values: np.ndarray
                      ) -> tuple[bytes, str, int, int, str]:
        """Encode one chunk; returns (envelope, codec, zmin, zmax, source)."""
        spec = self._codec_spec_for(column)
        if isinstance(spec, str) and spec == "auto":
            best = None
            for name in AUTO_CANDIDATES:
                seq = self._cached_codec(name).encode(values)
                blob = seq.to_bytes()
                if best is None or len(blob) < len(best[0]):
                    best = (blob, name, seq)
            blob, name, seq = best
        else:
            name = self._codec_label(column)
            seq = self._cached_codec(spec).encode(values)
            blob = seq.to_bytes()
        # the capability flag decides who supplies the zone map: the
        # codec's model (no decode) or the writer's exact computation
        bounds = seq.model_bounds() \
            if codecs.info(name).supports_model_bounds else None
        if bounds is not None:
            zmin, zmax, source = int(bounds[0]), int(bounds[1]), "model"
        else:
            zmin, zmax, source = int(values.min()), int(values.max()), \
                "computed"
        return blob, name, zmin, zmax, source

    def _cached_codec(self, spec):
        """One constructed codec per distinct name/spec (not per name:
        two columns may share a codec name with different CodecSpecs)."""
        try:
            cached = self._codec_cache.get(spec)
        except TypeError:  # spec carries an unhashable selector: no cache
            return _build_codec(spec, self.chunk_rows)
        if cached is None:
            cached = self._codec_cache[spec] = _build_codec(spec,
                                                            self.chunk_rows)
        return cached

    # ------------------------------------------------------------ shards
    def _take_rows(self, n: int) -> dict[str, np.ndarray]:
        out = {}
        for name in self._schema:
            col = (self._buffer[name][0] if len(self._buffer[name]) == 1
                   else np.concatenate(self._buffer[name]))
            out[name] = col[:n]
            self._buffer[name] = [col[n:]] if n < len(col) else []
        self._buffered -= n
        return out

    def _flush_shard(self, n_rows: int) -> None:
        columns = self._take_rows(n_rows)
        out = bytearray(SHARD_MAGIC)
        out.append(VERSION)
        chunks: list[ChunkMeta] = []
        for name in self._schema:
            col = columns[name]
            for start in range(0, n_rows, self.chunk_rows):
                seg = col[start: start + self.chunk_rows]
                blob, codec_name, zmin, zmax, src = \
                    self._encode_chunk(name, seg)
                chunks.append(ChunkMeta(
                    column=name, row_start=start, n_rows=len(seg),
                    offset=len(out), nbytes=len(blob), codec=codec_name,
                    zmin=zmin, zmax=zmax, bounds=src,
                    crc=zlib.crc32(blob)))
                out += blob
        row_start = self._start_row + self._rows_written
        out += pack_footer(ShardFooter(
            row_start=row_start, n_rows=n_rows, chunks=tuple(chunks)))
        fname = shard_file_name(self._name_base + len(self._shards),
                                self._generation)
        tmp = os.path.join(self.path, fname + ".tmp")
        try:
            with open(tmp, "wb") as fh:
                faults.write_through("shard.write", fh, bytes(out))
        except SimulatedCrash:
            raise  # a dead process runs no cleanup; reopen must repair
        except BaseException:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise
        self._shards.append({"file": fname, "row_start": row_start,
                             "n_rows": n_rows})
        self._rows_written += n_rows


def write_table(path: str, columns: dict[str, np.ndarray], codec="auto",
                shard_rows: int = DEFAULT_SHARD_ROWS,
                chunk_rows: int = DEFAULT_CHUNK_ROWS,
                overwrite: bool = False) -> None:
    """One-shot ingest of a full in-memory column dict."""
    with TableWriter(path, codec=codec, shard_rows=shard_rows,
                     chunk_rows=chunk_rows, overwrite=overwrite,
                     schema=tuple(columns)) as writer:
        writer.append(columns)
