"""Benchmark datasets: every data family named in the paper's §4.1."""

from repro.datasets.registry import (
    FIG10_DATASETS,
    NONLINEAR_DATASETS,
    Dataset,
    available_datasets,
    load,
    scale_factor,
    sortedness,
)
from repro.datasets.strings import (
    STRING_DATASETS,
    gen_email,
    gen_hex,
    gen_word,
    load_strings,
)
from repro.datasets.store_fixtures import (
    apply_churn_op,
    churn_fixture,
    ingest_fixture,
    sensor_fixture,
)
from repro.datasets.tabular import TABLE_NAMES, Table, load_table

__all__ = [
    "Dataset",
    "load",
    "available_datasets",
    "scale_factor",
    "sortedness",
    "FIG10_DATASETS",
    "NONLINEAR_DATASETS",
    "Table",
    "load_table",
    "TABLE_NAMES",
    "apply_churn_op",
    "churn_fixture",
    "ingest_fixture",
    "sensor_fixture",
    "load_strings",
    "STRING_DATASETS",
    "gen_email",
    "gen_hex",
    "gen_word",
]
