"""Multi-column tabular datasets (paper §4.6, Fig. 13).

Nine tables mirroring the paper's TPC-H / TPC-DS extracts and real-world
tables, each sorted by its primary-key column.  Non-key columns carry
varying degrees of correlation with the sorting key, so each table lands
near its published average "sortedness" (portion of non-inverted pairs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.registry import scale_factor, sortedness


@dataclass
class Table:
    """A columnar table: named int64 columns, sorted by the first column."""

    name: str
    columns: dict[str, np.ndarray]
    total_column_count: int  # including non-numeric columns we don't store

    @property
    def n_rows(self) -> int:
        return len(next(iter(self.columns.values())))

    @property
    def numeric_column_count(self) -> int:
        return len(self.columns)

    def average_sortedness(self) -> float:
        scores = [sortedness(col) for col in self.columns.values()]
        return float(np.mean(scores))

    def high_cardinality_columns(self, threshold: float = 0.1
                                 ) -> dict[str, np.ndarray]:
        """Columns with NDV > threshold * rows (Fig. 13 bottom row)."""
        out = {}
        for name, col in self.columns.items():
            if len(np.unique(col)) > threshold * len(col):
                out[name] = col
        return out

    field = None  # avoid accidental dataclasses.field leak in repr


def _col(rng, kind: str, n: int, pk: np.ndarray) -> np.ndarray:
    """One column of the given kind, relative to the sorted key ``pk``."""
    if kind == "pk":
        return pk
    if kind == "corr-tight":      # strongly follows the key
        return (pk * 3 + rng.integers(0, 50, n)).astype(np.int64)
    if kind == "corr-loose":      # follows the key with wide noise
        spread = max(int(pk[-1] - pk[0]) // 4, 10)
        return (pk + rng.integers(-spread, spread, n)).astype(np.int64)
    if kind == "grouped":         # constant within key groups (sorted-ish)
        return ((pk // max(int(pk[-1]) // 500 + 1, 1)) * 7).astype(np.int64)
    if kind == "cat-small":
        return rng.integers(0, 8, n).astype(np.int64)
    if kind == "cat-medium":
        return rng.integers(0, 1000, n).astype(np.int64)
    if kind == "uniform":
        return rng.integers(0, 1 << 30, n).astype(np.int64)
    if kind == "price":
        return np.round(np.exp(rng.normal(7, 1, n)) * 100).astype(np.int64)
    if kind == "date":
        return (738000 + rng.integers(0, 2500, n)).astype(np.int64)
    if kind == "date-sorted":
        return np.sort(738000 + rng.integers(0, 2500, n)).astype(np.int64)
    if kind == "quantity":
        return rng.integers(1, 51, n).astype(np.int64)
    raise ValueError(f"unknown column kind {kind!r}")


#: table -> (default rows, total columns, [(name, kind), ...])
_TABLE_SPECS: dict[str, tuple[int, int, list[tuple[str, str]]]] = {
    "lineitem": (60_000, 16, [
        ("l_orderkey", "pk"), ("l_partkey", "uniform"),
        ("l_suppkey", "cat-medium"), ("l_linenumber", "cat-small"),
        ("l_quantity", "quantity"), ("l_extendedprice", "price"),
        ("l_shipdate", "date"), ("l_commitdate", "date")]),
    "partsupp": (40_000, 5, [
        ("ps_partkey", "pk"), ("ps_suppkey", "corr-loose"),
        ("ps_supplycost", "price")]),
    "orders": (30_000, 9, [
        ("o_orderkey", "pk"), ("o_custkey", "corr-loose"),
        ("o_totalprice", "price"), ("o_orderdate", "date-sorted")]),
    "inventory": (50_000, 4, [
        ("inv_date_sk", "pk"), ("inv_item_sk", "corr-tight"),
        ("inv_quantity", "grouped")]),
    "catalog_sales": (40_000, 34, [
        ("cs_order_number", "pk")]
        + [(f"cs_attr_{i}", "uniform") for i in range(15)]
        + [(f"cs_dim_{i}", "cat-medium") for i in range(10)]
        + [(f"cs_amt_{i}", "price") for i in range(5)]),
    "date_dim": (25_000, 28, [
        ("d_date_sk", "pk"), ("d_date_id", "corr-tight"),
        ("d_month_seq", "grouped"), ("d_week_seq", "grouped"),
        ("d_year", "grouped"), ("d_dom", "cat-small")]),
    "geo": (50_000, 17, [
        ("geonameid", "pk"), ("population", "price"),
        ("elevation", "corr-loose"), ("admin_code", "cat-medium")]),
    "stock": (20_000, 6, [
        ("ts", "pk"), ("open", "corr-tight"), ("high", "corr-tight"),
        ("low", "corr-tight"), ("close", "corr-tight")]),
    "course_info": (15_000, 6, [
        ("course_id", "pk"), ("num_subscribers", "uniform"),
        ("num_reviews", "uniform"), ("num_lectures", "cat-medium"),
        ("price", "cat-medium"), ("duration", "cat-medium")]),
}

TABLE_NAMES = tuple(_TABLE_SPECS)


def load_table(name: str, n: int | None = None, seed: int = 0) -> Table:
    """Generate the named table, sorted by its first (key) column."""
    if name not in _TABLE_SPECS:
        raise KeyError(f"unknown table {name!r}; known: {TABLE_NAMES}")
    default_n, total_cols, cols = _TABLE_SPECS[name]
    if n is None:
        n = max(int(default_n * scale_factor()), 256)
    rng = np.random.default_rng(seed)
    pk = np.sort(rng.integers(0, n * 10, n)).astype(np.int64)
    columns = {col_name: _col(rng, kind, n, pk) for col_name, kind in cols}
    return Table(name=name, columns=columns, total_column_count=total_cols)
