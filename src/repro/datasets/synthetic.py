"""Integer dataset generators (paper §4.1, Fig. 9a).

Each generator reproduces the documented *shape* of the corresponding
dataset — the serial-correlation structure that drives LeCo's behaviour —
scaled from the paper's 10^8 rows to benchmark-friendly sizes.  All
generators are seeded and deterministic.

Families (first paper row of Fig. 9a is the "locally easy" group):

* ``linear``, ``normal`` — clean synthetic CDFs (32-bit sorted);
* ``poisson`` — event timestamps from merged sensor streams, *not* fully
  sorted (small local disorder);
* ``ml`` — bursty real-world timestamps (sorted, long flat runs);
* ``booksale``, ``facebook``, ``wiki``, ``osm`` — SOSD-style sorted keys
  with increasingly heavy-tailed gap distributions;
* ``movieid`` — piecewise-linear "liked movie IDs" (Fig. 1), unsorted;
* ``house_price`` — heavy-tailed price column with repeated round values;
* ``planet``, ``libio`` — dense ID ranges with occasional large gaps;
* ``cosmos``, ``polylog``, ``exp``, ``poly``, ``site``, ``weight``,
  ``adult`` — the non-linear group of §4.4;
* ``medicare`` — unsorted, low-cardinality 64-bit values for §4.5.
"""

from __future__ import annotations

import numpy as np

U32 = (1 << 32) - 1


def _sorted_from_gaps(gaps: np.ndarray, start: int = 0) -> np.ndarray:
    return start + np.cumsum(np.maximum(gaps, 0)).astype(np.int64)


def gen_linear(n: int, seed: int = 0) -> np.ndarray:
    """Clean linear ramp over the 32-bit range (paper's best case)."""
    return np.linspace(0, U32, n).astype(np.int64)


def gen_normal(n: int, seed: int = 0) -> np.ndarray:
    """Sorted normal sample scaled to the 32-bit range."""
    rng = np.random.default_rng(seed)
    sample = np.sort(rng.normal(0.0, 1.0, n))
    lo, hi = sample[0], sample[-1]
    return ((sample - lo) / (hi - lo) * U32).astype(np.int64)


def gen_poisson(n: int, seed: int = 0) -> np.ndarray:
    """Poisson-process timestamps with sensor-merge local disorder."""
    rng = np.random.default_rng(seed)
    times = _sorted_from_gaps(
        rng.exponential(5_000.0, n).astype(np.int64) + 1,
        start=1_600_000_000_000)
    # merged per-sensor streams arrive slightly out of order
    jitter = rng.integers(-3, 4, n)
    idx = np.clip(np.arange(n) + jitter, 0, n - 1)
    return times[idx]


def gen_ml(n: int, seed: int = 0) -> np.ndarray:
    """Bursty sorted timestamps (UCI bar-crawl style): long runs of small
    constant gaps interleaved with large session gaps."""
    rng = np.random.default_rng(seed)
    gaps = np.full(n, 40, dtype=np.int64)
    gaps += rng.integers(0, 3, n)
    session_breaks = rng.random(n) < 0.002
    gaps[session_breaks] = rng.integers(10_000, 5_000_000,
                                        int(session_breaks.sum()))
    return _sorted_from_gaps(gaps, start=1_493_000_000_000)


def gen_booksale(n: int, seed: int = 0) -> np.ndarray:
    """SOSD 'books'-like: sorted keys with lognormal gap spread."""
    rng = np.random.default_rng(seed)
    gaps = np.exp(rng.normal(3.0, 1.8, n)).astype(np.int64) + 1
    return _sorted_from_gaps(gaps)


def gen_facebook(n: int, seed: int = 0) -> np.ndarray:
    """Sorted 64-bit IDs: uniform backbone plus dense cluster bursts."""
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1e9, n).astype(np.int64) + 1
    dense = rng.random(n) < 0.3
    gaps[dense] = rng.integers(1, 1000, int(dense.sum()))
    return _sorted_from_gaps(gaps)


def gen_wiki(n: int, seed: int = 0) -> np.ndarray:
    """Sorted edit timestamps with many duplicates (zero gaps)."""
    rng = np.random.default_rng(seed)
    gaps = rng.geometric(0.25, n).astype(np.int64) - 1
    return _sorted_from_gaps(gaps, start=1_100_000_000)


def gen_osm(n: int, seed: int = 0) -> np.ndarray:
    """Sorted cell IDs with Pareto (very heavy tail) gaps — locally hard."""
    rng = np.random.default_rng(seed)
    gaps = (rng.pareto(0.7, n) * 1e4).astype(np.int64) + 1
    return _sorted_from_gaps(gaps)


def gen_movieid(n: int, seed: int = 0) -> np.ndarray:
    """Piecewise-linear movie IDs (Fig. 1): slope changes + level jumps."""
    rng = np.random.default_rng(seed)
    pieces = []
    level = 0.0
    remaining = n
    while remaining > 0:
        length = int(min(remaining, rng.integers(n // 40 + 2, n // 8 + 4)))
        slope = rng.uniform(0.05, 6.0)
        noise = rng.normal(0, rng.uniform(0.2, 1.5), length)
        pieces.append(level + slope * np.arange(length) + noise)
        level = pieces[-1][-1] + rng.uniform(-0.2, 1.0) * rng.integers(
            0, 8000)
        remaining -= length
    values = np.concatenate(pieces)
    values -= values.min()
    return np.round(values).astype(np.int64)


def gen_house_price(n: int, seed: int = 0) -> np.ndarray:
    """Sorted prices: lognormal body rounded to 'psychological' steps,
    producing runs of identical values and abrupt tail jumps."""
    rng = np.random.default_rng(seed)
    prices = np.exp(rng.normal(12.3, 0.7, n))
    step = np.where(prices < 5e5, 1000, 25_000)
    prices = np.round(prices / step) * step
    return np.sort(prices).astype(np.int64)


def gen_planet(n: int, seed: int = 0) -> np.ndarray:
    """Sorted planet IDs: long dense runs, occasional big range jumps."""
    rng = np.random.default_rng(seed)
    gaps = rng.integers(1, 60, n).astype(np.int64)
    jumps = rng.random(n) < 0.001
    gaps[jumps] = rng.integers(1_000_000, 50_000_000, int(jumps.sum()))
    return _sorted_from_gaps(gaps, start=10_000_000)


def gen_libio(n: int, seed: int = 0) -> np.ndarray:
    """Sorted repository IDs: near-consecutive with moderate gaps."""
    rng = np.random.default_rng(seed)
    gaps = rng.geometric(0.4, n).astype(np.int64)
    return _sorted_from_gaps(gaps, start=1_000)


def gen_medicare(n: int, seed: int = 0) -> np.ndarray:
    """Unsorted 64-bit values with modest cardinality (§4.5 probe side).

    The paper's augmented BI-benchmark IDs form a near-arithmetic unique-
    value domain: an order-preserving dictionary of them compresses to a
    fraction of a percent with LeCo but stays large under FOR.
    """
    rng = np.random.default_rng(seed)
    n_unique = max(n // 10, 64)
    steps = 1000 + rng.integers(0, 4, n_unique).astype(np.int64)
    dictionary = (1 << 50) + np.cumsum(steps)
    ranks = rng.integers(0, n_unique, n)
    return dictionary[ranks].astype(np.int64)


# ------------------------------------------------------- non-linear (§4.4)

def gen_cosmos(n: int, seed: int = 0) -> np.ndarray:
    """The paper's cosmic-ray signal: two sine carriers + Gaussian noise."""
    rng = np.random.default_rng(seed)
    x = np.arange(n, dtype=np.float64)
    signal = (np.sin((x + 10) / (60 * np.pi))
              + 0.1 * np.sin(3 * (x + 10) / (60 * np.pi))) * 1e6
    return np.round(signal + rng.normal(0, 100, n)).astype(np.int64)


def gen_polylog(n: int, seed: int = 0, block: int = 500) -> np.ndarray:
    """Alternating polynomial and logarithm blocks (growth-curve model)."""
    rng = np.random.default_rng(seed)
    out = np.empty(n, dtype=np.int64)
    x = np.arange(block, dtype=np.float64)
    pos = 0
    poly_turn = True
    while pos < n:
        m = min(block, n - pos)
        if poly_turn:
            a = rng.uniform(0.5, 5.0)
            y = a * x[:m] ** 2 + rng.uniform(0, 1e5)
        else:
            a = rng.uniform(1e4, 1e5)
            y = a * np.log1p(x[:m]) + rng.uniform(0, 1e5)
        out[pos: pos + m] = np.round(y + rng.normal(0, 10, m))
        pos += m
        poly_turn = not poly_turn
    return out


def gen_exp(n: int, seed: int = 0, block: int = 2000) -> np.ndarray:
    """Blocks of exponential growth with per-block random rates."""
    rng = np.random.default_rng(seed)
    out = np.empty(n, dtype=np.int64)
    pos = 0
    while pos < n:
        m = min(block, n - pos)
        rate = rng.uniform(2.0, 12.0) / m
        base = rng.uniform(10, 1000)
        y = base * np.exp(rate * np.arange(m))
        out[pos: pos + m] = np.round(y + rng.normal(0, 5, m))
        pos += m
    return out


def gen_poly(n: int, seed: int = 0, block: int = 2000) -> np.ndarray:
    """Blocks of degree-2/3 polynomials with per-block coefficients."""
    rng = np.random.default_rng(seed)
    out = np.empty(n, dtype=np.int64)
    pos = 0
    while pos < n:
        m = min(block, n - pos)
        x = np.arange(m, dtype=np.float64)
        degree = int(rng.integers(2, 4))
        coeffs = rng.uniform(0.001, 2.0, degree + 1)
        y = sum(c * x ** p for p, c in enumerate(coeffs))
        out[pos: pos + m] = np.round(y + rng.normal(0, 5, m))
        pos += m
    return out


def gen_site(n: int, seed: int = 0) -> np.ndarray:
    """Sorted web-session column: few huge hubs, many small values."""
    rng = np.random.default_rng(seed)
    return np.sort((rng.pareto(1.1, n) * 30).astype(np.int64))


def gen_weight(n: int, seed: int = 0) -> np.ndarray:
    """Sorted anthropometric values in a narrow absolute band."""
    rng = np.random.default_rng(seed)
    sample = rng.normal(6.8e6, 2.2e5, n)
    return np.sort(np.round(sample)).astype(np.int64)


def gen_adult(n: int, seed: int = 0) -> np.ndarray:
    """Sorted census-style column: discrete plateaus + skewed tail."""
    rng = np.random.default_rng(seed)
    body = rng.integers(0, 5_000, int(n * 0.8)) * 100
    tail = np.exp(rng.normal(11.5, 1.2, n - len(body)))
    return np.sort(np.concatenate([body, tail]).astype(np.int64))
