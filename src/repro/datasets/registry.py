"""Dataset registry with scale control.

``load(name)`` returns a :class:`Dataset` with the generated values, the
natural byte width (the paper reports ratios against 32- or 64-bit raw
encodings), and sortedness metadata.  The default sizes are scaled down from
the paper's 10^8 rows; set the ``REPRO_SCALE`` environment variable (float)
or pass ``n=`` to resize.
"""

from __future__ import annotations

import os
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.datasets import synthetic


@dataclass(frozen=True)
class Dataset:
    """A named integer benchmark column."""

    name: str
    values: np.ndarray
    width_bytes: int
    sorted: bool

    @property
    def uncompressed_bytes(self) -> int:
        return len(self.values) * self.width_bytes

    def __len__(self) -> int:
        return len(self.values)


@dataclass(frozen=True)
class _Spec:
    generator: Callable[[int, int], np.ndarray]
    default_n: int
    width_bytes: int
    sorted: bool


_SPECS: dict[str, _Spec] = {
    # the twelve Fig. 10 datasets
    "linear": _Spec(synthetic.gen_linear, 200_000, 4, True),
    "normal": _Spec(synthetic.gen_normal, 200_000, 4, True),
    "libio": _Spec(synthetic.gen_libio, 200_000, 8, True),
    "wiki": _Spec(synthetic.gen_wiki, 200_000, 4, True),
    "booksale": _Spec(synthetic.gen_booksale, 200_000, 4, True),
    "planet": _Spec(synthetic.gen_planet, 200_000, 8, True),
    "facebook": _Spec(synthetic.gen_facebook, 200_000, 8, True),
    "ml": _Spec(synthetic.gen_ml, 100_000, 8, True),
    "movieid": _Spec(synthetic.gen_movieid, 100_000, 4, False),
    "poisson": _Spec(synthetic.gen_poisson, 100_000, 8, False),
    "house_price": _Spec(synthetic.gen_house_price, 100_000, 4, True),
    "osm": _Spec(synthetic.gen_osm, 200_000, 8, True),
    # §4.5
    "medicare": _Spec(synthetic.gen_medicare, 500_000, 8, False),
    # the non-linear group (§4.4)
    "cosmos": _Spec(synthetic.gen_cosmos, 100_000, 4, False),
    "polylog": _Spec(synthetic.gen_polylog, 50_000, 8, False),
    "exp": _Spec(synthetic.gen_exp, 100_000, 8, False),
    "poly": _Spec(synthetic.gen_poly, 100_000, 8, False),
    "site": _Spec(synthetic.gen_site, 50_000, 4, True),
    "weight": _Spec(synthetic.gen_weight, 25_000, 4, True),
    "adult": _Spec(synthetic.gen_adult, 30_000, 4, True),
}

#: Fig. 10's dataset order (groups of Fig. 9b quadrants)
FIG10_DATASETS = ("linear", "normal", "libio", "wiki", "booksale", "planet",
                  "facebook", "ml", "movieid", "poisson", "house_price",
                  "osm")

#: §4.4 non-linear benchmark order (Fig. 11)
NONLINEAR_DATASETS = ("movieid", "poly", "cosmos", "exp", "polylog", "site",
                      "weight", "adult")


def scale_factor() -> float:
    """Global size multiplier from the ``REPRO_SCALE`` env var."""
    return float(os.environ.get("REPRO_SCALE", "1.0"))


def available_datasets() -> list[str]:
    return sorted(_SPECS)


def load(name: str, n: int | None = None, seed: int = 0) -> Dataset:
    """Generate dataset ``name`` at its (scaled) default or explicit size."""
    if name not in _SPECS:
        raise KeyError(f"unknown dataset {name!r}; see available_datasets()")
    spec = _SPECS[name]
    if n is None:
        n = max(int(spec.default_n * scale_factor()), 64)
    values = spec.generator(n, seed)
    return Dataset(name=name, values=values, width_bytes=spec.width_bytes,
                   sorted=spec.sorted)


def sortedness(values: np.ndarray, max_pairs: int = 20_000,
               seed: int = 0) -> float:
    """1 minus (twice the) inverse-pair portion, in [0, 1] (paper §4.6).

    Estimated by sampling random index pairs; 1.0 means fully sorted,
    ~0.0 means random order.
    """
    values = np.asarray(values)
    n = len(values)
    if n < 2:
        return 1.0
    rng = np.random.default_rng(seed)
    i = rng.integers(0, n - 1, max_pairs)
    j = rng.integers(0, n - 1, max_pairs)
    lo = np.minimum(i, j)
    hi = np.maximum(i, j)
    valid = lo != hi
    inversions = (values[lo[valid]] > values[hi[valid]]).mean()
    return float(1.0 - 2.0 * inversions)
