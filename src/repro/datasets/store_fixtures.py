"""Ingest fixtures for the persistent store (tests, CLI, benchmarks).

Two sources behind one name-based entry point:

* ``"sensors"`` — a synthetic telemetry stream shaped like the store's
  target workload: a sorted serial-correlated timestamp (the predicate
  column zone maps love), a low-cardinality device id, a noisy reading,
  and a tiny status enum;
* any table name from :func:`repro.datasets.load_table` (``lineitem``,
  ``orders``, ...) — the paper's multi-column extracts.

Every fixture returns a plain ``dict[str, np.ndarray]`` of equal-length
int64 columns, ready for :class:`repro.store.TableWriter.append`.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.tabular import TABLE_NAMES, load_table


def sensor_fixture(n: int = 100_000, n_sensors: int = 64,
                   seed: int = 0) -> dict[str, np.ndarray]:
    """Sorted-timestamp telemetry: (ts, sensor_id, reading, status)."""
    rng = np.random.default_rng(seed)
    ts = np.cumsum(rng.integers(1, 20, n)).astype(np.int64)
    sensor_id = rng.integers(0, n_sensors, n).astype(np.int64)
    drift = np.cumsum(rng.normal(0, 3, n))
    reading = (1000 + drift + rng.normal(0, 40, n)).astype(np.int64)
    status = rng.choice(np.array([0, 0, 0, 0, 1, 2], dtype=np.int64), n)
    return {"ts": ts, "sensor_id": sensor_id, "reading": reading,
            "status": status}


def ingest_fixture(name: str = "sensors", n: int | None = None,
                   seed: int = 0) -> dict[str, np.ndarray]:
    """Columns for the named fixture (``sensors`` or a datasets table)."""
    if name == "sensors":
        return sensor_fixture(n or 100_000, seed=seed)
    if name in TABLE_NAMES:
        return dict(load_table(name, n=n, seed=seed).columns)
    raise KeyError(
        f"unknown fixture {name!r}; known: sensors, {', '.join(TABLE_NAMES)}")
