"""Ingest fixtures for the persistent store (tests, CLI, benchmarks).

Two sources behind one name-based entry point:

* ``"sensors"`` — a synthetic telemetry stream shaped like the store's
  target workload: a sorted serial-correlated timestamp (the predicate
  column zone maps love), a low-cardinality device id, a noisy reading,
  and a tiny status enum;
* any table name from :func:`repro.datasets.load_table` (``lineitem``,
  ``orders``, ...) — the paper's multi-column extracts.

Every fixture returns a plain ``dict[str, np.ndarray]`` of equal-length
int64 columns, ready for :class:`repro.store.TableWriter.append`.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.tabular import TABLE_NAMES, load_table


def sensor_fixture(n: int = 100_000, n_sensors: int = 64,
                   seed: int = 0) -> dict[str, np.ndarray]:
    """Sorted-timestamp telemetry: (ts, sensor_id, reading, status)."""
    rng = np.random.default_rng(seed)
    ts = np.cumsum(rng.integers(1, 20, n)).astype(np.int64)
    sensor_id = rng.integers(0, n_sensors, n).astype(np.int64)
    drift = np.cumsum(rng.normal(0, 3, n))
    reading = (1000 + drift + rng.normal(0, 40, n)).astype(np.int64)
    status = rng.choice(np.array([0, 0, 0, 0, 1, 2], dtype=np.int64), n)
    return {"ts": ts, "sensor_id": sensor_id, "reading": reading,
            "status": status}


def ingest_fixture(name: str = "sensors", n: int | None = None,
                   seed: int = 0) -> dict[str, np.ndarray]:
    """Columns for the named fixture (``sensors`` or a datasets table)."""
    if name == "sensors":
        return sensor_fixture(n or 100_000, seed=seed)
    if name in TABLE_NAMES:
        return dict(load_table(name, n=n, seed=seed).columns)
    raise KeyError(
        f"unknown fixture {name!r}; known: sensors, {', '.join(TABLE_NAMES)}")


def churn_fixture(n: int = 50_000, n_ops: int = 200, seed: int = 0,
                  n_sensors: int = 64):
    """A mutation workload for the mutate layer: base + operation stream.

    Returns ``(base, ops)``: the sensor telemetry base table plus
    ``n_ops`` mutation events shaped like live traffic — mostly appends
    of fresh telemetry (timestamps continue past the base), mixed with
    range deletes on ``ts`` (data retention), targeted deletes on
    ``sensor_id`` (device decommissioning), and update-by-key status
    flips.  Each op is a dict with an ``"op"`` key (``append`` /
    ``delete`` / ``update``) and the keyword payload of the matching
    :class:`~repro.mutate.MutableTable` method, so drivers (benchmark,
    tests, CLI demos) replay it uniformly.
    """
    rng = np.random.default_rng(seed)
    base = sensor_fixture(n, n_sensors=n_sensors, seed=seed)
    next_ts = int(base["ts"][-1]) + 1
    retention_lo = 0
    ops: list[dict] = []
    for _ in range(n_ops):
        kind = rng.choice(["append", "append", "append", "delete_range",
                           "delete_sensor", "update"])
        if kind == "append":
            m = int(rng.integers(200, 2000))
            ts = next_ts + np.cumsum(rng.integers(1, 20, m)).astype(
                np.int64)
            next_ts = int(ts[-1]) + 1
            drift = np.cumsum(rng.normal(0, 3, m))
            ops.append({"op": "append", "batch": {
                "ts": ts,
                "sensor_id": rng.integers(0, n_sensors, m).astype(
                    np.int64),
                "reading": (1000 + drift + rng.normal(0, 40, m)).astype(
                    np.int64),
                "status": rng.choice(
                    np.array([0, 0, 0, 0, 1, 2], dtype=np.int64), m),
            }})
        elif kind == "delete_range":
            # retention: drop a slice of the oldest surviving window
            span = int(rng.integers(50, next_ts // 20 + 51))
            ops.append({"op": "delete", "where": (
                "ts", retention_lo, retention_lo + span)})
            retention_lo += span
        elif kind == "delete_sensor":
            victim = int(rng.integers(0, n_sensors))
            ops.append({"op": "delete",
                        "where": ("sensor_id", victim, victim + 1)})
        else:
            ops.append({"op": "update",
                        "key_column": "sensor_id",
                        "key": int(rng.integers(0, n_sensors)),
                        "values": {"status": int(rng.integers(0, 3))}})
    return base, ops


def apply_churn_op(table, op: dict) -> int:
    """Replay one churn-fixture op on a ``MutableTable``; returns the
    rows the op touched."""
    if op["op"] == "append":
        return table.append(op["batch"])
    if op["op"] == "delete":
        return table.delete(op["where"])
    return table.update(op["key_column"], op["key"], op["values"])
