"""String dataset generators (paper §4.1: email, hex, word)."""

from __future__ import annotations

import numpy as np

from repro.datasets.registry import scale_factor

_DOMAINS = (
    "com.gmail", "com.yahoo", "com.hotmail", "com.outlook", "org.apache",
    "org.wikipedia", "net.cloud", "edu.mit", "edu.stanford", "io.github",
)

_SYLLABLES = (
    "an", "ar", "as", "at", "be", "ca", "co", "de", "di", "en", "er", "es",
    "in", "is", "it", "le", "lo", "ma", "me", "mo", "ne", "no", "on", "or",
    "ra", "re", "ri", "ro", "se", "st", "ta", "te", "ti", "to", "tra", "un",
    "ve", "ver", "vi",
)

_SUFFIXES = ("", "s", "ed", "ing", "er", "ly", "tion", "ness")


def gen_email(n: int | None = None, seed: int = 0) -> list[bytes]:
    """Host-reversed email addresses, sorted (paper's 30K set, ~15 bytes)."""
    if n is None:
        n = max(int(30_000 * scale_factor()), 64)
    rng = np.random.default_rng(seed)
    domains = rng.integers(0, len(_DOMAINS), n)
    users = rng.integers(0, 10 ** 7, n)
    emails = {
        f"{_DOMAINS[d]}.u{u:07d}".encode() for d, u in zip(domains, users)
    }
    return sorted(emails)


def gen_hex(n: int | None = None, seed: int = 0) -> list[bytes]:
    """Sorted hexadecimal strings up to 8 chars (paper's 100K set)."""
    if n is None:
        n = max(int(100_000 * scale_factor()), 64)
    rng = np.random.default_rng(seed)
    values = np.unique(rng.integers(0, 1 << 32, n))
    return [f"{int(v):08x}".encode() for v in values]


def gen_word(n: int | None = None, seed: int = 0) -> list[bytes]:
    """English-like words built from syllables, sorted, ~9 bytes average."""
    if n is None:
        n = max(int(50_000 * scale_factor()), 64)
    rng = np.random.default_rng(seed)
    words = set()
    while len(words) < n:
        count = int(rng.integers(2, 5))
        stem = "".join(_SYLLABLES[rng.integers(0, len(_SYLLABLES))]
                       for _ in range(count))
        word = stem + _SUFFIXES[rng.integers(0, len(_SUFFIXES))]
        words.add(word.encode())
    return sorted(words)


STRING_DATASETS = {
    "email": gen_email,
    "hex": gen_hex,
    "word": gen_word,
}


def load_strings(name: str, n: int | None = None, seed: int = 0
                 ) -> list[bytes]:
    if name not in STRING_DATASETS:
        raise KeyError(f"unknown string dataset {name!r}")
    return STRING_DATASETS[name](n, seed)
