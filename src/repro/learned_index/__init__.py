"""ALEX-style learned index over sorted integer arrays.

The paper stores variable-length partition start positions in ALEX to
accelerate the decoder's lower-bound search (§3.3).  This module provides a
compact reproduction: a linear model per leaf predicts the slot of a key and
a bounded local search corrects the prediction.  Lookups are O(log err)
instead of O(log n), with the common case being a handful of probes.
"""

from repro.learned_index.alex import LearnedSortedIndex

__all__ = ["LearnedSortedIndex"]
