"""A two-level learned index for lower-bound lookups on sorted arrays.

Structure (a deliberately compact take on ALEX / RMI):

* a root linear model maps a key to one of ``fanout`` leaves;
* each leaf holds a linear model fitted on its key range plus the maximum
  prediction error observed at build time;
* a lookup predicts a slot, then binary-searches only the ±error window.

The index is static (built once per compressed file), matching LeCo's
"compress once, access many times" setting.
"""

from __future__ import annotations

import numpy as np


class _Leaf:
    __slots__ = ("lo", "hi", "slope", "intercept", "err")

    def __init__(self, keys: np.ndarray, lo: int, hi: int):
        self.lo = lo
        self.hi = hi
        span = keys[hi - 1] - keys[lo] if hi - lo > 1 else 0
        if span > 0:
            self.slope = (hi - 1 - lo) / float(span)
        else:
            self.slope = 0.0
        self.intercept = lo - self.slope * float(keys[lo])
        if hi - lo > 1:
            pred = self.slope * keys[lo:hi].astype(np.float64) + self.intercept
            err = np.abs(pred - np.arange(lo, hi))
            self.err = int(np.ceil(err.max())) + 1
        else:
            self.err = 1

    def predict(self, key: int) -> int:
        return int(self.slope * key + self.intercept)


class LearnedSortedIndex:
    """Lower-bound search over a sorted int64 array via learned models."""

    def __init__(self, keys: np.ndarray, leaf_size: int = 256):
        keys = np.ascontiguousarray(keys, dtype=np.int64)
        if np.any(np.diff(keys) < 0):
            raise ValueError("keys must be sorted ascending")
        self._keys = keys
        n = len(keys)
        self._leaves: list[_Leaf] = []
        if n == 0:
            self._root_slope = 0.0
            self._root_intercept = 0.0
            return
        for lo in range(0, n, leaf_size):
            hi = min(lo + leaf_size, n)
            self._leaves.append(_Leaf(keys, lo, hi))
        key_span = float(keys[-1] - keys[0]) or 1.0
        self._root_slope = (len(self._leaves) - 1) / key_span
        self._root_intercept = -self._root_slope * float(keys[0])

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def nbytes(self) -> int:
        """Approximate in-memory metadata cost (models only, not keys)."""
        return 8 * 4 * len(self._leaves) + 16

    def _leaf_for(self, key: int) -> _Leaf:
        idx = int(self._root_slope * key + self._root_intercept)
        idx = max(0, min(idx, len(self._leaves) - 1))
        # the root model can be off by a few leaves; walk to the right one
        while idx > 0 and key < self._keys[self._leaves[idx].lo]:
            idx -= 1
        while (idx + 1 < len(self._leaves)
               and key >= self._keys[self._leaves[idx + 1].lo]):
            idx += 1
        return self._leaves[idx]

    def lower_bound(self, key: int) -> int:
        """Largest index ``i`` with ``keys[i] <= key``; -1 if none.

        This is the decoder's "find the partition with the largest start
        index <= position" search (paper §3.3).
        """
        keys = self._keys
        n = len(keys)
        if n == 0 or key < keys[0]:
            return -1
        leaf = self._leaf_for(key)
        pred = leaf.predict(key)
        lo = max(leaf.lo, pred - leaf.err)
        hi = min(leaf.hi, pred + leaf.err + 1)
        # widen in the rare case the error window missed (defensive)
        if lo > 0 and keys[lo] > key:
            lo = 0
        if hi < n and keys[hi - 1] <= key < keys[hi]:
            pass
        elif hi < n and keys[hi] <= key:
            hi = n
        idx = int(np.searchsorted(keys[lo:hi], key, side="right")) + lo - 1
        return idx

    def find(self, key: int) -> int | None:
        """Exact-match index of ``key``, or ``None``."""
        idx = self.lower_bound(key)
        if idx >= 0 and self._keys[idx] == key:
            return idx
        return None
