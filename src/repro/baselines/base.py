"""Common codec interface shared by LeCo and every baseline.

The microbenchmarks (paper §4) measure four things per scheme: compression
ratio, random-access latency, full-decompression throughput, and compression
throughput.  Every scheme therefore exposes the same surface:

* ``Codec.encode(values) -> EncodedSequence``
* ``EncodedSequence.get(i)`` — random access
* ``EncodedSequence.decode_all()`` — full decompression
* ``EncodedSequence.compressed_size_bytes()``
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class EncodedSequence(ABC):
    """A losslessly encoded integer sequence."""

    @abstractmethod
    def __len__(self) -> int: ...

    @abstractmethod
    def get(self, position: int) -> int:
        """Random access to one decoded value."""

    @abstractmethod
    def decode_all(self) -> np.ndarray:
        """Decode the entire sequence as int64."""

    @abstractmethod
    def compressed_size_bytes(self) -> int: ...

    def decode_range(self, lo: int, hi: int) -> np.ndarray:
        """Decode ``[lo, hi)``; default slices a full decode."""
        return self.decode_all()[lo:hi]

    def __getitem__(self, position: int) -> int:
        return self.get(position)


class Codec(ABC):
    """Factory producing :class:`EncodedSequence` objects."""

    name: str = "abstract"
    #: True when :meth:`EncodedSequence.get` requires sequential decoding
    sequential_access: bool = False

    @abstractmethod
    def encode(self, values: np.ndarray) -> EncodedSequence: ...


def as_int64(values: np.ndarray) -> np.ndarray:
    values = np.asarray(values)
    if values.dtype.kind not in "iu":
        raise TypeError(f"integer input required, got {values.dtype}")
    return values.astype(np.int64)
