"""Common codec interface shared by LeCo and every baseline.

The microbenchmarks (paper §4) measure four things per scheme: compression
ratio, random-access latency, full-decompression throughput, and compression
throughput.  Every scheme therefore exposes the same surface, and the
contract is vectorised end to end:

* ``Codec.encode(values) -> EncodedSequence``
* ``EncodedSequence.gather(indices)`` — batch random access
* ``EncodedSequence.decode_range(lo, hi)`` — contiguous range decode
* ``EncodedSequence.decode_all()`` — full decompression
* ``EncodedSequence.size_bytes()`` — serialised size
* ``EncodedSequence.to_bytes()`` / ``repro.codecs.from_bytes`` —
  self-describing serialisation envelope

Scalar ``get`` is a convenience wrapper over :meth:`gather`; subclasses
with a cheaper point-read path (one model inference + one slot read)
override it, but no consumer may loop it over more than O(1) positions.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


def normalize_indices(indices, n: int) -> np.ndarray:
    """Gather-index contract: int64, negatives wrap once, bounds checked."""
    indices = np.asarray(indices, dtype=np.int64)
    indices = np.where(indices < 0, indices + n, indices)
    if indices.size and ((indices < 0).any() or (indices >= n).any()):
        raise IndexError(f"gather index out of range [0, {n})")
    return indices


class SelfDescribing:
    """Envelope serialisation shared by integer and string sequences."""

    #: envelope codec id this sequence serialises under (None = no wire
    #: format; ``to_bytes`` raises NotImplementedError)
    wire_id: str | None = None

    def payload_bytes(self) -> bytes:
        """Codec-specific serialised image (no envelope)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not define a wire format")

    @classmethod
    def from_payload(cls, payload: bytes) -> "SelfDescribing":
        """Inverse of :meth:`payload_bytes`."""
        raise NotImplementedError(
            f"{cls.__name__} does not define a wire format")

    def to_bytes(self) -> bytes:
        """Self-describing image: envelope (magic + codec id) + payload.

        Round-trips through :func:`repro.codecs.from_bytes` without the
        caller knowing the scheme.
        """
        if self.wire_id is None:
            raise NotImplementedError(
                f"{type(self).__name__} has no wire_id")
        from repro.codecs import envelope

        return envelope.pack(self.wire_id, self.payload_bytes())


class EncodedSequence(SelfDescribing, ABC):
    """A losslessly encoded integer sequence."""

    @abstractmethod
    def __len__(self) -> int: ...

    @abstractmethod
    def decode_all(self) -> np.ndarray:
        """Decode the entire sequence as int64."""

    @abstractmethod
    def compressed_size_bytes(self) -> int:
        """Serialised size in bytes (legacy name; see :meth:`size_bytes`)."""

    # ------------------------------------------------------ random access
    def _check_indices(self, indices) -> np.ndarray:
        """Normalise ``indices`` to in-range int64 (negatives wrap once)."""
        return normalize_indices(indices, len(self))

    def gather(self, indices: np.ndarray) -> np.ndarray:
        """Batch random access: ``gather(idx)[k] == self[idx[k]]``.

        The base implementation materialises a full decode and indexes it —
        correct for every codec, and the honest cost model for strictly
        sequential schemes.  Formats with real random access override this
        with one vectorised model inference + slot gather.
        """
        indices = self._check_indices(indices)
        if indices.size == 0:
            return np.empty(0, dtype=np.int64)
        return self.decode_all()[indices]

    def get(self, position: int) -> int:
        """Random access to one decoded value (wrapper over ``gather``)."""
        return int(self.gather(np.array([position], dtype=np.int64))[0])

    def __getitem__(self, position: int) -> int:
        return self.get(position)

    # ------------------------------------------------------ range access
    def decode_range(self, lo: int, hi: int) -> np.ndarray:
        """Decode positions ``[lo, hi)``.

        Contract: the base implementation **falls back to a full decode**
        and slices it — always correct, never better than O(n).  Formats
        whose layout allows it (partitioned schemes like LeCo and Delta)
        override this to decode only the partitions covering the range.
        """
        n = len(self)
        if not 0 <= lo <= hi <= n:
            raise IndexError(f"bad range [{lo}, {hi}) for n={n}")
        return self.decode_all()[lo:hi]

    def filter_range(self, lo: int, hi: int) -> np.ndarray:
        """Boolean bitmap of positions with ``lo <= value < hi``.

        Base contract: materialise and compare.  Codecs advertising
        ``supports_range_pruning`` override this to skip whole partitions
        via model-derived value bounds (§5.1.1).
        """
        values = self.decode_all()
        return (values >= lo) & (values < hi)

    # ------------------------------------------------------------- bounds
    def model_bounds(self) -> tuple[int, int] | None:
        """Conservative ``(lo, hi)`` value bounds without decoding, or None.

        Contract: when not ``None``, every encoded value satisfies
        ``lo <= v <= hi`` — the bounds may be loose but never exclude a
        stored value (consumers use them to prune, e.g. the store's zone
        maps).  The base returns ``None`` (no cheap bound); LeCo-family
        sequences derive bounds from the model band + residual width.
        """
        return None

    # ------------------------------------------------------------- sizing
    def size_bytes(self) -> int:
        """Serialised payload size in bytes (protocol name)."""
        return self.compressed_size_bytes()


class Codec(ABC):
    """Factory producing :class:`EncodedSequence` objects."""

    name: str = "abstract"
    #: True when :meth:`EncodedSequence.get` requires sequential decoding
    sequential_access: bool = False
    #: True when ``filter_range`` prunes partitions without decoding
    supports_range_pruning: bool = False

    @abstractmethod
    def encode(self, values: np.ndarray) -> EncodedSequence: ...


def as_int64(values: np.ndarray) -> np.ndarray:
    values = np.asarray(values)
    if values.dtype.kind not in "iu":
        raise TypeError(f"integer input required, got {values.dtype}")
    return values.astype(np.int64)
