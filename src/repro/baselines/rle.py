"""Run-Length Encoding: the "identical frame" special case of FOR (paper §2).

Stores (value, run length) pairs; random access binary-searches the
cumulative run starts.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Codec, EncodedSequence, as_int64
from repro.bitio import (
    BitPackedArray,
    decode_uvarint,
    encode_uvarint,
    zigzag_decode,
    zigzag_encode,
)


class RLEEncodedSequence(EncodedSequence):
    wire_id = "rle"

    def __init__(self, n: int, run_values: np.ndarray,
                 run_starts: np.ndarray):
        self.n = n
        self._values = run_values
        self._starts = run_starts
        self._packed_values = BitPackedArray.from_values(
            zigzag_encode(run_values))
        self._packed_starts = BitPackedArray.from_values(
            run_starts.astype(np.uint64))

    def __len__(self) -> int:
        return self.n

    def get(self, position: int) -> int:
        if not 0 <= position < self.n:
            raise IndexError(f"position {position} out of [0, {self.n})")
        idx = int(np.searchsorted(self._starts, position, side="right")) - 1
        return int(self._values[idx])

    def gather(self, indices: np.ndarray) -> np.ndarray:
        """Batch access: one vectorised run binary-search per call."""
        indices = self._check_indices(indices)
        if indices.size == 0:
            return np.empty(0, dtype=np.int64)
        runs = np.searchsorted(self._starts, indices, side="right") - 1
        return self._values[runs].astype(np.int64)

    def decode_all(self) -> np.ndarray:
        if self.n == 0:
            return np.empty(0, dtype=np.int64)
        lengths = np.diff(np.append(self._starts, self.n))
        return np.repeat(self._values, lengths)

    def compressed_size_bytes(self) -> int:
        return self._packed_values.nbytes + self._packed_starts.nbytes + 18

    def payload_bytes(self) -> bytes:
        return (encode_uvarint(self.n)
                + self._packed_values.to_bytes()
                + self._packed_starts.to_bytes())

    @classmethod
    def from_payload(cls, payload: bytes) -> "RLEEncodedSequence":
        n, offset = decode_uvarint(payload, 0)
        packed_values, offset = BitPackedArray.from_bytes(payload, offset)
        packed_starts, offset = BitPackedArray.from_bytes(payload, offset)
        values = zigzag_decode(packed_values.to_numpy()).astype(np.int64)
        starts = packed_starts.to_numpy().astype(np.int64)
        return cls(n, values, starts)

    @property
    def run_count(self) -> int:
        return len(self._values)


class RLECodec(Codec):
    name = "rle"

    def encode(self, values: np.ndarray) -> RLEEncodedSequence:
        values = as_int64(values)
        if len(values) == 0:
            return RLEEncodedSequence(0, np.empty(0, dtype=np.int64),
                                      np.empty(0, dtype=np.int64))
        change = np.flatnonzero(np.diff(values)) + 1
        starts = np.concatenate([[0], change]).astype(np.int64)
        return RLEEncodedSequence(len(values), values[starts], starts)
