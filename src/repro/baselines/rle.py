"""Run-Length Encoding: the "identical frame" special case of FOR (paper §2).

Stores (value, run length) pairs; random access binary-searches the
cumulative run starts.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Codec, EncodedSequence, as_int64
from repro.bitio import BitPackedArray, zigzag_decode, zigzag_encode


class RLEEncodedSequence(EncodedSequence):
    def __init__(self, n: int, run_values: np.ndarray,
                 run_starts: np.ndarray):
        self.n = n
        self._values = run_values
        self._starts = run_starts
        self._packed_values = BitPackedArray.from_values(
            zigzag_encode(run_values))
        self._packed_starts = BitPackedArray.from_values(
            run_starts.astype(np.uint64))

    def __len__(self) -> int:
        return self.n

    def get(self, position: int) -> int:
        if not 0 <= position < self.n:
            raise IndexError(f"position {position} out of [0, {self.n})")
        idx = int(np.searchsorted(self._starts, position, side="right")) - 1
        return int(self._values[idx])

    def decode_all(self) -> np.ndarray:
        if self.n == 0:
            return np.empty(0, dtype=np.int64)
        lengths = np.diff(np.append(self._starts, self.n))
        return np.repeat(self._values, lengths)

    def compressed_size_bytes(self) -> int:
        return self._packed_values.nbytes + self._packed_starts.nbytes + 18

    @property
    def run_count(self) -> int:
        return len(self._values)


class RLECodec(Codec):
    name = "rle"

    def encode(self, values: np.ndarray) -> RLEEncodedSequence:
        values = as_int64(values)
        if len(values) == 0:
            return RLEEncodedSequence(0, np.empty(0, dtype=np.int64),
                                      np.empty(0, dtype=np.int64))
        change = np.flatnonzero(np.diff(values)) + 1
        starts = np.concatenate([[0], change]).astype(np.int64)
        return RLEEncodedSequence(len(values), values[starts], starts)
