"""Delta encoding with fixed- and variable-length partitions (paper §2, §4).

Each partition stores its first value explicitly (the "model") and the
bias-encoded differences between neighbours.  Random access must rebuild the
prefix sum up to the requested position — the sequential-decode cost the
paper measures as an order of magnitude slower than FOR/LeCo.

``Delta-var`` is the paper's improved variant: the same split–merge
partitioner as LeCo, driven by a cost adapter whose ``Δ`` is the bit-width
of the difference span (the incremental formula of §3.2.2).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Codec, EncodedSequence, as_int64
from repro.bitio import (
    BitPackedArray,
    decode_svarint,
    decode_uvarint,
    encode_svarint,
    encode_uvarint,
)
from repro.core.partitioners import (
    AutoFixedPartitioner,
    FixedLengthPartitioner,
    SplitMergePartitioner,
)
from repro.core.regressors.base import FittedModel, Regressor


class _DeltaModel(FittedModel):
    """Placeholder model: the stored parameter is the partition's first value."""

    kind = "delta"

    def __init__(self, first: float):
        self._params = np.array([first], dtype=np.float64)

    @property
    def params(self) -> np.ndarray:
        return self._params

    def predict_float(self, positions: np.ndarray) -> np.ndarray:
        positions = np.asarray(positions)
        return np.full(positions.shape, self._params[0], dtype=np.float64)


class DeltaCostAdapter(Regressor):
    """Cost-model adapter letting Delta reuse LeCo's partitioners.

    The "model" is one stored value (8 bytes); ``Δ`` is the width of the
    first-difference span, maintained incrementally during the split phase.
    """

    name = "delta-cost"
    min_partition_size = 2
    param_count = 1
    incremental_kind = "diff-span"
    seed_delta_order = 2

    def fit(self, values: np.ndarray) -> _DeltaModel:
        values = as_int64(values)
        first = float(values[0]) if values.size else 0.0
        return _DeltaModel(first)

    def delta_bits(self, values: np.ndarray) -> int:
        values = as_int64(values)
        if len(values) < 2:
            return 0
        d = np.diff(values)
        return int(int(d.max()) - int(d.min())).bit_length()

    fast_delta_bits = delta_bits

    def load(self, params: np.ndarray) -> _DeltaModel:
        return _DeltaModel(float(params[0]))


class _DeltaPartition:
    __slots__ = ("start", "length", "first", "bias", "packed")

    def __init__(self, start: int, values: np.ndarray):
        self.start = start
        self.length = len(values)
        self.first = int(values[0])
        diffs = np.diff(values)
        if diffs.size:
            self.bias = int(diffs.min())
            self.packed = BitPackedArray.from_values(
                (diffs - self.bias).astype(np.uint64))
        else:
            self.bias = 0
            self.packed = BitPackedArray.from_values(
                np.empty(0, dtype=np.uint64))

    def decode(self) -> np.ndarray:
        out = np.empty(self.length, dtype=np.int64)
        out[0] = self.first
        if self.length > 1:
            diffs = self.packed.to_numpy().astype(np.int64) + self.bias
            out[1:] = self.first + np.cumsum(diffs)
        return out

    def decode_prefix(self, local: int) -> int:
        """Prefix-sum decode up to local position (the slow RA path).

        Still O(position) work — Delta has no random access — but the
        prefix's slots come from one vectorised read instead of a scalar
        ``read_slot`` loop.
        """
        if local == 0:
            return self.first
        slots = self.packed.slice(0, local)
        # exact (unbounded) slot sum: uint64 slots can reach 2**64 - 1, so
        # sum the halves separately to avoid both int64 wrap and float paths
        total = (int((slots >> np.uint64(32)).sum(dtype=np.uint64)) << 32) \
            + int((slots & np.uint64(0xFFFFFFFF)).sum(dtype=np.uint64))
        return self.first + local * self.bias + total

    def size_bytes(self) -> int:
        # first value (8) + bias (8) + width byte + payload
        return 8 + 8 + 1 + self.packed.nbytes

    @classmethod
    def from_parts(cls, start: int, length: int, first: int, bias: int,
                   packed: BitPackedArray) -> "_DeltaPartition":
        part = cls.__new__(cls)
        part.start = start
        part.length = length
        part.first = first
        part.bias = bias
        part.packed = packed
        return part


class DeltaEncodedSequence(EncodedSequence):
    wire_id = "delta"

    def __init__(self, n: int, partitions: list[_DeltaPartition]):
        self.n = n
        self.partitions = partitions
        self._starts = np.array([p.start for p in partitions],
                                dtype=np.int64)

    def __len__(self) -> int:
        return self.n

    def get(self, position: int) -> int:
        if not 0 <= position < self.n:
            raise IndexError(f"position {position} out of [0, {self.n})")
        idx = int(np.searchsorted(self._starts, position, side="right")) - 1
        part = self.partitions[idx]
        return part.decode_prefix(position - part.start)

    def gather(self, positions: np.ndarray) -> np.ndarray:
        """Batch access: decode each covering partition once, then index.

        Delta has no true random access, but batching amortises the
        sequential prefix work — every touched partition is decoded with
        one vectorised cumsum instead of a prefix walk per position.
        """
        positions = self._check_indices(positions)
        out = np.empty(len(positions), dtype=np.int64)
        part_ids = np.searchsorted(self._starts, positions,
                                   side="right") - 1
        for pid in np.unique(part_ids):
            part = self.partitions[int(pid)]
            decoded = part.decode()
            mask = part_ids == pid
            out[mask] = decoded[positions[mask] - part.start]
        return out

    def decode_range(self, lo: int, hi: int) -> np.ndarray:
        """Range decode touching only the partitions covering ``[lo, hi)``."""
        if not 0 <= lo <= hi <= self.n:
            raise IndexError(f"bad range [{lo}, {hi}) for n={self.n}")
        if lo == hi:
            return np.empty(0, dtype=np.int64)
        idx = int(np.searchsorted(self._starts, lo, side="right")) - 1
        chunks = []
        pos = lo
        while pos < hi:
            part = self.partitions[idx]
            decoded = part.decode()
            end = min(hi, part.start + part.length)
            chunks.append(decoded[pos - part.start: end - part.start])
            pos = part.start + part.length
            idx += 1
        return np.concatenate(chunks)

    def decode_all(self) -> np.ndarray:
        if not self.partitions:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([p.decode() for p in self.partitions])

    def compressed_size_bytes(self) -> int:
        meta = 8 * len(self.partitions)  # start offsets
        return meta + sum(p.size_bytes() for p in self.partitions)

    def payload_bytes(self) -> bytes:
        out = bytearray()
        out += encode_uvarint(self.n)
        out += encode_uvarint(len(self.partitions))
        for part in self.partitions:
            out += encode_uvarint(part.start)
            out += encode_svarint(part.first)
            out += encode_svarint(part.bias)
            out += part.packed.to_bytes()
        return bytes(out)

    @classmethod
    def from_payload(cls, payload: bytes) -> "DeltaEncodedSequence":
        n, offset = decode_uvarint(payload, 0)
        m, offset = decode_uvarint(payload, offset)
        parts: list[_DeltaPartition] = []
        for _ in range(m):
            start, offset = decode_uvarint(payload, offset)
            first, offset = decode_svarint(payload, offset)
            bias, offset = decode_svarint(payload, offset)
            packed, offset = BitPackedArray.from_bytes(payload, offset)
            # a partition of L values stores L-1 diffs
            parts.append(_DeltaPartition.from_parts(
                start, len(packed) + 1, first, bias, packed))
        return cls(n, parts)


class DeltaCodec(Codec):
    """Delta encoding; ``variant="fix"`` or ``"var"``."""

    sequential_access = True

    def __init__(self, variant: str = "fix", partition_size: int | None = None,
                 tau: float = 0.05, max_partition_size: int = 10_000):
        if variant not in ("fix", "var"):
            raise ValueError(f"variant must be 'fix' or 'var', got {variant}")
        self.variant = variant
        self.name = f"delta-{variant}"
        self._cost = DeltaCostAdapter()
        if variant == "var":
            self._partitioner = SplitMergePartitioner(tau=tau)
        elif partition_size is not None:
            self._partitioner = FixedLengthPartitioner(partition_size)
        else:
            self._partitioner = AutoFixedPartitioner(
                max_size=max_partition_size)

    def encode(self, values: np.ndarray) -> DeltaEncodedSequence:
        values = as_int64(values)
        if len(values) == 0:
            return DeltaEncodedSequence(0, [])
        bounds = self._partitioner.partition(values, self._cost)
        parts = [_DeltaPartition(a, values[a:b]) for a, b in bounds]
        return DeltaEncodedSequence(len(values), parts)
