"""FSST-style string compression (Boncz et al., VLDB'20), paper §4.7.

A static symbol table maps up to 255 substrings (1–8 bytes) to 1-byte codes;
bytes not covered are escaped (0xFF marker + literal).  The table is built by
the iterative greedy refinement of the FSST paper: encode a sample with the
current table, count adjacent code pairs, promote concatenations with the
highest gain, and keep the top symbols.

Random access needs a byte-offset per string.  Like production FSST
deployments, the offset array can be delta-encoded in blocks: entry ``i``
stores ``offset[i] - offset[block_start]``, trading random-access speed
(prefix reconstruction inside the block) for size.  ``offset_block = 0``
stores absolute offsets.  Fig. 15 sweeps this knob.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import SelfDescribing, normalize_indices
from repro.bitio import BitPackedArray, decode_uvarint, encode_uvarint

_ESCAPE = 0xFF
_MAX_SYMBOL_LEN = 8
_TABLE_SIZE = 255


def _encode_with_table(data: bytes, table: dict[bytes, int]) -> bytearray:
    """Greedy longest-match encode of ``data`` against the symbol table."""
    out = bytearray()
    pos = 0
    n = len(data)
    while pos < n:
        matched = False
        for length in range(min(_MAX_SYMBOL_LEN, n - pos), 0, -1):
            code = table.get(data[pos: pos + length])
            if code is not None:
                out.append(code)
                pos += length
                matched = True
                break
        if not matched:
            out.append(_ESCAPE)
            out.append(data[pos])
            pos += 1
    return out


def build_symbol_table(sample: bytes | list[bytes], iterations: int = 5
                       ) -> dict[bytes, int]:
    """Iterative greedy construction of the FSST symbol table.

    ``sample`` may be a list of strings: candidate symbols are then counted
    within string boundaries, since encoding never crosses them.  Single
    bytes present in the sample always compete for slots (they are the
    fallback that keeps escapes rare).
    """
    pieces = [sample] if isinstance(sample, (bytes, bytearray)) else sample
    joined = b"".join(bytes(p) for p in pieces)
    counts = np.bincount(np.frombuffer(joined, dtype=np.uint8),
                         minlength=256)
    order = np.argsort(counts)[::-1]
    symbols = [bytes([int(b)]) for b in order[:_TABLE_SIZE]
               if counts[int(b)] > 0]
    byte_gains = {bytes([b]): int(counts[b]) for b in range(256)
                  if counts[b] > 0}

    for _ in range(iterations):
        table = {sym: code for code, sym in enumerate(symbols)}
        gains: dict[bytes, int] = dict(byte_gains)
        for piece in pieces:
            decoded_syms: list[bytes] = []
            encoded = _encode_with_table(bytes(piece), table)
            idx = 0
            while idx < len(encoded):
                code = encoded[idx]
                if code == _ESCAPE:
                    sym = bytes([encoded[idx + 1]])
                    idx += 2
                else:
                    sym = symbols[code]
                    idx += 1
                decoded_syms.append(sym)
                gains[sym] = gains.get(sym, 0) + len(sym)
            for left, right in zip(decoded_syms, decoded_syms[1:]):
                joint = left + right
                if len(joint) <= _MAX_SYMBOL_LEN:
                    gains[joint] = gains.get(joint, 0) + len(joint)
        ranked = sorted(gains.items(), key=lambda kv: -kv[1])
        symbols = [sym for sym, _ in ranked[:_TABLE_SIZE]]
    return {sym: code for code, sym in enumerate(symbols)}


class FSSTCompressedStrings(SelfDescribing):
    """FSST-encoded string column with block-delta offsets."""

    wire_id = "fsst"

    def __init__(self, payload: bytes, offsets: np.ndarray,
                 symbols: list[bytes], offset_block: int):
        self.payload = payload
        self._offsets = offsets  # absolute, length n+1
        self.symbols = symbols
        self.offset_block = offset_block
        self.n = len(offsets) - 1
        self._packed_offsets_bytes = self._offsets_size_bytes()

    def _offsets_size_bytes(self) -> int:
        """Size of the offset array under the block-delta layout."""
        if self.n == 0:
            return 0
        if self.offset_block <= 1:
            width = int(self._offsets[-1]).bit_length()
            return (self.n * width + 7) // 8 + 1
        total_bits = 0
        for start in range(0, self.n, self.offset_block):
            end = min(start + self.offset_block, self.n)
            base = int(self._offsets[start])
            deltas = self._offsets[start:end + 1] - base
            width = int(deltas[-1]).bit_length()
            # absolute block base + packed in-block deltas
            total_bits += 64 + (end - start) * width
        return (total_bits + 7) // 8

    def get(self, position: int) -> bytes:
        if not 0 <= position < self.n:
            raise IndexError(f"position {position} out of [0, {self.n})")
        if self.offset_block > 1:
            # emulate the prefix walk inside the delta block: the stored
            # form requires touching every in-block entry before `position`
            block_start = (position // self.offset_block) * self.offset_block
            acc = 0
            for k in range(block_start, position):
                acc += int(self._offsets[k + 1]) - int(self._offsets[k])
        lo = int(self._offsets[position])
        hi = int(self._offsets[position + 1])
        return self._decode_codes(self.payload[lo:hi])

    def _decode_codes(self, codes: bytes) -> bytes:
        out = bytearray()
        idx = 0
        while idx < len(codes):
            code = codes[idx]
            if code == _ESCAPE:
                out.append(codes[idx + 1])
                idx += 2
            else:
                out += self.symbols[code]
                idx += 1
        return bytes(out)

    def decode_all(self) -> list[bytes]:
        # a full decode reconstructs block offsets sequentially once, so it
        # skips get()'s per-position prefix-walk emulation
        payload = self.payload
        bounds = self._offsets
        return [self._decode_codes(payload[int(bounds[i]): int(bounds[i + 1])])
                for i in range(self.n)]

    def gather(self, indices) -> list[bytes]:
        """Batch access: one offset slice per index, no prefix emulation."""
        indices = normalize_indices(indices, self.n)
        payload = self.payload
        return [self._decode_codes(
            payload[int(self._offsets[i]): int(self._offsets[i + 1])])
            for i in indices]

    def compressed_size_bytes(self) -> int:
        table = sum(1 + len(s) for s in self.symbols)
        return len(self.payload) + table + self._packed_offsets_bytes

    def size_bytes(self) -> int:
        return self.compressed_size_bytes()

    def __len__(self) -> int:
        return self.n

    # ------------------------------------------------------ serialisation
    def payload_bytes(self) -> bytes:
        out = bytearray()
        out += encode_uvarint(self.offset_block)
        out += encode_uvarint(len(self.symbols))
        for sym in self.symbols:
            out.append(len(sym))
            out += sym
        out += BitPackedArray.from_values(
            self._offsets.astype(np.uint64)).to_bytes()
        out += self.payload
        return bytes(out)

    @classmethod
    def from_payload(cls, payload: bytes) -> "FSSTCompressedStrings":
        offset_block, offset = decode_uvarint(payload, 0)
        n_symbols, offset = decode_uvarint(payload, offset)
        symbols: list[bytes] = []
        for _ in range(n_symbols):
            ln = payload[offset]
            offset += 1
            symbols.append(payload[offset: offset + ln])
            offset += ln
        packed, offset = BitPackedArray.from_bytes(payload, offset)
        offsets = packed.to_numpy().astype(np.int64)
        return cls(payload[offset:], offsets, symbols, offset_block)


class FSSTCodec:
    """FSST with a configurable offset delta-block size (0 = absolute)."""

    def __init__(self, offset_block: int = 0, sample_bytes: int = 1 << 16,
                 iterations: int = 5):
        self.offset_block = offset_block
        self.sample_bytes = sample_bytes
        self.iterations = iterations
        self.name = f"fsst(block={offset_block})"

    def encode(self, strings: list[bytes | str]) -> FSSTCompressedStrings:
        data = [s.encode() if isinstance(s, str) else bytes(s)
                for s in strings]
        sample: list[bytes] = []
        budget = self.sample_bytes
        for s in data:
            if budget <= 0:
                break
            sample.append(s)
            budget -= len(s)
        table = build_symbol_table(sample, self.iterations)
        symbols = [b""] * len(table)
        for sym, code in table.items():
            symbols[code] = sym

        payload = bytearray()
        offsets = np.zeros(len(data) + 1, dtype=np.int64)
        for i, s in enumerate(data):
            payload += _encode_with_table(s, table)
            offsets[i + 1] = len(payload)
        return FSSTCompressedStrings(bytes(payload), offsets, symbols,
                                     self.offset_block)
