"""Elias-Fano quasi-succinct encoding of monotone sequences (paper §4.1).

Values (shifted by the sequence minimum) split into ``l``-bit low parts,
stored bit-packed, and high parts, stored as a unary-coded bitvector: element
``i`` sets bit ``high_i + i``.  Total cost is ``(2 + ceil(log2(m/n)))`` bits
per element.  Random access is ``select1(i)`` on the high bitvector, served
by sampled select positions (the o(n) auxiliary all practical EF
implementations carry; included in the reported size).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Codec, EncodedSequence, as_int64
from repro.bitio import (
    BitPackedArray,
    decode_svarint,
    decode_uvarint,
    encode_svarint,
    encode_uvarint,
)

_SELECT_SAMPLE = 512


class EliasFanoSequence(EncodedSequence):
    wire_id = "elias-fano"

    def __init__(self, values: np.ndarray):
        values = as_int64(values)
        if np.any(np.diff(values) < 0):
            raise ValueError("Elias-Fano requires a non-decreasing sequence")
        self.n = len(values)
        self._base = int(values[0]) if self.n else 0
        shifted = (values - self._base).astype(np.uint64)
        universe = int(shifted[-1]) + 1 if self.n else 1
        ratio = max(universe // max(self.n, 1), 1)
        self._low_bits = max(int(ratio - 1).bit_length(), 0)
        if self._low_bits:
            lows = shifted & np.uint64((1 << self._low_bits) - 1)
        else:
            lows = np.zeros(self.n, dtype=np.uint64)
        self._lows = BitPackedArray.from_values(lows, self._low_bits)
        highs = (shifted >> np.uint64(self._low_bits)).astype(np.int64)
        # unary bitvector: one set bit per element at position high_i + i
        one_positions = highs + np.arange(self.n, dtype=np.int64)
        nbits = (int(one_positions[-1]) + 1) if self.n else 0
        bits = np.zeros(nbits, dtype=np.uint8)
        bits[one_positions] = 1
        self._high = np.packbits(bits) if nbits else np.empty(0, np.uint8)
        self._high_nbits = nbits
        # select acceleration: every _SELECT_SAMPLE-th one position
        self._select_samples = one_positions[::_SELECT_SAMPLE].astype(
            np.int64)
        self._ones = one_positions  # transient decode cache

    def __len__(self) -> int:
        return self.n

    def get(self, position: int) -> int:
        if not 0 <= position < self.n:
            raise IndexError(f"position {position} out of [0, {self.n})")
        high = int(self._ones[position]) - position
        low = self._lows[position] if self._low_bits else 0
        return self._base + (high << self._low_bits) + low

    def decode_all(self) -> np.ndarray:
        if self.n == 0:
            return np.empty(0, dtype=np.int64)
        highs = self._ones - np.arange(self.n, dtype=np.int64)
        lows = self._lows.to_numpy().astype(np.int64)
        return self._base + (highs << self._low_bits) + lows

    def gather(self, indices: np.ndarray) -> np.ndarray:
        """Batch select1: vectorised high-part lookup + low-slot gather."""
        indices = self._check_indices(indices)
        if indices.size == 0:
            return np.empty(0, dtype=np.int64)
        highs = self._ones[indices] - indices
        if self._low_bits:
            lows = self._lows.gather(indices).astype(np.int64)
        else:
            lows = np.zeros(indices.size, dtype=np.int64)
        return self._base + (highs << self._low_bits) + lows

    def compressed_size_bytes(self) -> int:
        header = 8 + 8 + 1  # base, n, low bit-width
        select = self._select_samples.size * 8
        return (header + self._lows.nbytes + len(self._high) + select)

    def payload_bytes(self) -> bytes:
        out = bytearray()
        out += encode_uvarint(self.n)
        out += encode_svarint(self._base)
        out.append(self._low_bits)
        out += self._lows.to_bytes()
        out += encode_uvarint(self._high_nbits)
        out += bytes(self._high)
        return bytes(out)

    @classmethod
    def from_payload(cls, payload: bytes) -> "EliasFanoSequence":
        n, offset = decode_uvarint(payload, 0)
        base, offset = decode_svarint(payload, offset)
        low_bits = payload[offset]
        offset += 1
        lows, offset = BitPackedArray.from_bytes(payload, offset)
        nbits, offset = decode_uvarint(payload, offset)
        nbytes = (nbits + 7) // 8
        if len(payload) < offset + nbytes:
            raise ValueError("truncated Elias-Fano high bitvector")
        high = np.frombuffer(payload, dtype=np.uint8, count=nbytes,
                             offset=offset).copy()
        seq = cls.__new__(cls)
        seq.n = n
        seq._base = base
        seq._low_bits = low_bits
        seq._lows = lows
        seq._high = high
        seq._high_nbits = nbits
        ones = np.flatnonzero(
            np.unpackbits(high, count=nbits)) if nbits else \
            np.empty(0, dtype=np.int64)
        seq._ones = ones.astype(np.int64)
        seq._select_samples = seq._ones[::_SELECT_SAMPLE].astype(np.int64)
        return seq


class EliasFanoCodec(Codec):
    name = "elias-fano"

    def encode(self, values: np.ndarray) -> EliasFanoSequence:
        return EliasFanoSequence(values)

    @staticmethod
    def applicable(values: np.ndarray) -> bool:
        """EF only applies to non-decreasing data (paper skips others)."""
        values = as_int64(values)
        return bool(np.all(np.diff(values) >= 0)) if len(values) else True
