"""LeCo variants exposed through the common codec interface.

``LecoCodec`` wraps :class:`repro.core.encoding.LecoEncoder`, and because
FOR and Delta are special cases of the framework (paper §2), ``FORCodec`` is
literally LeCo with the constant regressor.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Codec, EncodedSequence, as_int64
from repro.core.encoding import CompressedArray, LecoEncoder
from repro.core.regressors import ConstantRegressor, Regressor


class LecoEncodedSequence(EncodedSequence):
    """Adapter giving :class:`CompressedArray` the codec surface."""

    wire_id = "leco"

    def __init__(self, array: CompressedArray):
        self.array = array

    def __len__(self) -> int:
        return len(self.array)

    def get(self, position: int) -> int:
        return self.array.get(position)

    def gather(self, indices: np.ndarray) -> np.ndarray:
        """Batch random access via partition-grouped slot gathers."""
        return self.array.take(self._check_indices(indices))

    def decode_all(self) -> np.ndarray:
        return self.array.decode_all()

    def decode_range(self, lo: int, hi: int) -> np.ndarray:
        """Partition-pruned range decode (only covering partitions)."""
        return self.array.decode_range(lo, hi)

    def filter_range(self, lo: int, hi: int) -> np.ndarray:
        """Range predicate with model-based partition pruning (§5.1.1).

        Partitions whose model + residual-width band cannot intersect
        ``[lo, hi)`` are skipped without touching their delta arrays.
        """
        array = self.array
        if not array.partitions:
            return np.zeros(len(self), dtype=bool)
        bitmap = np.zeros(len(self), dtype=bool)
        bounds = array.partition_value_bounds()
        for j, part in enumerate(array.partitions):
            if bounds[j, 1] < lo or bounds[j, 0] >= hi:
                continue  # pruned: cannot contain matches
            decoded = part.decode_slice(0, part.length)
            bitmap[part.start: part.end] = (decoded >= lo) & (decoded < hi)
        return bitmap

    def model_bounds(self) -> tuple[int, int] | None:
        """Sequence-wide value bounds from the per-partition model bands.

        Aggregates :meth:`CompressedArray.partition_value_bounds` — no
        delta array is touched, so the store's zone maps come for free.
        Conservative: never excludes a stored value, may be loose (the
        residual-width band, and non-monotone regressors widen to a
        near-int64 sentinel range).
        """
        if not self.array.partitions or len(self) == 0:
            return None
        bounds = self.array.partition_value_bounds()
        return int(bounds[:, 0].min()), int(bounds[:, 1].max())

    def compressed_size_bytes(self) -> int:
        return self.array.compressed_size_bytes()

    def model_size_bytes(self) -> int:
        return self.array.model_size_bytes()

    def payload_bytes(self) -> bytes:
        return self.array.to_bytes()

    @classmethod
    def from_payload(cls, payload: bytes) -> "LecoEncodedSequence":
        return cls(CompressedArray.from_bytes(payload))


class LecoCodec(Codec):
    """LeCo with a configurable regressor and partitioner."""

    supports_range_pruning = True

    def __init__(self, regressor: Regressor | str = "linear",
                 partitioner="fixed", tau: float = 0.05,
                 max_partition_size: int = 10_000,
                 name: str | None = None):
        self._encoder = LecoEncoder(regressor=regressor,
                                    partitioner=partitioner, tau=tau,
                                    max_partition_size=max_partition_size)
        if name is not None:
            self.name = name
        else:
            suffix = "var" if partitioner == "variable" else "fix"
            self.name = f"leco-{suffix}"

    def encode(self, values: np.ndarray) -> LecoEncodedSequence:
        return LecoEncodedSequence(self._encoder.encode(as_int64(values)))


class FORCodec(LecoCodec):
    """Frame-of-Reference: the constant-model special case of LeCo.

    Each frame stores its reference (the residual bias, i.e. the frame
    minimum up to centering) and bit-packs offsets — exactly the paper's
    description of FOR as a horizontal-line regressor (§2).
    """

    def __init__(self, frame_size: int | None = None,
                 max_partition_size: int = 10_000):
        partitioner = frame_size if frame_size is not None else "fixed"
        super().__init__(regressor=ConstantRegressor(),
                         partitioner=partitioner,
                         max_partition_size=max_partition_size,
                         name="for")
