"""Baseline compression schemes evaluated against LeCo (paper §4.1)."""

from repro.baselines.base import Codec, EncodedSequence, as_int64
from repro.baselines.delta import DeltaCodec, DeltaCostAdapter
from repro.baselines.elias_fano import EliasFanoCodec, EliasFanoSequence
from repro.baselines.fsst import FSSTCodec, build_symbol_table
from repro.baselines.leco import FORCodec, LecoCodec, LecoEncodedSequence
from repro.baselines.rans import RansCodec, infer_value_width
from repro.baselines.rle import RLECodec


def standard_codecs(include_rans: bool = True) -> list[Codec]:
    """The paper's Fig. 10 line-up (Elias-Fano added where applicable)."""
    codecs: list[Codec] = []
    if include_rans:
        codecs.append(RansCodec())
    codecs += [
        FORCodec(),
        DeltaCodec("fix"),
        DeltaCodec("var"),
        LecoCodec("linear", partitioner="fixed"),
        LecoCodec("linear", partitioner="variable"),
    ]
    return codecs


__all__ = [
    "Codec",
    "EncodedSequence",
    "as_int64",
    "DeltaCodec",
    "DeltaCostAdapter",
    "EliasFanoCodec",
    "EliasFanoSequence",
    "FSSTCodec",
    "build_symbol_table",
    "FORCodec",
    "LecoCodec",
    "LecoEncodedSequence",
    "RansCodec",
    "infer_value_width",
    "RLECodec",
    "standard_codecs",
]
