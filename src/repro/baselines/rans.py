"""rANS: range asymmetric numeral systems entropy coder (paper §4.1).

A static byte-oriented rANS with 12-bit quantised frequencies, operating on
the little-endian byte image of the sequence (the dataset's natural value
width).  rANS represents the dictionary/entropy family in the benchmark:
it approaches Shannon's entropy of the byte distribution but is blind to
serial correlation — the contrast the paper draws in §4.3.1.

Decoding is strictly sequential; random access decodes a prefix, which is
why the paper reports ~10^5–10^6 ns random-access latencies for it.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Codec, EncodedSequence, as_int64
from repro.bitio import decode_uvarint, encode_uvarint

_PROB_BITS = 12
_PROB_SCALE = 1 << _PROB_BITS
_RANS_L = 1 << 23  # renormalisation lower bound (byte-wise emission)


def _quantise_freqs(counts: np.ndarray) -> np.ndarray:
    """Scale symbol counts to sum to 2**12 with no used symbol at zero."""
    total = counts.sum()
    if total == 0:
        freqs = np.zeros(256, dtype=np.int64)
        freqs[0] = _PROB_SCALE
        return freqs
    freqs = np.maximum((counts * _PROB_SCALE) // total, 0).astype(np.int64)
    freqs[(counts > 0) & (freqs == 0)] = 1
    # fix the rounding drift by adjusting the most frequent symbol
    drift = _PROB_SCALE - freqs.sum()
    freqs[int(np.argmax(freqs))] += drift
    if freqs.min() < 0 or freqs.sum() != _PROB_SCALE:
        raise AssertionError("frequency quantisation failed")
    return freqs


class RansEncodedSequence(EncodedSequence):
    wire_id = "rans"

    def __init__(self, n: int, width: int, freqs: np.ndarray,
                 payload: bytes, state: int):
        self.n = n
        self.width = width
        self._freqs = freqs
        self._cum = np.concatenate([[0], np.cumsum(freqs)]).astype(np.int64)
        self._payload = payload
        self._state = state
        # symbol lookup: slot -> symbol
        self._slot_to_sym = np.repeat(
            np.arange(256, dtype=np.uint8), freqs).astype(np.uint8)
        # Vectorised decode-table build: per-slot frequency and the
        # precombined `slot - cum[sym]` remainder, so the (inherently
        # serial) decode loop below is pure list indexing + int arithmetic
        # with no per-symbol numpy scalar work left inside it.
        slot_freq = freqs[self._slot_to_sym]
        slot_rem = (np.arange(_PROB_SCALE, dtype=np.int64)
                    - self._cum[self._slot_to_sym])
        self._sym_bytes = self._slot_to_sym.tobytes()
        self._slot_freq = slot_freq.tolist()
        self._slot_rem = slot_rem.tolist()

    def __len__(self) -> int:
        return self.n

    def _decode_bytes(self, count: int) -> np.ndarray:
        out = bytearray(count)
        state = self._state
        payload = self._payload
        pos = 0
        npayload = len(payload)
        sym_bytes = self._sym_bytes
        slot_freq = self._slot_freq
        slot_rem = self._slot_rem
        mask = _PROB_SCALE - 1
        for i in range(count):
            slot = state & mask
            out[i] = sym_bytes[slot]
            state = slot_freq[slot] * (state >> _PROB_BITS) + slot_rem[slot]
            while state < _RANS_L and pos < npayload:
                state = (state << 8) | payload[pos]
                pos += 1
        return np.frombuffer(bytes(out), dtype=np.uint8)

    def _decode_prefix_values(self, count: int) -> np.ndarray:
        """Decode the first ``count`` values (the sequential-access cost)."""
        if count == 0:
            return np.empty(0, dtype=np.int64)
        raw = self._decode_bytes(count * self.width)
        padded = np.zeros((count, 8), dtype=np.uint8)
        padded[:, : self.width] = raw.reshape(count, self.width)
        return padded.view(np.uint64).ravel().astype(np.int64)

    def decode_all(self) -> np.ndarray:
        return self._decode_prefix_values(self.n)

    def gather(self, indices: np.ndarray) -> np.ndarray:
        """Batch access: one prefix decode up to the furthest index.

        rANS stays strictly sequential, but a batch shares the prefix work
        instead of re-decoding it per position as scalar ``get`` must.
        """
        indices = self._check_indices(indices)
        if indices.size == 0:
            return np.empty(0, dtype=np.int64)
        prefix = self._decode_prefix_values(int(indices.max()) + 1)
        return prefix[indices]

    def decode_range(self, lo: int, hi: int) -> np.ndarray:
        """Prefix decode up to ``hi`` and slice (no suffix work)."""
        if not 0 <= lo <= hi <= self.n:
            raise IndexError(f"bad range [{lo}, {hi}) for n={self.n}")
        return self._decode_prefix_values(hi)[lo:hi]

    def get(self, position: int) -> int:
        if not 0 <= position < self.n:
            raise IndexError(f"position {position} out of [0, {self.n})")
        raw = self._decode_bytes((position + 1) * self.width)
        chunk = raw[position * self.width: (position + 1) * self.width]
        value = 0
        for byte in chunk[::-1]:
            value = (value << 8) | int(byte)
        # full-width values are the little-endian image of an int64:
        # fold back to signed (decode_all's uint64 -> int64 cast does this)
        if value >= 1 << 63:
            value -= 1 << 64
        return value

    def compressed_size_bytes(self) -> int:
        # freq table: 256 x 12 bits; state: 4 bytes; header: 9
        return len(self._payload) + (256 * _PROB_BITS) // 8 + 4 + 9

    def payload_bytes(self) -> bytes:
        out = bytearray()
        out += encode_uvarint(self.n)
        out.append(self.width)
        out += self._freqs.astype(">u2").tobytes()
        out += encode_uvarint(self._state)
        out += self._payload
        return bytes(out)

    @classmethod
    def from_payload(cls, payload: bytes) -> "RansEncodedSequence":
        n, offset = decode_uvarint(payload, 0)
        width = payload[offset]
        offset += 1
        freqs = np.frombuffer(payload, dtype=">u2", count=256,
                              offset=offset).astype(np.int64)
        offset += 512
        state, offset = decode_uvarint(payload, offset)
        return cls(n, width, freqs, payload[offset:], state)


class RansCodec(Codec):
    """Static byte-wise rANS over the value bytes."""

    name = "rans"
    sequential_access = True

    def __init__(self, width: int | None = None):
        self.width = width

    def encode(self, values: np.ndarray) -> RansEncodedSequence:
        values = as_int64(values)
        width = self.width or infer_value_width(values)
        raw = values.astype(np.uint64).view(np.uint8).reshape(-1, 8)
        stream = np.ascontiguousarray(raw[:, :width]).ravel()
        counts = np.bincount(stream, minlength=256).astype(np.int64)
        freqs = _quantise_freqs(counts)
        cum = np.concatenate([[0], np.cumsum(freqs)]).astype(np.int64)

        # hoist the per-symbol table lookups out of the serial loop:
        # frequency, cumulative base, and renormalisation threshold become
        # plain-list reads on the symbol byte
        freq_list = freqs.tolist()
        cum_list = cum[:-1].tolist()
        max_state_list = (((_RANS_L >> _PROB_BITS) << 8) * freqs).tolist()

        # encode in reverse so the decoder reads forwards
        state = _RANS_L
        out = bytearray()
        for sym in stream[::-1].tolist():
            freq = freq_list[sym]
            # renormalise: flush low bytes while the state is too large
            max_state = max_state_list[sym]
            while state >= max_state:
                out.append(state & 0xFF)
                state >>= 8
            state = ((state // freq) << _PROB_BITS) + state % freq \
                + cum_list[sym]
        out.reverse()
        return RansEncodedSequence(len(values), width, freqs, bytes(out),
                                   state)


def infer_value_width(values: np.ndarray) -> int:
    """Natural byte width of the data (4 for 32-bit ranges, else 8)."""
    values = as_int64(values)
    if values.size == 0:
        return 4
    lo, hi = int(values.min()), int(values.max())
    if lo >= 0 and hi < (1 << 32):
        return 4
    return 8
