"""``python -m repro.serve --root DIR`` — run a table server.

Prints ``listening on HOST:PORT`` once the socket is bound (port 0
picks a free port — scripts parse this line), serves until SIGINT or
SIGTERM, then drains gracefully: in-flight requests finish, new ones
are refused, exit status 0.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading

from repro.serve.server import DEFAULT_TIMEOUT_S, TableServer
from repro.store.cache import DEFAULT_CAPACITY_BYTES


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve the store tables under --root to concurrent "
                    "socket clients (length-prefixed JSON protocol).")
    parser.add_argument("--root", required=True,
                        help="directory holding table directories "
                             "(or itself a table)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="0 picks a free port (printed on stdout)")
    parser.add_argument("--workers", type=int, default=None,
                        help="scheduler worker threads (default: auto)")
    parser.add_argument("--policy", choices=("fair", "sjf"),
                        default="fair", help="granule scheduling policy")
    parser.add_argument("--max-inflight", type=int, default=8,
                        help="concurrent queries admitted at once")
    parser.add_argument("--queue-depth", type=int, default=16,
                        help="queries parked beyond that before "
                             "ServerBusy rejections")
    parser.add_argument("--cache-mb", type=float,
                        default=DEFAULT_CAPACITY_BYTES / (1 << 20),
                        help="shared chunk-cache budget in MiB")
    parser.add_argument("--timeout-s", type=float,
                        default=DEFAULT_TIMEOUT_S,
                        help="default per-request deadline")
    parser.add_argument("--worker-tier", choices=("thread", "process"),
                        default="thread",
                        help="where granules execute: 'thread' (one "
                             "GIL) or 'process' (N worker processes, "
                             "true multi-core decode)")
    parser.add_argument("--start-method", default=None,
                        choices=("fork", "spawn", "forkserver"),
                        help="multiprocessing start method for "
                             "--worker-tier process (default: fork "
                             "where available)")
    parser.add_argument("--pool-per-query", action="store_true",
                        help="baseline mode: no shared scheduler "
                             "(benchmarks only)")
    parser.add_argument("--metrics-port", type=int, default=None,
                        help="also serve HTTP GET /metrics on this "
                             "port (0 picks a free port)")
    parser.add_argument("--slow-query-ms", type=float, default=None,
                        help="trace every query and record ones "
                             "slower than this to the slow-query log")
    parser.add_argument("--slow-query-log", default=None,
                        help="JSONL file for slow queries (plan + "
                             "explain + trace; requires "
                             "--slow-query-ms)")
    args = parser.parse_args(argv)

    server = TableServer(
        args.root, host=args.host, port=args.port, workers=args.workers,
        policy=args.policy, max_inflight=args.max_inflight,
        queue_depth=args.queue_depth,
        cache_bytes=int(args.cache_mb * (1 << 20)),
        default_timeout_s=args.timeout_s,
        shared=not args.pool_per_query,
        worker_tier=args.worker_tier,
        start_method=args.start_method,
        metrics_port=args.metrics_port,
        slow_query_ms=args.slow_query_ms,
        slow_query_log=args.slow_query_log)
    host, port = server.address
    print(f"listening on {host}:{port}", flush=True)
    if server.metrics_address is not None:
        mhost, mport = server.metrics_address
        print(f"metrics on http://{mhost}:{mport}/metrics", flush=True)
    print(f"tables: {', '.join(server.table_names()) or '(none)'}",
          flush=True)

    stop = threading.Event()
    for sig in (signal.SIGINT, signal.SIGTERM):
        signal.signal(sig, lambda *_: stop.set())
    server.start()
    stop.wait()
    print("draining...", flush=True)
    server.shutdown()
    print("bye", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
