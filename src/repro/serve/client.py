"""``ServeClient`` — small blocking client for :class:`TableServer`.

One TCP connection, one request in flight at a time; responses arrive
in request order.  Server-side failures come back as typed exceptions:
:class:`~repro.exec.errors.ServerBusy` when admission control rejects,
:class:`~repro.exec.errors.ExecTimeout` when the per-request deadline
fires, plain :class:`RuntimeError` carrying the server's one-line
message otherwise.

::

    with ServeClient(host, port) as client:
        res = client.query("events", plan, timeout_s=5.0, limit=100)
        res["columns"]["value"]        # numpy arrays, limit-capped
        print(client.explain("events", plan)["explain"])
        client.stats()["latency_ms"]["p99"]
"""

from __future__ import annotations

import socket

import numpy as np

from repro.exec.errors import CorruptChunkError, ExecTimeout, ServerBusy
from repro.serve import wire

#: server error kinds revived as their local exception types
_TYPED = {
    "ServerBusy": ServerBusy,
    "ExecTimeout": ExecTimeout,
    "CorruptChunkError": CorruptChunkError,
}


class ServeClient:
    """Blocking request/response client over one long-lived socket."""

    def __init__(self, host: str, port: int,
                 connect_timeout_s: float = 5.0):
        self._sock = socket.create_connection(
            (host, port), timeout=connect_timeout_s)
        self._sock.settimeout(None)  # requests block until the response

    # ---------------------------------------------------------- transport
    def _call(self, req: dict) -> dict:
        req.setdefault("v", wire.WIRE_VERSION)
        wire.send_frame(self._sock, req)
        resp = wire.recv_frame(self._sock)
        if resp is None:
            raise ConnectionError("server closed the connection")
        if resp.get("ok"):
            return resp["result"]
        kind = resp.get("kind", "RuntimeError")
        message = resp.get("error", "server error")
        raise _TYPED.get(kind, RuntimeError)(message)

    # ----------------------------------------------------------------- ops
    def ping(self) -> str:
        return self._call({"op": "ping"})

    def list_tables(self) -> list[str]:
        return self._call({"op": "list_tables"})

    def stats(self) -> dict:
        return self._call({"op": "stats"})

    def metrics(self) -> str:
        """The server's Prometheus text exposition (the same body the
        HTTP ``/metrics`` endpoint serves when enabled)."""
        return self._call({"op": "metrics"})

    def query(self, table: str, plan, timeout_s: float | None = None,
              limit: int | None = None, **opts) -> dict:
        """Execute ``plan`` (a :class:`~repro.exec.plan.Plan` or an
        already-encoded plan dict) and return the decoded result:
        ``n_rows`` / ``stats`` / ``explain`` plus either ``groups``
        (list of ``[key, row]`` pairs) or numpy ``row_ids``/``columns``
        capped at ``limit``."""
        result = self._call(self._request("query", table, plan,
                                          timeout_s, limit, opts))
        if result.get("row_ids") is not None:
            result["row_ids"] = np.asarray(result["row_ids"],
                                           dtype=np.int64)
            result["columns"] = {
                name: np.asarray(values, dtype=np.int64)
                for name, values in result["columns"].items()}
        return result

    def explain(self, table: str, plan,
                timeout_s: float | None = None, **opts) -> dict:
        """Execute and return stats + annotated plan, no row payload."""
        return self._call(self._request("explain", table, plan,
                                        timeout_s, None, opts))

    @staticmethod
    def _request(op, table, plan, timeout_s, limit, opts) -> dict:
        payload = plan.to_json() if hasattr(plan, "to_json") else plan
        req: dict = {"op": op, "table": table, "plan": payload}
        if timeout_s is not None:
            req["timeout_s"] = timeout_s
        if limit is not None:
            req["limit"] = limit
        if opts:
            req["opts"] = opts
        return req

    # ----------------------------------------------------------- lifecycle
    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
