"""``TableServer`` — many concurrent clients, one scheduler, one cache.

The serving shape of the whole stack: a socket server that accepts
length-prefixed JSON requests (see :mod:`repro.serve.wire`) from many
concurrent connections and executes their plans over the store through
**shared resources**:

* one :class:`~repro.exec.pool.MorselScheduler` — granules from every
  in-flight query interleave on a fixed worker pool (fair-share or
  shortest-job-first), with admission control turning overload into
  :class:`~repro.exec.errors.ServerBusy` responses instead of a pile-up;
* one :class:`~repro.store.cache.ChunkCache` — every table the server
  opens revives chunks through the same bounded LRU, with per-query
  hit/miss/eviction attribution flowing into each response's stats;
* per-request deadlines — ``timeout_s`` rides the executor's
  cooperative-cancellation machinery, and a request that spends its
  whole budget parked in the admission queue times out too.

Tables are the subdirectories of ``root`` that hold a store manifest
(or ``root`` itself when it is a table).  Each is opened once, lazily,
as an immutable snapshot — restart the server to pick up new published
generations.  Shutdown is graceful: in-flight requests complete, new
ones are refused, then sockets close.
"""

from __future__ import annotations

import http.server
import json
import os
import socket
import threading
import time

from repro.exec import Plan
from repro.exec.errors import ExecTimeout, ServerBusy
from repro.exec.pool import MorselScheduler
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import ReservoirQuantiles
from repro.obs.trace import Trace
from repro.serve import wire
from repro.store.cache import DEFAULT_CAPACITY_BYTES, ChunkCache
from repro.store.executor import StoreSource
from repro.store.table import Table

#: executor knobs a request may set (anything else is rejected)
ALLOWED_OPTS = ("prune", "pushdown", "on_corruption", "io_retries")

#: per-request deadline when the client does not send one
DEFAULT_TIMEOUT_S = 30.0

#: latency reservoir size for the /stats percentiles (O(1) memory —
#: a uniform sample over the server's whole lifetime, never a growing
#: list)
LATENCY_WINDOW = 4096

_M_REQUESTS = obs_metrics.counter(
    "repro_serve_requests_total", "wire requests by op and status",
    labels=("op", "status"))
_M_REQUEST_SECONDS = obs_metrics.histogram(
    "repro_serve_request_seconds", "wire request handling time")
_M_SLOW_QUERIES = obs_metrics.counter(
    "repro_serve_slow_queries_total",
    "queries recorded to the slow-query log")


class _MetricsHandler(http.server.BaseHTTPRequestHandler):
    """GET /metrics → the process-wide registry's text exposition."""

    def do_GET(self):  # noqa: N802 (BaseHTTPRequestHandler API)
        if self.path.split("?", 1)[0] not in ("/metrics", "/"):
            self.send_error(404, "try /metrics")
            return
        body = obs_metrics.render_text().encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type",
                         "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args) -> None:
        pass  # scrapes are not server events worth a log line


class TableServer:
    """Serve store tables under ``root`` to concurrent socket clients.

    ``shared=True`` (the default) runs every query on one bounded
    morsel scheduler; ``shared=False`` is the pool-per-query baseline
    (each request spins its own executor pool) that
    ``benchmarks/bench_serve.py`` measures the scheduler against.
    ``worker_tier="process"`` swaps the shared scheduler for a
    :class:`repro.par.ProcessScheduler` — granule decode runs in worker
    processes, escaping the GIL on multi-core boxes.
    """

    def __init__(self, root: str, host: str = "127.0.0.1", port: int = 0,
                 workers: int | None = None, policy: str = "fair",
                 max_inflight: int = 8, queue_depth: int = 16,
                 cache_bytes: int = DEFAULT_CAPACITY_BYTES,
                 default_timeout_s: float = DEFAULT_TIMEOUT_S,
                 shared: bool = True,
                 worker_tier: str = "thread",
                 start_method: str | None = None,
                 metrics_port: int | None = None,
                 slow_query_ms: float | None = None,
                 slow_query_log: str | None = None):
        if worker_tier not in ("thread", "process"):
            raise ValueError(f"worker_tier must be 'thread' or "
                             f"'process', got {worker_tier!r}")
        self.root = root
        self.default_timeout_s = default_timeout_s
        self.shared = shared
        self.worker_tier = worker_tier
        # slow-query log: when a threshold is set, every query runs
        # traced (that is the opt-in cost) and offenders are appended
        # as JSONL — plan, explain, and the full trace
        self.slow_query_ms = slow_query_ms
        self.slow_query_log = slow_query_log
        self._slow_lock = threading.Lock()
        if not shared:
            self.scheduler = None
        elif worker_tier == "process":
            from repro.par import ProcessScheduler

            self.scheduler = ProcessScheduler(
                workers=workers, policy=policy,
                max_inflight=max_inflight, queue_depth=queue_depth,
                start_method=start_method, name="repro-serve")
        else:
            self.scheduler = MorselScheduler(
                workers=workers, policy=policy,
                max_inflight=max_inflight, queue_depth=queue_depth,
                name="repro-serve")
        self._baseline_threads = workers
        self.cache = ChunkCache(cache_bytes)
        self._tables: dict[str, tuple[Table, StoreSource]] = {}
        self._tables_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._latencies = ReservoirQuantiles(LATENCY_WINDOW)
        self.queries_total = 0
        self.queries_ok = 0
        self.queries_err = 0
        self.rejected_busy = 0
        self._started = time.perf_counter()
        self._draining = threading.Event()
        self._conn_threads: list[threading.Thread] = []
        self._accept_thread: threading.Thread | None = None
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(128)
        self.address: tuple[str, int] = self._sock.getsockname()
        # optional HTTP GET /metrics endpoint (plain-text exposition of
        # the process-wide registry; scrapers never touch the wire
        # protocol).  Bound here so metrics_address is known immediately.
        self._metrics_httpd: http.server.ThreadingHTTPServer | None = None
        self.metrics_address: tuple[str, int] | None = None
        if metrics_port is not None:
            self._metrics_httpd = http.server.ThreadingHTTPServer(
                (host, metrics_port), _MetricsHandler)
            self._metrics_httpd.daemon_threads = True
            self.metrics_address = \
                self._metrics_httpd.server_address[:2]
            threading.Thread(
                target=self._metrics_httpd.serve_forever, daemon=True,
                name="repro-serve-metrics").start()

    # ------------------------------------------------------------- tables
    def table_names(self) -> list[str]:
        """Discover every servable table under ``root``."""

        def is_table(path: str) -> bool:
            return os.path.exists(os.path.join(path, "CURRENT")) or \
                os.path.exists(os.path.join(path, "_table.json"))

        if is_table(self.root):
            return [os.path.basename(os.path.abspath(self.root))]
        return sorted(
            name for name in os.listdir(self.root)
            if os.path.isdir(os.path.join(self.root, name))
            and is_table(os.path.join(self.root, name)))

    def _resolve(self, name) -> tuple[Table, StoreSource]:
        if not isinstance(name, str) or not name or os.sep in name \
                or name in (".", ".."):
            raise ValueError(f"bad table name {name!r}")
        with self._tables_lock:
            entry = self._tables.get(name)
            if entry is not None:
                return entry
            known = self.table_names()
            if name not in known:
                raise ValueError(
                    f"unknown table {name!r}; available: "
                    f"{', '.join(known) or '(none)'}")
            path = self.root if os.path.basename(
                os.path.abspath(self.root)) == name and \
                not os.path.isdir(os.path.join(self.root, name)) \
                else os.path.join(self.root, name)
            table = Table.open(path, cache=self.cache)
            source = StoreSource(table)
            self._tables[name] = (table, source)
            return self._tables[name]

    # ------------------------------------------------------------ request
    def _handle_request(self, req: dict) -> dict:
        version = req.get("v")
        if version != wire.WIRE_VERSION:
            raise ValueError(
                f"unsupported request version {version!r} "
                f"(this server speaks {wire.WIRE_VERSION})")
        op = req.get("op")
        if op not in wire.OPS:
            raise ValueError(f"unknown op {op!r}; supported: "
                             f"{', '.join(wire.OPS)}")
        if op == "ping":
            return {"ok": True, "result": "pong"}
        if op == "stats":
            return {"ok": True, "result": self.stats()}
        if op == "metrics":
            return {"ok": True, "result": obs_metrics.render_text()}
        if op == "list_tables":
            return {"ok": True, "result": self.table_names()}
        # query / explain share the execution path
        table_name = req.get("table")
        _, source = self._resolve(table_name)
        plan = Plan.from_json(req.get("plan"))
        opts = req.get("opts") or {}
        unknown = [k for k in opts if k not in ALLOWED_OPTS]
        if unknown:
            raise ValueError(
                f"unknown option(s) {', '.join(map(repr, unknown))}; "
                f"allowed: {', '.join(ALLOWED_OPTS)}")
        timeout_s = req.get("timeout_s")
        if timeout_s is None:
            timeout_s = self.default_timeout_s
        limit = req.get("limit")
        trace = Trace(op, table=table_name) \
            if self.slow_query_ms is not None else None
        t_query = time.perf_counter()
        try:
            if self.shared:
                res = plan.execute(source, scheduler=self.scheduler,
                                   timeout_s=timeout_s, trace=trace,
                                   **opts)
            else:
                res = plan.execute(source, threads=self._baseline_threads
                                   or None, timeout_s=timeout_s,
                                   trace=trace, **opts)
        except ExecTimeout:
            # a timed-out query is by definition slow: log it with
            # whatever spans it managed to record
            self._maybe_log_slow(op, table_name, plan, trace,
                                 time.perf_counter() - t_query,
                                 explain=None, timed_out=True)
            raise
        self._maybe_log_slow(op, table_name, plan, trace,
                             time.perf_counter() - t_query,
                             explain=res.explain(), timed_out=False)
        return {"ok": True, "result": wire.encode_result(
            res, limit=limit, include_rows=(op == "query"))}

    def _maybe_log_slow(self, op: str, table: str, plan: Plan, trace,
                        elapsed_s: float, explain: str | None,
                        timed_out: bool) -> None:
        if self.slow_query_ms is None or \
                elapsed_s * 1e3 < self.slow_query_ms:
            return
        _M_SLOW_QUERIES.inc()
        if self.slow_query_log is None:
            return
        # which tier served it, and — from the trace's granule spans'
        # ``proc`` attribute — how the granules spread across lanes
        # (driver-run granules count under "driver")
        lanes: dict[str, int] = {}
        if trace is not None:
            for s in trace.spans:
                if s.name == "granule":
                    proc = str(s.attrs.get("proc", "driver"))
                    lanes[proc] = lanes.get(proc, 0) + 1
        record = {
            "ts": time.time(),
            "op": op,
            "table": table,
            "elapsed_ms": elapsed_s * 1e3,
            "timed_out": timed_out,
            "worker_tier": self.worker_tier if self.shared else "thread",
            "lanes": lanes,
            "plan": plan.to_json(),
            "explain": explain,
            "trace": trace.to_json() if trace is not None else None,
        }
        line = json.dumps(record, separators=(",", ":")) + "\n"
        with self._slow_lock:
            with open(self.slow_query_log, "a", encoding="utf-8") as fh:
                fh.write(line)

    def _serve_one(self, req: dict) -> dict:
        start = time.perf_counter()
        op = req.get("op")
        op_label = op if op in wire.OPS else "invalid"
        try:
            response = self._handle_request(req)
        except ServerBusy as err:
            with self._stats_lock:
                self.queries_total += 1
                self.rejected_busy += 1
            self._charge_request(op_label, "busy", start)
            return wire.error_response(err)
        except Exception as err:  # typed, one line, server stays up
            with self._stats_lock:
                self.queries_total += 1
                self.queries_err += 1
            self._charge_request(op_label, "error", start)
            return wire.error_response(err)
        elapsed = time.perf_counter() - start
        with self._stats_lock:
            self.queries_total += 1
            if op in ("query", "explain"):
                self.queries_ok += 1
                self._latencies.observe(elapsed)
        self._charge_request(op_label, "ok", start)
        return response

    def _charge_request(self, op: str, status: str, start: float) -> None:
        _M_REQUESTS.labels(op=op, status=status).inc()
        _M_REQUEST_SECONDS.observe(time.perf_counter() - start)

    # -------------------------------------------------------------- stats
    def stats(self) -> dict:
        """The ``/stats`` report: load, latency, cache, scheduler."""
        uptime = time.perf_counter() - self._started
        with self._stats_lock:
            totals = {
                "queries_total": self.queries_total,
                "queries_ok": self.queries_ok,
                "queries_err": self.queries_err,
                "rejected_busy": self.rejected_busy,
            }
        p50, p90, p99 = self._latencies.quantiles(0.50, 0.90, 0.99)
        sched = self.scheduler.stats() if self.scheduler is not None \
            else {"mode": "pool-per-query",
                  "threads": self._baseline_threads}
        return {
            "uptime_s": uptime,
            "mode": "shared-scheduler" if self.shared
            else "pool-per-query",
            **totals,
            "qps": totals["queries_ok"] / uptime if uptime else 0.0,
            "inflight": sched.get("inflight", 0),
            "queue_depth": sched.get("parked", 0),
            "latency_ms": {
                "p50": p50 * 1e3,
                "p90": p90 * 1e3,
                "p99": p99 * 1e3,
                # reservoir sample size + lifetime observation count —
                # O(1) memory no matter how long the server runs
                "window": len(self._latencies),
                "observed": self._latencies.count,
            },
            "cache": self.cache.stats(),
            "scheduler": sched,
            "tables": self.table_names(),
        }

    # ---------------------------------------------------------- lifecycle
    def start(self) -> "TableServer":
        """Accept connections on a background thread (in-process use)."""
        if self._accept_thread is not None:
            raise ValueError("server already started")
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True, name="repro-serve-accept")
        self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Accept connections on the calling thread (``__main__`` use)."""
        self._accept_loop()

    def _accept_loop(self) -> None:
        self._sock.settimeout(0.25)
        while not self._draining.is_set():
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed under us: shutting down
            thread = threading.Thread(
                target=self._connection, args=(conn,), daemon=True,
                name="repro-serve-conn")
            thread.start()
            self._conn_threads.append(thread)
            # reap finished handlers so the list stays bounded
            self._conn_threads = [t for t in self._conn_threads
                                  if t.is_alive()]

    def _connection(self, conn: socket.socket) -> None:
        conn.settimeout(0.25)
        try:
            while True:
                try:
                    req = wire.recv_frame(conn)
                except socket.timeout:
                    if self._draining.is_set():
                        return  # idle connection at shutdown: drop it
                    continue
                except wire.WireError:
                    # the byte stream is unusable — nothing sane to
                    # answer on it; drop the connection, keep serving
                    return
                if req is None:
                    return  # peer closed cleanly
                conn.settimeout(None)  # don't tear mid-response
                try:
                    wire.send_frame(conn, self._serve_one(req))
                except OSError:
                    return  # peer vanished mid-response
                conn.settimeout(0.25)
                if self._draining.is_set():
                    return  # response delivered; drain this connection
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def shutdown(self, timeout: float = 10.0) -> None:
        """Graceful drain: finish in-flight requests, refuse new ones,
        then close every socket and the scheduler."""
        self._draining.set()
        if self._metrics_httpd is not None:
            self._metrics_httpd.shutdown()
            self._metrics_httpd.server_close()
            self._metrics_httpd = None
        try:
            self._sock.close()
        except OSError:
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=timeout)
            self._accept_thread = None
        deadline = time.perf_counter() + timeout
        for thread in self._conn_threads:
            thread.join(timeout=max(deadline - time.perf_counter(), 0.1))
        if self.scheduler is not None:
            self.scheduler.close(drain=True, timeout=timeout)
        with self._tables_lock:
            for table, _ in self._tables.values():
                table.close()
            self._tables.clear()

    def __enter__(self) -> "TableServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()
