"""``TableServer`` — many concurrent clients, one scheduler, one cache.

The serving shape of the whole stack: a socket server that accepts
length-prefixed JSON requests (see :mod:`repro.serve.wire`) from many
concurrent connections and executes their plans over the store through
**shared resources**:

* one :class:`~repro.exec.pool.MorselScheduler` — granules from every
  in-flight query interleave on a fixed worker pool (fair-share or
  shortest-job-first), with admission control turning overload into
  :class:`~repro.exec.errors.ServerBusy` responses instead of a pile-up;
* one :class:`~repro.store.cache.ChunkCache` — every table the server
  opens revives chunks through the same bounded LRU, with per-query
  hit/miss/eviction attribution flowing into each response's stats;
* per-request deadlines — ``timeout_s`` rides the executor's
  cooperative-cancellation machinery, and a request that spends its
  whole budget parked in the admission queue times out too.

Tables are the subdirectories of ``root`` that hold a store manifest
(or ``root`` itself when it is a table).  Each is opened once, lazily,
as an immutable snapshot — restart the server to pick up new published
generations.  Shutdown is graceful: in-flight requests complete, new
ones are refused, then sockets close.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from collections import deque

import numpy as np

from repro.exec import Plan
from repro.exec.errors import ServerBusy
from repro.exec.pool import MorselScheduler
from repro.serve import wire
from repro.store.cache import DEFAULT_CAPACITY_BYTES, ChunkCache
from repro.store.executor import StoreSource
from repro.store.table import Table

#: executor knobs a request may set (anything else is rejected)
ALLOWED_OPTS = ("prune", "pushdown", "on_corruption", "io_retries")

#: per-request deadline when the client does not send one
DEFAULT_TIMEOUT_S = 30.0

#: recent request latencies kept for the /stats percentiles
LATENCY_WINDOW = 4096


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values), q))


class TableServer:
    """Serve store tables under ``root`` to concurrent socket clients.

    ``shared=True`` (the default) runs every query on one bounded
    morsel scheduler; ``shared=False`` is the pool-per-query baseline
    (each request spins its own executor pool) that
    ``benchmarks/bench_serve.py`` measures the scheduler against.
    """

    def __init__(self, root: str, host: str = "127.0.0.1", port: int = 0,
                 workers: int | None = None, policy: str = "fair",
                 max_inflight: int = 8, queue_depth: int = 16,
                 cache_bytes: int = DEFAULT_CAPACITY_BYTES,
                 default_timeout_s: float = DEFAULT_TIMEOUT_S,
                 shared: bool = True):
        self.root = root
        self.default_timeout_s = default_timeout_s
        self.shared = shared
        self.scheduler = MorselScheduler(
            workers=workers, policy=policy, max_inflight=max_inflight,
            queue_depth=queue_depth, name="repro-serve") if shared \
            else None
        self._baseline_threads = workers
        self.cache = ChunkCache(cache_bytes)
        self._tables: dict[str, tuple[Table, StoreSource]] = {}
        self._tables_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._latencies: deque[float] = deque(maxlen=LATENCY_WINDOW)
        self.queries_total = 0
        self.queries_ok = 0
        self.queries_err = 0
        self.rejected_busy = 0
        self._started = time.perf_counter()
        self._draining = threading.Event()
        self._conn_threads: list[threading.Thread] = []
        self._accept_thread: threading.Thread | None = None
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(128)
        self.address: tuple[str, int] = self._sock.getsockname()

    # ------------------------------------------------------------- tables
    def table_names(self) -> list[str]:
        """Discover every servable table under ``root``."""

        def is_table(path: str) -> bool:
            return os.path.exists(os.path.join(path, "CURRENT")) or \
                os.path.exists(os.path.join(path, "_table.json"))

        if is_table(self.root):
            return [os.path.basename(os.path.abspath(self.root))]
        return sorted(
            name for name in os.listdir(self.root)
            if os.path.isdir(os.path.join(self.root, name))
            and is_table(os.path.join(self.root, name)))

    def _resolve(self, name) -> tuple[Table, StoreSource]:
        if not isinstance(name, str) or not name or os.sep in name \
                or name in (".", ".."):
            raise ValueError(f"bad table name {name!r}")
        with self._tables_lock:
            entry = self._tables.get(name)
            if entry is not None:
                return entry
            known = self.table_names()
            if name not in known:
                raise ValueError(
                    f"unknown table {name!r}; available: "
                    f"{', '.join(known) or '(none)'}")
            path = self.root if os.path.basename(
                os.path.abspath(self.root)) == name and \
                not os.path.isdir(os.path.join(self.root, name)) \
                else os.path.join(self.root, name)
            table = Table.open(path, cache=self.cache)
            source = StoreSource(table)
            self._tables[name] = (table, source)
            return self._tables[name]

    # ------------------------------------------------------------ request
    def _handle_request(self, req: dict) -> dict:
        version = req.get("v")
        if version != wire.WIRE_VERSION:
            raise ValueError(
                f"unsupported request version {version!r} "
                f"(this server speaks {wire.WIRE_VERSION})")
        op = req.get("op")
        if op not in wire.OPS:
            raise ValueError(f"unknown op {op!r}; supported: "
                             f"{', '.join(wire.OPS)}")
        if op == "ping":
            return {"ok": True, "result": "pong"}
        if op == "stats":
            return {"ok": True, "result": self.stats()}
        if op == "list_tables":
            return {"ok": True, "result": self.table_names()}
        # query / explain share the execution path
        _, source = self._resolve(req.get("table"))
        plan = Plan.from_json(req.get("plan"))
        opts = req.get("opts") or {}
        unknown = [k for k in opts if k not in ALLOWED_OPTS]
        if unknown:
            raise ValueError(
                f"unknown option(s) {', '.join(map(repr, unknown))}; "
                f"allowed: {', '.join(ALLOWED_OPTS)}")
        timeout_s = req.get("timeout_s")
        if timeout_s is None:
            timeout_s = self.default_timeout_s
        limit = req.get("limit")
        if self.shared:
            res = plan.execute(source, scheduler=self.scheduler,
                               timeout_s=timeout_s, **opts)
        else:
            res = plan.execute(source, threads=self._baseline_threads
                               or None, timeout_s=timeout_s, **opts)
        return {"ok": True, "result": wire.encode_result(
            res, limit=limit, include_rows=(op == "query"))}

    def _serve_one(self, req: dict) -> dict:
        start = time.perf_counter()
        try:
            response = self._handle_request(req)
        except ServerBusy as err:
            with self._stats_lock:
                self.queries_total += 1
                self.rejected_busy += 1
            return wire.error_response(err)
        except Exception as err:  # typed, one line, server stays up
            with self._stats_lock:
                self.queries_total += 1
                self.queries_err += 1
            return wire.error_response(err)
        elapsed = time.perf_counter() - start
        with self._stats_lock:
            self.queries_total += 1
            if req.get("op") in ("query", "explain"):
                self.queries_ok += 1
                self._latencies.append(elapsed)
        return response

    # -------------------------------------------------------------- stats
    def stats(self) -> dict:
        """The ``/stats`` report: load, latency, cache, scheduler."""
        uptime = time.perf_counter() - self._started
        with self._stats_lock:
            window = list(self._latencies)
            totals = {
                "queries_total": self.queries_total,
                "queries_ok": self.queries_ok,
                "queries_err": self.queries_err,
                "rejected_busy": self.rejected_busy,
            }
        sched = self.scheduler.stats() if self.scheduler is not None \
            else {"mode": "pool-per-query",
                  "threads": self._baseline_threads}
        return {
            "uptime_s": uptime,
            "mode": "shared-scheduler" if self.shared
            else "pool-per-query",
            **totals,
            "qps": totals["queries_ok"] / uptime if uptime else 0.0,
            "inflight": sched.get("inflight", 0),
            "queue_depth": sched.get("parked", 0),
            "latency_ms": {
                "p50": _percentile(window, 50) * 1e3,
                "p90": _percentile(window, 90) * 1e3,
                "p99": _percentile(window, 99) * 1e3,
                "window": len(window),
            },
            "cache": self.cache.stats(),
            "scheduler": sched,
            "tables": self.table_names(),
        }

    # ---------------------------------------------------------- lifecycle
    def start(self) -> "TableServer":
        """Accept connections on a background thread (in-process use)."""
        if self._accept_thread is not None:
            raise ValueError("server already started")
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True, name="repro-serve-accept")
        self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Accept connections on the calling thread (``__main__`` use)."""
        self._accept_loop()

    def _accept_loop(self) -> None:
        self._sock.settimeout(0.25)
        while not self._draining.is_set():
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed under us: shutting down
            thread = threading.Thread(
                target=self._connection, args=(conn,), daemon=True,
                name="repro-serve-conn")
            thread.start()
            self._conn_threads.append(thread)
            # reap finished handlers so the list stays bounded
            self._conn_threads = [t for t in self._conn_threads
                                  if t.is_alive()]

    def _connection(self, conn: socket.socket) -> None:
        conn.settimeout(0.25)
        try:
            while True:
                try:
                    req = wire.recv_frame(conn)
                except socket.timeout:
                    if self._draining.is_set():
                        return  # idle connection at shutdown: drop it
                    continue
                except wire.WireError:
                    # the byte stream is unusable — nothing sane to
                    # answer on it; drop the connection, keep serving
                    return
                if req is None:
                    return  # peer closed cleanly
                conn.settimeout(None)  # don't tear mid-response
                try:
                    wire.send_frame(conn, self._serve_one(req))
                except OSError:
                    return  # peer vanished mid-response
                conn.settimeout(0.25)
                if self._draining.is_set():
                    return  # response delivered; drain this connection
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def shutdown(self, timeout: float = 10.0) -> None:
        """Graceful drain: finish in-flight requests, refuse new ones,
        then close every socket and the scheduler."""
        self._draining.set()
        try:
            self._sock.close()
        except OSError:
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=timeout)
            self._accept_thread = None
        deadline = time.perf_counter() + timeout
        for thread in self._conn_threads:
            thread.join(timeout=max(deadline - time.perf_counter(), 0.1))
        if self.scheduler is not None:
            self.scheduler.close(drain=True, timeout=timeout)
        with self._tables_lock:
            for table, _ in self._tables.values():
                table.close()
            self._tables.clear()

    def __enter__(self) -> "TableServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()
