"""Wire protocol of the table server: length-prefixed JSON frames.

One frame = a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON.  Requests and responses are single frames on a
long-lived connection (a client may pipeline request after request).

Request shape::

    {"v": 1, "op": "query" | "explain" | "stats" | "list_tables"
             | "ping" | "metrics",
     "table": "name",            # query / explain
     "plan": {...},              # Plan.to_json() payload
     "timeout_s": 5.0,           # optional per-request deadline
     "limit": 100,               # optional row cap on the response
     "opts": {"prune": true, "pushdown": true,
              "on_corruption": "raise"}}

Response shape::

    {"ok": true, "result": {...}}
    {"ok": false, "kind": "ServerBusy", "error": "one line"}

``kind`` names the exception class so the client can re-raise typed
errors (:class:`~repro.exec.errors.ServerBusy`,
:class:`~repro.exec.errors.ExecTimeout`, ...).  Oversized frames and
unknown protocol versions are rejected with one-line errors — a
malformed request never takes the server down.
"""

from __future__ import annotations

import json
import socket
import struct

#: wire protocol version (checked on every request)
WIRE_VERSION = 1

#: refuse frames past this size (corrupt length prefix / abuse guard)
MAX_FRAME_BYTES = 64 << 20

#: request operations the server understands
OPS = ("query", "explain", "stats", "list_tables", "ping", "metrics")

_LEN = struct.Struct(">I")


class WireError(ValueError):
    """The byte stream itself is unusable (bad length, torn frame)."""


def send_frame(sock: socket.socket, obj: dict) -> None:
    """Serialise ``obj`` and write one frame."""
    payload = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise WireError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap")
    sock.sendall(_LEN.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; ``None`` on clean EOF at a frame edge."""
    chunks: list[bytes] = []
    got = 0
    while got < n:
        chunk = sock.recv(min(n - got, 1 << 20))
        if not chunk:
            if got == 0:
                return None
            raise WireError(f"connection closed mid-frame "
                            f"({got}/{n} bytes)")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict | None:
    """Read one frame; ``None`` when the peer closed cleanly."""
    header = _recv_exact(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireError(f"frame length {length} exceeds the "
                        f"{MAX_FRAME_BYTES}-byte cap")
    payload = _recv_exact(sock, length)
    if payload is None:
        raise WireError("connection closed between header and payload")
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as err:
        raise WireError(f"frame payload is not valid JSON: {err}") from err
    if not isinstance(obj, dict):
        raise WireError(
            f"frame payload must be a JSON object, "
            f"got {type(obj).__name__}")
    return obj


def encode_result(res, limit: int | None = None,
                  include_rows: bool = True) -> dict:
    """JSON-encode an :class:`~repro.exec.run.ExecResult`.

    ``limit`` caps the row payload (stats always describe the full
    execution); ``include_rows=False`` drops row data entirely (the
    ``explain`` op wants the annotated plan and stats, not rows).
    Groups travel as ``[key, row]`` pairs because JSON object keys are
    strings.
    """
    from dataclasses import asdict

    out: dict = {
        "n_rows": int(res.n_rows),
        "stats": asdict(res.stats),
        "explain": res.explain(),
    }
    if res.groups is not None:
        out["groups"] = [[key, row] for key, row in res.groups.items()]
    else:
        out["groups"] = None
    if include_rows and res.groups is None:
        n = res.n_rows if limit is None else min(limit, res.n_rows)
        out["row_ids"] = [int(v) for v in res.row_ids[:n]]
        out["columns"] = {name: [int(v) for v in values[:n]]
                          for name, values in res.columns.items()}
        out["truncated"] = n < res.n_rows
    return out


def error_response(err: BaseException) -> dict:
    """One-line typed error frame for any failure."""
    message = str(err).splitlines()[0] if str(err) else type(err).__name__
    return {"ok": False, "kind": type(err).__name__, "error": message}
