"""``repro.serve`` — concurrent query serving over the store.

Many clients, one process, shared resources: a
:class:`~repro.serve.server.TableServer` multiplexes every in-flight
query's granules onto one :class:`~repro.exec.pool.MorselScheduler`
and revives chunks through one :class:`~repro.store.cache.ChunkCache`,
speaking the length-prefixed JSON protocol of
:mod:`repro.serve.wire`::

    server = TableServer(root, max_inflight=8).start()
    host, port = server.address
    with ServeClient(host, port) as client:
        res = client.query("events", plan, timeout_s=5.0, limit=100)
    server.shutdown()           # graceful: in-flight requests finish

or from a shell::

    python -m repro.serve --root data/ --port 7317

Overload surfaces as :class:`~repro.exec.errors.ServerBusy` (admission
control, never a hang); per-request deadlines reuse the executor's
cooperative :class:`~repro.exec.errors.ExecTimeout` machinery.
"""

from repro.exec.errors import ExecTimeout, ServerBusy
from repro.exec.pool import MorselScheduler, shared_scheduler
from repro.serve.client import ServeClient
from repro.serve.server import TableServer
from repro.serve.wire import MAX_FRAME_BYTES, WIRE_VERSION, WireError

__all__ = [
    "ExecTimeout",
    "MAX_FRAME_BYTES",
    "MorselScheduler",
    "ServeClient",
    "ServerBusy",
    "TableServer",
    "WIRE_VERSION",
    "WireError",
    "shared_scheduler",
]
