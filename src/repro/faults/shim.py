"""Deterministic, seeded fault injection for the storage stack.

Every dangerous step of the store's write and read paths calls into this
shim at a **named hook point**: :func:`fire` for control-flow hooks
(fsync, rename, chunk reads) and :func:`write_through` for data writes
(shard images, WAL frames, manifest bodies).  With no injector
installed both are near-free no-ops — one module-global ``is None``
check — so production code pays nothing for being testable.

Install a :class:`FaultInjector` (a context manager) and arm it with
rules to simulate the failures a real deployment meets::

    from repro import faults

    inj = faults.FaultInjector(seed=7)
    inj.crash_at("current.rename")            # die before the commit point
    inj.torn_write_at("wal.append", at=3)     # 3rd record torn mid-write
    inj.flip_bit_at("shard.write")            # silent single-bit rot
    inj.fail_at("chunk.read", error=errno.EIO, times=2)   # transient EIO
    inj.fail_at("shard.write", error=errno.ENOSPC)        # disk full
    inj.slow_at("chunk.read", delay_s=0.05, times=None)   # degraded disk
    with inj:
        ...  # exercise flush / commit / compact / scan

Rules match hook points by :mod:`fnmatch` glob (``"*.fsync"`` arms every
fsync), fire on the ``at``-th matching invocation (1-based), and stay
armed for ``times`` consecutive invocations (``None`` = forever).  All
nondeterministic choices (torn-write length, flipped bit) come from the
injector's seeded RNG, so a failing schedule replays exactly.

A *crash* raises :class:`SimulatedCrash` — the in-process stand-in for
the process dying at that instant.  Cleanup handlers in production code
must let it propagate untouched (a dead process runs no cleanup); the
crash-matrix suite then reopens the directory and asserts recovery.

Hook points threaded through the tree (see the call sites):

========================  =====================================================
point                     fires
========================  =====================================================
``shard.write``           shard image into its ``.rps.tmp`` staging file
``shard.publish``         before each staged shard renames into place
``manifest.write/fsync/rename``  a ``_table[.gen].json`` publish
``current.write/fsync/rename``   the ``CURRENT`` pointer swap (commit point)
``dv.write/fsync/rename``        a deletion-vector sidecar publish
``wal.append``            one framed WAL record into the open log
``wal.fsync``             the WAL's explicit fsync (``sync=True`` tables)
``wal.rotate.write/fsync/rename``  the post-commit WAL rotation
``chunk.read``            a column chunk leaving the mmap on a cache miss
``compact.rewrite``       before a shard run rewrites through the registry
``compact.commit``        before compaction publishes its generation
``granule.exec``          a :mod:`repro.par` worker process about to run a
                          granule (a ``crash`` there exits the worker
                          process outright, so the driver's respawn /
                          retry / ``GranuleError`` machinery is exercised
                          with a *real* process death)
========================  =====================================================

Injectors travel to spawned worker processes as plain dictionaries:
:meth:`FaultInjector.to_spec` captures the seed and the armed rules
(fire counters excluded — the worker starts a fresh schedule), and
:meth:`FaultInjector.from_spec` rebuilds an equivalent injector on the
other side of a pickle/JSON boundary.  ``fork``-started workers simply
inherit the installed injector.
"""

from __future__ import annotations

import fnmatch
import os
import random
import threading
import time

__all__ = [
    "FaultInjector",
    "SimulatedCrash",
    "active",
    "fire",
    "install",
    "uninstall",
    "write_through",
]


class SimulatedCrash(RuntimeError):
    """The process "died" at a hook point (injected, in-process).

    Deliberately not an :class:`OSError`: failure-path cleanup handlers
    catch real IO errors but must let a crash propagate — a process that
    died runs no cleanup, and the recovery suite asserts the next open
    repairs whatever the crash left behind.
    """


class _Rule:
    """One armed fault: a glob over hook points + a firing window."""

    __slots__ = ("pattern", "kind", "at", "times", "seen", "fired",
                 "options")

    def __init__(self, pattern: str, kind: str, at: int, times,
                 **options):
        if at < 1:
            raise ValueError(f"at must be >= 1 (1-based), got {at}")
        if times is not None and times < 1:
            raise ValueError(f"times must be >= 1 or None, got {times}")
        self.pattern = pattern
        self.kind = kind
        self.at = at
        self.times = times
        self.seen = 0          # matching invocations observed so far
        self.fired = 0         # invocations this rule actually hit
        self.options = options

    def due(self, point: str) -> bool:
        """Advance this rule's counter for ``point``; True when it fires."""
        if not fnmatch.fnmatchcase(point, self.pattern):
            return False
        self.seen += 1
        if self.seen < self.at:
            return False
        if self.times is not None and self.seen >= self.at + self.times:
            return False
        self.fired += 1
        return True


class FaultInjector:
    """A seeded schedule of injected faults (install via ``with``).

    One injector may be installed at a time (module-global, so the
    production call sites need no plumbing).  :attr:`log` records every
    fault that actually fired as ``(point, action)`` pairs — assert on
    it to prove a schedule exercised what it meant to.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)
        self._rules: list[_Rule] = []
        self._lock = threading.Lock()
        self.log: list[tuple[str, str]] = []

    # ------------------------------------------------------------- arming
    def _add(self, pattern: str, kind: str, at: int, times,
             **options) -> "FaultInjector":
        with self._lock:
            self._rules.append(_Rule(pattern, kind, at, times, **options))
        return self

    def crash_at(self, point: str, at: int = 1) -> "FaultInjector":
        """Raise :class:`SimulatedCrash` at the ``at``-th invocation."""
        return self._add(point, "crash", at, 1)

    def torn_write_at(self, point: str, at: int = 1,
                      keep: int | None = None) -> "FaultInjector":
        """Write a prefix (``keep`` bytes; seeded-random when ``None``)
        of the data, then crash — the classic torn write."""
        return self._add(point, "torn", at, 1, keep=keep)

    def flip_bit_at(self, point: str, at: int = 1,
                    bit: int | None = None) -> "FaultInjector":
        """Silently corrupt one bit of the written data (seeded-random
        position when ``bit`` is ``None``) and carry on — bit rot."""
        return self._add(point, "flip", at, 1, bit=bit)

    def fail_at(self, point: str, at: int = 1, times: int | None = 1,
                error: int | None = None,
                partial: int | None = None) -> "FaultInjector":
        """Raise :class:`OSError` (``errno`` = ``error``, default EIO).

        At a write point, ``partial`` bytes land first (ENOSPC writes a
        prefix before failing; default 0).
        """
        import errno as _errno

        return self._add(point, "error", at, times,
                         error=error if error is not None else _errno.EIO,
                         partial=partial)

    def slow_at(self, point: str, delay_s: float, at: int = 1,
                times: int | None = None) -> "FaultInjector":
        """Sleep ``delay_s`` at each firing invocation, then proceed."""
        return self._add(point, "slow", at, times, delay_s=delay_s)

    def reset(self) -> None:
        """Disarm every rule and clear the log."""
        with self._lock:
            self._rules = []
            self.log = []

    # -------------------------------------------------------- wire format
    def to_spec(self) -> dict:
        """This injector's seed + armed rules as a picklable/JSON-able
        dict (fresh counters), for shipping to a spawned worker."""
        with self._lock:
            return {
                "seed": self.seed,
                "rules": [
                    {"pattern": r.pattern, "kind": r.kind, "at": r.at,
                     "times": r.times, "options": dict(r.options)}
                    for r in self._rules],
            }

    @classmethod
    def from_spec(cls, spec: dict) -> "FaultInjector":
        """Rebuild an injector from :meth:`to_spec` output."""
        injector = cls(seed=spec.get("seed", 0))
        for rule in spec.get("rules", ()):
            injector._add(rule["pattern"], rule["kind"], rule["at"],
                          rule["times"], **rule.get("options", {}))
        return injector

    def fired(self, point_glob: str = "*") -> int:
        """Total faults fired at points matching ``point_glob``."""
        with self._lock:
            return sum(1 for point, _ in self.log
                       if fnmatch.fnmatchcase(point, point_glob))

    # ------------------------------------------------------------- firing
    def _due_rule(self, point: str) -> _Rule | None:
        with self._lock:
            for rule in self._rules:
                if rule.due(point):
                    return rule
        return None

    def _raise_error(self, rule: _Rule, point: str) -> None:
        err = rule.options["error"]
        self._record(point, f"error:{err}")
        raise OSError(err, os.strerror(err), point)

    def _record(self, point: str, action: str) -> None:
        with self._lock:
            self.log.append((point, action))

    def fire(self, point: str, **context) -> None:
        """Control-flow hook: may crash, raise an OSError, or stall."""
        rule = self._due_rule(point)
        if rule is None:
            return
        if rule.kind == "slow":
            self._record(point, "slow")
            time.sleep(rule.options["delay_s"])
            return
        if rule.kind == "error":
            self._raise_error(rule, point)
        # crash / torn / flip at a non-write hook all mean "die here"
        self._record(point, "crash")
        raise SimulatedCrash(f"injected crash at {point!r}")

    def write(self, point: str, fh, data: bytes) -> None:
        """Data-write hook: the shim performs (or corrupts) the write."""
        rule = self._due_rule(point)
        if rule is None:
            fh.write(data)
            return
        if rule.kind == "slow":
            self._record(point, "slow")
            time.sleep(rule.options["delay_s"])
            fh.write(data)
            return
        if rule.kind == "crash":
            self._record(point, "crash")
            raise SimulatedCrash(f"injected crash before {point!r}")
        if rule.kind == "torn":
            keep = rule.options.get("keep")
            if keep is None:
                with self._lock:
                    keep = self._rng.randrange(len(data)) if data else 0
            keep = max(0, min(int(keep), len(data)))
            fh.write(data[:keep])
            fh.flush()
            self._record(point, f"torn:{keep}/{len(data)}")
            raise SimulatedCrash(
                f"injected torn write at {point!r} "
                f"({keep} of {len(data)} bytes landed)")
        if rule.kind == "flip":
            bit = rule.options.get("bit")
            if bit is None:
                with self._lock:
                    bit = self._rng.randrange(max(len(data) * 8, 1))
            buf = bytearray(data)
            if buf:
                buf[(bit // 8) % len(buf)] ^= 1 << (bit % 8)
            self._record(point, f"flip:{bit}")
            fh.write(bytes(buf))
            return
        if rule.kind == "error":
            partial = rule.options.get("partial")
            if partial:
                fh.write(data[:int(partial)])
                fh.flush()
            self._raise_error(rule, point)
        raise AssertionError(f"unknown fault kind {rule.kind!r}")

    # ---------------------------------------------------------- lifecycle
    def __enter__(self) -> "FaultInjector":
        install(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        uninstall(self)


# ------------------------------------------------------ module-level shim
_ACTIVE: FaultInjector | None = None
_INSTALL_LOCK = threading.Lock()


def install(injector: FaultInjector) -> None:
    """Make ``injector`` the process-wide active fault schedule."""
    global _ACTIVE
    with _INSTALL_LOCK:
        if _ACTIVE is not None and _ACTIVE is not injector:
            raise ValueError(
                "another FaultInjector is already installed; uninstall "
                "it first (injectors do not nest)")
        _ACTIVE = injector


def uninstall(injector: FaultInjector | None = None) -> None:
    """Deactivate the active injector (idempotent)."""
    global _ACTIVE
    with _INSTALL_LOCK:
        if injector is None or _ACTIVE is injector:
            _ACTIVE = None


def active() -> FaultInjector | None:
    """The installed injector, or ``None`` (the production state)."""
    return _ACTIVE


def fire(point: str, **context) -> None:
    """Hook for control-flow fault points (no data flows through)."""
    injector = _ACTIVE
    if injector is not None:
        injector.fire(point, **context)


def write_through(point: str, fh, data: bytes) -> None:
    """Hook for data writes: ``fh.write(data)``, possibly faulted."""
    injector = _ACTIVE
    if injector is None:
        fh.write(data)
    else:
        injector.write(point, fh, data)
