"""``repro.faults`` — deterministic fault injection for the store stack.

The robustness harness behind the crash-matrix and corruption suites: an
injectable IO shim with named hook points (crash-at-Nth-write/fsync/
rename, torn writes, bit flips, EIO/ENOSPC, slow IO) threaded through
the store writer, the WAL, manifest commits, compaction, and the chunk
read path.  See :mod:`repro.faults.shim` for the hook-point table and
the rule API::

    from repro import faults

    inj = faults.FaultInjector(seed=7).crash_at("current.rename")
    with inj:
        table.flush()        # raises faults.SimulatedCrash mid-commit
    # reopen the directory: recovery must land on the pre- or
    # post-commit snapshot, losing only unacknowledged WAL records

With no injector installed every hook is a single ``is None`` check.
"""

from repro.faults.shim import (
    FaultInjector,
    SimulatedCrash,
    active,
    fire,
    install,
    uninstall,
    write_through,
)

__all__ = [
    "FaultInjector",
    "SimulatedCrash",
    "active",
    "fire",
    "install",
    "uninstall",
    "write_through",
]
