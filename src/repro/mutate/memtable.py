"""In-memory mutable state between two flushes of a mutable table.

The memtable holds two things, mirroring exactly what a flush commits:

* the **tail** — rows appended since the last published generation,
  plain int64 numpy columns that :class:`~repro.store.TableWriter`
  encodes into ordinary shards at flush time;
* the **pending deletion mask** — a boolean mask over the *base
  snapshot's physical rows* accumulating delete/update victims, folded
  into per-shard deletion-vector sidecars at flush time.

Deletes against tail rows are applied eagerly (the rows simply leave
the arrays); only deletes against already-published rows need the mask.
All validation of incoming batches (schema match, integer dtypes, int64
range, equal lengths) happens here so the WAL never records a batch the
memtable would reject.
"""

from __future__ import annotations

import numpy as np


def validate_batch(schema: tuple[str, ...],
                   batch: dict) -> dict[str, np.ndarray]:
    """Check one append batch and return it as int64 arrays in schema
    order.  Rejections leave no partial state anywhere (the caller logs
    to the WAL only after this passes)."""
    if not batch:
        raise ValueError("empty batch")
    if set(batch) != set(schema):
        raise ValueError(
            f"batch columns {tuple(sorted(batch))} do not match the "
            f"schema {schema}")
    staged: dict[str, np.ndarray] = {}
    n = None
    for name in schema:
        col = np.asarray(batch[name])
        if col.dtype.kind not in "iu":
            raise TypeError(
                f"column {name!r}: integer input required, got "
                f"{col.dtype}")
        if col.dtype.kind == "u" and col.size and \
                int(col.max()) > np.iinfo(np.int64).max:
            raise ValueError(
                f"column {name!r}: value {int(col.max())} exceeds the "
                "int64 range the store encodes")
        col = np.atleast_1d(col.astype(np.int64))
        if n is None:
            n = len(col)
        elif len(col) != n:
            raise ValueError(f"column {name!r} length mismatch")
        staged[name] = col
    if n == 0:
        raise ValueError("empty batch")
    return staged


class MemTable:
    """Tail rows + pending base deletions since the last flush."""

    def __init__(self, schema: tuple[str, ...], base_rows: int):
        self.schema = tuple(schema)
        self.base_deleted = np.zeros(base_rows, dtype=bool)
        self._chunks: dict[str, list[np.ndarray]] = \
            {name: [] for name in self.schema}
        self._n = 0
        self._cache: dict[str, np.ndarray] | None = None

    @property
    def n_rows(self) -> int:
        """Tail rows currently buffered."""
        return self._n

    @property
    def pending_deletes(self) -> int:
        """Base-snapshot rows marked deleted but not yet flushed."""
        return int(self.base_deleted.sum())

    @property
    def dirty(self) -> bool:
        """Anything to flush?"""
        return self._n > 0 or bool(self.base_deleted.any())

    # ------------------------------------------------------------- tail
    def append(self, staged: dict[str, np.ndarray]) -> None:
        """Buffer one already-validated batch (see :func:`validate_batch`)."""
        for name in self.schema:
            self._chunks[name].append(staged[name])
        self._n += len(staged[self.schema[0]])
        self._cache = None

    def columns(self) -> dict[str, np.ndarray]:
        """Consolidated tail columns (cached until the next mutation)."""
        if self._cache is None:
            self._cache = {
                name: np.concatenate(parts) if parts
                else np.empty(0, dtype=np.int64)
                for name, parts in self._chunks.items()
            }
        return self._cache

    def drop_tail_rows(self, mask: np.ndarray) -> int:
        """Remove tail rows where ``mask`` is True; returns the count."""
        dropped = int(mask.sum())
        if dropped:
            keep = ~mask
            cols = self.columns()
            self._chunks = {name: [cols[name][keep]]
                            for name in self.schema}
            self._n -= dropped
            self._cache = None
        return dropped

    def take_tail_rows(self, mask: np.ndarray) -> dict[str, np.ndarray]:
        """Remove and return tail rows where ``mask`` is True (order
        preserved) — the update-by-key extraction."""
        cols = self.columns()
        taken = {name: cols[name][mask] for name in self.schema}
        self.drop_tail_rows(mask)
        return taken

    # ---------------------------------------------------- base deletions
    def mark_base_deleted(self, row_ids: np.ndarray) -> int:
        """Mark base-snapshot physical rows deleted; returns how many
        were newly marked."""
        row_ids = np.asarray(row_ids, dtype=np.int64)
        before = int(self.base_deleted.sum())
        self.base_deleted[row_ids] = True
        return int(self.base_deleted.sum()) - before
