"""Write-ahead log of one mutable table (length-prefixed, checksummed).

Every mutation is logged *before* it touches the memtable, so reopening
a table replays exactly the operations that were acknowledged and a
crash loses at most the records that never finished hitting the disk.
The file layout::

    +------+-----+----------------------------------------------+
    | RPWL | ver |  record  record  record ...                  |
    | 4 B  | 1 B |                                              |
    +------+-----+----------------------------------------------+

    record := payload_len (4 B LE) | crc32(payload) (4 B LE) | payload
    payload := op (1 B: A/U/D) | header_len (4 B LE) | header JSON | data

``A`` (append) carries the batch schema in the header and the raw
column values — int64 little-endian, one contiguous block per column in
header order — as the data section.  ``U`` (update-by-key) and ``D``
(delete-by-predicate) are header-only: the update's key/values and the
delete's serialised predicate tree are logical, so replay re-derives
the affected rows deterministically from the state it rebuilt so far.

Recovery (:func:`replay`) walks records until the first frame whose
length or checksum fails — a torn tail written mid-crash — and returns
everything before it.  The WAL is *generational*: ``wal-<gen>.log``
applies on top of manifest generation ``gen``, so a flush that published
generation ``g+1`` but crashed before deleting ``wal-<g>.log`` cannot
double-apply on reopen (the stale file's generation no longer matches).
"""

from __future__ import annotations

import json
import os
import time
import zlib

import numpy as np

from repro import faults
from repro.exec.expr import And, Expr, InSet, Or, Range
from repro.obs import metrics as obs_metrics

_M_APPENDS = obs_metrics.counter(
    "repro_wal_appends_total", "records framed into a WAL")
_M_BYTES = obs_metrics.counter(
    "repro_wal_bytes_total", "framed bytes written to WALs")
_M_FSYNC = obs_metrics.histogram(
    "repro_wal_fsync_seconds", "WAL fsync latency (sync=True only)")

#: WAL file leading magic
WAL_MAGIC = b"RPWL"
#: WAL layout version
WAL_VERSION = 1
#: header: magic + version byte
WAL_HEADER_LEN = len(WAL_MAGIC) + 1
#: record frame: 4-byte LE payload length + 4-byte LE crc32
FRAME_LEN = 8

OP_APPEND = b"A"
OP_UPDATE = b"U"
OP_DELETE = b"D"


def wal_file_name(generation: int) -> str:
    return f"wal-{generation:06d}.log"


# ------------------------------------------------------ expr (de)serialise
def expr_to_doc(expr: Expr) -> dict:
    """Serialise a delete predicate (Range/InSet/And/Or trees only —
    positional terms like Bitmap are snapshot-relative and not logged)."""
    if isinstance(expr, Range):
        return {"t": "range", "c": expr.column, "lo": expr.lo,
                "hi": expr.hi}
    if isinstance(expr, InSet):
        return {"t": "in", "c": expr.column,
                "v": [int(x) for x in expr.values]}
    if isinstance(expr, And):
        return {"t": "and", "ch": [expr_to_doc(c) for c in expr.children]}
    if isinstance(expr, Or):
        return {"t": "or", "ch": [expr_to_doc(c) for c in expr.children]}
    raise TypeError(
        f"cannot log a {type(expr).__name__} predicate to the WAL "
        "(only Range / InSet / And / Or trees are replayable)")


def expr_from_doc(doc: dict) -> Expr:
    kind = doc["t"]
    if kind == "range":
        return Range(doc["c"], doc["lo"], doc["hi"])
    if kind == "in":
        return InSet(doc["c"], doc["v"])
    if kind == "and":
        return And.of(*(expr_from_doc(c) for c in doc["ch"]))
    if kind == "or":
        return Or.of(*(expr_from_doc(c) for c in doc["ch"]))
    raise ValueError(f"unknown predicate node type {kind!r} in WAL")


# ------------------------------------------------------------ records
def _encode_append(columns: dict[str, np.ndarray]) -> bytes:
    names = list(columns)
    n = len(next(iter(columns.values())))
    header = json.dumps({"columns": names, "n": n},
                        separators=(",", ":")).encode("utf-8")
    parts = [OP_APPEND, len(header).to_bytes(4, "little"), header]
    for name in names:
        parts.append(np.ascontiguousarray(
            columns[name], dtype="<i8").tobytes())
    return b"".join(parts)


def _encode_update(key_column: str, key: int, values: dict) -> bytes:
    header = json.dumps(
        {"key_column": key_column, "key": int(key),
         "values": {k: int(v) for k, v in values.items()}},
        separators=(",", ":")).encode("utf-8")
    return OP_UPDATE + len(header).to_bytes(4, "little") + header


def _encode_delete(expr: Expr) -> bytes:
    header = json.dumps({"predicate": expr_to_doc(expr)},
                        separators=(",", ":")).encode("utf-8")
    return OP_DELETE + len(header).to_bytes(4, "little") + header


def _decode_payload(payload: bytes):
    """One replayable record: ``("append", columns)`` /
    ``("update", key_column, key, values)`` / ``("delete", expr)``."""
    op = payload[:1]
    hlen = int.from_bytes(payload[1:5], "little")
    header = json.loads(payload[5: 5 + hlen])
    if op == OP_APPEND:
        data = payload[5 + hlen:]
        n = header["n"]
        names = header["columns"]
        if len(data) != 8 * n * len(names):
            raise ValueError("append record data section truncated")
        columns = {}
        for i, name in enumerate(names):
            raw = data[i * 8 * n: (i + 1) * 8 * n]
            columns[name] = np.frombuffer(raw, dtype="<i8").astype(
                np.int64)
        return ("append", columns)
    if op == OP_UPDATE:
        return ("update", header["key_column"], int(header["key"]),
                {k: int(v) for k, v in header["values"].items()})
    if op == OP_DELETE:
        return ("delete", expr_from_doc(header["predicate"]))
    raise ValueError(f"unknown WAL op {op!r}")


class WriteAheadLog:
    """Appender for one generation's WAL file (open or create)."""

    def __init__(self, path: str, sync: bool = False):
        self.path = path
        self.sync = sync
        fresh = not os.path.exists(path) or \
            os.path.getsize(path) < WAL_HEADER_LEN
        self._fh = open(path, "ab")
        if fresh:
            self._fh.truncate(0)
            self._fh.write(WAL_MAGIC + bytes([WAL_VERSION]))
            self._fh.flush()

    def _write(self, payload: bytes) -> None:
        frame = (len(payload).to_bytes(4, "little")
                 + zlib.crc32(payload).to_bytes(4, "little") + payload)
        faults.write_through("wal.append", self._fh, frame)
        self._fh.flush()
        _M_APPENDS.inc()
        _M_BYTES.inc(len(frame))
        if self.sync:
            faults.fire("wal.fsync", path=self.path)
            t0 = time.perf_counter()
            os.fsync(self._fh.fileno())
            _M_FSYNC.observe(time.perf_counter() - t0)

    def log_append(self, columns: dict[str, np.ndarray]) -> None:
        self._write(_encode_append(columns))

    def log_update(self, key_column: str, key: int,
                   values: dict) -> None:
        self._write(_encode_update(key_column, key, values))

    def log_delete(self, expr: Expr) -> None:
        self._write(_encode_delete(expr))

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


def replay(path: str) -> list:
    """Decode every committed record, tolerating a torn tail.

    Frames are accepted until the first length/checksum violation; a
    record truncated mid-write (the crash case the property suite
    exercises) and anything after it are discarded.  A missing or
    headerless file replays as empty.
    """
    return _scan(path)[0]


def recover(path: str) -> list:
    """:func:`replay`, plus repair: the torn tail (if any) is truncated
    away so records appended by the reopened table land directly after
    the last committed one instead of behind unreadable garbage."""
    return recover_with_report(path)[0]


def recover_with_report(path: str) -> tuple[list, dict]:
    """:func:`recover`, reporting what the repair dropped.

    The torn/corrupt tail is preserved verbatim as a
    ``<wal>.log.corrupt`` forensics sidecar before the live file is
    truncated — recovery never silently destroys the only evidence of
    what a crash interrupted.  Returns ``(records, report)`` where
    ``report`` holds ``records`` (committed count), ``bytes_dropped``,
    ``records_dropped`` (best-effort frame count in the tail), and
    ``sidecar`` (the forensics path, or ``None`` when the log was
    clean).
    """
    records, valid = _scan(path)
    report = {"records": len(records), "bytes_dropped": 0,
              "records_dropped": 0, "sidecar": None}
    try:
        size = os.path.getsize(path)
    except FileNotFoundError:
        return records, report
    if size > valid:
        with open(path, "rb") as fh:
            fh.seek(valid)
            tail = fh.read()
        sidecar = path + ".corrupt"
        with open(sidecar, "wb") as fh:
            fh.write(tail)
        os.truncate(path, valid)
        report.update(bytes_dropped=len(tail),
                      records_dropped=_count_tail_frames(tail),
                      sidecar=sidecar)
    return records, report


def _count_tail_frames(tail: bytes) -> int:
    """Best-effort frame count in a torn/corrupt tail (length prefixes
    may themselves be garbage, so this is forensic, not exact)."""
    count, pos = 0, 0
    while pos + FRAME_LEN <= len(tail):
        plen = int.from_bytes(tail[pos: pos + 4], "little")
        count += 1
        pos += FRAME_LEN + plen
    if pos < len(tail):
        count = max(count, 1)  # a frame header torn mid-write
    return count


def _scan(path: str) -> tuple[list, int]:
    """Decode committed records; returns ``(records, valid_bytes)``."""
    try:
        with open(path, "rb") as fh:
            blob = fh.read()
    except FileNotFoundError:
        return [], 0
    if len(blob) < WAL_HEADER_LEN or blob[:4] != WAL_MAGIC:
        return [], 0
    if blob[4] > WAL_VERSION:
        raise ValueError(
            f"WAL format version {blob[4]} is newer than the supported "
            f"version {WAL_VERSION}; upgrade the reader")
    records = []
    pos = WAL_HEADER_LEN
    while pos + FRAME_LEN <= len(blob):
        plen = int.from_bytes(blob[pos: pos + 4], "little")
        crc = int.from_bytes(blob[pos + 4: pos + 8], "little")
        start = pos + FRAME_LEN
        if start + plen > len(blob):
            break  # torn tail: record never finished hitting the disk
        payload = blob[start: start + plen]
        if zlib.crc32(payload) != crc:
            break  # corrupt frame — nothing after it is trustworthy
        records.append(_decode_payload(payload))
        pos = start + plen
    return records, pos
