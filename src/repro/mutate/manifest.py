"""Generation-chain commits for mutable tables.

A mutable table's catalog is a chain of immutable manifests —
``_table.<gen>.json`` — plus one ``CURRENT`` pointer file.  A commit

1. stages everything the new generation needs (shards via
   :class:`~repro.store.TableWriter`, deletion-vector sidecars here),
2. writes the new generation's manifest (atomic rename),
3. swaps ``CURRENT`` (atomic rename) — **this is the commit point**,
4. rotates the WAL to the new generation and reaps the old one.

A reader (:class:`repro.store.Table`) resolves ``CURRENT`` exactly once
at open, so it either sees the old chain tip or the new one, never a
mix; every file a published manifest references is never rewritten in
place, which is what makes time-travel opens of older generations free.
A crash between any two steps is recoverable: before step 3 the old
generation plus its WAL replay the full state (the orphaned staging
files are cleaned at next open), after step 3 the new generation is
simply current.
"""

from __future__ import annotations

import os
import re

import numpy as np

from repro.store import format as store_format
from repro.store.format import (
    Manifest,
    dv_file_name,
    list_versions,
    pack_deletion_vector,
    read_manifest,
    write_current,
    write_manifest,
)
from repro.mutate.wal import wal_file_name
from repro.obs import metrics as obs_metrics

_M_GENERATIONS = obs_metrics.counter(
    "repro_mutate_generations_total",
    "manifest generations committed (flushes + compactions)")

_WAL_RE = re.compile(r"wal-(\d{6})\.log$")
_WAL_SIDE_RE = re.compile(r"wal-(\d{6})\.log(\.corrupt)?$")
_DV_RE = re.compile(r".*\.(\d{6})\.dv$")


def base_shard_entries(base_table, pending_deleted: np.ndarray,
                       generation: int, directory: str) -> list[dict]:
    """Fold pending deletions into the base snapshot's shard entries.

    Per shard: no deletions → the entry (and any existing sidecar)
    carries over untouched; new deletions → a fresh sidecar is written
    for ``generation``; every row deleted → the shard leaves the chain
    entirely (its file stays on disk for older generations).
    ``row_start`` fields are left stale — :func:`commit` renumbers.
    """
    entries: list[dict] = []
    for shard, entry in zip(base_table.shards, base_table.manifest.shards):
        n = entry["n_rows"]
        pending = pending_deleted[shard.row_start: shard.row_start + n]
        base_del = shard.deleted if shard.deleted is not None \
            else np.zeros(n, dtype=bool)
        combined = base_del | pending
        if not pending.any():
            entries.append(dict(entry))
            continue
        if combined.all():
            continue  # fully dead: fold the shard away right now
        dv_name = dv_file_name(entry["file"], generation)
        store_format.write_atomic(os.path.join(directory, dv_name),
                                   pack_deletion_vector(combined),
                                   point="dv")
        new_entry = dict(entry)
        new_entry["dv"] = dv_name
        entries.append(new_entry)
    return entries


def finalize_entries(entries: list[dict], directory: str) -> list[dict]:
    """Renumber ``row_start`` cumulatively and recompute ``live_rows``."""
    row_start = 0
    out = []
    for entry in entries:
        entry = dict(entry)
        entry["row_start"] = row_start
        row_start += entry["n_rows"]
        if entry.get("dv"):
            with open(os.path.join(directory, entry["dv"]), "rb") as fh:
                deleted = store_format.unpack_deletion_vector(fh.read())
            entry["live_rows"] = entry["n_rows"] - int(deleted.sum())
        else:
            entry.pop("live_rows", None)
        out.append(entry)
    return out


def commit(directory: str, base: Manifest, entries: list[dict],
           generation: int) -> Manifest:
    """Publish ``entries`` as generation ``generation`` (steps 2-4)."""
    entries = finalize_entries(entries, directory)
    manifest = Manifest(
        columns=base.columns,
        n_rows=sum(e["n_rows"] for e in entries),
        shard_rows=base.shard_rows,
        chunk_rows=base.chunk_rows,
        codecs=dict(base.codecs),
        shards=tuple(entries),
        generation=generation,
    )
    write_manifest(directory, manifest, generation=generation)
    write_current(directory, generation)
    rotate_wal(directory, generation)
    _M_GENERATIONS.inc()
    return manifest


def rotate_wal(directory: str, generation: int) -> str:
    """Create the new generation's (empty) WAL and reap older ones.

    Forensics sidecars (``wal-*.log.corrupt``, preserved by recovery)
    of superseded generations are reaped with their logs: the commit
    that rotates past them proves their records were either replayed
    into the new generation or never acknowledged.
    """
    from repro.mutate.wal import WAL_MAGIC, WAL_VERSION

    name = wal_file_name(generation)
    store_format.write_atomic(os.path.join(directory, name),
                               WAL_MAGIC + bytes([WAL_VERSION]),
                               point="wal.rotate")
    for stale in os.listdir(directory):
        match = _WAL_SIDE_RE.fullmatch(stale)
        if match and int(match.group(1)) != generation:
            os.remove(os.path.join(directory, stale))
    return name


def adopt(directory: str) -> int:
    """Upgrade a table to the generation chain; returns the current gen.

    A legacy immutable table (single ``_table.json``) is republished as
    generation 0 — its shard files are referenced as-is, nothing is
    rewritten.  Tables already on a chain return their ``CURRENT``.
    """
    current = store_format.read_current(directory)
    if current is not None:
        return current
    manifest = read_manifest(directory)
    write_manifest(directory, manifest, generation=0)
    write_current(directory, 0)
    return 0


def clean_orphans(directory: str, current: int) -> None:
    """Remove staging leftovers of a commit that never reached the
    ``CURRENT`` swap: manifests and sidecars of generations newer than
    the pointer, and temp files of any interrupted atomic write (staged
    shards, manifest/CURRENT/DV ``.tmp`` images).  (Orphaned shard
    files are left for the next commit's namer to step over — they are
    unreferenced data, never wrong data.)"""
    for name in os.listdir(directory):
        gen = None
        match = store_format.GEN_MANIFEST_RE.fullmatch(name)
        if match:
            gen = int(match.group(1))
        else:
            match = _DV_RE.fullmatch(name)
            if match:
                gen = int(match.group(1))
        if (gen is not None and gen > current) or name.endswith(".tmp"):
            os.remove(os.path.join(directory, name))


def published_versions(directory: str, current: int) -> list[int]:
    """Generations safely opened for time travel (≤ ``CURRENT``)."""
    return [g for g in list_versions(directory) if g <= current]
