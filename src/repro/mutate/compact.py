"""Compaction: fold deletion vectors away by rewriting shards.

Deletion vectors make deletes cheap but leave dead rows on the scan
path — every query pays to mask them.  The compactor rewrites shards
whose **live fraction** dropped below a threshold: contiguous runs of
qualifying shards decode their surviving rows and re-encode through the
codec registry (per-chunk ``"auto"``, so the freshly-compacted value
distribution picks the smallest envelope again), fully-dead shards
simply leave the chain, and everything else carries over untouched.
The result is an ordinary generation commit — concurrent readers keep
their snapshots, time travel keeps the uncompacted history.

:class:`BackgroundCompactor` wraps the same logic in a daemon thread
that wakes periodically and compacts whenever flushed deletes have
pushed a shard below the threshold — compaction-under-load without the
writer having to think about it.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np

from repro import faults
from repro.faults import SimulatedCrash
from repro.mutate import manifest as chain
from repro.obs import metrics as obs_metrics
from repro.store.writer import TableWriter

#: rewrite shards whose live-row fraction falls below this
DEFAULT_THRESHOLD = 0.5

_M_PASSES = obs_metrics.counter(
    "repro_mutate_compact_passes_total",
    "compaction passes that committed a generation")
_M_SECONDS = obs_metrics.histogram(
    "repro_mutate_compact_seconds", "committed compaction pass duration")
_M_ROWS_RECLAIMED = obs_metrics.counter(
    "repro_mutate_compact_rows_reclaimed_total",
    "dead rows folded away by compaction")
_M_BYTES_RECLAIMED = obs_metrics.counter(
    "repro_mutate_compact_bytes_reclaimed_total",
    "shard-file bytes reclaimed by compaction")
_M_COMPACTOR_ERRORS = obs_metrics.counter(
    "repro_mutate_compactor_errors_total",
    "BackgroundCompactor passes that raised (surfaced via .errors)")
_M_COMPACTOR_CRASHES = obs_metrics.counter(
    "repro_mutate_compactor_crashes_total",
    "BackgroundCompactor threads killed by an injected crash")


def live_fractions(table) -> list[float]:
    """Per-shard fraction of rows the deletion vector leaves live."""
    out = []
    for shard in table.shards:
        n = shard.footer.n_rows
        dead = int(shard.deleted.sum()) if shard.deleted is not None else 0
        out.append((n - dead) / n if n else 1.0)
    return out


def _decode_live(table, shard_idx: int) -> dict[str, np.ndarray]:
    """One shard's surviving rows, fully decoded (compaction input)."""
    shard = table.shards[shard_idx]
    keep = ~shard.deleted
    columns = {}
    for name in table.column_names:
        parts = [table.revive_chunk(shard_idx, meta).decode_all()
                 for meta in shard.by_column[name]]
        values = parts[0] if len(parts) == 1 else np.concatenate(parts)
        columns[name] = np.asarray(values, dtype=np.int64)[keep]
    return columns


def compact_table(table, codec, threshold: float = DEFAULT_THRESHOLD
                  ) -> int | None:
    """Rewrite ``table``'s low-liveness shards into a new generation.

    ``table`` is the *published* snapshot (pending mutations must be
    flushed first — :meth:`MutableTable.compact` does).  Returns the new
    generation, or ``None`` when every shard is above ``threshold``.
    ``codec`` only labels future flushes; rewritten chunks always
    trial-encode with ``"auto"``.
    """
    fractions = live_fractions(table)
    qualify = [frac < threshold and table.shards[i].deleted is not None
               for i, frac in enumerate(fractions)]
    if not any(qualify):
        return None
    t_pass = time.perf_counter()
    rows_rewritten = sum(table.manifest.shards[i]["n_rows"]
                         for i, q in enumerate(qualify) if q)
    bytes_dropped = 0
    for i, q in enumerate(qualify):
        if q:
            try:
                bytes_dropped += os.path.getsize(table.shards[i].path)
            except OSError:
                pass
    rows_kept = 0
    bytes_written = 0
    generation = table.generation + 1
    entries: list[dict] = []
    rows_before = 0
    i = 0
    while i < len(table.shards):
        if not qualify[i]:
            entries.append(dict(table.manifest.shards[i]))
            rows_before += table.manifest.shards[i]["n_rows"]
            i += 1
            continue
        # a contiguous run of qualifying shards rewrites through one
        # writer, so undersized survivors also merge back together
        run = []
        while i < len(table.shards) and qualify[i]:
            run.append(i)
            i += 1
        live = [_decode_live(table, j) for j in run]
        live = [batch for batch in live
                if len(batch[table.column_names[0]])]
        if not live:
            continue  # the whole run was dead rows
        faults.fire("compact.rewrite", shards=tuple(run))
        writer = TableWriter(
            table.path, codec="auto",
            shard_rows=table.manifest.shard_rows,
            chunk_rows=table.manifest.chunk_rows,
            schema=table.column_names, publish_manifest=False,
            start_row=rows_before, generation=generation)
        try:
            for batch in live:
                writer.append(batch)
            writer.close()
        except SimulatedCrash:
            raise  # a dead process cleans nothing; reopen repairs
        except BaseException:
            writer.abort()
            raise
        entries.extend(writer.shard_entries)
        run_rows = sum(e["n_rows"] for e in writer.shard_entries)
        rows_before += run_rows
        rows_kept += run_rows
        for e in writer.shard_entries:
            try:
                bytes_written += os.path.getsize(
                    os.path.join(table.path, e["file"]))
            except OSError:
                pass
    faults.fire("compact.commit", generation=generation)
    chain.commit(table.path, table.manifest, entries, generation)
    _M_PASSES.inc()
    _M_SECONDS.observe(time.perf_counter() - t_pass)
    _M_ROWS_RECLAIMED.inc(max(rows_rewritten - rows_kept, 0))
    _M_BYTES_RECLAIMED.inc(max(bytes_dropped - bytes_written, 0))
    return generation


class BackgroundCompactor:
    """Daemon thread compacting a :class:`MutableTable` under load.

    Wakes every ``interval_s`` seconds (and immediately on
    :meth:`trigger`), compacts when any published shard's live fraction
    is below ``threshold``, and records every pass in :attr:`history`.
    Start/stop it explicitly or use it as a context manager.
    """

    def __init__(self, table, threshold: float = DEFAULT_THRESHOLD,
                 interval_s: float = 0.5):
        self.table = table
        self.threshold = threshold
        self.interval_s = interval_s
        self.history: list[int] = []  # generations committed
        self.errors: list[Exception] = []
        self.crashed: SimulatedCrash | None = None  # fault-injected death
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "BackgroundCompactor":
        if self._thread is not None:
            raise ValueError("compactor already started")
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-mutate-compactor")
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.is_set():
            self._wake.wait(self.interval_s)
            self._wake.clear()
            if self._stop.is_set():
                break
            try:
                generation = self.table.compact(self.threshold)
            except SimulatedCrash as crash:
                # the injected crash kills THIS thread, like a process
                # dying mid-compaction: no cleanup, no retry — recovery
                # happens on the next open, never here
                self.crashed = crash
                _M_COMPACTOR_CRASHES.inc()
                self._stop.set()
                return
            except Exception as exc:  # surfaced via .errors, not lost
                self.errors.append(exc)
                _M_COMPACTOR_ERRORS.inc()
            else:
                if generation is not None:
                    self.history.append(generation)

    def trigger(self) -> None:
        """Wake the thread now (e.g. right after a delete-heavy flush)."""
        self._wake.set()

    def stop(self) -> None:
        self._stop.set()
        self._wake.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "BackgroundCompactor":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
