"""``repro.mutate`` — WAL-backed mutable tables over the columnar store.

The store's learned-compression shards are write-once by design; this
package makes tables *behave* mutable anyway, the LSM way::

    from repro.mutate import MutableTable
    from repro.exec import col

    with MutableTable.create("t", schema=("ts", "val")) as table:
        table.append({"ts": ts, "val": val})     # WAL first, memtable next
        table.delete(col("val") < 0)             # predicate delete
        table.update("ts", 1234, {"val": 99})    # update-by-key
        res = table.scan(where=col("ts").between(lo, hi))  # your writes show
        g = table.flush()                        # snapshot: generation g
        table.compact()                          # fold deletion vectors away

    Table.open("t", version=g)                   # time travel, for free

Append/update/delete hit a checksummed write-ahead log before the
in-memory memtable, so reopening replays exactly the acknowledged
operations and a torn WAL tail loses only the unacknowledged suffix.
``flush`` encodes the memtable through the ordinary codec registry into
new shards, turns accumulated deletes into per-shard deletion-vector
bitmap sidecars, and commits by atomically publishing the next
``_table.<gen>.json`` and swapping the ``CURRENT`` pointer — readers
are snapshot-isolated and every published generation stays openable.
The executor applies deletion vectors as a positional ``Bitmap`` filter
term (``explain()`` reports the masked rows); the compactor — inline or
the :class:`BackgroundCompactor` thread — rewrites shards whose live
fraction drops below a threshold and re-encodes per chunk with
``"auto"``.

``python -m repro.store`` grew the matching ``append`` / ``delete`` /
``compact`` / ``versions`` subcommands.
"""

from repro.mutate.compact import (
    DEFAULT_THRESHOLD,
    BackgroundCompactor,
    compact_table,
    live_fractions,
)
from repro.mutate.memtable import MemTable, validate_batch
from repro.mutate.table import MutableTable
from repro.mutate.wal import (
    WriteAheadLog,
    expr_from_doc,
    expr_to_doc,
    recover,
    recover_with_report,
    replay,
    wal_file_name,
)

__all__ = [
    "BackgroundCompactor",
    "DEFAULT_THRESHOLD",
    "MemTable",
    "MutableTable",
    "WriteAheadLog",
    "compact_table",
    "expr_from_doc",
    "expr_to_doc",
    "live_fractions",
    "recover",
    "recover_with_report",
    "replay",
    "validate_batch",
    "wal_file_name",
]
