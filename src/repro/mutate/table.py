"""``MutableTable`` — the write path over the persistent columnar store.

The LSM-flavoured lifecycle::

    append/update/delete ──▶ WAL (durability) ──▶ memtable (visibility)
                                                     │ flush()
                                                     ▼
                    shards (TableWriter) + deletion-vector sidecars
                                                     │ commit
                                                     ▼
                  _table.<gen>.json  +  CURRENT swap (snapshot point)

* **Reads are snapshot-isolated**: :meth:`scan` runs any exec-layer plan
  over the published snapshot chained with the memtable tail
  (read-your-writes); plain :class:`repro.store.Table` readers — even in
  other processes — pin whatever generation ``CURRENT`` named when they
  opened and never see a torn table.  ``Table.open(path, version=g)``
  time-travels to any published generation.
* **Deletes are deletion vectors**: flushed deletes become per-shard
  bitmap sidecars the executor applies as a positional ``Bitmap`` filter
  term — no rewrite of the shard, no new operator, and ``explain()``
  reports the masked rows.
* **Updates are delete + re-append**: the matched rows move to the tail
  with the new values (their columns re-encode at next flush).
* **Compaction** (:meth:`compact`, or the background thread in
  :mod:`repro.mutate.compact`) folds deletion vectors away by rewriting
  low-liveness shards through the codec registry.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np

from repro.exec import ArraySource, ChainSource, Plan, Range
from repro.obs import metrics as obs_metrics
from repro.exec.expr import Expr
from repro.faults import SimulatedCrash
from repro.mutate import manifest as chain
from repro.mutate.memtable import MemTable, validate_batch
from repro.mutate.wal import (
    WriteAheadLog,
    recover_with_report,
    wal_file_name,
)
from repro.store.executor import StoreSource
from repro.store.format import read_current, read_manifest
from repro.store.table import Table
from repro.store.writer import (
    DEFAULT_CHUNK_ROWS,
    DEFAULT_SHARD_ROWS,
    TableWriter,
)


_M_FLUSH_SECONDS = obs_metrics.histogram(
    "repro_mutate_flush_seconds", "memtable flush duration")
_M_FLUSH_ROWS = obs_metrics.counter(
    "repro_mutate_flush_rows_total", "memtable rows published by flushes")


def _as_expr(where) -> Expr:
    """Accept an Expr or the legacy ``(column, lo, hi)`` range tuple."""
    if isinstance(where, Expr):
        return where
    if isinstance(where, tuple) and len(where) == 3:
        column, lo, hi = where
        return Range(column, int(lo), int(hi))
    raise TypeError(
        f"predicate must be an Expr or a (column, lo, hi) tuple, "
        f"got {where!r}")


class MutableTable:
    """One writer's handle on a mutable table directory.

    Use :meth:`create` for a new table or :meth:`open` on an existing
    one (a plain immutable store table is adopted into the generation
    chain on first open).  One ``MutableTable`` per directory — writes
    are serialised through an internal lock, readers are unlimited.
    """

    def __init__(self, path: str, codec="auto", sync: bool = False):
        self.path = path
        self._lock = threading.RLock()
        generation = chain.adopt(path)
        chain.clean_orphans(path, generation)
        self._base = Table.open(path)
        self._retired: list[Table] = []  # superseded snapshots readers
        #                                  may still be scanning
        self._codec = codec if codec is not None \
            else self._manifest_codec()
        self._memtable = MemTable(self._base.column_names,
                                  self._base.n_rows)
        wal_path = os.path.join(path, wal_file_name(generation))
        records, self.last_recovery = recover_with_report(wal_path)
        self._wal = WriteAheadLog(wal_path, sync=sync)
        self._closed = False
        # replay = re-run the acknowledged operations on the snapshot
        # they were logged against; same code paths, no re-logging
        for record in records:
            if record[0] == "append":
                self._apply_append(validate_batch(self.schema, record[1]))
            elif record[0] == "update":
                self._apply_update(record[1], record[2], record[3])
            else:
                self._apply_delete(record[1])

    # ------------------------------------------------------------ factory
    @classmethod
    def create(cls, path: str, schema, codec="auto",
               shard_rows: int = DEFAULT_SHARD_ROWS,
               chunk_rows: int = DEFAULT_CHUNK_ROWS,
               sync: bool = False) -> "MutableTable":
        """Initialise an empty mutable table (generation 0, no shards)."""
        schema = TableWriter._validate_schema(schema, codec)
        if schema is None:
            raise ValueError("create() needs an explicit schema")
        os.makedirs(path, exist_ok=True)
        if read_current(path) is not None:
            raise ValueError(f"{path!r} already holds a mutable table")
        try:
            read_manifest(path)
        except ValueError:
            pass
        else:
            raise ValueError(
                f"{path!r} already holds a store table (open it with "
                "MutableTable.open to adopt it)")
        from repro.codecs.spec import CodecSpec
        from repro.store.format import Manifest

        def label(spec) -> str:
            return spec.codec if isinstance(spec, CodecSpec) else str(spec)

        labels = {name: label(codec[name] if isinstance(codec, dict)
                              else codec) for name in schema}
        chain.commit(path, Manifest(
            columns=schema, n_rows=0, shard_rows=shard_rows,
            chunk_rows=chunk_rows, codecs=labels), [], 0)
        return cls(path, codec=codec, sync=sync)

    @classmethod
    def open(cls, path: str, codec=None,
             sync: bool = False) -> "MutableTable":
        """Open (and if needed adopt) an existing table for mutation."""
        return cls(path, codec=codec, sync=sync)

    def _manifest_codec(self):
        labels = dict(self._base.manifest.codecs)
        if not labels:
            return "auto"
        if len(set(labels.values())) == 1:
            return next(iter(labels.values()))
        return labels

    # ------------------------------------------------------------ catalog
    @property
    def schema(self) -> tuple[str, ...]:
        return self._base.column_names

    @property
    def column_names(self) -> tuple[str, ...]:
        return self._base.column_names

    @property
    def generation(self) -> int:
        """The published generation this handle currently builds on."""
        return self._base.generation

    @property
    def n_rows(self) -> int:
        """Live rows visible to :meth:`scan` (read-your-writes)."""
        return (self._base.live_rows - self._memtable.pending_deletes
                + self._memtable.n_rows)

    @property
    def pending_rows(self) -> int:
        """Unflushed tail rows buffered in the memtable."""
        return self._memtable.n_rows

    @property
    def pending_deletes(self) -> int:
        """Unflushed deletions marked against the published snapshot."""
        return self._memtable.pending_deletes

    def versions(self) -> list[int]:
        """Published generations, oldest first (time-travel targets)."""
        return chain.published_versions(self.path, self.generation)

    def snapshot(self, version: int | None = None) -> Table:
        """An independent read snapshot (caller closes it)."""
        return Table.open(self.path, version=version)

    # ------------------------------------------------------------ writes
    def append(self, batch: dict) -> int:
        """Append one batch of rows; returns the rows appended."""
        with self._lock:
            self._check_open()
            staged = validate_batch(self.schema, batch)
            self._wal.log_append(staged)
            return self._apply_append(staged)

    def _apply_append(self, staged: dict[str, np.ndarray]) -> int:
        self._memtable.append(staged)
        return len(staged[self.schema[0]])

    def delete(self, where) -> int:
        """Delete every live row matching the predicate; returns the
        count.  ``where`` is an :class:`~repro.exec.Expr`
        (Range/InSet/And/Or — serialisable into the WAL) or a
        ``(column, lo, hi)`` tuple."""
        with self._lock:
            self._check_open()
            expr = _as_expr(where)
            self._check_columns(expr.columns())
            self._wal.log_delete(expr)
            return self._apply_delete(expr)

    def _apply_delete(self, expr: Expr) -> int:
        deleted = 0
        row_ids = self._match_base_rows(expr)
        if row_ids is not None and row_ids.size:
            deleted += self._memtable.mark_base_deleted(row_ids)
        if self._memtable.n_rows:
            cols = self._memtable.columns()
            mask = expr.evaluate(
                cols, np.arange(self._memtable.n_rows, dtype=np.int64))
            deleted += self._memtable.drop_tail_rows(mask)
        return deleted

    def update(self, key_column: str, key: int, values: dict) -> int:
        """Set ``values`` on every live row whose ``key_column`` equals
        ``key``; returns the count.  Matched rows move to the tail (the
        relational content is what snapshots preserve, not physical
        positions)."""
        with self._lock:
            self._check_open()
            self._check_columns({key_column}, role="key")
            self._check_columns(set(values), role="updated")
            values = {name: int(v) for name, v in values.items()}
            self._wal.log_update(key_column, int(key), values)
            return self._apply_update(key_column, int(key), values)

    def _apply_update(self, key_column: str, key: int,
                      values: dict) -> int:
        expr = Range(key_column, key, key + 1)
        moved: list[dict[str, np.ndarray]] = []
        row_ids = self._match_base_rows(expr, want_columns=True)
        if row_ids is not None:
            ids, columns = row_ids
            if ids.size:
                self._memtable.mark_base_deleted(ids)
                moved.append(columns)
        if self._memtable.n_rows:
            cols = self._memtable.columns()
            mask = expr.evaluate(
                cols, np.arange(self._memtable.n_rows, dtype=np.int64))
            if mask.any():
                moved.append(self._memtable.take_tail_rows(mask))
        updated = 0
        for columns in moved:
            n = len(columns[self.schema[0]])
            updated += n
            staged = {}
            for name in self.schema:
                col = np.asarray(columns[name], dtype=np.int64)
                if name in values:
                    col = np.full(n, values[name], dtype=np.int64)
                staged[name] = col
            self._memtable.append(staged)
        return updated

    def _match_base_rows(self, expr: Expr, want_columns: bool = False):
        """Live base-snapshot rows matching ``expr`` (excluding rows
        already pending deletion); physical row ids, optionally with the
        matched rows' full columns (for update's re-append)."""
        if self._base.n_rows == 0:
            return None
        from repro.exec.expr import Bitmap

        pending = self._memtable.base_deleted
        if pending.any():
            expr = expr & Bitmap(~pending)
        plan = Plan.scan(None if want_columns else
                         (self.schema[0],)).where(expr)
        result = plan.execute(StoreSource(self._base))
        if want_columns:
            return result.row_ids, result.columns
        return result.row_ids

    def _check_columns(self, names, role: str = "predicate") -> None:
        unknown = [c for c in names if c not in self.schema]
        if unknown:
            raise KeyError(
                f"unknown {role} column(s) "
                + ", ".join(repr(c) for c in unknown)
                + f"; available: {', '.join(self.schema)}")

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError("table handle is closed")

    # ------------------------------------------------------------- reads
    def source(self):
        """A :class:`~repro.exec.ColumnSource` over the live view
        (published snapshot + memtable tail, deletions masked) — run any
        exec-layer plan against it."""
        with self._lock:
            self._check_open()
            parts = []
            if self._base.n_rows:
                parts.append(StoreSource(self._base))
            if self._memtable.n_rows:
                parts.append(ArraySource(
                    dict(self._memtable.columns()),
                    morsel_rows=self._base.chunk_rows,
                    name="memtable"))
            if not parts:
                parts.append(ArraySource(
                    {name: np.empty(0, dtype=np.int64)
                     for name in self.schema}, name="memtable"))
            live_mask = None
            if self._memtable.base_deleted.any():
                live_mask = np.ones(sum(p.n_rows for p in parts),
                                    dtype=bool)
                live_mask[:self._base.n_rows] = \
                    ~self._memtable.base_deleted
            return ChainSource(parts, live_mask=live_mask,
                               name=f"mutable:{self.path}")

    def scan(self, columns=None, where=None, threads: int | None = None,
             prune: bool = True, pushdown: bool = True):
        """Read-your-writes scan of the live view (an
        :class:`~repro.exec.ExecResult`)."""
        plan = Plan.scan(tuple(columns) if columns is not None else None)
        if where is not None:
            plan = plan.where(_as_expr(where))
        return plan.execute(self.source(), threads=threads, prune=prune,
                            pushdown=pushdown)

    def read_column(self, name: str) -> np.ndarray:
        return self.scan(columns=[name]).columns[name]

    # ------------------------------------------------------------- flush
    def flush(self) -> int:
        """Publish the memtable as a new manifest generation.

        New rows encode into ordinary shards through the codec
        registry; pending deletions become deletion-vector sidecars;
        the commit point is the atomic ``CURRENT`` swap, after which the
        WAL rotates.  A no-op (returns the current generation) when
        nothing is pending.
        """
        with self._lock:
            self._check_open()
            if not self._memtable.dirty:
                return self.generation
            t_flush = time.perf_counter()
            flushed_rows = self._memtable.n_rows
            generation = self.generation + 1
            entries = chain.base_shard_entries(
                self._base, self._memtable.base_deleted, generation,
                self.path)
            if self._memtable.n_rows:
                base_rows = sum(e["n_rows"] for e in entries)
                writer = TableWriter(
                    self.path, codec=self._codec,
                    shard_rows=self._base.manifest.shard_rows,
                    chunk_rows=self._base.chunk_rows,
                    schema=self.schema, publish_manifest=False,
                    start_row=base_rows, generation=generation)
                try:
                    writer.append(self._memtable.columns())
                    writer.close()
                except SimulatedCrash:
                    raise  # a dead process cleans nothing; reopen repairs
                except BaseException:
                    writer.abort()
                    raise
                entries.extend(writer.shard_entries)
            chain.commit(self.path, self._base.manifest, entries,
                         generation)
            self._reopen(generation)
            _M_FLUSH_SECONDS.observe(time.perf_counter() - t_flush)
            _M_FLUSH_ROWS.inc(flushed_rows)
            return generation

    def compact(self, threshold: float = 0.5) -> int | None:
        """Rewrite shards whose live fraction dropped below
        ``threshold`` (see :func:`repro.mutate.compact.compact_table`);
        pending mutations are flushed first.  Returns the new generation
        or ``None`` when no shard qualified."""
        from repro.mutate.compact import compact_table

        with self._lock:
            self._check_open()
            self.flush()
            generation = compact_table(self._base, self._codec, threshold)
            if generation is None:
                return None
            self._reopen(generation)
            return generation

    def _reopen(self, generation: int) -> None:
        """Swing this handle onto the just-committed generation.

        The superseded snapshot is *retired*, not closed: scans that
        grabbed a source from :meth:`source` before this commit may
        still be reading through it on other threads (that is the whole
        point of snapshot isolation).  Retired snapshots close when the
        handle does.
        """
        sync = self._wal.sync
        self._wal.close()
        self._retired.append(self._base)
        self._base = Table.open(self.path)
        assert self._base.generation == generation
        self._memtable = MemTable(self.schema, self._base.n_rows)
        self._wal = WriteAheadLog(
            os.path.join(self.path, wal_file_name(generation)),
            sync=sync)

    # --------------------------------------------------------- lifecycle
    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._wal.close()
            self._base.close()
            for retired in self._retired:
                retired.close()
            self._retired = []
            self._closed = True

    def __enter__(self) -> "MutableTable":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __len__(self) -> int:
        return self.n_rows
