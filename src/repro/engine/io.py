"""Explicit I/O cost model for the columnar engine and the KV store.

The paper's system experiments (Figs. 18–22) split query time into CPU and
I/O on a local NVMe SSD.  Our substrate executes the CPU work for real and
*charges* I/O as ``bytes / bandwidth`` (+ per-read latency), accumulating the
totals so benchmarks can report the same stacked breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: NVMe-class defaults: ~2 GB/s effective sequential read, 100 us per I/O
DEFAULT_BANDWIDTH = 2e9
DEFAULT_LATENCY_S = 100e-6


@dataclass
class IOModel:
    """Accumulates simulated read cost."""

    bandwidth_bytes_per_s: float = DEFAULT_BANDWIDTH
    latency_s: float = DEFAULT_LATENCY_S
    bytes_read: int = field(default=0, init=False)
    reads: int = field(default=0, init=False)

    def charge(self, nbytes: int) -> None:
        """Record one read of ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"negative read size {nbytes}")
        self.bytes_read += nbytes
        self.reads += 1

    @property
    def seconds(self) -> float:
        return (self.bytes_read / self.bandwidth_bytes_per_s
                + self.reads * self.latency_s)

    def reset(self) -> None:
        self.bytes_read = 0
        self.reads = 0


class IODelta:
    """One operation's charges against a shared accumulator model.

    The ``run_*`` query helpers treat a caller-supplied :class:`IOModel`
    as a running total: they charge onto it but never reset it, and
    report their own consumption as the delta since this snapshot.
    """

    def __init__(self, io: IOModel):
        self.io = io
        self._bytes0 = io.bytes_read
        self._reads0 = io.reads

    @property
    def bytes_read(self) -> int:
        return self.io.bytes_read - self._bytes0

    @property
    def reads(self) -> int:
        return self.io.reads - self._reads0

    @property
    def seconds(self) -> float:
        return (self.bytes_read / self.io.bandwidth_bytes_per_s
                + self.reads * self.io.latency_s)
