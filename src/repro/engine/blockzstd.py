"""Block compression layer standing in for zstd (paper §5.1.3).

The environment is offline, so instead of zstd we use the standard
library's DEFLATE (zlib) — a real general-purpose block compressor with a
genuine CPU cost, exercising exactly the code path the paper studies:
block compression stacked on top of lightweight encodings, buying extra
ratio at a decompression-CPU price.  The substitution is recorded in
DESIGN.md.
"""

from __future__ import annotations

import zlib


def block_compress(data: bytes, level: int = 3) -> bytes:
    """Compress one block (zstd stand-in)."""
    return zlib.compress(data, level)


def block_decompress(data: bytes) -> bytes:
    return zlib.decompress(data)
