"""End-to-end query execution with CPU/IO breakdown (Figs. 18, 19, 21).

``run_filter_groupby_query`` reproduces the paper's §5.1.1 template:

    SELECT AVG(val) FROM T WHERE ts_begin < ts < ts_end GROUP BY id

executed with late materialization: the range filter is pushed down to the
storage layer producing a bitmap; groupby/aggregation then decode only
surviving positions.  Per-row-group partials are merged as ``(sum,
count)`` pairs — never as means, which would be wrong whenever a group's
rows split unevenly across row groups.  ``run_bitmap_aggregation`` is
§5.1.2's kernel: scan a single column, skip row groups whose bitmap
region is empty, sum selected entries.

Both helpers treat a caller-supplied :class:`IOModel` as a running
accumulator: they charge reads onto it but never reset it, and the
returned :class:`QueryResult` carries this query's own ``bytes_read`` /
``reads`` deltas (with ``io_s`` derived from those deltas alone).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.engine.io import IODelta, IOModel
from repro.engine.ops import bitmap_sum, filter_to_bitmap, groupby_sum_count
from repro.engine.parquet import ParquetLikeFile


@dataclass
class QueryResult:
    """Timing + I/O breakdown of one query execution."""

    cpu_filter_s: float
    cpu_groupby_s: float
    io_s: float
    rows_selected: int
    answer: object
    #: bytes/reads charged by THIS query (caller's IOModel keeps its own
    #: running totals; these are the deltas)
    bytes_read: int = 0
    reads: int = 0

    @property
    def total_s(self) -> float:
        return self.cpu_filter_s + self.cpu_groupby_s + self.io_s


def run_filter_groupby_query(file: ParquetLikeFile, ts_lo: int, ts_hi: int,
                             io: IOModel | None = None) -> QueryResult:
    """The Fig. 18 query over a (ts, id, val) file."""
    delta = IODelta(io or IOModel())
    io = delta.io
    cpu_filter = 0.0
    cpu_groupby = 0.0
    selected = 0
    merged: dict[int, tuple[int, int]] = {}

    for group in file.row_groups:
        ts_col = file.scan_column(group, "ts", io)
        start = time.perf_counter()
        bitmap = filter_to_bitmap(ts_col, ts_lo, ts_hi)
        cpu_filter += time.perf_counter() - start
        hits = int(bitmap.sum())
        selected += hits
        if hits == 0:
            continue
        id_col = file.scan_column(group, "id", io)
        val_col = file.scan_column(group, "val", io)
        start = time.perf_counter()
        partial = groupby_sum_count(id_col, val_col, bitmap)
        cpu_groupby += time.perf_counter() - start
        for key, (total, count) in partial.items():
            prev_total, prev_count = merged.get(key, (0, 0))
            merged[key] = (prev_total + total, prev_count + count)

    answer = {key: total / count for key, (total, count) in merged.items()}
    return QueryResult(cpu_filter, cpu_groupby, delta.seconds, selected,
                       answer, bytes_read=delta.bytes_read,
                       reads=delta.reads)


def run_bitmap_aggregation(file: ParquetLikeFile, column: str,
                           bitmap, io: IOModel | None = None) -> QueryResult:
    """The Fig. 19 kernel: bitmap-selected SUM over one column."""
    delta = IODelta(io or IOModel())
    io = delta.io
    cpu = 0.0
    total = 0
    selected = 0
    for group in file.row_groups:
        local = bitmap[group.start: group.start + group.n_rows]
        if not local.any():
            continue  # row-group skip (all bits zero)
        col = file.scan_column(group, column, io)
        start = time.perf_counter()
        total += bitmap_sum(col, local)
        cpu += time.perf_counter() - start
        selected += int(local.sum())
    return QueryResult(0.0, cpu, delta.seconds, selected, total,
                       bytes_read=delta.bytes_read, reads=delta.reads)
