"""End-to-end query execution with CPU/IO breakdown (Figs. 18, 19, 21).

``run_filter_groupby_query`` reproduces the paper's §5.1.1 template:

    SELECT AVG(val) FROM T WHERE ts_begin < ts < ts_end GROUP BY id

executed with late materialization: the range filter is pushed down to the
storage layer producing a bitmap; groupby/aggregation then decode only
surviving positions.  ``run_bitmap_aggregation`` is §5.1.2's kernel: scan a
single column, skip row groups whose bitmap region is empty, sum selected
entries.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.engine.io import IOModel
from repro.engine.ops import bitmap_sum, filter_to_bitmap, groupby_avg
from repro.engine.parquet import ParquetLikeFile


@dataclass
class QueryResult:
    """Timing breakdown of one query execution."""

    cpu_filter_s: float
    cpu_groupby_s: float
    io_s: float
    rows_selected: int
    answer: object

    @property
    def total_s(self) -> float:
        return self.cpu_filter_s + self.cpu_groupby_s + self.io_s


def run_filter_groupby_query(file: ParquetLikeFile, ts_lo: int, ts_hi: int,
                             io: IOModel | None = None) -> QueryResult:
    """The Fig. 18 query over a (ts, id, val) file."""
    io = io or IOModel()
    io.reset()
    cpu_filter = 0.0
    cpu_groupby = 0.0
    selected = 0
    merged: dict[int, list] = {}

    for group in file.row_groups:
        ts_col = file.scan_column(group, "ts", io)
        start = time.perf_counter()
        bitmap = filter_to_bitmap(ts_col, ts_lo, ts_hi)
        cpu_filter += time.perf_counter() - start
        hits = int(bitmap.sum())
        selected += hits
        if hits == 0:
            continue
        id_col = file.scan_column(group, "id", io)
        val_col = file.scan_column(group, "val", io)
        start = time.perf_counter()
        partial = groupby_avg(id_col, val_col, bitmap)
        cpu_groupby += time.perf_counter() - start
        for key, avg in partial.items():
            merged.setdefault(key, []).append(avg)

    answer = {key: float(np.mean(avgs)) for key, avgs in merged.items()}
    return QueryResult(cpu_filter, cpu_groupby, io.seconds, selected, answer)


def run_bitmap_aggregation(file: ParquetLikeFile, column: str,
                           bitmap: np.ndarray,
                           io: IOModel | None = None) -> QueryResult:
    """The Fig. 19 kernel: bitmap-selected SUM over one column."""
    io = io or IOModel()
    io.reset()
    cpu = 0.0
    total = 0
    selected = 0
    for group in file.row_groups:
        local = bitmap[group.start: group.start + group.n_rows]
        if not local.any():
            continue  # row-group skip (all bits zero)
        col = file.scan_column(group, column, io)
        start = time.perf_counter()
        total += bitmap_sum(col, local)
        cpu += time.perf_counter() - start
        selected += int(local.sum())
    return QueryResult(0.0, cpu, io.seconds, selected, total)
