"""End-to-end query execution with CPU/IO breakdown (Figs. 18, 19, 21).

Since PR 4 both helpers are thin *plan builders* over the unified
:mod:`repro.exec` layer — the engine keeps no private execution path:

* ``run_filter_groupby_query`` reproduces the paper's §5.1.1 template

      SELECT AVG(val) FROM T WHERE ts_begin < ts < ts_end GROUP BY id

  as ``Scan → Filter(range on ts) → Aggregate(avg val BY id)``.  The
  executor pushes the range down (zone maps from the codecs'
  ``model_bounds`` capability, then ``filter_range`` inside surviving
  row groups), late-materialises ``id``/``val`` at surviving positions
  only, and merges per-granule ``(sum, count)`` partials exactly —
  never means, which would be wrong for groups that straddle row
  groups.
* ``run_bitmap_aggregation`` is §5.1.2's kernel: the externally
  supplied bitmap becomes a positional filter term, so row groups whose
  bitmap region is empty are pruned without touching bytes, and the
  surviving positions drive a global SUM.

Both helpers treat a caller-supplied :class:`IOModel` as a running
accumulator: they charge reads onto it but never reset it, and the
returned :class:`QueryResult` carries this query's own ``bytes_read`` /
``reads`` deltas (with ``io_s`` derived from those deltas alone).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.io import IODelta, IOModel
from repro.engine.parquet import ParquetLikeFile, ParquetSource
from repro.exec import Bitmap, Plan, col


@dataclass
class QueryResult:
    """Timing + I/O breakdown of one query execution."""

    cpu_filter_s: float
    cpu_groupby_s: float
    io_s: float
    rows_selected: int
    answer: object
    #: bytes/reads charged by THIS query (caller's IOModel keeps its own
    #: running totals; these are the deltas)
    bytes_read: int = 0
    reads: int = 0

    @property
    def total_s(self) -> float:
        return self.cpu_filter_s + self.cpu_groupby_s + self.io_s


def run_filter_groupby_query(file: ParquetLikeFile, ts_lo: int, ts_hi: int,
                             io: IOModel | None = None) -> QueryResult:
    """The Fig. 18 query over a (ts, id, val) file."""
    delta = IODelta(io or IOModel())
    plan = (Plan.scan(["id", "val"])
            .where(col("ts").between(ts_lo, ts_hi))
            .aggregate({"avg": ("avg", "val")}, group_by="id"))
    res = plan.execute(ParquetSource(file, io=delta.io))
    answer = {key: row["avg"] for key, row in res.groups.items()}
    return QueryResult(
        cpu_filter_s=res.stats.cpu_filter_s,
        cpu_groupby_s=res.stats.cpu_gather_s + res.stats.cpu_aggregate_s,
        io_s=delta.seconds,
        rows_selected=res.stats.rows_scanned,
        answer=answer,
        bytes_read=delta.bytes_read,
        reads=delta.reads,
    )


def run_bitmap_aggregation(file: ParquetLikeFile, column: str,
                           bitmap, io: IOModel | None = None) -> QueryResult:
    """The Fig. 19 kernel: bitmap-selected SUM over one column."""
    delta = IODelta(io or IOModel())
    plan = (Plan.scan([column])
            .where(Bitmap(np.asarray(bitmap, dtype=bool)))
            .aggregate({"total": ("sum", column)}))
    res = plan.execute(ParquetSource(file, io=delta.io))
    total = res.groups[None]["total"] if res.groups else 0
    return QueryResult(
        cpu_filter_s=res.stats.cpu_filter_s,
        cpu_groupby_s=res.stats.cpu_gather_s + res.stats.cpu_aggregate_s,
        io_s=delta.seconds,
        rows_selected=res.stats.rows_scanned,
        answer=total,
        bytes_read=delta.bytes_read,
        reads=delta.reads,
    )
