"""Encoded columnar arrays — the engine's Arrow-array stand-in (§5.1).

An :class:`EncodedColumn` stores one column under one of the paper's
encodings and serves the three access patterns the execution engine needs:

* ``filter_range`` — predicate evaluation producing a position bitmap, with
  LeCo's model-based partition pruning;
* ``take`` — late-materialized batch random access driven by a bitmap;
* ``decode_all`` — full scan.

The column is a thin consumer of the codec registry: the encoding name is
resolved through :func:`repro.codecs.get` and every access dispatches
through the vectorised :class:`~repro.baselines.base.EncodedSequence`
protocol — no per-encoding branches.  ``dict`` keeps Parquet's behaviour
of falling back to ``plain`` at high cardinality; the column records both
``requested_encoding`` and ``effective_encoding`` so callers and
benchmarks can tell what actually ran.
"""

from __future__ import annotations

import numpy as np

from repro import codecs

ENCODINGS = ("plain", "dict", "for", "delta", "leco")


def _codec_for(encoding: str, partition_size: int):
    """Registry construction kwargs for one engine encoding."""
    if encoding == "plain":
        return codecs.get("plain")
    if encoding == "dict":
        return codecs.get("dict", plain_fallback=True)
    if encoding == "for":
        return codecs.get("for", frame_size=partition_size)
    if encoding == "delta":
        return codecs.get("delta", partition_size=partition_size)
    return codecs.get("leco", partitioner=partition_size)


class EncodedColumn:
    """One column under one registry-built encoding."""

    def __init__(self, values: np.ndarray, encoding: str,
                 partition_size: int = 10_000):
        values = np.asarray(values, dtype=np.int64)
        if encoding not in ENCODINGS:
            raise ValueError(f"unknown encoding {encoding!r}")
        self.requested_encoding = encoding
        self.n = len(values)
        self._seq = _codec_for(encoding, partition_size).encode(values)
        # dict falls back to plain beyond the cardinality threshold; the
        # effective encoding is what the sequence actually is
        self.effective_encoding = encoding
        if encoding == "dict" and self._seq.wire_id == "plain":
            self.effective_encoding = "plain"

    @property
    def encoding(self) -> str:
        """The encoding that actually ran (``effective_encoding``)."""
        return self.effective_encoding

    @property
    def sequence(self):
        """The underlying :class:`EncodedSequence` (protocol surface)."""
        return self._seq

    # ---------------------------------------------------------------- size
    def size_bytes(self) -> int:
        return self._seq.size_bytes()

    def payload_bytes(self) -> bytes:
        """Serialised image (used for block compression and I/O charging).

        The self-describing envelope: any column chunk can be revived with
        :func:`repro.codecs.from_bytes` without knowing its encoding.
        """
        return self._seq.to_bytes()

    # -------------------------------------------------------------- access
    def decode_all(self) -> np.ndarray:
        return self._seq.decode_all()

    def take(self, positions: np.ndarray) -> np.ndarray:
        """Decode selected positions (bitmap-driven late materialization)."""
        return self._seq.gather(np.asarray(positions, dtype=np.int64))

    def gather(self, positions: np.ndarray) -> np.ndarray:
        """Protocol alias of :meth:`take` (the exec layer's spelling)."""
        return self.take(positions)

    def filter_range(self, lo: int, hi: int) -> np.ndarray:
        """Positions with ``lo <= v < hi`` as a boolean bitmap.

        LeCo-family sequences prune whole partitions whose model+width
        band misses the range (§5.1.1); other encodings materialise and
        compare — both behind the sequence protocol's ``filter_range``.
        """
        return self._seq.filter_range(lo, hi)
