"""Encoded columnar arrays — the engine's Arrow-array stand-in (§5.1).

An :class:`EncodedColumn` stores one column under one of the paper's
encodings and serves the three access patterns the execution engine needs:

* ``filter_range`` — predicate evaluation producing a position bitmap, with
  LeCo's model-based partition pruning;
* ``take`` — late-materialized random access driven by a bitmap;
* ``decode_all`` — full scan.

Encodings: ``plain`` (raw width), ``dict`` (Parquet's default: sorted
dictionary + bit-packed codes, falling back to plain at high cardinality),
``for``, ``delta``, ``leco``.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.delta import DeltaCodec, DeltaEncodedSequence
from repro.bitio import BitPackedArray
from repro.core.encoding import CompressedArray, LecoEncoder
from repro.core.regressors import ConstantRegressor

ENCODINGS = ("plain", "dict", "for", "delta", "leco")

#: Parquet-style fallback: dictionaries beyond this NDV share are pointless
_DICT_MAX_FRACTION = 0.5


class EncodedColumn:
    """One column under one encoding."""

    def __init__(self, values: np.ndarray, encoding: str,
                 partition_size: int = 10_000):
        values = np.asarray(values, dtype=np.int64)
        if encoding not in ENCODINGS:
            raise ValueError(f"unknown encoding {encoding!r}")
        self.encoding = encoding
        self.n = len(values)
        self._plain: np.ndarray | None = None
        self._dict_values: np.ndarray | None = None
        self._dict_codes: BitPackedArray | None = None
        self._leco: CompressedArray | None = None
        self._delta: DeltaEncodedSequence | None = None

        if encoding == "dict":
            uniques, codes = np.unique(values, return_inverse=True)
            if len(uniques) > _DICT_MAX_FRACTION * max(self.n, 1):
                self.encoding = "plain"
                self._plain = values
            else:
                self._dict_values = uniques
                self._dict_codes = BitPackedArray.from_values(
                    codes.astype(np.uint64))
        elif encoding == "plain":
            self._plain = values
        elif encoding == "for":
            enc = LecoEncoder(ConstantRegressor(),
                              partitioner=partition_size)
            self._leco = enc.encode(values)
        elif encoding == "leco":
            enc = LecoEncoder("linear", partitioner=partition_size)
            self._leco = enc.encode(values)
        elif encoding == "delta":
            self._delta = DeltaCodec(
                "fix", partition_size=partition_size).encode(values)

    # ---------------------------------------------------------------- size
    def size_bytes(self) -> int:
        if self._plain is not None:
            width = _natural_width(self._plain)
            return self.n * width
        if self._dict_codes is not None:
            return (self._dict_codes.nbytes
                    + len(self._dict_values) * 8 + 16)
        if self._leco is not None:
            return self._leco.compressed_size_bytes()
        return self._delta.compressed_size_bytes()

    def payload_bytes(self) -> bytes:
        """Serialised image (used for block compression and I/O charging)."""
        if self._plain is not None:
            return self._plain.tobytes()
        if self._dict_codes is not None:
            return self._dict_values.tobytes() + self._dict_codes.data
        if self._leco is not None:
            return self._leco.to_bytes()
        parts = [p.packed.data for p in self._delta.partitions]
        return b"".join(parts)

    # -------------------------------------------------------------- access
    def decode_all(self) -> np.ndarray:
        if self._plain is not None:
            return self._plain
        if self._dict_codes is not None:
            return self._dict_values[
                self._dict_codes.to_numpy().astype(np.int64)]
        if self._leco is not None:
            return self._leco.decode_all()
        return self._delta.decode_all()

    def take(self, positions: np.ndarray) -> np.ndarray:
        """Decode selected positions (bitmap-driven late materialization)."""
        positions = np.asarray(positions, dtype=np.int64)
        if self._plain is not None:
            return self._plain[positions]
        if self._dict_codes is not None:
            codes = self._dict_codes.gather(positions).astype(np.int64)
            return self._dict_values[codes]
        if self._leco is not None:
            return self._leco.take(positions)
        # delta: no random access — decode covering partitions sequentially
        out = np.empty(len(positions), dtype=np.int64)
        starts = self._delta._starts
        part_ids = np.searchsorted(starts, positions, side="right") - 1
        for pid in np.unique(part_ids):
            part = self._delta.partitions[int(pid)]
            decoded = part.decode()
            mask = part_ids == pid
            out[mask] = decoded[positions[mask] - part.start]
        return out

    def filter_range(self, lo: int, hi: int) -> np.ndarray:
        """Positions with ``lo <= v < hi`` as a boolean bitmap.

        LeCo prunes whole partitions whose model+width band misses the
        range (§5.1.1); other encodings must materialise and compare.
        """
        if self._leco is not None and self._leco.partitions:
            bitmap = np.zeros(self.n, dtype=bool)
            bounds = self._leco.partition_value_bounds()
            for j, part in enumerate(self._leco.partitions):
                if bounds[j, 1] < lo or bounds[j, 0] >= hi:
                    continue  # pruned: cannot contain matches
                decoded = part.decode_slice(0, part.length)
                bitmap[part.start: part.end] = ((decoded >= lo)
                                                & (decoded < hi))
            return bitmap
        values = self.decode_all()
        return (values >= lo) & (values < hi)


def _natural_width(values: np.ndarray) -> int:
    if values.size == 0:
        return 4
    lo, hi = int(values.min()), int(values.max())
    return 4 if lo >= -(1 << 31) and hi < (1 << 31) else 8
