"""Columnar execution engine substrate (paper §5.1)."""

from repro.engine.array import ENCODINGS, EncodedColumn
from repro.engine.blockzstd import block_compress, block_decompress
from repro.engine.dictjoin import ProbeResult, run_hash_probe
from repro.engine.io import IOModel
from repro.engine.ops import (
    bitmap_sum,
    filter_to_bitmap,
    groupby_avg,
    groupby_sum_count,
    zipf_cluster_bitmap,
)
from repro.engine.parquet import (
    ColumnChunk,
    ParquetLikeFile,
    ParquetSource,
    RowGroup,
)
from repro.engine.queries import (
    QueryResult,
    run_bitmap_aggregation,
    run_filter_groupby_query,
)

__all__ = [
    "ENCODINGS",
    "EncodedColumn",
    "block_compress",
    "block_decompress",
    "ProbeResult",
    "run_hash_probe",
    "IOModel",
    "bitmap_sum",
    "filter_to_bitmap",
    "groupby_avg",
    "groupby_sum_count",
    "zipf_cluster_bitmap",
    "ColumnChunk",
    "ParquetLikeFile",
    "ParquetSource",
    "RowGroup",
    "QueryResult",
    "run_bitmap_aggregation",
    "run_filter_groupby_query",
]
