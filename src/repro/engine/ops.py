"""Compute kernels of the execution engine (§5.1).

Late-materialization operators working on encoded columns and position
bitmaps, mirroring the Arrow Compute functions the paper builds on:
``filter`` (predicate pushdown), ``groupby_avg``, and ``bitmap_sum``.
"""

from __future__ import annotations

import numpy as np

from repro.engine.array import EncodedColumn


def filter_to_bitmap(column: EncodedColumn, lo: int, hi: int) -> np.ndarray:
    """Pushed-down range predicate ``lo <= v < hi`` over an encoded chunk."""
    return column.filter_range(lo, hi)


def groupby_sum_count(ids: EncodedColumn, vals: EncodedColumn,
                      bitmap: np.ndarray) -> dict[int, tuple[int, int]]:
    """Per-group ``(sum, count)`` partials over bitmap-selected rows.

    Only decodes entries whose bit is set (random access into the encoded
    arrays — the paper's groupby/aggregation path).  Returning the
    partials, not the means, is what makes cross-row-group merging exact:
    averages of unevenly split groups cannot be combined, sums and counts
    can.
    """
    positions = np.flatnonzero(bitmap)
    if positions.size == 0:
        return {}
    id_vals = ids.take(positions)
    val_vals = vals.take(positions)
    order = np.argsort(id_vals, kind="stable")
    sorted_ids = id_vals[order]
    sorted_vals = val_vals[order]
    starts = np.concatenate(
        [[0], np.flatnonzero(np.diff(sorted_ids)) + 1])
    sums = np.add.reduceat(sorted_vals, starts)
    counts = np.diff(np.append(starts, sorted_ids.size))
    return {int(key): (int(total), int(count))
            for key, total, count in zip(sorted_ids[starts], sums, counts)}


def groupby_avg(ids: EncodedColumn, vals: EncodedColumn,
                bitmap: np.ndarray) -> dict[int, float]:
    """``SELECT AVG(val) GROUP BY id`` over bitmap-selected rows."""
    return {key: total / count for key, (total, count)
            in groupby_sum_count(ids, vals, bitmap).items()}


def bitmap_sum(vals: EncodedColumn, bitmap: np.ndarray) -> int:
    """Sum of the bitmap-selected entries (Fig. 19's aggregation)."""
    positions = np.flatnonzero(bitmap)
    if positions.size == 0:
        return 0
    return int(vals.take(positions).sum())


def zipf_cluster_bitmap(n: int, selectivity: float, clusters: int = 10,
                        seed: int = 0) -> np.ndarray:
    """Fig. 19's bitmaps: ``clusters`` set-bit runs with Zipf-like sizes."""
    rng = np.random.default_rng(seed)
    target = max(int(n * selectivity), 1)
    weights = 1.0 / np.arange(1, clusters + 1)
    weights /= weights.sum()
    sizes = np.maximum((weights * target).astype(np.int64), 1)
    bitmap = np.zeros(n, dtype=bool)
    starts = np.sort(rng.integers(0, max(n - int(sizes.max()) - 1, 1),
                                  clusters))
    for start, size in zip(starts, sizes):
        bitmap[start: start + int(size)] = True
    return bitmap
