"""Row-grouped columnar file format — the Parquet stand-in (§5.1).

A :class:`ParquetLikeFile` holds row groups of encoded column chunks,
optionally block-compressed (the zstd stand-in).  ``scan_column`` charges
the I/O model for the bytes actually read and pays the real CPU cost of
block decompression, so the Fig. 18–21 benchmarks get a faithful CPU/IO
breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import codecs
from repro.engine.array import EncodedColumn
from repro.engine.blockzstd import block_compress, block_decompress
from repro.engine.io import IOModel
from repro.exec.source import ColumnSource, Granule


@dataclass
class ColumnChunk:
    """One column within one row group."""

    column: EncodedColumn
    compressed_payload: bytes | None  # set when block compression is on

    def stored_bytes(self) -> int:
        if self.compressed_payload is not None:
            return len(self.compressed_payload)
        return self.column.size_bytes()


class RowGroup:
    def __init__(self, start: int, chunks: dict[str, ColumnChunk]):
        self.start = start
        self.chunks = chunks

    @property
    def n_rows(self) -> int:
        return next(iter(self.chunks.values())).column.n


class ParquetLikeFile:
    """An immutable columnar file: row groups x encoded column chunks."""

    def __init__(self, row_groups: list[RowGroup], encoding: str,
                 block_compression: bool):
        self.row_groups = row_groups
        self.encoding = encoding
        self.block_compression = block_compression

    @classmethod
    def write(cls, table: dict[str, np.ndarray], encoding: str,
              row_group_size: int = 100_000,
              block_compression: bool = False,
              partition_size: int = 10_000) -> "ParquetLikeFile":
        """Encode ``table`` (dict of equal-length int columns) into a file."""
        n = len(next(iter(table.values())))
        for name, col in table.items():
            if len(col) != n:
                raise ValueError(f"column {name} length mismatch")
        groups = []
        for start in range(0, n, row_group_size):
            end = min(start + row_group_size, n)
            chunks = {}
            for name, col in table.items():
                encoded = EncodedColumn(col[start:end], encoding,
                                        partition_size)
                payload = None
                if block_compression:
                    payload = block_compress(encoded.payload_bytes())
                chunks[name] = ColumnChunk(encoded, payload)
            groups.append(RowGroup(start, chunks))
        return cls(groups, encoding, block_compression)

    @property
    def n_rows(self) -> int:
        return sum(g.n_rows for g in self.row_groups)

    def file_size_bytes(self) -> int:
        return sum(chunk.stored_bytes() for g in self.row_groups
                   for chunk in g.chunks.values())

    # ------------------------------------------------- persistent bridge
    def to_store(self, path: str, codec=None, shard_rows: int | None = None,
                 chunk_rows: int = 4096, overwrite: bool = False) -> None:
        """Persist this file as a :mod:`repro.store` table directory.

        Row groups become ingest batches (shards default to the file's
        row-group size); columns are re-encoded through the codec
        registry — ``codec`` defaults to this file's encoding, which is
        also a registry name.
        """
        from repro.store import TableWriter

        if shard_rows is None:
            shard_rows = max((g.n_rows for g in self.row_groups),
                             default=chunk_rows)
        with TableWriter(path, codec=codec or self.encoding,
                         shard_rows=shard_rows, chunk_rows=chunk_rows,
                         overwrite=overwrite) as writer:
            for group in self.row_groups:
                writer.append({name: chunk.column.decode_all()
                               for name, chunk in group.chunks.items()})

    @classmethod
    def from_store(cls, path: str, encoding: str = "leco",
                   row_group_size: int = 100_000,
                   block_compression: bool = False,
                   partition_size: int = 10_000) -> "ParquetLikeFile":
        """Load a :mod:`repro.store` table back into an in-memory file."""
        from repro.store import Table

        with Table.open(path) as table:
            columns = table.scan().columns  # one pass over every shard
        return cls.write(columns, encoding, row_group_size=row_group_size,
                         block_compression=block_compression,
                         partition_size=partition_size)

    def scan_column(self, group: RowGroup, name: str,
                    io: IOModel | None = None) -> EncodedColumn:
        """Load one column chunk: charge its bytes, pay decompression CPU."""
        chunk = group.chunks[name]
        if io is not None:
            io.charge(chunk.stored_bytes())
        if chunk.compressed_payload is not None:
            # real CPU cost of undoing the block compression
            block_decompress(chunk.compressed_payload)
        return chunk.column


class ParquetSource(ColumnSource):
    """:class:`~repro.exec.source.ColumnSource` over a ParquetLikeFile.

    Granules are row groups.  Zone maps come from the encoded
    sequences' ``model_bounds()`` — consulted only for codecs whose
    registry entry sets ``supports_model_bounds`` (the LeCo family), so
    the planner reads the same capability flag as the store writer.
    Loads charge the supplied :class:`IOModel` exactly like
    :meth:`ParquetLikeFile.scan_column`; the model's running totals are
    an unlocked accumulator, so the source reports
    ``parallel_safe=False`` and the executor stays on one thread.
    """

    parallel_safe = False

    def __init__(self, file: ParquetLikeFile, io: IOModel | None = None):
        self.file = file
        self.io = io
        self._granules = tuple(
            Granule(i, group.start, group.n_rows)
            for i, group in enumerate(file.row_groups))
        self._bounds: dict[tuple[int, str], tuple | None] = {}

    @property
    def column_names(self) -> tuple:
        if not self.file.row_groups:
            return ()
        return tuple(self.file.row_groups[0].chunks)

    @property
    def n_rows(self) -> int:
        return self.file.n_rows

    def granules(self) -> tuple:
        return self._granules

    def bounds(self, granule: Granule, column: str):
        key = (granule.index, column)
        if key not in self._bounds:
            chunk = self.file.row_groups[granule.index].chunks[column]
            band = None
            if codecs.info(chunk.column.encoding).supports_model_bounds:
                band = chunk.column.sequence.model_bounds()
            self._bounds[key] = band
        return self._bounds[key]

    def load(self, granule: Granule, column: str, stats):
        group = self.file.row_groups[granule.index]
        nbytes = group.chunks[column].stored_bytes()
        encoded = self.file.scan_column(group, column, self.io)
        if stats is not None:
            stats.chunks_scanned += 1
            stats.bytes_scanned += nbytes
            stats.bytes_read += nbytes
            stats.reads += 1
            if self.io is not None:
                stats.io_s += (nbytes / self.io.bandwidth_bytes_per_s
                               + self.io.latency_s)
        return encoded

    def describe(self) -> str:
        label = f"parquet({self.file.encoding}"
        if self.file.block_compression:
            label += "+zstd"
        return label + ")"
