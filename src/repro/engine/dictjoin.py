"""Dictionary-compressed hash-probe under a memory budget (paper §4.5).

The experiment: the probe side of a hash join is dictionary-encoded with an
order-preserving dictionary; the dictionary itself is compressed with LeCo,
FOR, or kept raw.  A memory budget covers the hash table plus whatever part
of the dictionary fits; dictionary accesses that fall outside the resident
fraction are charged as buffer-pool misses (one page read each).  When LeCo
shrinks the dictionary below the leftover budget the misses vanish — the
paper's up-to-95.7x cliff.

Since PR 4 the probe pipeline is a plan over :mod:`repro.exec`: the
dictionary-encoded column becomes an in-memory
:class:`~repro.exec.source.ArraySource` column, the random filter is a
positional :class:`~repro.exec.Bitmap` term, and the probe itself is the
executor's semi :class:`~repro.exec.plan.HashJoin` operator — the same
operator any backend's plans use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.leco import FORCodec, LecoCodec
from repro.engine.io import IODelta, IOModel
from repro.exec import ArraySource, Bitmap, Plan

PAGE_BYTES = 4096


@dataclass
class ProbeResult:
    throughput_gbps: float
    dictionary_bytes: int
    miss_fraction: float
    hits: int


def _encode_dictionary(uniques: np.ndarray, method: str):
    """Returns (decode_fn, stored_bytes) for the dictionary values."""
    if method == "raw":
        return (lambda codes: uniques[codes]), uniques.nbytes
    if method == "for":
        seq = FORCodec(frame_size=128).encode(uniques)
    elif method == "leco":
        seq = LecoCodec("linear", partitioner=128).encode(uniques)
    else:
        raise ValueError(f"unknown dictionary method {method!r}")
    arr = seq.array

    def decode(codes: np.ndarray) -> np.ndarray:
        return arr.take(codes)

    return decode, seq.compressed_size_bytes()


class _DictionaryColumn:
    """The probe column as seen through its compressed dictionary.

    Speaks the slice of the sequence protocol the executor needs:
    every access decodes dictionary codes through ``decode`` (so the
    exec layer's gather is exactly the paper's filter → dictionary
    decode stage).
    """

    def __init__(self, decode, codes: np.ndarray):
        self._decode = decode
        self._codes = codes

    def __len__(self) -> int:
        return len(self._codes)

    def decode_all(self) -> np.ndarray:
        return np.asarray(self._decode(self._codes), dtype=np.int64)

    def gather(self, positions: np.ndarray) -> np.ndarray:
        codes = self._codes[np.asarray(positions, dtype=np.int64)]
        return np.asarray(self._decode(codes), dtype=np.int64)

    def filter_range(self, lo: int, hi: int) -> np.ndarray:
        values = self.decode_all()
        return (values >= lo) & (values < hi)


def run_hash_probe(probe_values: np.ndarray, method: str,
                   memory_budget_bytes: int,
                   hash_table_bytes: int,
                   filter_selectivity: float = 0.01,
                   hit_ratio: float = 0.5,
                   io: IOModel | None = None,
                   seed: int = 5) -> ProbeResult:
    """Filter -> dictionary decode -> hash probe, under a memory budget."""
    delta = IODelta(io or IOModel())
    io = delta.io
    rng = np.random.default_rng(seed)
    probe_values = np.asarray(probe_values, dtype=np.int64)

    uniques, codes = np.unique(probe_values, return_inverse=True)
    decode, dict_bytes = _encode_dictionary(uniques, method)

    # hash table keyed on `hit_ratio` of the unique values
    build_keys = rng.choice(uniques, size=max(int(len(uniques) * hit_ratio),
                                              1), replace=False)

    # what fraction of the dictionary stays resident under the budget?
    leftover = max(memory_budget_bytes - hash_table_bytes, 0)
    resident = min(1.0, leftover / max(dict_bytes, 1))
    miss_fraction = 1.0 - resident

    n = len(probe_values)
    selected = rng.random(n) < filter_selectivity

    source = ArraySource({"probe": _DictionaryColumn(decode, codes)},
                         name=f"dict-probe[{method}]")
    plan = (Plan.scan(["probe"])
            .where(Bitmap(selected))
            .join(on="probe", keys=build_keys, how="semi"))
    res = plan.execute(source)

    # each non-resident dictionary access is a page miss, charged onto
    # the caller's accumulator; the throughput uses this probe's delta
    misses = int(res.stats.rows_scanned * miss_fraction)
    io.bytes_read += misses * PAGE_BYTES
    io.reads += misses

    cpu = (res.stats.cpu_filter_s + res.stats.cpu_gather_s
           + res.stats.cpu_join_s)
    total = cpu + delta.seconds
    raw_bytes = probe_values.nbytes
    return ProbeResult(
        throughput_gbps=raw_bytes / total / 1e9,
        dictionary_bytes=dict_bytes,
        miss_fraction=miss_fraction,
        hits=res.n_rows,
    )
