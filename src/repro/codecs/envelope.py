"""Self-describing serialization envelope shared by every registered codec.

Any :meth:`EncodedSequence.to_bytes` image starts with the same fixed
header, so a reader can reconstruct the sequence without knowing which
scheme produced it::

    +-------+---------+----------+------------+-------------+---------+
    | magic | version | id length| codec id   | payload len | payload |
    | 4 B   | 1 B     | 1 B      | ascii      | uvarint     | ...     |
    +-------+---------+----------+------------+-------------+---------+

The codec id is the *wire format* name (``"leco"``, ``"delta"``, ...), the
key the registry uses to find the payload decoder.  The explicit payload
length makes truncation detectable before any codec-specific parsing runs;
foreign blobs fail on the magic.  Everything raises :class:`ValueError` —
the registry's :func:`repro.codecs.from_bytes` is the public entry point.
"""

from __future__ import annotations

from repro.bitio import decode_uvarint, encode_uvarint

#: four magic bytes identifying a repro codec envelope
MAGIC = b"RPRC"
#: current envelope layout version
VERSION = 1

#: fixed prefix before the codec id: magic + version + id length
_HEADER_LEN = len(MAGIC) + 2


def pack(codec_id: str, payload: bytes, version: int = VERSION) -> bytes:
    """Wrap ``payload`` in an envelope tagged with ``codec_id``."""
    ident = codec_id.encode("ascii")
    if not 1 <= len(ident) <= 255:
        raise ValueError(f"codec id must be 1-255 ascii bytes: {codec_id!r}")
    out = bytearray(MAGIC)
    out.append(version)
    out.append(len(ident))
    out += ident
    out += encode_uvarint(len(payload))
    out += payload
    return bytes(out)


def unpack(blob: bytes) -> tuple[str, int, bytes]:
    """Parse an envelope; returns ``(codec_id, version, payload)``.

    Raises :class:`ValueError` on foreign magic, unsupported versions, and
    truncated blobs (header or payload).
    """
    blob = bytes(blob)
    if len(blob) < _HEADER_LEN:
        raise ValueError(
            f"truncated envelope: {len(blob)} bytes is shorter than the "
            f"{_HEADER_LEN}-byte header")
    if blob[:4] != MAGIC:
        raise ValueError(
            f"not a repro codec envelope (magic {blob[:4]!r}, "
            f"expected {MAGIC!r})")
    version = blob[4]
    if version > VERSION:
        raise ValueError(f"unsupported envelope version {version}")
    id_len = blob[5]
    if id_len == 0:
        raise ValueError("envelope carries an empty codec id")
    id_end = _HEADER_LEN + id_len
    if len(blob) < id_end:
        raise ValueError("truncated envelope: codec id cut short")
    codec_id = blob[_HEADER_LEN:id_end].decode("ascii")
    payload_len, offset = decode_uvarint(blob, id_end)
    if len(blob) < offset + payload_len:
        raise ValueError(
            f"truncated envelope: payload declares {payload_len} bytes, "
            f"{len(blob) - offset} present")
    return codec_id, version, blob[offset: offset + payload_len]
