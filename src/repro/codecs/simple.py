"""Plain and dictionary codecs behind the common sequence protocol.

These are the engine's Parquet-default encodings (§5.1), previously
hand-rolled as private fields and ``if`` ladders inside
``engine/array.py``.  As registered codecs they serve every consumer —
columns, benchmarks, the conformance suite — through the same vectorised
surface as LeCo and the baselines.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Codec, EncodedSequence, as_int64
from repro.bitio import BitPackedArray, decode_uvarint, encode_uvarint

#: Parquet-style fallback: dictionaries beyond this NDV share are pointless
DICT_MAX_FRACTION = 0.5


def natural_width(values: np.ndarray) -> int:
    """Bytes per value of the uncompressed image (4 for int32 ranges)."""
    if values.size == 0:
        return 4
    lo, hi = int(values.min()), int(values.max())
    return 4 if lo >= -(1 << 31) and hi < (1 << 31) else 8


class PlainSequence(EncodedSequence):
    """Uncompressed int64 column at its natural width."""

    wire_id = "plain"

    def __init__(self, values: np.ndarray):
        self._values = as_int64(values)

    def __len__(self) -> int:
        return len(self._values)

    def gather(self, indices: np.ndarray) -> np.ndarray:
        return self._values[self._check_indices(indices)]

    def decode_range(self, lo: int, hi: int) -> np.ndarray:
        if not 0 <= lo <= hi <= len(self._values):
            raise IndexError(
                f"bad range [{lo}, {hi}) for n={len(self._values)}")
        return self._values[lo:hi]

    def decode_all(self) -> np.ndarray:
        return self._values

    def compressed_size_bytes(self) -> int:
        return len(self._values) * natural_width(self._values)

    def payload_bytes(self) -> bytes:
        return self._values.tobytes()

    @classmethod
    def from_payload(cls, payload: bytes) -> "PlainSequence":
        return cls(np.frombuffer(payload, dtype=np.int64).copy())


class PlainCodec(Codec):
    name = "plain"

    def encode(self, values: np.ndarray) -> PlainSequence:
        return PlainSequence(values)


class DictEncodedSequence(EncodedSequence):
    """Sorted dictionary + bit-packed codes (Parquet's default)."""

    wire_id = "dict"

    def __init__(self, uniques: np.ndarray, codes: BitPackedArray):
        self._uniques = as_int64(uniques)
        self._codes = codes

    def __len__(self) -> int:
        return len(self._codes)

    @property
    def cardinality(self) -> int:
        return len(self._uniques)

    def gather(self, indices: np.ndarray) -> np.ndarray:
        codes = self._codes.gather(self._check_indices(indices))
        return self._uniques[codes.astype(np.int64)]

    def decode_all(self) -> np.ndarray:
        return self._uniques[self._codes.to_numpy().astype(np.int64)]

    def compressed_size_bytes(self) -> int:
        return self._codes.nbytes + len(self._uniques) * 8 + 16

    def payload_bytes(self) -> bytes:
        return (encode_uvarint(len(self._uniques))
                + self._uniques.tobytes()
                + self._codes.to_bytes())

    @classmethod
    def from_payload(cls, payload: bytes) -> "DictEncodedSequence":
        n_unique, offset = decode_uvarint(payload, 0)
        uniques = np.frombuffer(payload, dtype=np.int64, count=n_unique,
                                offset=offset).copy()
        codes, _ = BitPackedArray.from_bytes(payload, offset + 8 * n_unique)
        return cls(uniques, codes)


class DictCodec(Codec):
    """Dictionary encoding with an optional high-cardinality fallback.

    When the distinct-value share exceeds ``max_fraction`` the dictionary
    cannot pay for itself; with ``plain_fallback=True`` (the engine's
    policy — the pure codec defaults to always dict-encoding) ``encode``
    returns a :class:`PlainSequence` instead, which callers detect via
    ``wire_id``.
    """

    name = "dict"

    def __init__(self, max_fraction: float = DICT_MAX_FRACTION,
                 plain_fallback: bool = False):
        self.max_fraction = max_fraction
        self.plain_fallback = plain_fallback

    def encode(self, values: np.ndarray) -> EncodedSequence:
        values = as_int64(values)
        uniques, codes = np.unique(values, return_inverse=True)
        if self.plain_fallback and \
                len(uniques) > self.max_fraction * max(len(values), 1):
            return PlainSequence(values)
        packed = BitPackedArray.from_values(codes.astype(np.uint64))
        return DictEncodedSequence(uniques, packed)
