"""The codec registry: one lookup table for every compression scheme.

Each entry maps a public name (``"leco"``, ``"delta"``, ``"fsst"``, ...) to
a factory plus capability flags, so consumers — the columnar engine, the KV
store, the benchmark harness, the conformance suite — discover and
construct codecs uniformly instead of hard-coding per-scheme imports:

* :func:`register` — decorator adding a factory under a name;
* :func:`get` — construct a codec (``get("leco", mode="var")``);
* :func:`available` — all registered names;
* :func:`info` — the :class:`CodecInfo` capability record;
* :func:`from_bytes` — revive any sequence from its envelope image.

Wire formats are registered separately (:func:`register_wire`): several
codec names may share one payload layout (``for`` writes LeCo partitions),
and the envelope's codec id names the *format*, not the configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.codecs import envelope


@dataclass(frozen=True)
class CodecInfo:
    """Capability record for one registered codec name."""

    name: str
    factory: Callable[..., Any]
    summary: str = ""
    #: random access requires sequential (prefix) decoding
    sequential_access: bool = False
    #: encodes integer numpy arrays
    supports_integers: bool = True
    #: encodes lists of bytes/str
    supports_strings: bool = False
    #: ``filter_range`` can prune whole partitions without decoding
    supports_range_pruning: bool = False
    #: ``model_bounds()`` returns conservative value bounds without
    #: decoding (LeCo family: model band + residual width).  The store
    #: writer and the exec planner both read this flag — codecs without
    #: it get computed zone maps from the writer and no model-derived
    #: pruning bounds from in-memory sources.
    supports_model_bounds: bool = False
    #: input must be non-decreasing (e.g. Elias-Fano)
    requires_sorted: bool = False
    #: envelope codec id its sequences serialise under
    wire_id: str | None = None


_CODECS: dict[str, CodecInfo] = {}
_WIRE_DECODERS: dict[str, Callable[[bytes], Any]] = {}


def register(name: str, **caps) -> Callable:
    """Decorator registering ``factory`` under ``name`` with capabilities.

    The factory is any callable returning a codec object with ``encode``;
    keyword arguments given to :func:`get` pass through to it.
    """
    def deco(factory: Callable) -> Callable:
        if name in _CODECS:
            raise ValueError(f"codec {name!r} is already registered")
        _CODECS[name] = CodecInfo(name=name, factory=factory, **caps)
        return factory
    return deco


def register_wire(wire_id: str,
                  decoder: Callable[[bytes], Any]) -> None:
    """Register the payload decoder for one envelope codec id."""
    if wire_id in _WIRE_DECODERS:
        raise ValueError(f"wire format {wire_id!r} is already registered")
    _WIRE_DECODERS[wire_id] = decoder


def available() -> list[str]:
    """Sorted names of every registered codec."""
    return sorted(_CODECS)


def info(name: str) -> CodecInfo:
    """Capability record for ``name``; :class:`ValueError` when unknown."""
    try:
        return _CODECS[name]
    except KeyError:
        raise ValueError(
            f"unknown codec {name!r}; available: {', '.join(available())}"
        ) from None


def get(name: str, **kwargs):
    """Construct the codec registered under ``name``."""
    return info(name).factory(**kwargs)


def from_bytes(blob: bytes):
    """Revive an encoded sequence from any registered codec's envelope.

    The inverse of every sequence's ``to_bytes``: the envelope names the
    wire format, the registry supplies the payload decoder.
    """
    codec_id, _version, payload = envelope.unpack(blob)
    decoder = _WIRE_DECODERS.get(codec_id)
    if decoder is None:
        raise ValueError(
            f"no decoder registered for codec id {codec_id!r}; known: "
            f"{', '.join(sorted(_WIRE_DECODERS))}")
    return decoder(payload)
