"""Built-in codec and wire-format registrations.

Importing :mod:`repro.codecs` loads this module, which registers every
scheme the paper evaluates — leco (fix/var/auto), delta, for, dict, rle,
plain, fsst, rans, elias-fano — plus the LeCo string extension.  Factories
import their implementation modules lazily so the registry itself stays
cheap to import and free of circular dependencies.
"""

from __future__ import annotations

import importlib
from dataclasses import replace

from repro.baselines.base import Codec, as_int64
from repro.codecs.registry import register, register_wire
from repro.codecs.spec import CodecSpec


class SpecLecoCodec(Codec):
    """LeCo driven by a :class:`CodecSpec` (auto modes, mixed regressors)."""

    supports_range_pruning = True

    def __init__(self, spec: CodecSpec):
        self.spec = spec
        self.name = f"leco-{spec.mode}"

    def encode(self, values):
        from repro.baselines.leco import LecoEncodedSequence
        from repro.core.api import encode_with_spec

        return LecoEncodedSequence(
            encode_with_spec(as_int64(values), self.spec))


def _make_leco(mode: str | None, spec: CodecSpec | None = None, *,
               regressor: str = "linear", tau: float = 0.05,
               max_partition_size: int = 10_000, partitioner=None,
               selector=None):
    """LeCo factory: a CodecSpec, a raw partitioner spec, or knobs.

    ``mode`` is the name-implied mode (``leco-var`` etc.); when both a
    name-implied mode and a spec are given, the more specific name wins.
    ``None`` (the generic ``leco`` entry) defers to the spec.
    """
    if partitioner is not None:
        from repro.baselines.leco import LecoCodec

        return LecoCodec(regressor, partitioner=partitioner, tau=tau,
                         max_partition_size=max_partition_size)
    if spec is None:
        spec = CodecSpec(codec="leco", mode=mode or "fix",
                         regressor=regressor, tau=tau,
                         max_partition_size=max_partition_size,
                         selector=selector)
    elif mode is not None and spec.mode != mode:
        spec = replace(spec, mode=mode)
    return SpecLecoCodec(spec)


@register("leco", summary="learned compression, fixed partitions (§3)",
          supports_range_pruning=True, supports_model_bounds=True,
          wire_id="leco")
def _leco(spec=None, *, mode=None, **kwargs):
    return _make_leco(mode, spec, **kwargs)


@register("leco-fix", summary="LeCo with sampled fixed-length partitions",
          supports_range_pruning=True, supports_model_bounds=True,
          wire_id="leco")
def _leco_fix(spec=None, **kwargs):
    return _make_leco("fix", spec, **kwargs)


@register("leco-var", summary="LeCo with split-merge variable partitions",
          supports_range_pruning=True, supports_model_bounds=True,
          wire_id="leco")
def _leco_var(spec=None, **kwargs):
    return _make_leco("var", spec, **kwargs)


@register("leco-auto", summary="LeCo with hardness-advised partitioning",
          supports_range_pruning=True, supports_model_bounds=True,
          wire_id="leco")
def _leco_auto(spec=None, **kwargs):
    return _make_leco("auto", spec, **kwargs)


@register("for", summary="frame-of-reference (constant-model LeCo, §2)",
          supports_range_pruning=True, supports_model_bounds=True,
          wire_id="leco")
def _for(**kwargs):
    from repro.baselines.leco import FORCodec

    return FORCodec(**kwargs)


@register("delta", summary="delta encoding, fixed partitions (§2)",
          sequential_access=True, wire_id="delta")
def _delta(**kwargs):
    from repro.baselines.delta import DeltaCodec

    return DeltaCodec(kwargs.pop("variant", "fix"), **kwargs)


@register("delta-var", summary="delta with split-merge partitions (§3.2.2)",
          sequential_access=True, wire_id="delta")
def _delta_var(**kwargs):
    from repro.baselines.delta import DeltaCodec

    return DeltaCodec("var", **kwargs)


@register("dict", summary="sorted dictionary + bit-packed codes (§5.1)",
          wire_id="dict")
def _dict(**kwargs):
    from repro.codecs.simple import DictCodec

    return DictCodec(**kwargs)


@register("plain", summary="uncompressed natural-width column",
          wire_id="plain")
def _plain(**kwargs):
    from repro.codecs.simple import PlainCodec

    return PlainCodec(**kwargs)


@register("rle", summary="run-length encoding (§2)", wire_id="rle")
def _rle(**kwargs):
    from repro.baselines.rle import RLECodec

    return RLECodec(**kwargs)


@register("rans", summary="static byte-wise rANS entropy coder (§4.1)",
          sequential_access=True, wire_id="rans")
def _rans(**kwargs):
    from repro.baselines.rans import RansCodec

    return RansCodec(**kwargs)


@register("elias-fano", summary="quasi-succinct monotone sequences (§4.1)",
          requires_sorted=True, wire_id="elias-fano")
def _elias_fano(**kwargs):
    from repro.baselines.elias_fano import EliasFanoCodec

    return EliasFanoCodec(**kwargs)


@register("fsst", summary="FSST string compression (§4.7)",
          supports_integers=False, supports_strings=True, wire_id="fsst")
def _fsst(**kwargs):
    from repro.baselines.fsst import FSSTCodec

    return FSSTCodec(**kwargs)


@register("leco-str", summary="LeCo string extension (§3.4)",
          supports_integers=False, supports_strings=True,
          wire_id="leco-str")
def _leco_str(**kwargs):
    from repro.core.strings import StringCompressor

    return StringCompressor(**kwargs)


# ------------------------------------------------------------ wire formats
def _wire(module: str, cls_name: str):
    def decode(payload: bytes):
        cls = getattr(importlib.import_module(module), cls_name)
        return cls.from_payload(payload)
    return decode


register_wire("leco", _wire("repro.baselines.leco", "LecoEncodedSequence"))
register_wire("delta", _wire("repro.baselines.delta",
                             "DeltaEncodedSequence"))
register_wire("rle", _wire("repro.baselines.rle", "RLEEncodedSequence"))
register_wire("rans", _wire("repro.baselines.rans", "RansEncodedSequence"))
register_wire("elias-fano", _wire("repro.baselines.elias_fano",
                                  "EliasFanoSequence"))
register_wire("plain", _wire("repro.codecs.simple", "PlainSequence"))
register_wire("dict", _wire("repro.codecs.simple", "DictEncodedSequence"))
register_wire("fsst", _wire("repro.baselines.fsst",
                            "FSSTCompressedStrings"))
register_wire("leco-str", _wire("repro.core.strings", "CompressedStrings"))
