"""``repro.codecs`` — the unified codec registry and serialization envelope.

One coherent surface for every compression scheme in the repo::

    from repro import codecs

    codec = codecs.get("leco", mode="var")      # any registered scheme
    seq = codec.encode(values)                  # EncodedSequence protocol
    seq.gather(indices)                         # batch random access
    seq.decode_range(lo, hi)                    # partition-pruned decode
    blob = seq.to_bytes()                       # self-describing envelope
    codecs.from_bytes(blob)                     # revives ANY codec's blob

    codecs.available()                          # every registered name
    codecs.info("delta").sequential_access      # capability flags

New schemes call :func:`register` (and :func:`register_wire` for their
payload decoder) and are immediately reachable by every consumer — the
columnar engine, the KV store, the benchmark harness, and the shared
conformance test suite.
"""

from repro.codecs import envelope
from repro.codecs.registry import (
    CodecInfo,
    available,
    from_bytes,
    get,
    info,
    register,
    register_wire,
)
from repro.codecs.spec import CodecSpec, default_selector
from repro.codecs import builtin as _builtin  # noqa: F401  (registers built-ins)

MAGIC = envelope.MAGIC

__all__ = [
    "CodecInfo",
    "CodecSpec",
    "MAGIC",
    "available",
    "default_selector",
    "envelope",
    "from_bytes",
    "get",
    "info",
    "register",
    "register_wire",
]
