"""Structured compression configuration replacing loose string/kwarg soup.

A :class:`CodecSpec` names a codec plus its tuning knobs in one hashable
value, so call sites pass a single object instead of threading ``mode`` /
``regressor`` / ``tau`` keywords through every layer.  The spec also owns
the Regressor-Selector used by ``regressor="auto"``: it is *injectable*
(tests and services supply their own) and the shared default is built
lazily behind a lock, so concurrent first calls never race on construction
— previously a module-global singleton in ``core/api.py``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

_MODES = ("fix", "var", "auto")

_default_selector_lock = threading.Lock()
_default_selector: Any = None


def default_selector():
    """The shared, lazily-built Regressor Selector (thread-safe)."""
    global _default_selector
    if _default_selector is None:
        with _default_selector_lock:
            if _default_selector is None:
                from repro.core.advisor import RegressorSelector

                _default_selector = RegressorSelector()
    return _default_selector


@dataclass(frozen=True)
class CodecSpec:
    """Declarative description of one compression configuration.

    Parameters
    ----------
    codec:
        Registry name (``"leco"``, ``"delta"``, ...).
    mode:
        Partitioning strategy for LeCo-family codecs: ``"fix"`` (sampled
        fixed-length), ``"var"`` (split-merge), or ``"auto"``
        (hardness-advised, paper §3.2.3).
    regressor:
        Registered regressor name, or ``"auto"`` for the per-partition
        Regressor Selector (§3.1).
    tau:
        Split aggressiveness for variable partitioning.
    max_partition_size:
        Upper bound for the fixed-length partition search.
    selector:
        Optional Regressor-Selector instance used when
        ``regressor="auto"``; ``None`` means the shared lazy default.
    """

    codec: str = "leco"
    mode: str = "fix"
    regressor: str = "linear"
    tau: float = 0.05
    max_partition_size: int = 10_000
    selector: Any = None

    def __post_init__(self):
        if self.mode not in _MODES:
            raise ValueError(
                f"mode must be one of {_MODES}, got {self.mode!r}")

    def resolve_selector(self):
        """The injected selector, or the shared lazily-built default."""
        return self.selector if self.selector is not None \
            else default_selector()
