"""SSTable data blocks (paper §5.2).

A data block is a sorted run of key/value pairs serialised back-to-back
(varint key length, key bytes, varint value length, value bytes), capped at
``block_size`` bytes — RocksDB's 4KB default.  Blocks are parsed on access,
so binary search inside a block pays a real deserialisation cost, exactly
the work the paper's Seek path performs after the index lookup.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.bitio import encode_uvarint

DEFAULT_BLOCK_SIZE = 4096


def serialize_block(pairs: list[tuple[bytes, bytes]]) -> bytes:
    out = bytearray()
    for key, value in pairs:
        out += encode_uvarint(len(key))
        out += key
        out += encode_uvarint(len(value))
        out += value
    return bytes(out)


def parse_block(data: bytes) -> list[tuple[bytes, bytes]]:
    """Parse a block's pairs with the varint decode inlined.

    Lengths in a 4KB block are almost always single-byte varints, so the
    parser special-cases that (one index + compare per length) and only
    enters the multi-byte continuation loop when the high bit is set.  This
    halves the per-pair Python overhead versus calling
    :func:`decode_uvarint` for every field.
    """
    pairs = []
    offset = 0
    n = len(data)
    append = pairs.append
    try:
        while offset < n:
            byte = data[offset]
            offset += 1
            if byte < 0x80:
                klen = byte
            else:
                klen = byte & 0x7F
                shift = 7
                while True:
                    byte = data[offset]
                    offset += 1
                    klen |= (byte & 0x7F) << shift
                    if byte < 0x80:
                        break
                    shift += 7
            key = data[offset: offset + klen]
            offset += klen
            byte = data[offset]
            offset += 1
            if byte < 0x80:
                vlen = byte
            else:
                vlen = byte & 0x7F
                shift = 7
                while True:
                    byte = data[offset]
                    offset += 1
                    vlen |= (byte & 0x7F) << shift
                    if byte < 0x80:
                        break
                    shift += 7
            value = data[offset: offset + vlen]
            offset += vlen
            append((key, value))
    except IndexError:
        raise ValueError("truncated varint") from None
    return pairs


def block_lower_bound(pairs: list[tuple[bytes, bytes]], key: bytes
                      ) -> tuple[bytes, bytes] | None:
    """First pair with pair.key >= key, or None."""
    keys = [k for k, _ in pairs]
    idx = bisect_left(keys, key)
    if idx == len(pairs):
        return None
    return pairs[idx]


def split_into_blocks(pairs: list[tuple[bytes, bytes]],
                      block_size: int = DEFAULT_BLOCK_SIZE
                      ) -> list[list[tuple[bytes, bytes]]]:
    """Greedy fill: close a block when adding a pair would overflow it."""
    blocks: list[list[tuple[bytes, bytes]]] = []
    current: list[tuple[bytes, bytes]] = []
    used = 0
    for key, value in pairs:
        entry = len(key) + len(value) + 4
        if current and used + entry > block_size:
            blocks.append(current)
            current = []
            used = 0
        current.append((key, value))
        used += entry
    if current:
        blocks.append(current)
    return blocks


def shortest_separator(prev_last: bytes, next_first: bytes) -> bytes:
    """Shortest string in ``[prev_last, next_first)`` (RocksDB index keys).

    The index lookup picks the first separator >= the probe key, so a
    separator for block ``i`` must be >= the block's last key and < the next
    block's first key.  When no shorter string exists in that interval the
    block's own last key is used.
    """
    limit = min(len(prev_last), len(next_first))
    idx = 0
    while idx < limit and prev_last[idx] == next_first[idx]:
        idx += 1
    if idx < limit and prev_last[idx] + 1 < next_first[idx]:
        return prev_last[:idx] + bytes([prev_last[idx] + 1])
    return prev_last
