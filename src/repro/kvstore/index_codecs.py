"""Index-block codecs (paper §5.2).

An index block maps separator keys to block handles (offset, size).  Two
families are compared:

* :class:`RestartDeltaIndex` — RocksDB's native scheme: within each
  "restart interval" of ``ri`` entries, the first key is stored whole and
  the rest as (shared-prefix length, suffix); handles are delta-encoded.
  Lookup binary-searches the restart points, then decodes the interval
  sequentially.  ``ri=1`` stores every key whole (RocksDB's default — no
  compression, fastest lookup); larger ``ri`` trades lookup CPU for size.
* :class:`LecoIndex` — keys compressed with LeCo's string extension,
  offsets with LeCo-fix; both support random access, so the binary search
  touches only O(log n) entries with no interval decoding.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro import codecs
from repro.bitio import decode_uvarint, encode_uvarint


class IndexBlock(ABC):
    """Searchable index over (separator key, block id)."""

    @abstractmethod
    def lookup(self, key: bytes) -> int:
        """Block id whose separator is the smallest key >= ``key``.

        Returns the last block when ``key`` exceeds every separator.
        """

    @abstractmethod
    def size_bytes(self) -> int: ...

    @property
    @abstractmethod
    def entry_count(self) -> int: ...


class RestartDeltaIndex(IndexBlock):
    """RocksDB-style prefix-delta index with restart intervals."""

    def __init__(self, keys: list[bytes], restart_interval: int = 1):
        if restart_interval < 1:
            raise ValueError("restart_interval must be >= 1")
        self.ri = restart_interval
        self._n = len(keys)
        self._restart_keys: list[bytes] = []
        self._units: list[bytes] = []
        for start in range(0, len(keys), restart_interval):
            chunk = keys[start: start + restart_interval]
            self._restart_keys.append(chunk[0])
            unit = bytearray()
            prev = chunk[0]
            unit += encode_uvarint(len(chunk[0]))
            unit += chunk[0]
            for key in chunk[1:]:
                shared = _shared_prefix_len(prev, key)
                unit += encode_uvarint(shared)
                unit += encode_uvarint(len(key) - shared)
                unit += key[shared:]
                prev = key
            self._units.append(bytes(unit))

    @property
    def entry_count(self) -> int:
        return self._n

    def _decode_unit(self, unit_id: int) -> list[bytes]:
        data = self._units[unit_id]
        keys: list[bytes] = []
        offset = 0
        klen, offset = decode_uvarint(data, offset)
        keys.append(data[offset: offset + klen])
        offset += klen
        while offset < len(data):
            shared, offset = decode_uvarint(data, offset)
            rest, offset = decode_uvarint(data, offset)
            keys.append(keys[-1][:shared] + data[offset: offset + rest])
            offset += rest
        return keys

    def lookup(self, key: bytes) -> int:
        from bisect import bisect_right

        unit_id = bisect_right(self._restart_keys, key) - 1
        if unit_id < 0:
            return 0
        # the sequential decompression the paper charges against large RI
        keys = self._decode_unit(unit_id)
        for local, sep in enumerate(keys):
            if sep >= key:
                return unit_id * self.ri + local
        next_entry = unit_id * self.ri + len(keys)
        return min(next_entry, self._n - 1)

    def size_bytes(self) -> int:
        payload = sum(len(u) for u in self._units)
        restarts = 4 * len(self._units)
        return payload + restarts


class LecoIndex(IndexBlock):
    """Index block with LeCo-compressed keys (string extension, §5.2)."""

    def __init__(self, keys: list[bytes], partition_size: int = 64):
        self._n = len(keys)
        self._keys = codecs.get(
            "leco-str", partition_size=partition_size).encode(keys)

    @property
    def entry_count(self) -> int:
        return self._n

    def lookup(self, key: bytes) -> int:
        lo, hi = 0, self._n - 1
        result = self._n - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            if self._keys.get(mid) >= key:
                result = mid
                hi = mid - 1
            else:
                lo = mid + 1
        return result

    def size_bytes(self) -> int:
        return self._keys.compressed_size_bytes()


#: registry construction for each block-handle method (paper §5.2)
_HANDLE_CODECS = {
    "leco": lambda: codecs.get("leco", partitioner=64),
    "delta": lambda: codecs.get("delta", partition_size=64),
}


def encode_block_handles(offsets: np.ndarray, method: str) -> int:
    """Stored size of the block-handle (offset) sequence for each method."""
    offsets = np.asarray(offsets, dtype=np.int64)
    if method == "raw":
        return offsets.nbytes
    if method not in _HANDLE_CODECS:
        raise ValueError(f"unknown handle method {method!r}")
    return _HANDLE_CODECS[method]().encode(offsets).size_bytes()


def _shared_prefix_len(a: bytes, b: bytes) -> int:
    limit = min(len(a), len(b))
    idx = 0
    while idx < limit and a[idx] == b[idx]:
        idx += 1
    return idx
