"""YCSB-style workload generation for the KV-store benchmark (§5.2)."""

from __future__ import annotations

import numpy as np


def make_records(n: int, key_bytes: int = 20, value_bytes: int = 100,
                 seed: int = 0) -> list[tuple[bytes, bytes]]:
    """Sorted key/value records shaped like the RocksDB perf benchmark."""
    rng = np.random.default_rng(seed)
    ids = np.sort(rng.choice(np.arange(n * 8, dtype=np.int64), size=n,
                             replace=False))
    pad = key_bytes - 3
    value = bytes(value_bytes)
    return [(b"key" + str(int(i)).zfill(pad).encode(), value) for i in ids]


def skewed_seek_keys(records: list[tuple[bytes, bytes]], count: int,
                     hot_fraction: float = 0.2,
                     hot_probability: float = 0.8,
                     seed: int = 1) -> list[bytes]:
    """80/20-style skew: ``hot_probability`` of seeks hit the hot key range."""
    rng = np.random.default_rng(seed)
    n = len(records)
    hot_n = max(int(n * hot_fraction), 1)
    hot_start = rng.integers(0, n - hot_n + 1)
    keys = []
    for _ in range(count):
        if rng.random() < hot_probability:
            idx = hot_start + int(rng.integers(0, hot_n))
        else:
            idx = int(rng.integers(0, n))
        keys.append(records[idx][0])
    return keys
