"""RocksDB-like LSM key-value store substrate (paper §5.2)."""

from repro.kvstore.blocks import (
    DEFAULT_BLOCK_SIZE,
    parse_block,
    serialize_block,
    shortest_separator,
    split_into_blocks,
)
from repro.kvstore.index_codecs import (
    IndexBlock,
    LecoIndex,
    RestartDeltaIndex,
    encode_block_handles,
)
from repro.kvstore.sstable import (
    LRUBlockCache,
    MiniLSM,
    SeekStats,
    SSTable,
)
from repro.kvstore.ycsb import make_records, skewed_seek_keys

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "parse_block",
    "serialize_block",
    "shortest_separator",
    "split_into_blocks",
    "IndexBlock",
    "LecoIndex",
    "RestartDeltaIndex",
    "encode_block_handles",
    "LRUBlockCache",
    "MiniLSM",
    "SeekStats",
    "SSTable",
    "make_records",
    "skewed_seek_keys",
]
