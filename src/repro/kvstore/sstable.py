"""SSTables and the mini LSM store with a block cache (paper §5.2).

A :class:`MiniLSM` holds a sorted run of SSTables.  Each SSTable has 4KB
data blocks, an index block (pluggable codec), and fence keys.  ``seek``
follows RocksDB's path: route to the SSTable, search its (pinned) index
block, fetch the data block through the LRU cache — misses charge the I/O
model — and binary-search inside the block.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass

from repro.engine.io import IOModel
from repro.kvstore.blocks import (
    DEFAULT_BLOCK_SIZE,
    block_lower_bound,
    parse_block,
    serialize_block,
    shortest_separator,
    split_into_blocks,
)
from repro.kvstore.index_codecs import IndexBlock, LecoIndex, RestartDeltaIndex


class LRUBlockCache:
    """Byte-budgeted LRU over (table id, block id)."""

    def __init__(self, capacity_bytes: int):
        self.capacity = capacity_bytes
        self._entries: OrderedDict[tuple[int, int], tuple[list, int]] = (
            OrderedDict())
        self._used = 0
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple[int, int]):
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry[0]

    def put(self, key: tuple[int, int], value, nbytes: int) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
            return
        self._entries[key] = (value, nbytes)
        self._used += nbytes
        while self._used > self.capacity and self._entries:
            _, (_, evicted) = self._entries.popitem(last=False)
            self._used -= evicted

    @property
    def used_bytes(self) -> int:
        return self._used


class SSTable:
    """One immutable sorted table."""

    def __init__(self, table_id: int, pairs: list[tuple[bytes, bytes]],
                 index_codec: str, restart_interval: int = 1,
                 block_size: int = DEFAULT_BLOCK_SIZE):
        self.table_id = table_id
        blocks = split_into_blocks(pairs, block_size)
        self._raw_blocks = [serialize_block(b) for b in blocks]
        self.first_key = pairs[0][0]
        self.last_key = pairs[-1][0]

        # RocksDB index keys: shortest separator between adjacent blocks
        separators = []
        for prev, nxt in zip(blocks, blocks[1:]):
            separators.append(shortest_separator(prev[-1][0], nxt[0][0]))
        separators.append(self.last_key)

        if index_codec == "leco":
            self.index: IndexBlock = LecoIndex(separators)
        elif index_codec.startswith("restart"):
            self.index = RestartDeltaIndex(separators, restart_interval)
        else:
            raise ValueError(f"unknown index codec {index_codec!r}")

        # offsets contribute to the index-block size for both schemes
        offsets = []
        acc = 0
        for raw in self._raw_blocks:
            offsets.append(acc)
            acc += len(raw)
        self._offsets = offsets

    @property
    def n_blocks(self) -> int:
        return len(self._raw_blocks)

    def data_bytes(self) -> int:
        return sum(len(b) for b in self._raw_blocks)

    def index_bytes(self) -> int:
        return self.index.size_bytes() + 4 * len(self._offsets)

    def block_bytes(self, block_id: int) -> int:
        return len(self._raw_blocks[block_id])

    def read_block(self, block_id: int) -> list[tuple[bytes, bytes]]:
        """Parse a data block from "disk" bytes (real CPU cost)."""
        return parse_block(self._raw_blocks[block_id])


@dataclass
class SeekStats:
    operations: int
    cpu_seconds: float
    io_seconds: float
    cache_hits: int
    cache_misses: int

    @property
    def throughput_mops(self) -> float:
        total = self.cpu_seconds + self.io_seconds
        return self.operations / total / 1e6 if total > 0 else 0.0


class MiniLSM:
    """A sorted run of SSTables with a shared block cache."""

    def __init__(self, pairs: list[tuple[bytes, bytes]], index_codec: str,
                 restart_interval: int = 1,
                 table_records: int = 50_000,
                 block_size: int = DEFAULT_BLOCK_SIZE,
                 cache_bytes: int = 8 << 20,
                 io: IOModel | None = None):
        pairs = sorted(pairs)
        self.tables: list[SSTable] = []
        for tid, start in enumerate(range(0, len(pairs), table_records)):
            chunk = pairs[start: start + table_records]
            self.tables.append(SSTable(tid, chunk, index_codec,
                                       restart_interval, block_size))
        self._fences = [t.first_key for t in self.tables]
        # index blocks are pinned in the cache (the paper's RocksDB config:
        # pin_l0_filter_and_index_blocks_in_cache); whatever budget remains
        # serves data blocks — this is how a smaller index buys throughput
        data_budget = max(cache_bytes - self.index_bytes(), 4096)
        self.cache = LRUBlockCache(data_budget)
        self.io = io or IOModel()

    def index_bytes(self) -> int:
        return sum(t.index_bytes() for t in self.tables)

    def data_bytes(self) -> int:
        return sum(t.data_bytes() for t in self.tables)

    def raw_index_bytes(self) -> int:
        """Uncompressed index layout: whole separator keys + raw handles."""
        total = 0
        for table in self.tables:
            block_count = table.n_blocks
            # whole key (~separator length) + 8-byte offset + 4-byte size
            total += sum(len(table.last_key) + 12 for _ in range(block_count))
        return total

    def seek(self, key: bytes) -> tuple[bytes, bytes] | None:
        """First pair with pair.key >= key (RocksDB Seek semantics)."""
        from bisect import bisect_right

        tid = max(bisect_right(self._fences, key) - 1, 0)
        while tid < len(self.tables):
            table = self.tables[tid]
            if key > table.last_key:
                tid += 1
                continue
            block_id = table.index.lookup(key)
            pairs = self._load_block(table, block_id)
            hit = block_lower_bound(pairs, key)
            if hit is not None:
                return hit
            tid += 1
        return None

    def _load_block(self, table: SSTable, block_id: int
                    ) -> list[tuple[bytes, bytes]]:
        cache_key = (table.table_id, block_id)
        cached = self.cache.get(cache_key)
        if cached is not None:
            return cached
        self.io.charge(table.block_bytes(block_id))
        pairs = table.read_block(block_id)
        self.cache.put(cache_key, pairs, table.block_bytes(block_id))
        return pairs

    def run_seeks(self, keys: list[bytes]) -> SeekStats:
        """Execute seeks, returning the CPU/IO/cache breakdown."""
        self.io.reset()
        hits0, misses0 = self.cache.hits, self.cache.misses
        start = time.perf_counter()
        for key in keys:
            self.seek(key)
        cpu = time.perf_counter() - start
        return SeekStats(
            operations=len(keys),
            cpu_seconds=cpu,
            io_seconds=self.io.seconds,
            cache_hits=self.cache.hits - hits0,
            cache_misses=self.cache.misses - misses0,
        )
