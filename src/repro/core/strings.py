"""LeCo's extension to (mostly unique) string columns (paper §3.4).

The pipeline per partition:

1. extract the partition's **common prefix** and store it in the header;
2. shrink the **character set** to the bytes actually used, mapped order-
   preservingly to ranks; the base is rounded up to a power of two so that
   decoding a character is a shift + mask instead of div/mod (§3.4), unless
   ``power_of_two_base=False`` requests the tight base;
3. map each suffix to an integer in base ``M`` (big ints — widths beyond 64
   bits are supported), **padding adaptively**: the stored value is the model
   prediction clamped to the valid ``[s_min, s_max]`` padding range, which
   zeroes the residual whenever the prediction lands inside the range;
4. fit the linear minimax regressor on a scaled-down image of the integers
   (big values are right-shifted into float precision) and bit-pack residuals
   and per-value lengths.

Decoding a string is a model inference, one residual read, a shift/mask digit
extraction, and a length cut — no sequential scan, preserving LeCo's random
access story for varchar columns.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import SelfDescribing, normalize_indices
from repro.bitio import (
    BitPackedArray,
    decode_svarint,
    decode_uvarint,
    encode_svarint,
    encode_uvarint,
)
from repro.core.regressors.linear import chebyshev_line

#: scaled fits keep values within float64's exactly-representable range
_FLOAT_SAFE_BITS = 48


def common_prefix(strings: list[bytes]) -> bytes:
    if not strings:
        return b""
    first, last = min(strings), max(strings)
    limit = min(len(first), len(last))
    idx = 0
    while idx < limit and first[idx] == last[idx]:
        idx += 1
    return first[:idx]


def _charset_of(suffixes: list[bytes]) -> bytes:
    present = set()
    for s in suffixes:
        present.update(s)
    return bytes(sorted(present))


class _StringPartition:
    """One encoded partition of the string column."""

    __slots__ = ("start", "length", "prefix", "charset", "char_bits",
                 "max_len", "shift", "theta0", "theta1", "bias",
                 "lengths", "deltas", "base", "_rank")

    def __init__(self, start: int, suffixes: list[bytes],
                 power_of_two_base: bool):
        self.start = start
        self.length = len(suffixes)
        self.prefix = common_prefix(suffixes)
        trimmed = [s[len(self.prefix):] for s in suffixes]
        self.charset = _charset_of(trimmed) or b"\x00"
        k = len(self.charset)
        if power_of_two_base:
            self.char_bits = max((k - 1).bit_length(), 1)
            self.base = 1 << self.char_bits
        else:
            self.base = max(k, 2)
            self.char_bits = max((self.base - 1).bit_length(), 1)
        self.max_len = max((len(s) for s in trimmed), default=0)
        self._rank = {c: i for i, c in enumerate(self.charset)}

        mapped_min = [self._map(s, pad_rank=0) for s in trimmed]
        mapped_max = [self._map(s, pad_rank=k - 1) for s in trimmed]

        total_bits = self.max_len * self.char_bits
        self.shift = max(0, total_bits - _FLOAT_SAFE_BITS)
        scaled = np.array([float(v >> self.shift) for v in mapped_min])
        theta0, theta1, _ = chebyshev_line(scaled)
        self.theta0, self.theta1 = theta0, theta1

        residuals = []
        for i, (lo, hi) in enumerate(zip(mapped_min, mapped_max)):
            pred = self._predict(i)
            stored = min(max(pred, lo), hi)  # adaptive padding (§3.4)
            residuals.append(stored - pred)
        self.bias = min(residuals, default=0)
        self.deltas = BitPackedArray.from_values(
            np.array([r - self.bias for r in residuals], dtype=object))
        self.lengths = BitPackedArray.from_values(
            np.array([len(s) for s in trimmed], dtype=np.uint64))

    # ------------------------------------------------------------ mapping
    def _map(self, suffix: bytes, pad_rank: int) -> int:
        value = 0
        for pos in range(self.max_len):
            rank = self._rank[suffix[pos]] if pos < len(suffix) else pad_rank
            value = value * self.base + rank
        return value

    def _predict(self, local: int) -> int:
        return int(np.floor(self.theta0 + self.theta1 * local)) << self.shift

    def decode_one(self, local: int) -> bytes:
        value = self._predict(local) + self.deltas[local] + self.bias
        return self._materialise(value, self.lengths[local])

    def _materialise(self, value: int, length: int) -> bytes:
        """Digit-extract ``length`` characters from a mapped integer."""
        chars = bytearray()
        if self.base == 1 << self.char_bits:
            mask = self.base - 1
            for pos in range(length):
                digit_shift = (self.max_len - 1 - pos) * self.char_bits
                rank = (value >> digit_shift) & mask
                chars.append(self.charset[rank])
        else:
            digits = []
            v = value
            for _ in range(self.max_len):
                v, rank = divmod(v, self.base)
                digits.append(rank)
            digits.reverse()
            for pos in range(length):
                chars.append(self.charset[digits[pos]])
        return self.prefix + bytes(chars)

    def decode_range(self, lo: int, hi: int) -> list[bytes]:
        """Decode local positions ``[lo, hi)`` with batched slot reads.

        Residuals and lengths come out of single :meth:`BitPackedArray.slice`
        calls and the model predictions are one vectorised inference.  When
        the mapped integers fit a machine word (power-of-two base, no scale
        shift) the digit extraction itself is a numpy shift/mask + charset
        table lookup; otherwise only the big-int digit loop stays per-string.
        """
        if lo == hi:
            return []
        n = hi - lo
        slots = self.deltas.slice(lo, hi)
        lengths = self.lengths.slice(lo, hi).astype(np.int64)
        preds = np.floor(
            self.theta0 + self.theta1 * np.arange(lo, hi, dtype=np.float64)
        ).astype(np.int64)
        total_bits = self.max_len * self.char_bits
        if (self.base == 1 << self.char_bits and self.shift == 0
                and total_bits <= 63 and slots.dtype != object
                and self.max_len > 0):
            values = (preds + slots.astype(np.int64) + self.bias
                      ).astype(np.uint64)
            digit_shifts = ((self.max_len - 1
                             - np.arange(self.max_len, dtype=np.uint64))
                            * np.uint64(self.char_bits))
            ranks = ((values[:, None] >> digit_shifts[None, :])
                     & np.uint64(self.base - 1))
            # padding digits (pos >= length) may use ranks beyond the
            # charset when the base is rounded up to a power of two; they
            # are cut off below, so the lookup table just needs `base` slots
            table = np.zeros(self.base, dtype=np.uint8)
            table[: len(self.charset)] = np.frombuffer(self.charset,
                                                       dtype=np.uint8)
            rows = table[ranks].tobytes()
            prefix, span = self.prefix, self.max_len
            return [prefix + rows[i * span: i * span + int(lengths[i])]
                    for i in range(n)]
        return [
            self._materialise(
                (int(preds[i]) << self.shift) + int(slots[i]) + self.bias,
                int(lengths[i]))
            for i in range(n)
        ]

    # ------------------------------------------------------ serialisation
    def to_bytes(self) -> bytes:
        out = bytearray()
        out += encode_uvarint(len(self.prefix))
        out += self.prefix
        out += encode_uvarint(len(self.charset))
        out += self.charset
        out.append(1 if self.base == 1 << self.char_bits else 0)
        out += encode_uvarint(self.max_len)
        out += encode_uvarint(self.shift)
        out += np.float64(self.theta0).tobytes()
        out += np.float64(self.theta1).tobytes()
        out += encode_svarint(self.bias)
        out += self.lengths.to_bytes()
        out += self.deltas.to_bytes()
        return bytes(out)

    def size_bytes(self) -> int:
        return len(self.to_bytes())

    @classmethod
    def from_bytes(cls, buf: bytes, offset: int, start: int
                   ) -> tuple["_StringPartition", int]:
        """Inverse of :meth:`to_bytes`; ``start`` comes from the container."""
        plen, offset = decode_uvarint(buf, offset)
        prefix = buf[offset: offset + plen]
        offset += plen
        clen, offset = decode_uvarint(buf, offset)
        charset = buf[offset: offset + clen]
        offset += clen
        pow2 = bool(buf[offset])
        offset += 1
        max_len, offset = decode_uvarint(buf, offset)
        shift, offset = decode_uvarint(buf, offset)
        theta0 = float(np.frombuffer(buf, np.float64, 1, offset)[0])
        theta1 = float(np.frombuffer(buf, np.float64, 1, offset + 8)[0])
        offset += 16
        bias, offset = decode_svarint(buf, offset)
        lengths, offset = BitPackedArray.from_bytes(buf, offset)
        deltas, offset = BitPackedArray.from_bytes(buf, offset)

        part = cls.__new__(cls)
        part.start = start
        part.length = len(lengths)
        part.prefix = prefix
        part.charset = charset
        k = len(charset)
        if pow2:
            part.char_bits = max((k - 1).bit_length(), 1)
            part.base = 1 << part.char_bits
        else:
            part.base = max(k, 2)
            part.char_bits = max((part.base - 1).bit_length(), 1)
        part.max_len = max_len
        part.shift = shift
        part.theta0 = theta0
        part.theta1 = theta1
        part.bias = bias
        part.lengths = lengths
        part.deltas = deltas
        part._rank = {c: i for i, c in enumerate(charset)}
        return part, offset


class CompressedStrings(SelfDescribing):
    """A compressed string column with random access."""

    wire_id = "leco-str"

    def __init__(self, partitions: list[_StringPartition], n: int):
        self.partitions = partitions
        self.n = n
        self._starts = np.array([p.start for p in partitions],
                                dtype=np.int64)

    def __len__(self) -> int:
        return self.n

    def get(self, position: int) -> bytes:
        if not 0 <= position < self.n:
            raise IndexError(f"position {position} out of [0, {self.n})")
        idx = int(np.searchsorted(self._starts, position, "right")) - 1
        part = self.partitions[idx]
        return part.decode_one(position - part.start)

    def decode_all(self) -> list[bytes]:
        out: list[bytes] = []
        for part in self.partitions:
            out.extend(part.decode_range(0, part.length))
        return out

    def gather(self, indices) -> list[bytes]:
        """Batch random access (per-position model inference + slot read)."""
        indices = normalize_indices(indices, self.n)
        part_ids = np.searchsorted(self._starts, indices, "right") - 1
        return [self.partitions[int(pid)].decode_one(int(pos) -
                self.partitions[int(pid)].start)
                for pid, pos in zip(part_ids, indices)]

    def compressed_size_bytes(self) -> int:
        meta = 8 * len(self.partitions)
        return meta + sum(p.size_bytes() for p in self.partitions)

    def size_bytes(self) -> int:
        return self.compressed_size_bytes()

    # ------------------------------------------------------ serialisation
    def payload_bytes(self) -> bytes:
        out = bytearray()
        out += encode_uvarint(self.n)
        out += encode_uvarint(len(self.partitions))
        for part in self.partitions:
            out += encode_uvarint(part.start)
            out += part.to_bytes()
        return bytes(out)

    @classmethod
    def from_payload(cls, payload: bytes) -> "CompressedStrings":
        n, offset = decode_uvarint(payload, 0)
        m, offset = decode_uvarint(payload, offset)
        partitions = []
        for _ in range(m):
            start, offset = decode_uvarint(payload, offset)
            part, offset = _StringPartition.from_bytes(payload, offset,
                                                       start)
            partitions.append(part)
        return cls(partitions, n)


class StringCompressor:
    """LeCo-fix for string columns (paper §3.4 and Fig. 15).

    ``power_of_two_base=True`` rounds the character-set base up to ``2**m``
    for shift/mask decoding; ``False`` keeps the tight base (better ratio,
    slower decode) — the two data points per data set in Fig. 15.
    """

    def __init__(self, partition_size: int = 128,
                 power_of_two_base: bool = True):
        if partition_size < 1:
            raise ValueError("partition_size must be >= 1")
        self.partition_size = partition_size
        self.power_of_two_base = power_of_two_base

    def encode(self, strings: list[bytes | str]) -> CompressedStrings:
        data = [s.encode() if isinstance(s, str) else bytes(s)
                for s in strings]
        partitions = []
        for start in range(0, len(data), self.partition_size):
            chunk = data[start: start + self.partition_size]
            partitions.append(
                _StringPartition(start, chunk, self.power_of_two_base))
        return CompressedStrings(partitions, len(data))
