"""la_vector partitioning (Boffa, Ferragina, Vinciguerra), paper §4.8.

la_vector casts optimal partitioning as a shortest-path problem: every
position is a node, and an edge ``i -> j`` weighs the compressed size of
segment ``[i, j)``.  The full graph is quadratic, so the published algorithm
approximates it: for every candidate bit-width ``c`` it runs error-bounded
PLA with ``epsilon = 2**(c-1)``, which yields, for each position, how far a
``c``-bit segment can stretch; those reachability edges form a sparse DAG
``G'`` on which a linear-time DP finds the (approximately) shortest path.

The paper's critique — that la_vector optimises total size but ignores the
*number* of models on the path, producing model-heavy plans on data like
``movieid`` — emerges naturally from this construction.
"""

from __future__ import annotations

import numpy as np

from repro.core.partitioners.base import Bounds, Partitioner
from repro.core.partitioners.cost import PARTITION_HEADER_BITS, VAR_INDEX_BITS
from repro.core.partitioners.pla import pla_segments
from repro.core.regressors.base import Regressor


class LaVectorPartitioner(Partitioner):
    """Shortest-path partitioning on the PLA-derived approximate graph."""

    name = "la-vector"
    fixed_length = False

    def __init__(self, max_width: int | None = None):
        self.max_width = max_width

    def partition(self, values: np.ndarray, regressor: Regressor) -> Bounds:
        values = np.asarray(values, dtype=np.int64)
        n = len(values)
        if n == 0:
            return []
        if n == 1:
            return [(0, 1)]

        span = int(values.max()) - int(values.min())
        max_width = self.max_width or max(span.bit_length(), 1)
        model_bits = (regressor.model_size_bytes * 8 + PARTITION_HEADER_BITS
                      + VAR_INDEX_BITS)

        # reach[c][i] = end of the PLA segment covering position i at
        # epsilon = 2**(c-1); any sub-segment [i, reach) also fits in c bits.
        widths = list(range(0, max_width + 1))
        reach = np.zeros((len(widths), n), dtype=np.int64)
        for row, c in enumerate(widths):
            epsilon = 0.0 if c == 0 else float(2 ** (c - 1))
            for start, end in pla_segments(values, epsilon):
                reach[row, start:end] = end

        inf = float("inf")
        dist = np.full(n + 1, inf)
        dist[0] = 0.0
        parent = np.zeros(n + 1, dtype=np.int64)
        for i in range(n):
            if dist[i] == inf:
                continue
            for row, c in enumerate(widths):
                j = int(reach[row, i])
                if j <= i:
                    j = i + 1
                cost = dist[i] + model_bits + (j - i) * c
                if cost < dist[j]:
                    dist[j] = cost
                    parent[j] = i

        bounds: Bounds = []
        pos = n
        while pos > 0:
            start = int(parent[pos])
            bounds.append((start, pos))
            pos = start
        bounds.reverse()
        return bounds
