"""Variable-length split–merge partitioning (paper §3.2.2).

Three phases:

* **Init** — score every position by the bit-width of its (k+1)-th order
  delta (k = polynomial degree of the regressor); local minima become seed
  positions, with the first-order "required bits" as tie-breaker.  Seeds in
  smooth, arithmetic-progression-like regions grow first, which keeps
  "bumpy" regions from absorbing good points.
* **Split** — each seed claims a minimal partition and greedily grows left
  and right.  A point joins when its inclusion cost
  ``C = (len+1) * Δ̃(grown) - len * Δ̃(current)`` stays below ``τ · S_M``
  (model size in bits).  ``Δ̃`` is tracked incrementally in O(1) for the
  constant/linear/delta families.
* **Merge** — adjacent partitions merge while the merged stored size (exact
  regressor fit) beats the sum of the parts, iterated to a fixpoint.
"""

from __future__ import annotations

import numpy as np

from repro.core.partitioners.base import Bounds, Partitioner
from repro.core.partitioners.cost import partition_bits
from repro.core.regressors.base import Regressor


def _bit_widths(arr: np.ndarray) -> np.ndarray:
    """Vectorised ``int.bit_length`` of ``|arr|`` (0 maps to 0)."""
    mag = np.abs(arr).astype(np.float64)
    out = np.zeros(arr.shape, dtype=np.int64)
    nz = mag > 0
    out[nz] = np.floor(np.log2(mag[nz])).astype(np.int64) + 1
    return out


def select_seeds(values: np.ndarray, order: int) -> np.ndarray:
    """Seed positions sorted by growth precedence (best first).

    A position scores by the bit-width of the ``order``-th order delta there
    (small ⇒ the local shape is close to a degree ``order-1`` polynomial),
    tie-broken by the first-order required bits (paper Fig. 6).
    """
    values = np.asarray(values, dtype=np.int64)
    n = len(values)
    if n <= order + 1:
        return np.array([0], dtype=np.int64)
    high = np.diff(values, n=order)
    score = _bit_widths(high)
    first = _bit_widths(np.diff(values))
    tie = first[: len(score)]

    left = np.roll(score, 1)
    right = np.roll(score, -1)
    left[0] = np.iinfo(np.int64).max
    right[-1] = np.iinfo(np.int64).max
    minima = np.flatnonzero((score <= left) & (score <= right))
    if minima.size == 0:
        minima = np.array([0], dtype=np.int64)
    order_keys = np.lexsort((minima, tie[minima], score[minima]))
    return minima[order_keys]


class _SpanTracker:
    """Incremental ``Δ̃`` (fast delta-bits) for a growing segment.

    ``mode`` selects what spans: "value-span" (constant models) tracks
    min/max of the values; "diff-span" (linear and delta models) tracks
    min/max of adjacent differences.  ``None`` falls back to recomputing the
    regressor's fast metric on the whole slice.
    """

    def __init__(self, values: np.ndarray, start: int, end: int,
                 regressor: Regressor, mode: str | None):
        self._values = values
        self._regressor = regressor
        self._mode = mode
        self.start = start
        self.end = end
        if mode == "value-span":
            seg = values[start:end]
            self._lo = int(seg.min())
            self._hi = int(seg.max())
        elif mode == "diff-span":
            if end - start >= 2:
                d = np.diff(values[start:end])
                self._lo = int(d.min())
                self._hi = int(d.max())
            else:
                self._lo, self._hi = 0, 0

    def width(self) -> int:
        if self._mode is None:
            return self._regressor.fast_delta_bits(
                self._values[self.start:self.end])
        return int(self._hi - self._lo).bit_length()

    def width_if_grown(self, direction: int) -> int:
        """``Δ̃`` after adding one point on the left (-1) or right (+1)."""
        lo, hi = self._probe(direction)
        return int(hi - lo).bit_length()

    def grow(self, direction: int) -> None:
        if self._mode is not None:
            self._lo, self._hi = self._probe(direction)
        if direction > 0:
            self.end += 1
        else:
            self.start -= 1

    def _probe(self, direction: int) -> tuple[int, int]:
        if self._mode is None:
            lo = self.start - 1 if direction < 0 else self.start
            hi = self.end + 1 if direction > 0 else self.end
            width = self._regressor.fast_delta_bits(self._values[lo:hi])
            return 0, (1 << width) - 1 if width else 0
        if self._mode == "value-span":
            new = int(self._values[self.end] if direction > 0
                      else self._values[self.start - 1])
            return min(self._lo, new), max(self._hi, new)
        if direction > 0:
            new = int(self._values[self.end]) - int(self._values[self.end - 1])
        else:
            new = int(self._values[self.start]) - int(self._values[self.start - 1])
        return min(self._lo, new), max(self._hi, new)


def _tracker_mode(regressor: Regressor) -> str | None:
    return getattr(regressor, "incremental_kind", None)


class SplitMergePartitioner(Partitioner):
    """The paper's default variable-length partitioner."""

    fixed_length = False

    def __init__(self, tau: float = 0.1, max_merge_passes: int = 30):
        if not 0.0 <= tau <= 1.0:
            raise ValueError(f"tau must be in [0, 1], got {tau}")
        self.tau = tau
        self.max_merge_passes = max_merge_passes
        self.name = f"split-merge(tau={tau})"

    # ------------------------------------------------------------- split
    def _split(self, values: np.ndarray, regressor: Regressor) -> Bounds:
        n = len(values)
        min_size = max(regressor.min_partition_size, 2)
        if n <= min_size:
            return [(0, n)]
        order = getattr(regressor, "seed_delta_order", 2)
        seeds = select_seeds(values, order)
        threshold = self.tau * regressor.model_size_bytes * 8
        mode = _tracker_mode(regressor)

        owner = np.full(n, -1, dtype=np.int64)
        segments: list[_SpanTracker] = []
        # claim AND fully grow one seed before looking at the next: seeds in
        # smooth regions (best precedence) must be free to expand across
        # later-ranked seed positions, otherwise ties fragment smooth runs
        # into min-size shards
        for seed in seeds:
            start = int(seed)
            end = start + min_size
            if end > n:
                start, end = n - min_size, n
            if owner[start:end].max() >= 0:
                continue
            idx = len(segments)
            owner[start:end] = idx
            seg = _SpanTracker(values, start, end, regressor, mode)
            segments.append(seg)
            while True:
                grown = False
                for direction in (+1, -1):
                    pos = seg.end if direction > 0 else seg.start - 1
                    if not 0 <= pos < n or owner[pos] >= 0:
                        continue
                    cur_len = seg.end - seg.start
                    cost = ((cur_len + 1) * seg.width_if_grown(direction)
                            - cur_len * seg.width())
                    if cost <= threshold:
                        seg.grow(direction)
                        owner[pos] = idx
                        grown = True
                if not grown:
                    break

        # leftover unclaimed runs become their own partitions
        bounds = [(seg.start, seg.end) for seg in segments]
        pos = 0
        while pos < n:
            if owner[pos] >= 0:
                pos += 1
                continue
            run_end = pos
            while run_end < n and owner[run_end] < 0:
                run_end += 1
            bounds.append((pos, run_end))
            pos = run_end
        bounds.sort()
        return bounds

    # ------------------------------------------------------------- merge
    def _merge(self, values: np.ndarray, regressor: Regressor,
               bounds: Bounds) -> Bounds:
        def seg_cost(start: int, end: int) -> int:
            width = regressor.delta_bits(values[start:end])
            return partition_bits(end - start, width, regressor,
                                  variable=True)

        costs = [seg_cost(a, b) for a, b in bounds]
        for _ in range(self.max_merge_passes):
            merged_any = False
            out_bounds: Bounds = []
            out_costs: list[int] = []
            i = 0
            while i < len(bounds):
                if i + 1 < len(bounds):
                    a, b = bounds[i]
                    _, c = bounds[i + 1]
                    merged_cost = seg_cost(a, c)
                    if merged_cost <= costs[i] + costs[i + 1]:
                        out_bounds.append((a, c))
                        out_costs.append(merged_cost)
                        i += 2
                        merged_any = True
                        continue
                out_bounds.append(bounds[i])
                out_costs.append(costs[i])
                i += 1
            bounds, costs = out_bounds, out_costs
            if not merged_any:
                break
        return bounds

    def partition(self, values: np.ndarray, regressor: Regressor) -> Bounds:
        values = np.asarray(values, dtype=np.int64)
        if len(values) == 0:
            return []
        bounds = self._split(values, regressor)
        return self._merge(values, regressor, bounds)
