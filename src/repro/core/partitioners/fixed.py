"""Fixed-length partitioning with the sampling-based size search (§3.2.1).

The compression ratio as a function of the (fixed) partition size is
typically U-shaped (paper Fig. 5): tiny partitions drown in model/metadata
overhead, huge partitions force wide delta slots.  The search samples < 1% of
the data, walks partition sizes up by a multiplicative step until past the
minimum, then refines back down with smaller steps.
"""

from __future__ import annotations

import numpy as np

from repro.core.partitioners.base import Bounds, Partitioner
from repro.core.partitioners.cost import plan_cost_bits
from repro.core.regressors.base import Regressor


def fixed_bounds(n: int, size: int) -> Bounds:
    """Bounds for fixed partitions of ``size`` over ``n`` items."""
    if size <= 0:
        raise ValueError(f"partition size must be positive, got {size}")
    return [(start, min(start + size, n)) for start in range(0, n, size)]


class FixedLengthPartitioner(Partitioner):
    """Splits into partitions of exactly ``size`` items (last may be short)."""

    fixed_length = True

    def __init__(self, size: int):
        if size <= 0:
            raise ValueError(f"partition size must be positive, got {size}")
        self.size = size
        self.name = f"fixed({size})"

    def partition(self, values: np.ndarray, regressor: Regressor) -> Bounds:
        return fixed_bounds(len(values), self.size)


def _sample_ranges(n: int, window: int, fraction: float,
                   seed: int) -> list[tuple[int, int]]:
    """Random subsequences of length ``window`` covering ~``fraction`` of data."""
    if n <= window:
        return [(0, n)]
    count = max(1, int(n * fraction / window))
    rng = np.random.default_rng(seed)
    starts = np.sort(rng.integers(0, n - window, size=count))
    return [(int(s), int(s) + window) for s in starts]


def _cost_at_size(values: np.ndarray,
                  samples: list[tuple[int, int]],
                  regressor: Regressor, size: int) -> float:
    """Average bits/value of fixed ``size`` partitions over the samples."""
    total_bits = 0
    total_items = 0
    for lo, hi in samples:
        seg = values[lo:hi]
        bounds = fixed_bounds(len(seg), size)
        total_bits += plan_cost_bits(seg, bounds, regressor, variable=False,
                                     exact=False)
        total_items += len(seg)
    return total_bits / max(total_items, 1)


def search_partition_size(values: np.ndarray, regressor: Regressor,
                          max_size: int = 10_000,
                          sample_fraction: float = 0.01,
                          seed: int = 7,
                          converge_rtol: float = 1e-4) -> int:
    """Sampling-based search for the best fixed partition size (§3.2.1).

    Phase 1 multiplies the size by 2 until the sampled cost worsens (past the
    U's minimum); phase 2 walks back between the last two probes with smaller
    steps; the search stops once the relative improvement between iterations
    drops below ``converge_rtol``.
    """
    values = np.asarray(values, dtype=np.int64)
    n = len(values)
    if n == 0:
        return 1
    max_size = min(max_size, n)
    samples = _sample_ranges(n, min(max_size, n), sample_fraction, seed)

    min_start = max(regressor.min_partition_size, 2)
    size = min_start
    best_size, best_cost = size, _cost_at_size(values, samples, regressor,
                                               size)
    # exponential ascent past the global minimum
    while size * 2 <= max_size:
        size *= 2
        cost = _cost_at_size(values, samples, regressor, size)
        if cost < best_cost:
            best_cost, best_size = cost, size
        elif cost > best_cost * 1.2:
            break

    # refine around the best probe with shrinking steps
    step = max(best_size // 2, 1)
    while step >= max(best_size // 16, 1) and step > 0:
        improved = False
        for candidate in (best_size - step, best_size + step):
            if candidate < min_start or candidate > max_size:
                continue
            cost = _cost_at_size(values, samples, regressor, candidate)
            if cost < best_cost * (1 - converge_rtol):
                best_cost, best_size = cost, candidate
                improved = True
        if not improved:
            step //= 2
    return best_size


class AutoFixedPartitioner(Partitioner):
    """Fixed-length partitioner that first searches for the best size."""

    name = "fixed-auto"
    fixed_length = True

    def __init__(self, max_size: int = 10_000, sample_fraction: float = 0.01,
                 seed: int = 7):
        self.max_size = max_size
        self.sample_fraction = sample_fraction
        self.seed = seed
        self.chosen_size: int | None = None

    def partition(self, values: np.ndarray, regressor: Regressor) -> Bounds:
        self.chosen_size = search_partition_size(
            values, regressor, max_size=self.max_size,
            sample_fraction=self.sample_fraction, seed=self.seed,
        )
        return fixed_bounds(len(values), self.chosen_size)
