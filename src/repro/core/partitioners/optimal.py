"""Dynamic-programming reference partitioner.

Computes the optimal partition plan for the fast-width cost model by
dynamic programming over all ``O(n^2)`` candidate segments, with incremental
width maintenance so each segment extension costs O(1).  The paper notes the
exhaustive search is ``O(n^3)`` time / ``O(n^2)`` space in general; with the
incremental trackers this reference runs in ``O(n * window)`` and is used in
tests and the ablation bench to validate the split–merge greedy (claimed to
be within 3% of optimal, §3.2.2).
"""

from __future__ import annotations

import numpy as np

from repro.core.partitioners.base import Bounds, Partitioner
from repro.core.partitioners.cost import PARTITION_HEADER_BITS, VAR_INDEX_BITS
from repro.core.regressors.base import Regressor


class OptimalPartitioner(Partitioner):
    """Exact DP over the fast-width cost model (reference implementation).

    ``window`` caps the maximum partition length considered, bounding the
    runtime at ``O(n * window)``; with ``window >= n`` the plan is exact.
    """

    name = "optimal-dp"
    fixed_length = False

    def __init__(self, window: int = 4096):
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        self.window = window

    def partition(self, values: np.ndarray, regressor: Regressor) -> Bounds:
        values = np.asarray(values, dtype=np.int64)
        n = len(values)
        if n == 0:
            return []

        mode = getattr(regressor, "incremental_kind", None)
        fixed_bits = (regressor.model_size_bytes * 8 + PARTITION_HEADER_BITS
                      + VAR_INDEX_BITS)

        inf = float("inf")
        dist = np.full(n + 1, inf)
        dist[0] = 0.0
        parent = np.zeros(n + 1, dtype=np.int64)

        diffs = np.diff(values) if n >= 2 else np.empty(0, dtype=np.int64)

        for end in range(1, n + 1):
            lo_limit = max(0, end - self.window)
            # walk the segment start backwards, growing [start, end) leftwards
            hi = -np.inf
            lo = np.inf
            vhi = -np.inf
            vlo = np.inf
            best = inf
            best_start = end - 1
            for start in range(end - 1, lo_limit - 1, -1):
                if mode == "value-span":
                    v = values[start]
                    vhi = max(vhi, v)
                    vlo = min(vlo, v)
                    width = int(vhi - vlo).bit_length()
                elif mode == "diff-span":
                    if start < end - 1:
                        d = diffs[start]
                        hi = max(hi, d)
                        lo = min(lo, d)
                        width = int(hi - lo).bit_length()
                    else:
                        width = 0
                else:
                    width = regressor.fast_delta_bits(values[start:end])
                cost = dist[start] + fixed_bits + (end - start) * width
                if cost < best:
                    best = cost
                    best_start = start
            dist[end] = best
            parent[end] = best_start

        bounds: Bounds = []
        pos = n
        while pos > 0:
            start = int(parent[pos])
            bounds.append((start, pos))
            pos = start
        bounds.reverse()
        return bounds
