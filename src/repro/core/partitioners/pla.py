"""Angle-based piecewise linear approximation (PLA) partitioning.

This is the greedy one-pass, fixed-error-bound segmentation used by
time-series compressors and FITing-tree, and evaluated as ``LeCo-PLA`` in the
paper (§4.8).  A segment anchors at its first point; while scanning, the
feasible slope cone ``[slope_lo, slope_hi]`` (lines through the anchor that
keep every point within ``epsilon``) is intersected point by point; when it
empties, the segment closes and a new anchor starts.

The same routine powers the data-hardness metrics of §3.2.3 (the number and
layout of segments at small/large ``epsilon``).
"""

from __future__ import annotations

import numpy as np

from repro.core.partitioners.base import Bounds, Partitioner
from repro.core.regressors.base import Regressor


def pla_segments(values: np.ndarray, epsilon: float) -> Bounds:
    """Greedy max-error-bounded PLA; returns segment bounds."""
    values = np.asarray(values, dtype=np.float64)
    n = len(values)
    if n == 0:
        return []
    if epsilon < 0:
        raise ValueError(f"epsilon must be >= 0, got {epsilon}")

    bounds: Bounds = []
    anchor = 0
    slope_lo, slope_hi = -np.inf, np.inf
    i = 1
    while i < n:
        dx = i - anchor
        point_lo = (values[i] - epsilon - values[anchor]) / dx
        point_hi = (values[i] + epsilon - values[anchor]) / dx
        new_lo = max(slope_lo, point_lo)
        new_hi = min(slope_hi, point_hi)
        if new_lo > new_hi:
            bounds.append((anchor, i))
            anchor = i
            slope_lo, slope_hi = -np.inf, np.inf
        else:
            slope_lo, slope_hi = new_lo, new_hi
        i += 1
    bounds.append((anchor, n))
    return bounds


class PLAPartitioner(Partitioner):
    """Fixed-``epsilon`` PLA segmentation plugged into the LeCo framework.

    The regressor is ignored during segmentation (PLA is linear by
    construction); the encoder still fits LeCo's minimax model per segment,
    which is exactly the paper's ``LeCo-PLA`` configuration.
    """

    fixed_length = False

    def __init__(self, epsilon: float):
        self.epsilon = float(epsilon)
        self.name = f"pla(eps={epsilon:g})"

    def partition(self, values: np.ndarray, regressor: Regressor) -> Bounds:
        return pla_segments(np.asarray(values, dtype=np.int64), self.epsilon)
