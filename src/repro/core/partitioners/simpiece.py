"""Sim-Piece partitioning (Kitsios et al.), as evaluated in paper §4.8.

Sim-Piece runs angle-based PLA but quantises each segment's anchor value to
the ``epsilon`` grid, so that many segments share the same intercept and can
be stored together in groups (one intercept per group, then per-segment
slope + length).  The quantisation sacrifices model precision; in the LeCo
framework the residual array keeps the output lossless, but the coarser
models inflate the residual widths — the effect the paper reports on
``house_price``.

``SimPiecePartitioner.partition`` returns the segment bounds; the companion
:func:`simpiece_model_bits` estimates the compacted model storage so the
benchmark accounts for the shared-intercept format.
"""

from __future__ import annotations

import numpy as np

from repro.core.partitioners.base import Bounds, Partitioner
from repro.core.regressors.base import Regressor


def _quantise(value: float, epsilon: float) -> float:
    if epsilon <= 0:
        return value
    return np.floor(value / epsilon) * epsilon


def simpiece_segments(values: np.ndarray, epsilon: float) -> Bounds:
    """PLA with the anchor value quantised to the epsilon grid."""
    values = np.asarray(values, dtype=np.float64)
    n = len(values)
    if n == 0:
        return []
    bounds: Bounds = []
    anchor = 0
    base = _quantise(values[0], epsilon)
    slope_lo, slope_hi = -np.inf, np.inf
    i = 1
    while i < n:
        dx = i - anchor
        point_lo = (values[i] - epsilon - base) / dx
        point_hi = (values[i] + epsilon - base) / dx
        new_lo = max(slope_lo, point_lo)
        new_hi = min(slope_hi, point_hi)
        if new_lo > new_hi:
            bounds.append((anchor, i))
            anchor = i
            base = _quantise(values[i], epsilon)
            slope_lo, slope_hi = -np.inf, np.inf
        else:
            slope_lo, slope_hi = new_lo, new_hi
        i += 1
    bounds.append((anchor, n))
    return bounds


def simpiece_model_bits(values: np.ndarray, bounds: Bounds,
                        epsilon: float) -> int:
    """Compact model storage: one intercept per distinct quantised anchor
    group plus (float32 slope + varint length) per segment."""
    values = np.asarray(values, dtype=np.float64)
    groups = {
        _quantise(values[start], epsilon) for start, _ in bounds
    }
    return 64 * len(groups) + (32 + 32) * len(bounds)


class SimPiecePartitioner(Partitioner):
    """Sim-Piece segmentation plugged into the LeCo framework."""

    fixed_length = False

    def __init__(self, epsilon: float):
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self.epsilon = float(epsilon)
        self.name = f"sim-piece(eps={epsilon:g})"

    def partition(self, values: np.ndarray, regressor: Regressor) -> Bounds:
        return simpiece_segments(np.asarray(values, dtype=np.int64),
                                 self.epsilon)
