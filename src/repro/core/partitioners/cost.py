"""Shared storage-cost model for partition planning.

Every partitioner optimises the same objective (paper §3):

    sum_j ( ||F_j|| + (k_{j+1} - k_j) * Delta(v[k_j, k_{j+1})) )

plus per-partition header overhead.  Centralising the constants here keeps
the split threshold, the merge test, the DP reference, and the final encoded
size consistent with one another.
"""

from __future__ import annotations

import numpy as np

from repro.core.regressors.base import Regressor

#: per-partition header: bit-width byte + bias varint estimate (bits)
PARTITION_HEADER_BITS = 8 + 32
#: extra metadata per variable-length partition: stored start index (bits)
VAR_INDEX_BITS = 32


def partition_bits(n_items: int, delta_bits: int, regressor: Regressor,
                   variable: bool = True) -> int:
    """Estimated stored size in bits of one partition."""
    bits = regressor.model_size_bytes * 8 + PARTITION_HEADER_BITS
    if variable:
        bits += VAR_INDEX_BITS
    return bits + n_items * delta_bits


def plan_cost_bits(values: np.ndarray, bounds: list[tuple[int, int]],
                   regressor: Regressor, variable: bool = True,
                   exact: bool = True) -> int:
    """Total estimated size in bits of a partition plan.

    ``exact=True`` fits the regressor per partition (what the encoder will
    do); ``exact=False`` uses the regressor's fast width approximation.
    """
    values = np.asarray(values, dtype=np.int64)
    total = 0
    for start, end in bounds:
        seg = values[start:end]
        width = (regressor.delta_bits(seg) if exact
                 else regressor.fast_delta_bits(seg))
        total += partition_bits(end - start, width, regressor, variable)
    return total


def validate_bounds(bounds: list[tuple[int, int]], n: int) -> None:
    """Assert that ``bounds`` is a contiguous, complete cover of ``[0, n)``."""
    if n == 0:
        if bounds:
            raise ValueError("non-empty bounds for empty sequence")
        return
    if not bounds:
        raise ValueError("empty bounds for non-empty sequence")
    if bounds[0][0] != 0 or bounds[-1][1] != n:
        raise ValueError(f"bounds {bounds[0]}..{bounds[-1]} do not cover [0, {n})")
    for (a, b), (c, d) in zip(bounds, bounds[1:]):
        if b != c:
            raise ValueError(f"gap or overlap between {(a, b)} and {(c, d)}")
    for a, b in bounds:
        if a >= b:
            raise ValueError(f"empty partition {(a, b)}")
