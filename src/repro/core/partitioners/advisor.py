"""Partitioning strategy advising via data-hardness scores (paper §3.2.3).

Two scores, following the "local/global hardness" definitions of Wongkham et
al. that the paper adopts:

* **Local hardness** ``H_l`` — run PLA with a *small* error bound (ε = 7) and
  normalise the segment count by the data size.  High ``H_l`` means no
  regressor fits well regardless of partitioning.
* **Global hardness** ``H_g`` — run PLA with a *large* error bound
  (ε = 4096); combine the (normalised) average value gap between adjacent
  segments with the (normalised) variance of segment lengths.  High ``H_g``
  means the global trend has "sharp turns" that variable-length partitioning
  can exploit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.partitioners.pla import pla_segments

LOCAL_EPSILON = 7.0
GLOBAL_EPSILON = 4096.0
#: the paper's epsilons assume ~20-unit average gaps (200M rows over the
#: 32-bit range); scaled-down reproductions keep the metric density-invariant
REFERENCE_GAP = 20.0


def _density_factor(values: np.ndarray) -> float:
    """Average |first difference| relative to the paper's reference gap."""
    if len(values) < 2:
        return 1.0
    gaps = np.abs(np.diff(values.astype(np.float64)))
    # the median resists heavy-tailed gap distributions (e.g. osm's Pareto
    # jumps), which would otherwise inflate the scaled epsilon and hide
    # genuine local roughness
    # geometric mean of mean and median: tracks typical density while
    # resisting (but not ignoring) heavy-tailed gap distributions
    mean = float(gaps.mean())
    median = float(np.median(gaps)) or mean
    typical = float(np.sqrt(max(mean, 1e-12) * max(median, 1e-12)))
    return max(typical / REFERENCE_GAP, 1e-9)


def local_hardness(values: np.ndarray, epsilon: float = LOCAL_EPSILON
                   ) -> float:
    """Normalised PLA segment count at a small error bound (in [0, 1]).

    ``epsilon`` is scaled by the data's gap density so the score matches the
    paper's 200M-row setting on smaller generated data sets.
    """
    values = np.asarray(values, dtype=np.int64)
    if len(values) == 0:
        return 0.0
    segments = pla_segments(values, epsilon * _density_factor(values))
    # a perfectly linear set yields 1 segment; the worst case yields ~n/2
    return min(1.0, 2.0 * len(segments) / max(len(values), 1))


def global_hardness(values: np.ndarray, epsilon: float = GLOBAL_EPSILON
                    ) -> float:
    """Sum of normalised inter-segment gap and segment-length variance."""
    values = np.asarray(values, dtype=np.int64)
    n = len(values)
    if n == 0:
        return 0.0
    segments = pla_segments(values, epsilon * _density_factor(values))
    if len(segments) < 2:
        return 0.0

    gaps = []
    for (_, end_prev), (start_next, _) in zip(segments, segments[1:]):
        gaps.append(abs(int(values[start_next]) - int(values[end_prev - 1])))
    value_span = max(int(values.max()) - int(values.min()), 1)
    avg_gap = float(np.mean(gaps)) / value_span * len(segments)

    lengths = np.array([end - start for start, end in segments],
                       dtype=np.float64)
    len_cv = float(lengths.std() / max(lengths.mean(), 1.0))

    return min(1.0, avg_gap) / 2.0 + min(1.0, len_cv) / 2.0


@dataclass(frozen=True)
class HardnessReport:
    """Hardness scores plus the advised partitioning strategy."""

    local: float
    global_: float
    recommend_variable: bool

    @property
    def quadrant(self) -> str:
        loc = "hard" if self.local >= 0.5 else "easy"
        glo = "hard" if self.global_ >= 0.5 else "easy"
        return f"locally-{loc}/globally-{glo}"


def advise_partitioning(values: np.ndarray,
                        local_threshold: float = 0.5,
                        global_threshold: float = 0.5) -> HardnessReport:
    """Score the data set and advise fixed vs variable partitioning.

    Variable-length partitioning pays off on *locally easy but globally
    hard* data (paper §3.2.3): models fit well locally, but the global trend
    has sharp turns that fixed windows straddle.
    """
    loc = local_hardness(values)
    glo = global_hardness(values)
    recommend = loc < local_threshold and glo >= global_threshold
    return HardnessReport(local=loc, global_=glo,
                          recommend_variable=recommend)
