"""Partitioners: sequence segmentation strategies (paper §3.2)."""

from repro.core.partitioners.advisor import (
    HardnessReport,
    advise_partitioning,
    global_hardness,
    local_hardness,
)
from repro.core.partitioners.base import Bounds, Partitioner
from repro.core.partitioners.cost import (
    PARTITION_HEADER_BITS,
    VAR_INDEX_BITS,
    partition_bits,
    plan_cost_bits,
    validate_bounds,
)
from repro.core.partitioners.fixed import (
    AutoFixedPartitioner,
    FixedLengthPartitioner,
    fixed_bounds,
    search_partition_size,
)
from repro.core.partitioners.la_vector import LaVectorPartitioner
from repro.core.partitioners.optimal import OptimalPartitioner
from repro.core.partitioners.pla import PLAPartitioner, pla_segments
from repro.core.partitioners.simpiece import (
    SimPiecePartitioner,
    simpiece_model_bits,
    simpiece_segments,
)
from repro.core.partitioners.variable import SplitMergePartitioner, select_seeds

__all__ = [
    "Bounds",
    "Partitioner",
    "PARTITION_HEADER_BITS",
    "VAR_INDEX_BITS",
    "partition_bits",
    "plan_cost_bits",
    "validate_bounds",
    "FixedLengthPartitioner",
    "AutoFixedPartitioner",
    "fixed_bounds",
    "search_partition_size",
    "SplitMergePartitioner",
    "select_seeds",
    "OptimalPartitioner",
    "PLAPartitioner",
    "pla_segments",
    "SimPiecePartitioner",
    "simpiece_model_bits",
    "simpiece_segments",
    "LaVectorPartitioner",
    "HardnessReport",
    "advise_partitioning",
    "local_hardness",
    "global_hardness",
]
