"""Partitioner interface (paper §3.2)."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.regressors.base import Regressor

Bounds = list[tuple[int, int]]


class Partitioner(ABC):
    """Splits a value sequence into contiguous partitions for regression."""

    name: str = "abstract"
    #: whether the produced partitions have uniform length (fast random access)
    fixed_length: bool = False

    @abstractmethod
    def partition(self, values: np.ndarray, regressor: Regressor) -> Bounds:
        """Return contiguous, complete ``[(start, end), ...]`` bounds."""
