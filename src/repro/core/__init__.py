"""The LeCo framework: the paper's primary contribution (§3)."""

from repro.core.api import compress, decompress
from repro.core.encoding import CompressedArray, LecoEncoder
from repro.core.strings import CompressedStrings, StringCompressor

__all__ = [
    "compress",
    "decompress",
    "CompressedArray",
    "LecoEncoder",
    "CompressedStrings",
    "StringCompressor",
]
