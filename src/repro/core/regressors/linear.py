"""Constant and linear minimax regressors.

The linear regressor computes the exact Chebyshev (minimax) line for a
partition using the convex-hull band algorithm: the minimum vertical-width
band enclosing the points is supported by an edge of one hull and a vertex of
the other, and the optimal line is the band's midline.  On position-sorted
input the hulls come from a single Andrew monotone-chain pass, so the fit is
O(n).
"""

from __future__ import annotations

import numpy as np

from repro.core.regressors.base import FittedModel, Regressor


class ConstantModel(FittedModel):
    """``F(i) = theta0`` — the Frame-of-Reference model (paper §2)."""

    kind = "constant"

    def __init__(self, theta0: float):
        self._params = np.array([theta0], dtype=np.float64)

    @property
    def params(self) -> np.ndarray:
        return self._params

    def predict_float(self, positions: np.ndarray) -> np.ndarray:
        positions = np.asarray(positions)
        return np.full(positions.shape, self._params[0], dtype=np.float64)


class ConstantRegressor(Regressor):
    """Minimax constant fit: the mid-range of the partition."""

    name = "constant"
    min_partition_size = 1
    param_count = 1
    #: split-phase fast-width tracking mode (see partitioners.variable)
    incremental_kind = "value-span"
    #: delta order used for seed scoring (§3.2.2)
    seed_delta_order = 1

    def fit(self, values: np.ndarray) -> ConstantModel:
        values = np.asarray(values, dtype=np.int64)
        if values.size == 0:
            return ConstantModel(0.0)
        lo, hi = float(values.min()), float(values.max())
        return ConstantModel((lo + hi) / 2.0)

    def fast_delta_bits(self, values: np.ndarray) -> int:
        values = np.asarray(values, dtype=np.int64)
        if values.size == 0:
            return 0
        span = int(values.max()) - int(values.min())
        # Mid-range centering keeps residuals within [-span/2, span/2];
        # bias encoding then needs bits(span) (+1 for floor slack).
        return span.bit_length()

    def load(self, params: np.ndarray) -> ConstantModel:
        return ConstantModel(float(params[0]))


class LinearModel(FittedModel):
    """``F(i) = theta0 + theta1 * i``."""

    kind = "linear"

    def __init__(self, intercept: float, slope: float):
        self._params = np.array([intercept, slope], dtype=np.float64)

    @property
    def params(self) -> np.ndarray:
        return self._params

    @property
    def intercept(self) -> float:
        return float(self._params[0])

    @property
    def slope(self) -> float:
        return float(self._params[1])

    def predict_float(self, positions: np.ndarray) -> np.ndarray:
        positions = np.asarray(positions, dtype=np.float64)
        return self._params[0] + self._params[1] * positions


#: iterated-pruning passes before falling back to the scalar chain
_HULL_PASS_LIMIT = 64


def _scalar_chain(ys: np.ndarray, idx: list[int], sign: float) -> list[int]:
    """Andrew monotone chain over the surviving indices (fallback path).

    ``sign`` +1 builds the upper hull (pop when the middle point lies on or
    below the chord), -1 the lower hull.
    """
    hull: list[int] = []
    for i in idx:
        while len(hull) >= 2:
            i1, i2 = hull[-2], hull[-1]
            cross = (ys[i2] - ys[i1]) * (i - i1) \
                - (ys[i] - ys[i1]) * (i2 - i1)
            if sign * cross <= 0:
                hull.pop()
            else:
                break
        hull.append(i)
    return hull


def _hull(ys: np.ndarray, sign: float) -> list[int]:
    """Convex hull indices of ``(i, ys[i])`` via vectorised iterated pruning.

    Each pass removes *every* point lying on the wrong side of the chord of
    its current neighbours in one whole-array cross-product test.  A strict
    hull vertex always lies strictly outside the chord of any two other
    points, so simultaneous removal never discards one; the passes therefore
    converge to exactly the hull (collinear interior points are dropped,
    matching the scalar chain).  Convergence is typically a handful of
    passes; pathological inputs fall back to the O(n) scalar chain over the
    (already pruned) survivors after ``_HULL_PASS_LIMIT`` rounds.
    """
    n = len(ys)
    idx = np.arange(n)
    for _ in range(_HULL_PASS_LIMIT):
        if idx.size <= 2:
            return idx.tolist()
        y = ys[idx]
        x = idx.astype(np.float64)
        cross = (y[1:-1] - y[:-2]) * (x[2:] - x[:-2]) \
            - (y[2:] - y[:-2]) * (x[1:-1] - x[:-2])
        bad = sign * cross <= 0
        if not bad.any():
            return idx.tolist()
        keep = np.ones(idx.size, dtype=bool)
        keep[1:-1][bad] = False
        idx = idx[keep]
    return _scalar_chain(ys, idx.tolist(), sign)


def _upper_hull(ys: np.ndarray) -> list[int]:
    """Indices of the upper convex hull of ``(i, ys[i])`` (x already sorted)."""
    return _hull(ys, +1.0)


def _lower_hull(ys: np.ndarray) -> list[int]:
    return _hull(ys, -1.0)


def chebyshev_line(values: np.ndarray) -> tuple[float, float, float]:
    """Exact minimax line fit of ``(i, values[i])``.

    Returns ``(intercept, slope, max_error)`` where ``max_error`` is the
    Chebyshev radius (half the minimal vertical band width).
    """
    ys = np.asarray(values, dtype=np.float64)
    n = len(ys)
    if n == 0:
        return 0.0, 0.0, 0.0
    if n == 1:
        return float(ys[0]), 0.0, 0.0
    if n == 2:
        return float(ys[0]), float(ys[1] - ys[0]), 0.0

    upper = _upper_hull(ys)
    lower = _lower_hull(ys)

    best_width = np.inf
    best = (float(ys[0]), 0.0)

    def scan(edge_hull: list[int], far_hull: list[int], sign: float) -> None:
        """Try every edge of ``edge_hull`` against the vertices of
        ``far_hull``; ``sign`` is +1 when the far hull lies above the edge."""
        nonlocal best_width, best
        m = len(far_hull)
        j = m - 1
        for k in range(len(edge_hull) - 1):
            x1, x2 = edge_hull[k], edge_hull[k + 1]
            slope = (ys[x2] - ys[x1]) / (x2 - x1)

            def dist(idx: int) -> float:
                return sign * (ys[idx] - (ys[x1] + slope * (idx - x1)))

            # Vertical distance is unimodal over the far hull and its argmax
            # index is non-increasing as the edge slope advances, so a single
            # backward-walking pointer covers all edges in O(hull size).
            while j > 0 and dist(far_hull[j - 1]) >= dist(far_hull[j]):
                j -= 1
            width = dist(far_hull[j])
            if width < best_width:
                best_width = width
                mid = ys[x1] + sign * width / 2.0
                best = (mid - slope * x1, slope)

    scan(lower, upper, +1.0)
    scan(upper, lower, -1.0)
    intercept, slope = best
    return intercept, slope, best_width / 2.0


class LinearRegressor(Regressor):
    """Exact Chebyshev linear fit (the paper's default regressor)."""

    name = "linear"
    min_partition_size = 3
    param_count = 2
    incremental_kind = "diff-span"
    seed_delta_order = 2

    def fit(self, values: np.ndarray) -> LinearModel:
        values = np.asarray(values, dtype=np.int64)
        intercept, slope, _ = chebyshev_line(values)
        return LinearModel(intercept, slope)

    def fast_delta_bits(self, values: np.ndarray) -> int:
        """Paper's ``Δ̃``: bits for max-minus-min of the first differences.

        The spread of adjacent-value differences measures how hard the linear
        regression task is and correlates positively with the exact bit width
        (paper §3.2.2), at a fraction of the cost.
        """
        values = np.asarray(values, dtype=np.int64)
        if len(values) < 2:
            return 0
        d = np.diff(values)
        span = int(d.max()) - int(d.min())
        return span.bit_length()

    def load(self, params: np.ndarray) -> LinearModel:
        return LinearModel(float(params[0]), float(params[1]))
