"""Regressors: minimax model fitting for the LeCo framework (paper §3.1)."""

from repro.core.regressors.base import FittedModel, Regressor, floor_to_int64
from repro.core.regressors.basis import (
    BasisModel,
    PolynomialRegressor,
    fit_minimax,
)
from repro.core.regressors.linear import (
    ConstantModel,
    ConstantRegressor,
    LinearModel,
    LinearRegressor,
    chebyshev_line,
)
from repro.core.regressors.special import (
    ExponentialRegressor,
    LogarithmRegressor,
    SinusoidalRegressor,
    estimate_frequencies,
)

#: registry used by the storage format and the Hyperparameter-Advisor
_BUILTIN: dict[str, Regressor] = {}


def register_regressor(regressor: Regressor) -> Regressor:
    _BUILTIN[regressor.name] = regressor
    return regressor


def get_regressor(name: str) -> Regressor:
    """Look up a regressor by its stable name (e.g. ``"linear"``)."""
    if name not in _BUILTIN:
        raise KeyError(
            f"unknown regressor {name!r}; known: {sorted(_BUILTIN)}"
        )
    return _BUILTIN[name]


def available_regressors() -> list[str]:
    return sorted(_BUILTIN)


register_regressor(ConstantRegressor())
register_regressor(LinearRegressor())
register_regressor(PolynomialRegressor(2))
register_regressor(PolynomialRegressor(3))
register_regressor(ExponentialRegressor())
register_regressor(LogarithmRegressor())
register_regressor(SinusoidalRegressor(1))
register_regressor(SinusoidalRegressor(2))

__all__ = [
    "FittedModel",
    "Regressor",
    "floor_to_int64",
    "BasisModel",
    "PolynomialRegressor",
    "fit_minimax",
    "ConstantModel",
    "ConstantRegressor",
    "LinearModel",
    "LinearRegressor",
    "chebyshev_line",
    "ExponentialRegressor",
    "LogarithmRegressor",
    "SinusoidalRegressor",
    "estimate_frequencies",
    "register_regressor",
    "get_regressor",
    "available_regressors",
]
