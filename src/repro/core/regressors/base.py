"""Regressor interface for the LeCo framework.

A *Regressor* fits one model to one partition of the value sequence,
minimising the **maximum** absolute prediction error (not the usual sum of
squares): the delta array is bit-packed, so its storage cost is set by the
largest residual (paper §3.1).

A *FittedModel* is the trained artefact: it predicts a float for each
position, and the encoder stores residuals ``v_i - floor(pred(i))``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


def floor_to_int64(pred: np.ndarray) -> np.ndarray:
    """Floor float predictions to int64, clamping to the representable range.

    Encoder and decoder must floor identically, so every prediction path in
    the library funnels through this helper.
    """
    clipped = np.clip(np.floor(pred), float(_INT64_MIN), float(_INT64_MAX))
    return clipped.astype(np.int64)


class FittedModel(ABC):
    """A trained model for a single partition."""

    #: short identifier used in the storage format and reports
    kind: str = "abstract"

    @property
    @abstractmethod
    def params(self) -> np.ndarray:
        """Model parameters as a float64 vector (stored 8 bytes each)."""

    @abstractmethod
    def predict_float(self, positions: np.ndarray) -> np.ndarray:
        """Predict raw float values at local ``positions`` (0-based)."""

    def predict_int(self, positions: np.ndarray) -> np.ndarray:
        """Integer predictions: ``floor`` of the float predictions."""
        return floor_to_int64(self.predict_float(np.asarray(positions)))

    @property
    def model_size_bytes(self) -> int:
        """Stored size of the parameters (8 bytes per float64)."""
        return 8 * len(self.params)

    def residuals(self, values: np.ndarray) -> np.ndarray:
        """Integer residuals ``v_i - floor(pred(i))`` for the partition."""
        values = np.asarray(values, dtype=np.int64)
        positions = np.arange(len(values))
        return values - self.predict_int(positions)

    def max_abs_residual(self, values: np.ndarray) -> int:
        res = self.residuals(values)
        return int(np.abs(res).max()) if res.size else 0


class Regressor(ABC):
    """Factory producing :class:`FittedModel` instances for partitions."""

    #: short identifier used by the Hyperparameter-Advisor and reports
    name: str = "abstract"
    #: minimum number of points for the fit to be meaningful (paper §3.2.2)
    min_partition_size: int = 1
    #: number of float64 parameters a fitted model stores
    param_count: int = 1

    @property
    def model_size_bytes(self) -> int:
        """``S_M`` in the paper: per-partition model storage cost."""
        return 8 * self.param_count

    @abstractmethod
    def fit(self, values: np.ndarray) -> FittedModel:
        """Fit one model to ``values``, minimising the max absolute error."""

    def delta_bits(self, values: np.ndarray) -> int:
        """``Δ(v)``: bits per residual slot after fitting this regressor.

        Measured as the bias-encoded width of the residual range, which for a
        minimax fit equals the paper's ``ceil(log2 delta_maxabs)) + 1``.
        """
        values = np.asarray(values, dtype=np.int64)
        if len(values) < max(self.min_partition_size, 1):
            return 64
        res = self.fit(values).residuals(values)
        if res.size == 0:
            return 0
        span = int(res.max()) - int(res.min())
        return int(span).bit_length()

    def fast_delta_bits(self, values: np.ndarray) -> int:
        """Cheap approximation of :meth:`delta_bits` for the split phase.

        Subclasses override with closed-form shortcuts (paper's ``Δ̃``);
        the default simply calls the exact version.
        """
        return self.delta_bits(values)

    @abstractmethod
    def load(self, params: np.ndarray) -> FittedModel:
        """Rebuild a fitted model from stored parameters (decoder path)."""
