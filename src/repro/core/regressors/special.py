"""Exponential, logarithmic, and sinusoidal regressors (paper §4.4).

These demonstrate LeCo's extensibility beyond polynomials: the framework
accepts any linear combination of terms, and domain knowledge (e.g. the two
sine carriers of the ``cosmos`` data set) plugs in as extra basis functions.
Non-linear inner parameters (exponential rate, sine frequencies) are
estimated first, then the outer weights are fitted minimax.
"""

from __future__ import annotations

import numpy as np

from repro.core.regressors.base import Regressor
from repro.core.regressors.basis import (
    BasisModel,
    TermFn,
    design_matrix,
    fit_minimax,
)


def _exp_terms(rate: float) -> list[TermFn]:
    return [lambda x: np.ones_like(x), lambda x, r=rate: np.exp(r * x)]


class ExponentialRegressor(Regressor):
    """``F(i) = theta0 + theta1 * exp(rate * i)``.

    The rate is estimated from a log-space linear fit on the de-trended
    values, then frozen while the outer weights are fitted minimax.
    """

    name = "exponential"
    min_partition_size = 4
    param_count = 3  # theta0, theta1, rate

    def __init__(self, use_lp: bool = True):
        self.use_lp = use_lp

    def _estimate_rate(self, values: np.ndarray) -> float:
        shifted = values - values.min() + 1.0
        logs = np.log(shifted)
        n = len(values)
        positions = np.arange(n, dtype=np.float64)
        slope = (np.polyfit(positions, logs, 1)[0] if n >= 2 else 0.0)
        # keep exp(rate * n) within float range
        max_rate = 650.0 / max(n, 1)
        return float(np.clip(slope, -max_rate, max_rate))

    def fit(self, values: np.ndarray) -> BasisModel:
        values = np.asarray(values, dtype=np.int64)
        rate = self._estimate_rate(values.astype(np.float64))
        terms = _exp_terms(rate)
        positions = np.arange(len(values), dtype=np.float64)
        design = design_matrix(terms, positions)
        theta = fit_minimax(design, values.astype(np.float64),
                            use_lp=self.use_lp)
        return BasisModel(self.name, terms, theta, extra_params=[rate])

    def load(self, params: np.ndarray) -> BasisModel:
        rate = float(params[2])
        return BasisModel(self.name, _exp_terms(rate), params[:2],
                          extra_params=[rate])


def _log_terms() -> list[TermFn]:
    return [lambda x: np.ones_like(x), lambda x: np.log1p(x)]


class LogarithmRegressor(Regressor):
    """``F(i) = theta0 + theta1 * log(1 + i)``."""

    name = "logarithm"
    min_partition_size = 3
    param_count = 2

    def __init__(self, use_lp: bool = True):
        self.use_lp = use_lp

    def fit(self, values: np.ndarray) -> BasisModel:
        values = np.asarray(values, dtype=np.int64)
        terms = _log_terms()
        positions = np.arange(len(values), dtype=np.float64)
        design = design_matrix(terms, positions)
        theta = fit_minimax(design, values.astype(np.float64),
                            use_lp=self.use_lp)
        return BasisModel(self.name, terms, theta)

    def load(self, params: np.ndarray) -> BasisModel:
        return BasisModel(self.name, _log_terms(), params[:2])


def _sin_terms(freqs: np.ndarray) -> list[TermFn]:
    terms: list[TermFn] = [lambda x: np.ones_like(x), lambda x: x]
    for freq in freqs:
        terms.append(lambda x, w=freq: np.sin(w * x))
        terms.append(lambda x, w=freq: np.cos(w * x))
    return terms


def estimate_frequencies(values: np.ndarray, n_freqs: int) -> np.ndarray:
    """Dominant angular frequencies of the de-trended signal.

    Matching pursuit: find the FFT peak of the current residual, refine it
    numerically (spectral leakage biases the raw bin by a fraction — enough
    to drift half a cycle over a long partition), subtract the fitted
    carrier, repeat.  Subtraction keeps a dominant carrier's sidelobes from
    masking weaker ones.
    """
    values = np.asarray(values, dtype=np.float64)
    n = len(values)
    if n < 8 or n_freqs == 0:
        return np.zeros(n_freqs)
    positions = np.arange(n, dtype=np.float64)
    residual = values - np.polyval(np.polyfit(positions, values, 1),
                                   positions)
    bin_width = 2.0 * np.pi / n
    picked: list[float] = []
    for _ in range(n_freqs):
        spectrum = np.abs(np.fft.rfft(residual))
        spectrum[0] = 0.0
        idx = int(np.argmax(spectrum))
        if spectrum[idx] == 0.0:
            picked.append(0.0)
            continue
        freq = _refine_frequency(residual, idx * bin_width, bin_width)
        picked.append(freq)
        design = np.column_stack([np.ones(n), positions,
                                  np.sin(freq * positions),
                                  np.cos(freq * positions)])
        theta, *_ = np.linalg.lstsq(design, residual, rcond=None)
        residual = residual - design @ theta
    return np.asarray(picked)


def _refine_frequency(signal: np.ndarray, freq: float,
                      bin_width: float) -> float:
    from scipy.optimize import minimize_scalar

    positions = np.arange(len(signal), dtype=np.float64)
    design_base = np.column_stack([np.ones_like(positions), positions])

    def cost(w: float) -> float:
        design = np.column_stack([design_base, np.sin(w * positions),
                                  np.cos(w * positions)])
        theta, *_ = np.linalg.lstsq(design, signal, rcond=None)
        return float(np.abs(signal - design @ theta).max())

    result = minimize_scalar(cost, bounds=(freq - bin_width,
                                           freq + bin_width),
                             method="bounded",
                             options={"xatol": bin_width * 1e-4})
    return float(result.x) if result.fun <= cost(freq) else freq


class SinusoidalRegressor(Regressor):
    """Linear trend plus ``n_sines`` sine/cosine carriers.

    ``freqs`` supplies known angular frequencies (the paper's ``2sin-freq``
    variant); when omitted they are estimated per partition from the FFT
    (the ``sin`` / ``2sin`` variants).
    """

    def __init__(self, n_sines: int = 1,
                 freqs: np.ndarray | None = None,
                 use_lp: bool = True):
        if n_sines < 1:
            raise ValueError(f"n_sines must be >= 1, got {n_sines}")
        self.n_sines = n_sines
        self.known_freqs = (np.asarray(freqs, dtype=np.float64)
                            if freqs is not None else None)
        if self.known_freqs is not None and len(self.known_freqs) != n_sines:
            raise ValueError("freqs length must equal n_sines")
        self.use_lp = use_lp
        # the stored parameter vector carries the frequencies, so known-
        # frequency variants share the storage-format name of the estimated
        # ones and decode through the same registry entry
        self.name = f"sin{n_sines}"
        self.min_partition_size = 2 + 2 * n_sines + 2
        self.param_count = 2 + 3 * n_sines  # theta + stored freqs

    def fit(self, values: np.ndarray) -> BasisModel:
        values = np.asarray(values, dtype=np.int64)
        if self.known_freqs is not None:
            freqs = self.known_freqs
        else:
            freqs = estimate_frequencies(values, self.n_sines)
        terms = _sin_terms(freqs)
        positions = np.arange(len(values), dtype=np.float64)
        design = design_matrix(terms, positions)
        theta = fit_minimax(design, values.astype(np.float64),
                            use_lp=self.use_lp)
        return BasisModel(self.name, terms, theta, extra_params=freqs)

    def load(self, params: np.ndarray) -> BasisModel:
        n_theta = 2 + 2 * self.n_sines
        freqs = np.asarray(params[n_theta: n_theta + self.n_sines])
        return BasisModel(self.name, _sin_terms(freqs), params[:n_theta],
                          extra_params=freqs)
