"""Generic minimax fitting for linear combinations of basis functions.

The paper's regressors are all of the form ``F(i) = sum_j theta_j * M_j(i)``
(§3.1).  For any fixed set of terms ``M_j`` the minimax problem

    minimize  phi
    s.t.      |sum_j theta_j M_j(i) - v_i| <= phi   for all i

is a linear program with ``2n + 1`` constraints.  We solve it with
``scipy.optimize.linprog`` (HiGHS) for small partitions and fall back to a
centred least-squares fit — LS coefficients with the intercept shifted so the
residual band is symmetric — when the partition is large or the LP fails.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.core.regressors.base import FittedModel, Regressor

#: partitions larger than this use the centred-LS path only
LP_MAX_POINTS = 3000

TermFn = Callable[[np.ndarray], np.ndarray]


def design_matrix(terms: Sequence[TermFn], positions: np.ndarray) -> np.ndarray:
    positions = np.asarray(positions, dtype=np.float64)
    return np.column_stack([term(positions) for term in terms])


def fit_minimax(design: np.ndarray, values: np.ndarray,
                use_lp: bool = True) -> np.ndarray:
    """Fit ``theta`` minimising ``max |design @ theta - values|``."""
    values = np.asarray(values, dtype=np.float64)
    n, k = design.shape

    theta = _least_squares_centered(design, values)
    if not use_lp or n > LP_MAX_POINTS or n <= k:
        return theta

    lp_theta = _linprog_minimax(design, values)
    if lp_theta is None:
        return theta
    if _max_abs_err(design, values, lp_theta) < _max_abs_err(design, values,
                                                             theta):
        return lp_theta
    return theta


def _max_abs_err(design: np.ndarray, values: np.ndarray,
                 theta: np.ndarray) -> float:
    return float(np.abs(design @ theta - values).max())


def _least_squares_centered(design: np.ndarray, values: np.ndarray
                            ) -> np.ndarray:
    """LS fit with the constant term shifted to centre the residual band.

    Requires the first column of ``design`` to be the constant term, which is
    the convention used by every regressor in this package.
    """
    theta, *_ = np.linalg.lstsq(design, values, rcond=None)
    residuals = values - design @ theta
    if residuals.size:
        theta = theta.copy()
        theta[0] += (residuals.max() + residuals.min()) / 2.0
    return theta


def _linprog_minimax(design: np.ndarray, values: np.ndarray
                     ) -> np.ndarray | None:
    from scipy.optimize import linprog

    n, k = design.shape
    # variables: theta (k, free) then phi (>= 0); minimise phi
    c = np.zeros(k + 1)
    c[-1] = 1.0
    ones = np.ones((n, 1))
    a_ub = np.vstack([
        np.hstack([design, -ones]),    # X theta - phi <= v
        np.hstack([-design, -ones]),   # -X theta - phi <= -v
    ])
    b_ub = np.concatenate([values, -values])
    bounds = [(None, None)] * k + [(0, None)]
    try:
        result = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=bounds,
                         method="highs")
    except ValueError:
        return None
    if not result.success:
        return None
    return np.asarray(result.x[:k], dtype=np.float64)


class BasisModel(FittedModel):
    """A fitted linear combination of basis terms."""

    def __init__(self, kind: str, terms: Sequence[TermFn],
                 theta: np.ndarray, extra_params: np.ndarray | None = None):
        self.kind = kind
        self._terms = list(terms)
        self._theta = np.asarray(theta, dtype=np.float64)
        # extra (non-linear) parameters, e.g. sine frequencies, appended to
        # the stored parameter vector so the decoder can rebuild the terms
        self._extra = (np.asarray(extra_params, dtype=np.float64)
                       if extra_params is not None else np.empty(0))

    @property
    def params(self) -> np.ndarray:
        return np.concatenate([self._theta, self._extra])

    @property
    def theta(self) -> np.ndarray:
        return self._theta

    @property
    def extra(self) -> np.ndarray:
        return self._extra

    def predict_float(self, positions: np.ndarray) -> np.ndarray:
        positions = np.asarray(positions, dtype=np.float64)
        return design_matrix(self._terms, positions) @ self._theta


def polynomial_terms(degree: int) -> list[TermFn]:
    """Terms ``[1, i, i**2, ..., i**degree]``."""
    return [_power_term(p) for p in range(degree + 1)]


def _power_term(power: int) -> TermFn:
    if power == 0:
        return lambda x: np.ones_like(x)
    return lambda x: x ** power


class PolynomialRegressor(Regressor):
    """Minimax polynomial fit of a fixed degree."""

    def __init__(self, degree: int, use_lp: bool = True):
        if degree < 1:
            raise ValueError(f"degree must be >= 1, got {degree}")
        self.degree = degree
        self.use_lp = use_lp
        self.name = f"poly{degree}"
        self.min_partition_size = degree + 2
        self.param_count = degree + 1
        self.incremental_kind = None
        self.seed_delta_order = degree + 1
        self._terms = polynomial_terms(degree)

    def fit(self, values: np.ndarray) -> BasisModel:
        values = np.asarray(values, dtype=np.int64)
        positions = np.arange(len(values), dtype=np.float64)
        design = design_matrix(self._terms, positions)
        theta = fit_minimax(design, values.astype(np.float64),
                            use_lp=self.use_lp)
        return BasisModel(self.name, self._terms, theta)

    def fast_delta_bits(self, values: np.ndarray) -> int:
        """Spread of the ``(degree)``-th order differences, as in §3.2.2."""
        values = np.asarray(values, dtype=np.int64)
        if len(values) <= self.degree:
            return 0
        d = np.diff(values, n=self.degree)
        span = int(d.max()) - int(d.min())
        return span.bit_length()

    def load(self, params: np.ndarray) -> BasisModel:
        return BasisModel(self.name, self._terms,
                          params[: self.degree + 1])
