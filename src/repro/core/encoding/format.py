"""LeCo's self-describing storage format and decoder (paper §3.3, Fig. 7).

A compressed sequence is a list of partitions.  Each partition stores a
header (model parameters, residual bit-width, bias) followed by a bit-packed
delta array.  Decoding position ``i`` is a model inference plus one slot
read: ``value = floor(F(i - start)) + bias + slot``.

Residuals are *bias-encoded*: the header keeps ``bias = min(residual)`` and
slots hold ``residual - bias`` in ``bits(max - min)`` bits.  For a minimax
fit this width equals the paper's ``ceil(log2 delta_maxabs) + 1``; for
asymmetric residual distributions (e.g. Delta encoding on ascending keys) it
is never worse.

Linear partitions may carry a *correction list* for the serial-decoding
optimisation (§3.3): full-range decodes replace the per-position
``theta0 + theta1 * i`` with a running accumulation, and the list patches
the few positions where floating-point accumulation floors differently.
"""

from __future__ import annotations

import numpy as np

from repro.bitio import (
    BitPackedArray,
    decode_svarint,
    decode_uvarint,
    encode_svarint,
    encode_uvarint,
)
from repro.core.regressors import FittedModel, get_regressor
from repro.learned_index import LearnedSortedIndex

MAGIC = b"LECO"
VERSION = 1

_FLAG_FIXED = 1
_FLAG_MIXED = 2


class Partition:
    """One encoded partition: header fields plus the packed delta array."""

    __slots__ = ("start", "length", "regressor_name", "params", "bias",
                 "deltas", "corrections", "serial_ok", "_model")

    def __init__(self, start: int, length: int, regressor_name: str,
                 params: np.ndarray, bias: int, deltas: BitPackedArray,
                 corrections: list[tuple[int, int]] | None = None,
                 serial_ok: bool = False):
        self.start = start
        self.length = length
        self.regressor_name = regressor_name
        self.params = np.asarray(params, dtype=np.float64)
        self.bias = bias
        self.deltas = deltas
        self.corrections = corrections or []
        # serial (accumulation) decoding is only worth storing corrections
        # for when they are sparse; otherwise decode directly
        self.serial_ok = serial_ok
        self._model: FittedModel | None = None

    @property
    def model(self) -> FittedModel:
        if self._model is None:
            self._model = get_regressor(self.regressor_name).load(self.params)
        return self._model

    @property
    def end(self) -> int:
        return self.start + self.length

    def decode_slice(self, local_lo: int, local_hi: int) -> np.ndarray:
        """Decode local positions ``[local_lo, local_hi)`` (vectorised)."""
        positions = np.arange(local_lo, local_hi)
        pred = self.model.predict_int(positions)
        slots = self.deltas.slice(local_lo, local_hi).astype(np.int64)
        return pred + slots + self.bias

    def decode_one(self, local: int) -> int:
        pred = int(self.model.predict_int(np.array([local]))[0])
        return pred + self.deltas[local] + self.bias

    def decode_many(self, local_positions: np.ndarray) -> np.ndarray:
        """Batch random access: decode arbitrary local positions.

        One vectorised model inference plus one :meth:`BitPackedArray.gather`
        over the covering bytes of all requested slots — the batch analogue
        of :meth:`decode_one`.
        """
        positions = np.asarray(local_positions, dtype=np.int64)
        pred = self.model.predict_int(positions)
        slots = self.deltas.gather(positions).astype(np.int64)
        return pred + slots + self.bias

    def decode_serial(self) -> np.ndarray:
        """Full-partition decode via slope accumulation + correction list.

        Only linear models have a meaningful serial form; other kinds fall
        back to the direct decode.
        """
        if (self.regressor_name != "linear" or self.length == 0
                or not self.serial_ok):
            return self.decode_slice(0, self.length)
        theta0, theta1 = float(self.params[0]), float(self.params[1])
        acc = accumulate_predictions(theta0, theta1, self.length)
        pred = np.clip(np.floor(acc), -(2.0 ** 63), 2.0 ** 63 - 1
                       ).astype(np.int64)
        for pos, diff in self.corrections:
            pred[pos] += diff
        slots = self.deltas.slice(0, self.length).astype(np.int64)
        return pred + slots + self.bias

    # ------------------------------------------------------ serialisation
    def to_bytes(self, mixed: bool, reg_ids: dict[str, int]) -> bytes:
        out = bytearray()
        if mixed:
            out.append(reg_ids[self.regressor_name])
        for p in self.params:
            out += np.float64(p).tobytes()
        out += encode_svarint(self.bias)
        out.append(1 if self.serial_ok else 0)
        out += encode_uvarint(len(self.corrections))
        prev = 0
        for pos, diff in self.corrections:
            out += encode_uvarint(pos - prev)
            out += encode_svarint(diff)
            prev = pos
        out += self.deltas.to_bytes()
        return bytes(out)

    @classmethod
    def from_bytes(cls, buf: bytes, offset: int, start: int, length: int,
                   mixed: bool, reg_names: list[str], default_name: str
                   ) -> tuple["Partition", int]:
        if mixed:
            name = reg_names[buf[offset]]
            offset += 1
        else:
            name = default_name
        count = get_regressor(name).param_count
        params = np.frombuffer(buf, dtype=np.float64, count=count,
                               offset=offset).copy()
        offset += 8 * count
        bias, offset = decode_svarint(buf, offset)
        serial_ok = bool(buf[offset])
        offset += 1
        n_corr, offset = decode_uvarint(buf, offset)
        corrections = []
        pos = 0
        for _ in range(n_corr):
            gap, offset = decode_uvarint(buf, offset)
            diff, offset = decode_svarint(buf, offset)
            pos += gap
            corrections.append((pos, diff))
        deltas, offset = BitPackedArray.from_bytes(buf, offset)
        return cls(start, length, name, params, bias, deltas,
                   corrections, serial_ok), offset


def accumulate_predictions(theta0: float, theta1: float, n: int
                           ) -> np.ndarray:
    """Sequential float accumulation ``theta0, theta0+theta1, ...``.

    Implemented with ``np.add.accumulate`` which performs strictly
    sequential summation, so encoder and decoder observe the same rounding.
    """
    steps = np.empty(n, dtype=np.float64)
    steps[0] = theta0
    steps[1:] = theta1
    return np.add.accumulate(steps)


class CompressedArray:
    """A losslessly compressed integer sequence with random access.

    The public decompression surface:

    * ``arr[i]`` / :meth:`get` — random access (two bounded memory reads);
    * :meth:`decode_range` — vectorised range decode;
    * :meth:`decode_all` — full decompression;
    * :meth:`decode_all_serial` — full decode via the §3.3 accumulation
      optimisation (bit-identical output, validated in tests);
    * :meth:`compressed_size_bytes` / :meth:`to_bytes` — serialised format.
    """

    def __init__(self, n: int, partitions: list[Partition],
                 fixed_size: int | None, default_regressor: str):
        self.n = n
        self.partitions = partitions
        self.fixed_size = fixed_size
        self.default_regressor = default_regressor
        self._starts = np.array([p.start for p in partitions],
                                dtype=np.int64)
        self._index: LearnedSortedIndex | None = None
        self._serialized: bytes | None = None

    # -------------------------------------------------------------- access
    def __len__(self) -> int:
        return self.n

    def _partition_for(self, position: int) -> Partition:
        if self.fixed_size is not None:
            return self.partitions[position // self.fixed_size]
        if self._index is None:
            self._index = LearnedSortedIndex(self._starts)
        return self.partitions[self._index.lower_bound(position)]

    def get(self, position: int) -> int:
        """Random access to one value (paper's point-query path)."""
        if position < 0:
            position += self.n
        if not 0 <= position < self.n:
            raise IndexError(f"position {position} out of [0, {self.n})")
        part = self._partition_for(position)
        return part.decode_one(position - part.start)

    def __getitem__(self, position: int) -> int:
        return self.get(position)

    def decode_range(self, lo: int, hi: int) -> np.ndarray:
        """Decode positions ``[lo, hi)`` as an int64 array."""
        if not 0 <= lo <= hi <= self.n:
            raise IndexError(f"bad range [{lo}, {hi}) for n={self.n}")
        if lo == hi:
            return np.empty(0, dtype=np.int64)
        first = self._partition_index_for(lo)
        chunks = []
        idx = first
        pos = lo
        while pos < hi:
            part = self.partitions[idx]
            local_lo = pos - part.start
            local_hi = min(hi, part.end) - part.start
            chunks.append(part.decode_slice(local_lo, local_hi))
            pos = part.end
            idx += 1
        return np.concatenate(chunks)

    def _partition_index_for(self, position: int) -> int:
        if self.fixed_size is not None:
            return position // self.fixed_size
        if self._index is None:
            self._index = LearnedSortedIndex(self._starts)
        return self._index.lower_bound(position)

    def decode_all(self) -> np.ndarray:
        return self.decode_range(0, self.n)

    def take(self, positions: np.ndarray) -> np.ndarray:
        """Decode an arbitrary set of positions (late materialization).

        Positions are grouped by partition; dense groups decode the covering
        slice vectorised, sparse groups batch-gather their slots — the
        decoder-side analogue of the engine's bitmap-driven scans (§5.1).
        """
        positions = np.asarray(positions, dtype=np.int64)
        if positions.size == 0:
            return np.empty(0, dtype=np.int64)
        if np.any((positions < 0) | (positions >= self.n)):
            raise IndexError("take positions out of range")
        out = np.empty(len(positions), dtype=np.int64)
        if self.fixed_size is not None:
            part_ids = positions // self.fixed_size
        else:
            part_ids = np.searchsorted(self._starts, positions,
                                       side="right") - 1
        order = np.argsort(part_ids, kind="stable")
        sorted_ids = part_ids[order]
        boundaries = np.flatnonzero(np.diff(sorted_ids)) + 1
        for group in np.split(order, boundaries):
            part = self.partitions[int(part_ids[group[0]])]
            local = positions[group] - part.start
            lo, hi = int(local.min()), int(local.max()) + 1
            if (hi - lo) <= 4 * len(group):
                decoded = part.decode_slice(lo, hi)
                out[group] = decoded[local - lo]
            else:
                out[group] = part.decode_many(local)
        return out

    def search_sorted(self, value: int) -> int:
        """First position ``i`` with ``self[i] >= value`` (n if none).

        Valid only when the encoded sequence is non-decreasing (sorted keys,
        block offsets, ...).  Runs a binary search over partitions using the
        model-derived value bounds, then a binary search of decoded slots
        inside one partition — O(log m + log L) random accesses, never a
        full decompression.  This is the lower-bound primitive behind the
        KV store's index-block lookups (§5.2).
        """
        if self.n == 0:
            return 0
        bounds = self.partition_value_bounds()
        # first partition whose upper bound can reach `value`
        lo, hi = 0, len(self.partitions) - 1
        first = len(self.partitions)
        while lo <= hi:
            mid = (lo + hi) // 2
            if bounds[mid, 1] >= value:
                first = mid
                hi = mid - 1
            else:
                lo = mid + 1
        for idx in range(first, len(self.partitions)):
            part = self.partitions[idx]
            if bounds[idx, 0] >= value:
                return part.start
            plo, phi = 0, part.length - 1
            answer = -1
            while plo <= phi:
                pmid = (plo + phi) // 2
                if part.decode_one(pmid) >= value:
                    answer = pmid
                    phi = pmid - 1
                else:
                    plo = pmid + 1
            if answer >= 0:
                return part.start + answer
        return self.n

    def partition_value_bounds(self) -> np.ndarray:
        """Per-partition conservative [min, max] bounds, shape (m, 2).

        Derived from the model band plus the residual width without touching
        the delta array — the basis of LeCo's filter pruning (§5.1.1).
        """
        bounds = np.empty((len(self.partitions), 2), dtype=np.int64)
        for j, part in enumerate(self.partitions):
            if part.length == 0:
                bounds[j] = (0, -1)
                continue
            if part.regressor_name in ("constant", "linear"):
                # linear predictions are monotone in the position, so the
                # partition edges bound the whole prediction band
                edge_pos = np.array([0, part.length - 1])
                pred = part.model.predict_int(edge_pos)
                pred_lo, pred_hi = int(pred.min()), int(pred.max())
            else:
                # non-monotone models: no cheap sound bound, disable pruning
                bounds[j] = (np.iinfo(np.int64).min // 2,
                             np.iinfo(np.int64).max // 2)
                continue
            span = (1 << part.deltas.width) - 1 if part.deltas.width else 0
            bounds[j, 0] = pred_lo + part.bias
            bounds[j, 1] = pred_hi + part.bias + span
        return bounds

    def decode_all_serial(self) -> np.ndarray:
        """Full decode using slope accumulation + corrections (§3.3)."""
        if self.n == 0:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([p.decode_serial() for p in self.partitions])

    # ---------------------------------------------------------------- size
    def compressed_size_bytes(self) -> int:
        return len(self.to_bytes())

    def model_size_bytes(self) -> int:
        """Total bytes spent on model parameters (Fig. 10's cross pattern)."""
        return sum(8 * len(p.params) for p in self.partitions)

    def compression_ratio(self, uncompressed_bytes: int) -> float:
        """compressed / uncompressed, as a fraction (paper reports %)."""
        return self.compressed_size_bytes() / max(uncompressed_bytes, 1)

    # ------------------------------------------------------- serialisation
    def to_bytes(self) -> bytes:
        if self._serialized is not None:
            return self._serialized
        names = sorted({p.regressor_name for p in self.partitions})
        mixed = len(names) > 1
        flags = (_FLAG_FIXED if self.fixed_size is not None else 0)
        if mixed:
            flags |= _FLAG_MIXED
        out = bytearray()
        out += MAGIC
        out.append(VERSION)
        out.append(flags)
        default = self.default_regressor
        out.append(len(default))
        out += default.encode()
        out += encode_uvarint(self.n)
        out += encode_uvarint(len(self.partitions))
        if self.fixed_size is not None:
            out += encode_uvarint(self.fixed_size)
        else:
            starts = BitPackedArray.from_values(
                self._starts.astype(np.uint64))
            out += starts.to_bytes()
        if mixed:
            out.append(len(names))
            for name in names:
                out.append(len(name))
                out += name.encode()
        reg_ids = {name: i for i, name in enumerate(names)}
        for part in self.partitions:
            out += part.to_bytes(mixed, reg_ids)
        self._serialized = bytes(out)
        return self._serialized

    @classmethod
    def from_bytes(cls, buf: bytes) -> "CompressedArray":
        if buf[:4] != MAGIC:
            raise ValueError("not a LeCo buffer (bad magic)")
        if buf[4] != VERSION:
            raise ValueError(f"unsupported version {buf[4]}")
        flags = buf[5]
        offset = 6
        name_len = buf[offset]
        offset += 1
        default = buf[offset: offset + name_len].decode()
        offset += name_len
        n, offset = decode_uvarint(buf, offset)
        m, offset = decode_uvarint(buf, offset)
        fixed_size = None
        if flags & _FLAG_FIXED:
            fixed_size, offset = decode_uvarint(buf, offset)
            starts = np.arange(m, dtype=np.int64) * fixed_size
        else:
            packed, offset = BitPackedArray.from_bytes(buf, offset)
            starts = packed.to_numpy().astype(np.int64)
        reg_names: list[str] = []
        mixed = bool(flags & _FLAG_MIXED)
        if mixed:
            n_names = buf[offset]
            offset += 1
            for _ in range(n_names):
                ln = buf[offset]
                offset += 1
                reg_names.append(buf[offset: offset + ln].decode())
                offset += ln
        partitions: list[Partition] = []
        for j in range(m):
            start = int(starts[j])
            end = int(starts[j + 1]) if j + 1 < m else n
            part, offset = Partition.from_bytes(
                buf, offset, start, end - start, mixed, reg_names, default)
            partitions.append(part)
        arr = cls(n, partitions, fixed_size, default)
        arr._serialized = bytes(buf[:offset])
        return arr
