"""The LeCo Encoder: model fitting + residual packing (paper §3.3).

The Encoder receives the partition plan and the original sequence, fits one
model per partition, computes integer residuals against the floored
predictions, and bit-packs them with bias encoding.  Linear partitions also
get their serial-decoding correction list (§3.3 optimisation) built here.
"""

from __future__ import annotations

import numpy as np

from repro.bitio import BitPackedArray
from repro.core.encoding.format import (
    CompressedArray,
    Partition,
    accumulate_predictions,
)
from repro.core.regressors import (
    ConstantRegressor,
    FittedModel,
    Regressor,
    floor_to_int64,
    get_regressor,
)

#: residuals larger than this trigger the constant-model fallback guard
_RESIDUAL_GUARD = 2.0 ** 62


def _safe_residuals(values: np.ndarray, model: FittedModel
                    ) -> np.ndarray | None:
    """Residuals, or ``None`` when the model mispredicts catastrophically."""
    positions = np.arange(len(values))
    pred_f = model.predict_float(positions)
    if not np.all(np.isfinite(pred_f)):
        return None
    if np.abs(values.astype(np.float64) - pred_f).max(initial=0.0) \
            > _RESIDUAL_GUARD:
        return None
    return values - floor_to_int64(pred_f)


def _linear_corrections(params: np.ndarray, length: int
                        ) -> list[tuple[int, int]]:
    """Positions where slope accumulation floors differently (§3.3)."""
    if length == 0:
        return []
    theta0, theta1 = float(params[0]), float(params[1])
    direct = np.floor(theta0 + theta1 * np.arange(length, dtype=np.float64))
    accum = np.floor(accumulate_predictions(theta0, theta1, length))
    mismatch = np.flatnonzero(direct != accum)
    return [(int(i), int(direct[i] - accum[i])) for i in mismatch]


def encode_partition(values: np.ndarray, start: int,
                     regressor: Regressor,
                     build_corrections: bool = True) -> Partition:
    """Fit and encode one partition (``values`` is the partition slice)."""
    values = np.asarray(values, dtype=np.int64)
    model = regressor.fit(values)
    residuals = _safe_residuals(values, model)
    name = regressor.name
    if residuals is None:
        fallback = ConstantRegressor()
        model = fallback.fit(values)
        residuals = _safe_residuals(values, model)
        name = fallback.name
    if residuals.size:
        bias = int(residuals.min())
        packed = BitPackedArray.from_values(
            (residuals - bias).astype(np.uint64))
    else:
        bias = 0
        packed = BitPackedArray.from_values(np.empty(0, dtype=np.uint64))
    corrections = None
    serial_ok = False
    if build_corrections and name == "linear":
        corrections = _linear_corrections(model.params, len(values))
        # only keep the serial path when the correction list is sparse;
        # at large magnitudes float accumulation drifts at almost every
        # position and the list would dwarf the delta array
        serial_ok = len(corrections) <= max(len(values) // 16, 4)
        if not serial_ok:
            corrections = None
    return Partition(start, len(values), name, model.params, bias, packed,
                     corrections, serial_ok)


class LecoEncoder:
    """High-level compression entry point.

    Parameters
    ----------
    regressor:
        A :class:`Regressor` instance or registered name (``"linear"``,
        ``"poly2"``, ...).
    partitioner:
        A :class:`Partitioner`, or one of the convenience specs:
        ``"fixed"`` (sampling-based size search, §3.2.1), ``"variable"``
        (split–merge greedy, §3.2.2), or an ``int`` fixed partition size.
    tau:
        Split aggressiveness for ``"variable"`` (paper sweeps [0, 0.15]).
    build_corrections:
        Whether to build the §3.3 serial-decode correction lists.
    """

    def __init__(self, regressor: Regressor | str = "linear",
                 partitioner="fixed", tau: float = 0.05,
                 max_partition_size: int = 10_000,
                 build_corrections: bool = True):
        from repro.core.partitioners import (
            AutoFixedPartitioner,
            FixedLengthPartitioner,
            Partitioner,
            SplitMergePartitioner,
        )

        if isinstance(regressor, str):
            regressor = get_regressor(regressor)
        self.regressor = regressor
        if isinstance(partitioner, Partitioner):
            self.partitioner = partitioner
        elif partitioner == "fixed":
            self.partitioner = AutoFixedPartitioner(
                max_size=max_partition_size)
        elif partitioner == "variable":
            self.partitioner = SplitMergePartitioner(tau=tau)
        elif isinstance(partitioner, int):
            self.partitioner = FixedLengthPartitioner(partitioner)
        else:
            raise ValueError(f"unknown partitioner spec {partitioner!r}")
        self.build_corrections = build_corrections

    def encode(self, values: np.ndarray) -> CompressedArray:
        """Compress ``values`` (any integer array) losslessly."""
        values = np.asarray(values)
        if values.dtype.kind not in "iu":
            raise TypeError(f"integer input required, got {values.dtype}")
        values = values.astype(np.int64)
        bounds = self.partitioner.partition(values, self.regressor)
        partitions = [
            encode_partition(values[a:b], a, self.regressor,
                             self.build_corrections)
            for a, b in bounds
        ]
        fixed_size = None
        if self.partitioner.fixed_length and bounds:
            fixed_size = bounds[0][1] - bounds[0][0]
        return CompressedArray(len(values), partitions, fixed_size,
                               self.regressor.name)
