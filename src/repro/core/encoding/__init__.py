"""Encoder/Decoder and the self-describing storage format (paper §3.3)."""

from repro.core.encoding.encoder import LecoEncoder, encode_partition
from repro.core.encoding.format import (
    CompressedArray,
    Partition,
    accumulate_predictions,
)

__all__ = [
    "LecoEncoder",
    "encode_partition",
    "CompressedArray",
    "Partition",
    "accumulate_predictions",
]
