"""Hyperparameter-Advisor: regressor selection + partition strategy advice."""

from repro.core.advisor.cart import CartClassifier
from repro.core.advisor.features import (
    FEATURE_NAMES,
    extract_features,
    kth_order_deviation,
    subrange_stats,
)
from repro.core.advisor.selector import (
    CANDIDATES,
    RegressorSelector,
    optimal_regressor_name,
    training_set,
)

__all__ = [
    "CartClassifier",
    "FEATURE_NAMES",
    "extract_features",
    "kth_order_deviation",
    "subrange_stats",
    "CANDIDATES",
    "RegressorSelector",
    "optimal_regressor_name",
    "training_set",
]
