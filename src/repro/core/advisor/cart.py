"""Classification and Regression Tree (CART), implemented from scratch.

The Hyperparameter-Advisor trains this classifier offline on features of
synthetic sequences (paper §3.1/§4.4).  Standard CART with Gini impurity,
binary splits on feature thresholds, depth and leaf-size stopping rules.
"""

from __future__ import annotations

import numpy as np


class _Node:
    __slots__ = ("feature", "threshold", "left", "right", "label")

    def __init__(self, label: int | None = None):
        self.feature: int | None = None
        self.threshold: float = 0.0
        self.left: "_Node | None" = None
        self.right: "_Node | None" = None
        self.label = label

    @property
    def is_leaf(self) -> bool:
        return self.label is not None


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - (p * p).sum())


class CartClassifier:
    """Binary-split decision tree with Gini impurity."""

    def __init__(self, max_depth: int = 8, min_leaf: int = 3):
        self.max_depth = max_depth
        self.min_leaf = min_leaf
        self._root: _Node | None = None
        self._n_classes = 0

    def fit(self, features: np.ndarray, labels: np.ndarray
            ) -> "CartClassifier":
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if features.ndim != 2 or len(features) != len(labels):
            raise ValueError("features must be (n, d) aligned with labels")
        self._n_classes = int(labels.max()) + 1 if len(labels) else 1
        self._root = self._build(features, labels, depth=0)
        return self

    def _majority(self, labels: np.ndarray) -> int:
        return int(np.bincount(labels, minlength=self._n_classes).argmax())

    def _build(self, feats: np.ndarray, labels: np.ndarray,
               depth: int) -> _Node:
        if (depth >= self.max_depth or len(labels) < 2 * self.min_leaf
                or len(np.unique(labels)) == 1):
            return _Node(label=self._majority(labels))

        best_gain = 0.0
        best = None
        parent_counts = np.bincount(labels, minlength=self._n_classes)
        parent_gini = _gini(parent_counts)
        n = len(labels)
        for feature in range(feats.shape[1]):
            order = np.argsort(feats[:, feature], kind="stable")
            sorted_feat = feats[order, feature]
            sorted_labels = labels[order]
            left_counts = np.zeros(self._n_classes)
            right_counts = parent_counts.astype(np.float64).copy()
            for i in range(n - 1):
                lab = sorted_labels[i]
                left_counts[lab] += 1
                right_counts[lab] -= 1
                if sorted_feat[i] == sorted_feat[i + 1]:
                    continue
                n_left = i + 1
                n_right = n - n_left
                if n_left < self.min_leaf or n_right < self.min_leaf:
                    continue
                gain = parent_gini - (
                    n_left / n * _gini(left_counts)
                    + n_right / n * _gini(right_counts)
                )
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    threshold = (sorted_feat[i] + sorted_feat[i + 1]) / 2.0
                    best = (feature, threshold)
        if best is None:
            return _Node(label=self._majority(labels))

        feature, threshold = best
        mask = feats[:, feature] <= threshold
        node = _Node()
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(feats[mask], labels[mask], depth + 1)
        node.right = self._build(feats[~mask], labels[~mask], depth + 1)
        return node

    def predict_one(self, feature_vec: np.ndarray) -> int:
        if self._root is None:
            raise RuntimeError("classifier is not fitted")
        node = self._root
        while not node.is_leaf:
            if feature_vec[node.feature] <= node.threshold:
                node = node.left
            else:
                node = node.right
        return node.label

    def predict(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=np.float64)
        return np.array([self.predict_one(f) for f in features],
                        dtype=np.int64)

    def depth(self) -> int:
        def walk(node: _Node | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)
