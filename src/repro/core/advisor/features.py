"""Feature extraction for the Regressor Selector (paper §3.1).

Features collected from a single pass over a partition:

* **log-scale data range** — upper bound of the delta-array size; small
  ranges prefer simple models (the parameters dominate otherwise);
* **deviation of the k-th-order deltas** (k = 1..4) — the k-th-order delta
  sequence of a k-degree polynomial is constant, so a near-zero normalised
  deviation at order k signals a degree-k fit;
* **subrange trend and divergence** — split into fixed subblocks, compute
  each block's value range, then the average and the spread of the
  ratio between adjacent subranges: how fast values grow and how stable the
  growth is (exponential data trends away from 1; noisy data diverges).
"""

from __future__ import annotations

import numpy as np

FEATURE_NAMES = (
    "log_range",
    "dev_order1",
    "dev_order2",
    "dev_order3",
    "dev_order4",
    "subrange_trend",
    "subrange_divergence",
)


def kth_order_deviation(values: np.ndarray, order: int) -> float:
    """Normalised mean absolute deviation of the k-th-order deltas."""
    if len(values) <= order:
        return 0.0
    deltas = np.diff(values.astype(np.float64), n=order)
    span = float(deltas.max() - deltas.min())
    if span == 0.0:
        return 0.0
    return float(np.abs(deltas - deltas.mean()).mean() / span)


def subrange_stats(values: np.ndarray, block: int = 64
                   ) -> tuple[float, float]:
    """(trend T, divergence D) of the per-subblock value ranges (§3.1)."""
    n = len(values)
    if n < 2 * block:
        return 1.0, 0.0
    usable = (n // block) * block
    blocks = values[:usable].astype(np.float64).reshape(-1, block)
    ranges = blocks.max(axis=1) - blocks.min(axis=1)
    ranges = np.maximum(ranges, 1.0)
    ratios = ranges[1:] / ranges[:-1]
    trend = float(ratios.mean())
    divergence = float(ratios.max() - ratios.min())
    return trend, divergence


def extract_features(values: np.ndarray) -> np.ndarray:
    """The selector's feature vector for one partition."""
    values = np.asarray(values, dtype=np.int64)
    if len(values) == 0:
        return np.zeros(len(FEATURE_NAMES))
    span = float(int(values.max()) - int(values.min()))
    log_range = float(np.log2(span + 1.0))
    devs = [kth_order_deviation(values, k) for k in (1, 2, 3, 4)]
    trend, divergence = subrange_stats(values)
    return np.array([log_range, *devs, np.log1p(abs(trend - 1.0)),
                     np.log1p(divergence)])
