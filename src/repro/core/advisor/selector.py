"""The Regressor Selector of the Hyperparameter-Advisor (paper §3.1, §4.4).

Trained offline: synthetic sequences are generated for each candidate model
family (constant, linear, poly2, poly3, exponential, logarithm) with random
parameters and noise, their single-pass features extracted, and a CART
classifier fitted.  At runtime the selector recommends a regressor per
partition from the same features.
"""

from __future__ import annotations

import numpy as np

from repro.core.advisor.cart import CartClassifier
from repro.core.advisor.features import extract_features
from repro.core.regressors import Regressor, get_regressor

#: candidate regressors, in classifier label order
CANDIDATES = ("constant", "linear", "poly2", "poly3", "exponential",
              "logarithm")


def _synth_family(name: str, n: int, rng: np.random.Generator) -> np.ndarray:
    """One random training sequence from the given model family."""
    x = np.arange(n, dtype=np.float64)
    # include the (near-)noiseless corner: clean generated data is common
    # in practice and must not fall off the training manifold
    sigma = float(rng.choice([0.0, rng.uniform(0.1, 2.0),
                              rng.uniform(2.0, 20.0)]))
    noise = rng.normal(0, sigma, n) if sigma > 0 else np.zeros(n)
    if name == "constant":
        y = rng.uniform(-1e6, 1e6) + noise
    elif name == "linear":
        y = rng.uniform(-1e5, 1e5) + rng.uniform(-1e3, 1e3) * x + noise
    elif name == "poly2":
        y = (rng.uniform(-1e4, 1e4) + rng.uniform(-100, 100) * x
             + rng.uniform(0.05, 5.0) * np.sign(rng.normal()) * x ** 2
             + noise)
    elif name == "poly3":
        y = (rng.uniform(-1e4, 1e4) + rng.uniform(-10, 10) * x
             + rng.uniform(0.01, 0.5) * x ** 2
             + rng.uniform(0.001, 0.05) * np.sign(rng.normal()) * x ** 3
             + noise)
    elif name == "exponential":
        rate = rng.uniform(0.005, 8.0 / n)
        y = rng.uniform(1, 100) * np.exp(rate * x) + noise
    elif name == "logarithm":
        y = rng.uniform(100, 1e4) * np.log1p(x) + rng.uniform(0, 1e4) + noise
    else:
        raise ValueError(f"unknown family {name!r}")
    return np.round(y).astype(np.int64)


def training_set(samples_per_class: int = 60, length: int = 512,
                 seed: int = 42) -> tuple[np.ndarray, np.ndarray]:
    """Synthetic (features, labels) corpus for the selector."""
    rng = np.random.default_rng(seed)
    feats = []
    labels = []
    for label, name in enumerate(CANDIDATES):
        for _ in range(samples_per_class):
            seq = _synth_family(name, length, rng)
            feats.append(extract_features(seq))
            labels.append(label)
    return np.array(feats), np.array(labels)


class RegressorSelector:
    """CART-backed per-partition regressor recommendation."""

    def __init__(self, max_depth: int = 8, samples_per_class: int = 60,
                 train_length: int = 512, seed: int = 42):
        feats, labels = training_set(samples_per_class, train_length, seed)
        self._cart = CartClassifier(max_depth=max_depth).fit(feats, labels)

    def recommend_name(self, values: np.ndarray) -> str:
        """Recommended regressor name for one partition."""
        label = self._cart.predict_one(extract_features(values))
        return CANDIDATES[label]

    def recommend(self, values: np.ndarray) -> Regressor:
        return get_regressor(self.recommend_name(values))

    def training_accuracy(self) -> float:
        feats, labels = training_set()
        return float((self._cart.predict(feats) == labels).mean())


def optimal_regressor_name(values: np.ndarray,
                           candidates=CANDIDATES) -> str:
    """Exhaustive search: the candidate with the smallest encoded size.

    This is the paper's "optimal" line in Fig. 11 (per partition).
    """
    from repro.core.encoding.encoder import encode_partition

    best_name = candidates[0]
    best_size = None
    for name in candidates:
        regressor = get_regressor(name)
        if len(values) < regressor.min_partition_size:
            continue
        part = encode_partition(np.asarray(values, dtype=np.int64), 0,
                                regressor, build_corrections=False)
        size = len(part.to_bytes(mixed=False, reg_ids={}))
        if best_size is None or size < best_size:
            best_size = size
            best_name = name
    return best_name
