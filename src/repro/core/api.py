"""High-level public API of the LeCo library.

Typical usage::

    import numpy as np
    from repro import compress, decompress
    from repro.codecs import CodecSpec

    keys = np.cumsum(np.random.poisson(40, 100_000))
    arr = compress(keys)                    # CompressedArray
    arr[12_345]                             # random access, no full decode
    assert np.array_equal(decompress(arr), keys)

    arr = compress(keys, CodecSpec(mode="var", regressor="auto"))

:func:`compress` / :func:`decompress` are thin shims over the codec
registry (:mod:`repro.codecs`): configuration travels as one
:class:`~repro.codecs.CodecSpec` instead of loose string/kwarg soup, and
the legacy keyword form builds a spec on the fly.  ``mode`` picks the
partitioning strategy: ``"fix"`` (sampling-searched fixed-length
partitions), ``"var"`` (split–merge variable-length), or ``"auto"``
(hardness-based advice, §3.2.3).  ``regressor="auto"`` lets the
Hyperparameter-Advisor recommend a model family per partition (§3.1); the
selector it uses lives on the spec (injectable, lazily built, thread-safe)
rather than in a module-global singleton.
"""

from __future__ import annotations

import numpy as np

from repro.codecs.spec import CodecSpec
from repro.core.encoding import CompressedArray, LecoEncoder, encode_partition
from repro.core.partitioners import (
    AutoFixedPartitioner,
    SplitMergePartitioner,
    advise_partitioning,
)
from repro.core.regressors import get_regressor

#: registry names whose sequences wrap a :class:`CompressedArray`
_LECO_FAMILY = ("leco", "leco-fix", "leco-var", "leco-auto")


def compress(values: np.ndarray, mode: str | CodecSpec = "fix",
             regressor: str = "linear", tau: float = 0.05,
             max_partition_size: int = 10_000,
             selector=None) -> CompressedArray:
    """Compress an integer sequence with LeCo.

    Parameters
    ----------
    values:
        Any integer numpy array (or list) within the int64 range.
    mode:
        ``"fix"``, ``"var"``, ``"auto"`` (advisor decides fix vs var) —
        or a full :class:`~repro.codecs.CodecSpec`, in which case the
        remaining keywords are ignored.
    regressor:
        A registered regressor name, or ``"auto"`` for the per-partition
        Regressor Selector.
    selector:
        Optional Regressor-Selector instance for ``regressor="auto"``
        (defaults to the shared lazily-built one).
    """
    if isinstance(mode, CodecSpec):
        spec = mode
    else:
        spec = CodecSpec(codec="leco", mode=mode, regressor=regressor,
                         tau=tau, max_partition_size=max_partition_size,
                         selector=selector)
    if spec.codec not in _LECO_FAMILY:
        raise ValueError(
            f"compress() is the LeCo shim; use repro.codecs.get({spec.codec!r})"
            " for other schemes")
    from repro import codecs

    return codecs.get(spec.codec, spec=spec).encode(
        np.asarray(values)).array


def encode_with_spec(values: np.ndarray, spec: CodecSpec
                     ) -> CompressedArray:
    """LeCo encode driven by a :class:`CodecSpec` (registry back end)."""
    values = np.asarray(values)
    mode = spec.mode
    if mode == "auto":
        report = advise_partitioning(values.astype(np.int64))
        mode = "var" if report.recommend_variable else "fix"

    if spec.regressor == "auto":
        return _compress_mixed(values.astype(np.int64), mode, spec)
    encoder = LecoEncoder(
        regressor=spec.regressor,
        partitioner="variable" if mode == "var" else "fixed",
        tau=spec.tau, max_partition_size=spec.max_partition_size)
    return encoder.encode(values)


def _compress_mixed(values: np.ndarray, mode: str, spec: CodecSpec
                    ) -> CompressedArray:
    """Partition with the linear cost model, then recommend per partition."""
    planner = get_regressor("linear")
    if mode == "var":
        partitioner = SplitMergePartitioner(tau=spec.tau)
    else:
        partitioner = AutoFixedPartitioner(max_size=spec.max_partition_size)
    bounds = partitioner.partition(values, planner)
    selector = spec.resolve_selector()
    partitions = []
    for start, end in bounds:
        seg = values[start:end]
        reg = selector.recommend(seg)
        if len(seg) < reg.min_partition_size:
            reg = get_regressor("constant")
        partitions.append(encode_partition(seg, start, reg))
    fixed_size = None
    if partitioner.fixed_length and bounds:
        fixed_size = bounds[0][1] - bounds[0][0]
    return CompressedArray(len(values), partitions, fixed_size, "linear")


def decompress(compressed: CompressedArray | bytes) -> np.ndarray:
    """Inverse of :func:`compress`; accepts the object or its bytes.

    Byte inputs may be either a raw ``CompressedArray`` image or any
    registered codec's self-describing envelope
    (:func:`repro.codecs.from_bytes`).
    """
    if isinstance(compressed, (bytes, bytearray)):
        blob = bytes(compressed)
        from repro import codecs

        if blob[:4] == codecs.MAGIC:
            return np.asarray(codecs.from_bytes(blob).decode_all())
        compressed = CompressedArray.from_bytes(blob)
    return compressed.decode_all()
