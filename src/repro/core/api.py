"""High-level public API of the LeCo library.

Typical usage::

    import numpy as np
    from repro import compress, decompress

    keys = np.cumsum(np.random.poisson(40, 100_000))
    arr = compress(keys)               # CompressedArray
    arr[12_345]                        # random access, no full decode
    assert np.array_equal(decompress(arr), keys)

``mode`` picks the partitioning strategy: ``"fix"`` (sampling-searched
fixed-length partitions), ``"var"`` (split–merge variable-length), or
``"auto"`` (hardness-based advice, §3.2.3).  ``regressor="auto"`` lets the
Hyperparameter-Advisor recommend a model family per partition (§3.1).
"""

from __future__ import annotations

import numpy as np

from repro.core.advisor import RegressorSelector
from repro.core.encoding import CompressedArray, LecoEncoder, encode_partition
from repro.core.partitioners import (
    AutoFixedPartitioner,
    SplitMergePartitioner,
    advise_partitioning,
)
from repro.core.regressors import get_regressor

_SELECTOR: RegressorSelector | None = None


def _selector() -> RegressorSelector:
    global _SELECTOR
    if _SELECTOR is None:
        _SELECTOR = RegressorSelector()
    return _SELECTOR


def compress(values: np.ndarray, mode: str = "fix",
             regressor: str = "linear", tau: float = 0.05,
             max_partition_size: int = 10_000) -> CompressedArray:
    """Compress an integer sequence with LeCo.

    Parameters
    ----------
    values:
        Any integer numpy array (or list) within the int64 range.
    mode:
        ``"fix"``, ``"var"``, or ``"auto"`` (advisor decides fix vs var).
    regressor:
        A registered regressor name, or ``"auto"`` for the per-partition
        Regressor Selector.
    """
    values = np.asarray(values)
    if mode not in ("fix", "var", "auto"):
        raise ValueError(f"mode must be fix/var/auto, got {mode!r}")
    if mode == "auto":
        report = advise_partitioning(values.astype(np.int64))
        mode = "var" if report.recommend_variable else "fix"

    if regressor == "auto":
        return _compress_mixed(values.astype(np.int64), mode, tau,
                               max_partition_size)
    encoder = LecoEncoder(
        regressor=regressor,
        partitioner="variable" if mode == "var" else "fixed",
        tau=tau, max_partition_size=max_partition_size)
    return encoder.encode(values)


def _compress_mixed(values: np.ndarray, mode: str, tau: float,
                    max_partition_size: int) -> CompressedArray:
    """Partition with the linear cost model, then recommend per partition."""
    planner = get_regressor("linear")
    if mode == "var":
        partitioner = SplitMergePartitioner(tau=tau)
    else:
        partitioner = AutoFixedPartitioner(max_size=max_partition_size)
    bounds = partitioner.partition(values, planner)
    selector = _selector()
    partitions = []
    for start, end in bounds:
        seg = values[start:end]
        reg = selector.recommend(seg)
        if len(seg) < reg.min_partition_size:
            reg = get_regressor("constant")
        partitions.append(encode_partition(seg, start, reg))
    fixed_size = None
    if partitioner.fixed_length and bounds:
        fixed_size = bounds[0][1] - bounds[0][0]
    return CompressedArray(len(values), partitions, fixed_size, "linear")


def decompress(compressed: CompressedArray | bytes) -> np.ndarray:
    """Inverse of :func:`compress`; accepts the object or its bytes."""
    if isinstance(compressed, (bytes, bytearray)):
        compressed = CompressedArray.from_bytes(bytes(compressed))
    return compressed.decode_all()
