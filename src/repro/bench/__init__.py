"""Benchmark harness utilities shared by benchmarks/."""

from repro.bench.harness import Measurement, measure_codec, weighted_average
from repro.bench.report import percent, render_table

__all__ = ["Measurement", "measure_codec", "weighted_average",
           "render_table", "percent"]
