"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from collections.abc import Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str | None = None) -> str:
    """Render an aligned monospace table (right-aligned numerics)."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.3f}"
    return str(cell)


def percent(fraction: float) -> str:
    return f"{100.0 * fraction:.1f}%"
