"""Micro-benchmark harness (paper §4.2 methodology).

For each (codec, dataset) pair the harness measures:

* **compression ratio** — serialised size / natural raw size, plus the model
  share (Fig. 10's cross-hatched split);
* **random access** — latency of uniformly random point decodes.  The
  default ``access_mode="gather"`` drives the vectorised batch protocol
  (one ``gather`` over all probe positions — the engine's late-
  materialization path); ``access_mode="scalar"`` keeps the paper-faithful
  per-position ``get`` loop for point-query latency numbers;
* **decompression throughput** — full decode, raw GB/s;
* **compression throughput** — encode, raw GB/s.

All measurements run single-threaded in memory, repeated ``repeats`` times
with the mean reported, mirroring the paper's setup.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.baselines.base import Codec, EncodedSequence
from repro.datasets.registry import Dataset

_ACCESS_MODES = ("gather", "scalar")


@dataclass
class Measurement:
    """One (codec, dataset) benchmark row."""

    codec: str
    dataset: str
    compression_ratio: float
    model_ratio: float
    random_access_ns: float
    decode_gbps: float
    compress_gbps: float
    compressed_bytes: int
    access_mode: str = "gather"


def _time_once(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _measure_random_access(codec: Codec, encoded: EncodedSequence,
                           values, n_random: int, rng,
                           access_mode: str) -> float:
    """Mean per-position random-access latency in nanoseconds."""
    if access_mode == "gather" and hasattr(encoded, "gather"):
        positions = rng.integers(0, len(values), n_random)
        start = time.perf_counter()
        out = encoded.gather(positions)
        elapsed = time.perf_counter() - start
        if not np.array_equal(np.asarray(out, dtype=np.int64),
                              np.asarray(values, dtype=np.int64)[positions]):
            raise AssertionError(
                f"codec {codec.name}: gather disagrees with the input")
        return elapsed / n_random * 1e9
    # scalar loop: sequential-access codecs get a reduced probe budget
    probes = n_random if not codec.sequential_access else max(
        n_random // 100, 10)
    positions = rng.integers(0, len(values), probes)
    start = time.perf_counter()
    for pos in positions:
        encoded.get(int(pos))
    return (time.perf_counter() - start) / probes * 1e9


def measure_codec(codec: Codec, dataset: Dataset,
                  n_random: int = 2_000, repeats: int = 3,
                  seed: int = 11,
                  access_mode: str = "gather") -> Measurement:
    """Run the paper's §4.2 protocol for one codec on one dataset.

    ``access_mode="gather"`` (default) measures batch random access through
    the vectorised protocol; ``"scalar"`` loops point ``get`` calls.
    """
    if access_mode not in _ACCESS_MODES:
        raise ValueError(
            f"access_mode must be one of {_ACCESS_MODES}, got {access_mode!r}")
    values = dataset.values
    raw_bytes = dataset.uncompressed_bytes
    rng = np.random.default_rng(seed)

    encode_times = []
    encoded: EncodedSequence | None = None
    for _ in range(repeats):
        start = time.perf_counter()
        encoded = codec.encode(values)
        encode_times.append(time.perf_counter() - start)
    assert encoded is not None

    size = encoded.compressed_size_bytes()
    model_bytes = (encoded.model_size_bytes()
                   if hasattr(encoded, "model_size_bytes") else 0)

    ra_ns = _measure_random_access(codec, encoded, values, n_random, rng,
                                   access_mode)

    decode_times = [_time_once(encoded.decode_all) for _ in range(repeats)]
    out = encoded.decode_all()
    if not np.array_equal(out, np.asarray(values, dtype=np.int64)):
        raise AssertionError(
            f"codec {codec.name} is lossy on {dataset.name}")

    return Measurement(
        codec=codec.name,
        dataset=dataset.name,
        compression_ratio=size / raw_bytes,
        model_ratio=model_bytes / raw_bytes,
        random_access_ns=ra_ns,
        decode_gbps=raw_bytes / np.mean(decode_times) / 1e9,
        compress_gbps=raw_bytes / np.mean(encode_times) / 1e9,
        compressed_bytes=size,
        access_mode=access_mode,
    )


def weighted_average(measurements: list[Measurement], field: str,
                     weights: list[int] | None = None) -> float:
    """Dataset-size-weighted mean of a measurement field (paper Fig. 2)."""
    values = np.array([getattr(m, field) for m in measurements])
    if weights is None:
        weights = [m.compressed_bytes / max(m.compression_ratio, 1e-12)
                   for m in measurements]
    weights = np.asarray(weights, dtype=np.float64)
    return float((values * weights).sum() / weights.sum())
