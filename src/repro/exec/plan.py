"""Logical query plans: Scan → Filter → Project → Aggregate / HashJoin.

A :class:`Plan` is an immutable chain of logical nodes built fluently::

    plan = (Plan.scan(["sensor_id", "reading"])
            .where(col("ts").between(lo, hi))
            .aggregate({"avg_reading": ("avg", "reading")},
                       group_by="sensor_id"))
    result = plan.execute(source)          # any ColumnSource backend
    print(result.explain())                # plan + pruning counts

The plan is backend-neutral: the same object executes over a
:class:`~repro.engine.parquet.ParquetSource`, a
:class:`~repro.store.executor.StoreSource`, or an in-memory
:class:`~repro.exec.source.ArraySource`.  Physical decisions (zone-map
pruning, ``filter_range`` pushdown, residual evaluation, morsel
parallelism) happen in :func:`repro.exec.run.execute`.

Adding an operator means adding a node dataclass here plus its partial
evaluation + merge in :mod:`repro.exec.run` — NOT a new ``run_*`` helper
hard-coded against one backend (see ROADMAP "Exec notes").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exec.expr import And, Expr, expr_from_json

#: supported aggregate ops
AGG_OPS = ("sum", "count", "avg", "min", "max")
#: supported join modes
JOIN_MODES = ("semi", "inner")
#: wire version of the plan JSON layout (bump on incompatible changes)
PLAN_JSON_VERSION = 1


@dataclass(frozen=True)
class Scan:
    """Leaf: read ``columns`` (``None`` = every source column)."""

    columns: tuple | None


@dataclass(frozen=True)
class Filter:
    """Keep rows matching ``expr`` (pushdown decided at execution)."""

    expr: Expr


@dataclass(frozen=True)
class Project:
    """Narrow the output to ``columns``."""

    columns: tuple


@dataclass(frozen=True)
class Aggregate:
    """Grouped (or global, ``group_by=None``) aggregation.

    ``aggs`` maps output name -> ``(op, column)`` with op one of
    :data:`AGG_OPS`; ``count`` ignores its column.
    """

    aggs: tuple          # ((out_name, op, column), ...)
    group_by: str | None


@dataclass(frozen=True)
class HashJoin:
    """Probe this plan's rows against a built hash side.

    ``how="semi"`` keeps probe rows whose ``on`` value appears in
    ``keys``; ``how="inner"`` additionally attaches the build side's
    payload columns (``build`` maps name -> array, aligned with
    ``keys``, which must be unique).
    """

    on: str
    keys: np.ndarray
    build: tuple | None  # ((name, np.ndarray), ...) build payload
    how: str


#: nodes that terminate a plan (no further operators may follow)
_TERMINAL = (Aggregate, HashJoin)


class Plan:
    """An immutable logical operator chain (build with :meth:`scan`)."""

    def __init__(self, nodes: tuple):
        self.nodes = tuple(nodes)

    # ------------------------------------------------------------ builders
    @classmethod
    def scan(cls, columns=None) -> "Plan":
        """Start a plan reading ``columns`` (``None`` = all)."""
        cols = tuple(columns) if columns is not None else None
        if cols is not None and not cols:
            raise ValueError("scan projection cannot be empty")
        return cls((Scan(cols),))

    def _extend(self, node) -> "Plan":
        if self.nodes and isinstance(self.nodes[-1], _TERMINAL):
            raise ValueError(
                f"cannot add {type(node).__name__} after the terminal "
                f"{type(self.nodes[-1]).__name__} operator")
        return Plan(self.nodes + (node,))

    def where(self, expr: Expr) -> "Plan":
        """Filter on ``expr``; repeated calls AND together."""
        if not isinstance(expr, Expr):
            raise TypeError(f"where() wants an Expr, got {type(expr)}")
        return self._extend(Filter(expr))

    def project(self, columns) -> "Plan":
        cols = tuple(columns)
        if not cols:
            raise ValueError("projection cannot be empty")
        return self._extend(Project(cols))

    def aggregate(self, aggs: dict, group_by: str | None = None) -> "Plan":
        """Terminal grouped/global aggregation (see :class:`Aggregate`)."""
        if not aggs:
            raise ValueError("aggregate() needs at least one aggregation")
        normalized = []
        for out, (op, column) in aggs.items():
            if op not in AGG_OPS:
                raise ValueError(
                    f"unknown aggregate op {op!r}; supported: "
                    f"{', '.join(AGG_OPS)}")
            normalized.append((out, op, column))
        return self._extend(Aggregate(tuple(normalized), group_by))

    def join(self, on: str, keys=None, build: dict | None = None,
             how: str = "semi") -> "Plan":
        """Terminal hash join probing ``on`` (see :class:`HashJoin`)."""
        if how not in JOIN_MODES:
            raise ValueError(f"unknown join mode {how!r}; supported: "
                             f"{', '.join(JOIN_MODES)}")
        if build is not None:
            if on not in build:
                raise ValueError(f"build side is missing the join key "
                                 f"column {on!r}")
            keys = build[on]
        if keys is None:
            raise ValueError("join() needs keys or a build side")
        keys = np.asarray(keys, dtype=np.int64)
        payload = None
        if build is not None:
            payload = tuple(
                (name, np.asarray(colv)) for name, colv in build.items()
                if name != on)
            if how == "inner" and len(np.unique(keys)) != len(keys):
                raise ValueError("inner join build keys must be unique")
        return self._extend(HashJoin(on, keys, payload, how))

    # ----------------------------------------------------------- structure
    @property
    def scan_node(self) -> Scan:
        return self.nodes[0]

    def filter_expr(self) -> Expr | None:
        """All Filter nodes folded into one conjunction (or None)."""
        exprs = [n.expr for n in self.nodes if isinstance(n, Filter)]
        return And.of(*exprs) if exprs else None

    def terminal(self):
        """The Aggregate/HashJoin tail, or ``None`` for a row plan."""
        tail = self.nodes[-1]
        return tail if isinstance(tail, _TERMINAL) else None

    def output_columns(self, source_columns: tuple) -> tuple:
        """Columns the plan materialises, after projections."""
        cols = self.scan_node.columns or tuple(source_columns)
        for node in self.nodes:
            if isinstance(node, Project):
                cols = node.columns
        return cols

    # ------------------------------------------------------------- execute
    def execute(self, source, threads: int | None = None,
                prune: bool = True, pushdown: bool = True, **opts):
        """Run over ``source`` (see :func:`repro.exec.run.execute`).

        Resilience knobs (``on_corruption``, ``timeout_s``,
        ``io_retries``) pass through ``**opts`` verbatim.
        """
        from repro.exec.run import execute

        return execute(self, source, threads=threads, prune=prune,
                       pushdown=pushdown, **opts)

    # ----------------------------------------------------------------- wire
    def to_json(self) -> dict:
        """Plain-JSON form of the whole plan (for the serve wire layer).

        Round-trips through :meth:`from_json`: every node and every
        expression tree serialises losslessly (bitmaps as base64
        ``packbits``, build payloads as value lists).
        """
        nodes: list[dict] = []
        for node in self.nodes:
            if isinstance(node, Scan):
                nodes.append({"kind": "scan",
                              "columns": list(node.columns)
                              if node.columns is not None else None})
            elif isinstance(node, Filter):
                nodes.append({"kind": "filter",
                              "expr": node.expr.to_json()})
            elif isinstance(node, Project):
                nodes.append({"kind": "project",
                              "columns": list(node.columns)})
            elif isinstance(node, Aggregate):
                nodes.append({
                    "kind": "aggregate",
                    "aggs": [[out, op, column]
                             for out, op, column in node.aggs],
                    "group_by": node.group_by})
            else:  # HashJoin
                nodes.append({
                    "kind": "join", "on": node.on, "how": node.how,
                    "keys": [int(k) for k in node.keys],
                    "build": None if node.build is None else
                    [[name, [int(v) for v in values]]
                     for name, values in node.build]})
        return {"v": PLAN_JSON_VERSION, "nodes": nodes}

    @classmethod
    def from_json(cls, obj: dict) -> "Plan":
        """Revive a plan from its :meth:`to_json` dict.

        Re-runs every fluent-builder validation, and rejects unknown
        versions and node kinds with one-line :class:`ValueError`\\ s —
        the server forwards those verbatim instead of dying.
        """
        if not isinstance(obj, dict):
            raise ValueError(
                f"plan JSON must be a dict, got {type(obj).__name__}")
        version = obj.get("v")
        if version != PLAN_JSON_VERSION:
            raise ValueError(
                f"unsupported plan JSON version {version!r} "
                f"(this reader speaks {PLAN_JSON_VERSION})")
        nodes = obj.get("nodes")
        if not isinstance(nodes, list) or not nodes:
            raise ValueError("plan JSON carries no nodes")
        first = nodes[0]
        if not isinstance(first, dict) or first.get("kind") != "scan":
            raise ValueError("plan JSON must start with a scan node")
        try:
            plan = cls.scan(first["columns"])
            for node in nodes[1:]:
                kind = node.get("kind") if isinstance(node, dict) \
                    else None
                if kind == "filter":
                    plan = plan.where(expr_from_json(node["expr"]))
                elif kind == "project":
                    plan = plan.project(node["columns"])
                elif kind == "aggregate":
                    aggs = {out: (op, column)
                            for out, op, column in node["aggs"]}
                    if len(aggs) != len(node["aggs"]):
                        raise ValueError(
                            "aggregate JSON repeats an output name")
                    plan = plan.aggregate(aggs,
                                          group_by=node["group_by"])
                elif kind == "join":
                    build = node.get("build")
                    if build is not None:
                        build = dict(
                            [[node["on"], node["keys"]]]
                            + [[name, values]
                               for name, values in build])
                    plan = plan.join(node["on"], keys=node["keys"],
                                     build=build, how=node["how"])
                elif kind == "scan":
                    raise ValueError(
                        "plan JSON has a second scan node")
                else:
                    raise ValueError(
                        f"unknown plan node kind {kind!r}; supported: "
                        f"scan, filter, project, aggregate, join")
        except (KeyError, TypeError) as err:
            raise ValueError(f"malformed plan JSON: {err}") from err
        return plan

    # ------------------------------------------------------------- explain
    def describe_nodes(self) -> list:
        """One line per operator, innermost (Scan) last."""
        lines = []
        for node in self.nodes:
            if isinstance(node, Scan):
                cols = "*" if node.columns is None else \
                    ", ".join(node.columns)
                lines.append(f"Scan[columns=({cols})]")
            elif isinstance(node, Filter):
                lines.append(f"Filter[{node.expr!r}]")
            elif isinstance(node, Project):
                lines.append(f"Project[{', '.join(node.columns)}]")
            elif isinstance(node, Aggregate):
                parts = ", ".join(
                    f"{out}={op}({column})" if op != "count"
                    else f"{out}=count(*)"
                    for out, op, column in node.aggs)
                group = node.group_by if node.group_by else "<global>"
                lines.append(f"Aggregate[group_by={group}: {parts}]")
            elif isinstance(node, HashJoin):
                lines.append(
                    f"HashJoin[{node.how} on {node.on}, "
                    f"{len(node.keys)} build keys]")
        return lines

    def explain(self) -> str:
        """Static plan rendering (no execution counts)."""
        lines = self.describe_nodes()
        return "\n".join(f"{'  ' * i}{line}"
                         for i, line in enumerate(reversed(lines)))

    def __repr__(self) -> str:
        return f"Plan({' -> '.join(type(n).__name__ for n in self.nodes)})"
