"""Error types shared by the execution layer and its column sources.

These live in ``repro.exec`` (not ``repro.store``) because the store
imports the executor for its scan path — sources raise them upward and
the run loop maps them onto the query's error policy:

* :class:`CorruptChunkError` — a checksum or envelope failed on revive.
  ``on_corruption="raise"`` (default) propagates it naming the shard
  file, column, and row range; ``"skip"`` quarantines the chunk and
  charges :attr:`ExecStats.chunks_corrupt`.
* :class:`GranuleError` — any other worker exception, re-raised wrapped
  with granule/shard/column context after in-flight work is cancelled.
* :class:`ExecTimeout` — the query exceeded ``timeout_s``; carries the
  partial :class:`ExecStats` so callers can see how far it got.
* :class:`ServerBusy` — admission control turned the query away before
  any work ran: the shared morsel scheduler's in-flight and parked
  budgets are both full (backpressure, the opposite of a hang).
"""

from __future__ import annotations

__all__ = ["CorruptChunkError", "ExecError", "ExecTimeout", "GranuleError",
           "ServerBusy"]


class ExecError(RuntimeError):
    """Base class for execution-layer failures."""


class CorruptChunkError(ValueError):
    """A column chunk failed verification on its way out of storage.

    A :class:`ValueError` (not :class:`ExecError`): corruption is a
    *data* problem detectable outside any query — scrub and the shard
    reader raise it too.
    """

    def __init__(self, message: str, *, file: str | None = None,
                 column: str | None = None,
                 row_start: int | None = None,
                 n_rows: int | None = None):
        where = []
        if file is not None:
            where.append(f"shard {file!r}")
        if column is not None:
            where.append(f"column {column!r}")
        if row_start is not None:
            end = "?" if n_rows is None else row_start + n_rows
            where.append(f"rows [{row_start}, {end})")
        suffix = f" ({', '.join(where)})" if where else ""
        super().__init__(message + suffix)
        self.file = file
        self.column = column
        self.row_start = row_start
        self.n_rows = n_rows


class GranuleError(ExecError):
    """A granule worker failed; wraps the cause with location context.

    The original exception is chained as ``__cause__`` and kept on
    :attr:`cause`; :attr:`granule` / :attr:`shard` / :attr:`column`
    say where the work was when it died.
    """

    def __init__(self, cause: BaseException, *, granule: int,
                 shard: str | None = None, column: str | None = None):
        where = f"granule {granule}"
        if shard is not None:
            where += f" of shard {shard!r}"
        if column is not None:
            where += f", column {column!r}"
        super().__init__(
            f"{where}: {type(cause).__name__}: {cause}")
        self.cause = cause
        self.granule = granule
        self.shard = shard
        self.column = column


class ServerBusy(ExecError):
    """Admission control rejected the query: every execution slot and
    every parking slot of the scheduler is taken.  Nothing ran — retry
    later (the error is immediate by design, never a queue-forever).
    """


class ExecTimeout(ExecError):
    """``timeout_s`` elapsed; outstanding granules were cancelled.

    :attr:`stats` holds the partial :class:`~repro.exec.stats.ExecStats`
    accumulated before the deadline — enough to tell a slow plan from a
    stuck source.
    """

    def __init__(self, message: str, stats=None):
        super().__init__(message)
        self.stats = stats
