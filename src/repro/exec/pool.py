"""The shared morsel scheduler: one worker pool, many concurrent plans.

Before PR 7 every :func:`repro.exec.run.execute` call spun up its own
``ThreadPoolExecutor`` — fine for one caller, but N concurrent queries
meant N pools fighting over the same cores.  :class:`MorselScheduler`
is the process-wide replacement: a fixed set of worker threads pulls
*granules* (not whole queries) from every in-flight plan, so concurrent
queries interleave at morsel granularity on a bounded number of threads
instead of oversubscribing.

* **Policy** — ``"fair"`` round-robins one granule per in-flight query
  per turn (no query starves); ``"sjf"`` always serves the query with
  the fewest granules still queued (shortest-job-first by
  remaining-granule estimate — small selective probes overtake big full
  scans).
* **Admission control** — at most ``max_inflight`` queries execute at
  once; up to ``queue_depth`` more park in FIFO order waiting for a
  slot, and anything beyond that is rejected immediately with
  :class:`~repro.exec.errors.ServerBusy` (backpressure, never an
  unbounded pile-up).  Both default to unbounded for the in-process
  shared scheduler; the table server passes real bounds.
* **Cancellation** — each query hands in the same ``cancel`` event and
  deadline the executor's ``timeout_s`` machinery already uses.  When
  the deadline passes, queued granules are drained without running and
  workers merely finish the granule they already started — exactly the
  cooperative contract :class:`~repro.exec.errors.ExecTimeout`
  documents.

:func:`shared_scheduler` is the lazily-built process-wide instance
``execute`` uses for auto-threaded queries; servers build their own
bounded instance.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque

from repro.exec.errors import ServerBusy
from repro.obs import metrics as obs_metrics

#: cap on auto-selected worker threads (matches the executor's old cap)
MAX_AUTO_WORKERS = 8

#: scheduling policies
POLICIES = ("fair", "sjf")

# process-wide scheduler metrics, labelled by scheduler name so the
# server's bounded instance and the shared in-process one stay distinct
_M_QUERIES = obs_metrics.counter(
    "repro_sched_queries_total",
    "queries by admission outcome (admitted/rejected/expired)",
    labels=("sched", "outcome"))
_M_PARK_WAIT = obs_metrics.histogram(
    "repro_sched_park_wait_seconds",
    "time queries spent parked awaiting an execution slot",
    labels=("sched",))
_M_INFLIGHT = obs_metrics.gauge(
    "repro_sched_inflight", "queries currently executing",
    labels=("sched",))
_M_PARKED = obs_metrics.gauge(
    "repro_sched_parked", "queries currently parked for admission",
    labels=("sched",))
_M_GRANULES = obs_metrics.counter(
    "repro_sched_granules_total", "granules executed by the pool",
    labels=("sched",))


class _Job:
    """One query's granule work registered with the scheduler."""

    __slots__ = ("fn", "queue", "results", "outstanding", "failure",
                 "cancel", "deadline", "done", "executed", "descriptor",
                 "trace", "t_enqueued")

    def __init__(self, fn, items, cancel, deadline, descriptor=None,
                 trace=None):
        self.fn = fn
        self.queue = deque(enumerate(items))
        self.results = [None] * len(items)
        self.outstanding = len(items)
        self.failure: BaseException | None = None
        self.cancel = cancel
        self.deadline = deadline
        self.done = threading.Event()
        self.executed = 0  # granules actually run (metrics, batched)
        # picklable query descriptor for process tiers (None = the job
        # can only run in-driver via ``fn``)
        self.descriptor = descriptor
        # the query's Trace (or None): process tiers fold worker-side
        # spans into it as results come off the lane pipes
        self.trace = trace
        self.t_enqueued = time.perf_counter()

    @property
    def remaining(self) -> int:
        """Granules still queued (the SJF job-size estimate)."""
        return len(self.queue)


class MorselScheduler:
    """Process-wide worker pool interleaving granules of many queries.

    Thread-safe; queries enter through :meth:`run_query` (blocking until
    their granules finish) and the pool never grows past ``workers``
    threads no matter how many queries are in flight.
    """

    #: which execution tier this scheduler is ("thread" / "process")
    tier = "thread"
    #: True when run_query callers should build a picklable query
    #: descriptor (the process tier ships those to worker processes)
    wants_descriptors = False

    def __init__(self, workers: int | None = None, policy: str = "fair",
                 max_inflight: int | None = None,
                 queue_depth: int | None = None,
                 name: str = "morsel-scheduler"):
        if workers is None:
            workers = max(1, min(os.cpu_count() or 1, MAX_AUTO_WORKERS))
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; supported: "
                             f"{', '.join(POLICIES)}")
        if max_inflight is not None and max_inflight < 1:
            raise ValueError(
                f"max_inflight must be positive, got {max_inflight}")
        if queue_depth is not None and queue_depth < 0:
            raise ValueError(
                f"queue_depth must be >= 0, got {queue_depth}")
        self.workers = workers
        self.policy = policy
        self.max_inflight = max_inflight
        self.queue_depth = queue_depth
        self.name = name
        # bind label children once — admission charges them per query,
        # never paying the label lookup on the hot path
        self._m_admitted = _M_QUERIES.labels(sched=name,
                                             outcome="admitted")
        self._m_rejected = _M_QUERIES.labels(sched=name,
                                             outcome="rejected")
        self._m_expired = _M_QUERIES.labels(sched=name,
                                            outcome="expired")
        self._m_park_wait = _M_PARK_WAIT.labels(sched=name)
        self._m_inflight = _M_INFLIGHT.labels(sched=name)
        self._m_parked = _M_PARKED.labels(sched=name)
        self._m_granules = _M_GRANULES.labels(sched=name)
        self._cond = threading.Condition()
        self._ready: deque[_Job] = deque()   # jobs with queued granules
        self._admit_queue: deque[object] = deque()  # parked FIFO tickets
        self._inflight = 0
        self._closed = False
        self._shutdown = False
        # lifetime counters (the server's /stats reads these)
        self.queries_completed = 0
        self.queries_rejected = 0
        self.granules_executed = 0
        self._threads = [
            threading.Thread(target=self._worker, args=(i,), daemon=True,
                             name=f"{name}-{i}")
            for i in range(workers)]
        for thread in self._threads:
            thread.start()

    # ---------------------------------------------------------- admission
    def _admit(self, deadline: float | None, trace=None) -> bool:
        """Take an execution slot; park FIFO when full.  Returns False
        when the query's deadline expired while parked; raises
        :class:`ServerBusy` when the parking queue is itself full."""
        with self._cond:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            if self.max_inflight is None or (
                    self._inflight < self.max_inflight
                    and not self._admit_queue):
                self._inflight += 1
                self._m_admitted.inc()
                self._m_inflight.inc()
                if trace is not None:
                    now = trace.now()
                    trace.add("admit", now, now, outcome="immediate")
                return True
            if self.queue_depth is not None and \
                    len(self._admit_queue) >= self.queue_depth:
                self.queries_rejected += 1
                self._m_rejected.inc()
                raise ServerBusy(
                    f"scheduler at capacity: {self._inflight} queries in "
                    f"flight, {len(self._admit_queue)} parked "
                    f"(max_inflight={self.max_inflight}, "
                    f"queue_depth={self.queue_depth})")
            ticket = object()
            parked_at = time.perf_counter()
            self._admit_queue.append(ticket)
            self._m_parked.inc()
            try:
                while True:
                    if self._closed:
                        self._admit_queue.remove(ticket)
                        self._cond.notify_all()
                        raise RuntimeError("scheduler is closed")
                    if self._admit_queue[0] is ticket and \
                            self._inflight < self.max_inflight:
                        self._admit_queue.popleft()
                        self._inflight += 1
                        self._cond.notify_all()
                        waited = time.perf_counter() - parked_at
                        self._m_park_wait.observe(waited)
                        self._m_admitted.inc()
                        self._m_inflight.inc()
                        if trace is not None:
                            end = trace.now()
                            trace.add("park", end - waited, end,
                                      outcome="admitted")
                        return True
                    timeout = None
                    if deadline is not None:
                        timeout = deadline - time.perf_counter()
                        if timeout <= 0:
                            self._admit_queue.remove(ticket)
                            self._cond.notify_all()
                            waited = time.perf_counter() - parked_at
                            self._m_park_wait.observe(waited)
                            self._m_expired.inc()
                            if trace is not None:
                                end = trace.now()
                                trace.add("park", end - waited, end,
                                          outcome="expired")
                            return False
                    self._cond.wait(timeout)
            finally:
                self._m_parked.dec()

    def _release(self) -> None:
        with self._cond:
            self._inflight -= 1
            self.queries_completed += 1
            self._m_inflight.dec()
            self._cond.notify_all()

    # ---------------------------------------------------------- dispatch
    def _pick_job_locked(self) -> _Job:
        """Next job to serve, per policy (caller holds the lock and has
        checked ``self._ready``)."""
        if self.policy == "sjf":
            best = min(range(len(self._ready)),
                       key=lambda i: self._ready[i].remaining)
            job = self._ready[best]
            del self._ready[best]
            return job
        return self._ready.popleft()

    def _drain_locked(self, job: _Job) -> None:
        """Drop a job's queued granules without running them (deadline
        passed or a sibling granule failed)."""
        drained = len(job.queue)
        job.queue.clear()
        try:
            self._ready.remove(job)
        except ValueError:
            pass  # a worker already holds (or finished) the last granule
        job.outstanding -= drained
        if job.outstanding == 0:
            job.done.set()

    def _complete_locked(self, job: _Job, idx: int, result) -> None:
        job.results[idx] = result
        job.outstanding -= 1
        self.granules_executed += 1
        job.executed += 1  # charged to the metric once, in run_query
        if job.outstanding == 0:
            job.done.set()

    def _run_item(self, worker_idx: int, job: _Job, item):
        """Execute one granule of ``job``.  The thread tier simply calls
        the job's closure in-process; :class:`repro.par.ProcessScheduler`
        overrides this to ship descriptor-bearing jobs to the worker
        process owned by lane ``worker_idx``."""
        return job.fn(item)

    def _worker(self, worker_idx: int) -> None:
        while True:
            with self._cond:
                while not self._ready and not self._shutdown:
                    self._cond.wait()
                if self._shutdown and not self._ready:
                    return
                job = self._pick_job_locked()
                idx, item = job.queue.popleft()
                if job.queue:
                    self._ready.append(job)
            result = None
            if job.failure is None:
                try:
                    result = self._run_item(worker_idx, job, item)
                except BaseException as err:  # first failure cancels the job
                    with self._cond:
                        if job.failure is None:
                            job.failure = err
                        job.cancel.set()
                        self._drain_locked(job)
                        self._complete_locked(job, idx, None)
                    continue
            with self._cond:
                self._complete_locked(job, idx, result)

    # ------------------------------------------------------------- queries
    def run_query(self, fn, items, cancel: threading.Event,
                  deadline: float | None = None, trace=None,
                  descriptor=None) -> list:
        """Run ``fn(item)`` for every item on the shared pool.

        Blocks until the job finishes (or its deadline drains it) and
        returns results in item order — ``None`` where a granule was
        skipped by cancellation.  The first worker exception re-raises
        here; :class:`ServerBusy` raises before any work when admission
        rejects the query.  ``trace`` (a :class:`repro.obs.Trace`)
        records admit/park spans — passed explicitly, per the obs
        propagation rule.  ``descriptor`` is an optional picklable
        description of the whole query (a
        :class:`repro.par.QueryDescriptor`); the thread tier ignores it,
        a process tier uses it to run granules out-of-process.  Callers
        should only build one when the scheduler advertises
        ``wants_descriptors``.
        """
        items = list(items)
        if not self._admit(deadline, trace):
            return [None] * len(items)  # deadline spent parked: 0/N ran
        job = _Job(fn, items, cancel, deadline, descriptor, trace)
        try:
            if not items:
                return []
            with self._cond:
                self._ready.append(job)
                self._cond.notify_all()
            while not job.done.wait(
                    timeout=None if deadline is None
                    else max(deadline - time.perf_counter(), 0.0) + 0.01):
                if deadline is not None and \
                        time.perf_counter() > deadline:
                    cancel.set()
                    with self._cond:
                        self._drain_locked(job)
                    job.done.wait()  # in-flight granules finish theirs
                    break
        finally:
            self._release()
            if job.executed:
                self._m_granules.inc(job.executed)
        if job.failure is not None:
            raise job.failure
        return job.results

    # --------------------------------------------------------------- stats
    def stats(self) -> dict:
        """Current occupancy + lifetime counters (for ``/stats``)."""
        with self._cond:
            return {
                "workers": self.workers,
                "tier": self.tier,
                "policy": self.policy,
                "max_inflight": self.max_inflight,
                "queue_depth": self.queue_depth,
                "inflight": self._inflight,
                "parked": len(self._admit_queue),
                "queries_completed": self.queries_completed,
                "queries_rejected": self.queries_rejected,
                "granules_executed": self.granules_executed,
            }

    # ----------------------------------------------------------- lifecycle
    def close(self, drain: bool = True, timeout: float | None = None
              ) -> None:
        """Stop accepting queries; optionally wait for in-flight ones.

        ``drain=True`` blocks (up to ``timeout``) until every admitted
        query finishes before stopping the workers; parked queries are
        woken with an error either way.
        """
        deadline = None if timeout is None \
            else time.perf_counter() + timeout
        with self._cond:
            self._closed = True
            self._cond.notify_all()
            if drain:
                while self._inflight > 0:
                    remaining = None if deadline is None \
                        else deadline - time.perf_counter()
                    if remaining is not None and remaining <= 0:
                        break
                    self._cond.wait(remaining)
            self._shutdown = True
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout=5.0)

    def __enter__(self) -> "MorselScheduler":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# ------------------------------------------------------- shared instance
_shared: MorselScheduler | None = None
_shared_lock = threading.Lock()

#: env var overriding the lazy shared scheduler's worker count
THREADS_ENV = "REPRO_THREADS"


def _env_workers() -> int | None:
    raw = os.environ.get(THREADS_ENV)
    if raw is None or raw.strip() == "":
        return None
    try:
        workers = int(raw)
    except ValueError:
        raise ValueError(
            f"{THREADS_ENV} must be a positive integer, "
            f"got {raw!r}") from None
    if workers < 1:
        raise ValueError(
            f"{THREADS_ENV} must be a positive integer, got {raw!r}")
    return workers


def shared_scheduler() -> MorselScheduler:
    """The process-wide scheduler auto-threaded ``execute`` calls share.

    Built lazily with fair policy and unbounded admission — a plain
    ``execute`` call must never see :class:`ServerBusy` — and never
    torn down on its own: its threads are daemons.  Worker-count
    precedence: an explicit :func:`configure_shared_scheduler` call
    wins, then the ``REPRO_THREADS`` env var (read when the instance is
    lazily built), then the auto default ``min(cpu, 8)``.
    """
    global _shared
    if _shared is None:
        with _shared_lock:
            if _shared is None:
                _shared = MorselScheduler(workers=_env_workers(),
                                          name="repro-exec-shared")
    return _shared


def configure_shared_scheduler(workers: int | None = None,
                               policy: str = "fair",
                               tier: str = "thread",
                               start_method: str | None = None
                               ) -> MorselScheduler:
    """Replace the process-wide shared scheduler.

    Closes the previous instance (draining in-flight queries) and
    installs a fresh one with the requested shape.  ``workers=None``
    falls back to ``REPRO_THREADS`` and then the auto default — the
    documented precedence is *configure > env > auto*.  ``tier`` may be
    ``"process"`` to make every auto-threaded ``execute`` call run its
    granules on :class:`repro.par.ProcessScheduler` worker processes
    (``start_method`` passes through to it).  Admission stays unbounded
    either way.
    """
    if tier not in ("thread", "process"):
        raise ValueError(
            f"tier must be 'thread' or 'process', got {tier!r}")
    if workers is None:
        workers = _env_workers()
    if tier == "process":
        from repro.par import ProcessScheduler

        fresh: MorselScheduler = ProcessScheduler(
            workers=workers, policy=policy,
            start_method=start_method, name="repro-exec-shared")
    else:
        fresh = MorselScheduler(workers=workers, policy=policy,
                                name="repro-exec-shared")
    global _shared
    with _shared_lock:
        old, _shared = _shared, fresh
    if old is not None:
        old.close(drain=True, timeout=10.0)
    return fresh
