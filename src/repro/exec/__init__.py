"""``repro.exec`` — one vectorized query-execution layer, every backend.

The paper's end-to-end claims (filter → groupby, bitmap aggregation,
join probing) are about how learned compression changes *query* cost.
This package is the single planner/operator layer those workloads run
through, over any storage backend that implements the
:class:`~repro.exec.source.ColumnSource` protocol::

    from repro.exec import Plan, col
    from repro.store.executor import StoreSource      # persistent store
    from repro.engine.parquet import ParquetSource    # in-memory file

    plan = (Plan.scan(["sensor_id", "reading"])
            .where(col("ts").between(1_000, 2_000)
                   & col("status").isin([0, 2]))
            .aggregate({"avg_reading": ("avg", "reading")},
                       group_by="sensor_id"))

    result = plan.execute(StoreSource(table))   # or ParquetSource(file)
    result.groups                               # {sensor_id: {...}}
    print(result.explain())                     # plan + pruning counts

Predicates are small expression trees (AND/OR of per-column range,
equality, IN, and positional bitmap terms).  The executor pushes
pushable conjuncts down to the source — zone maps prune whole granules,
``filter_range`` prunes inside surviving chunks where the codec allows
— and evaluates the residual vectorized on gathered batches, morsel-
driven on a thread pool.  ``ExecStats`` unifies the accounting both old
execution paths kept separately.
"""

from repro.exec.errors import (
    CorruptChunkError,
    ExecError,
    ExecTimeout,
    GranuleError,
    ServerBusy,
)
from repro.exec.expr import (
    And,
    Bitmap,
    Col,
    Expr,
    InSet,
    Or,
    Range,
    col,
    conjuncts,
    expr_from_json,
    split_pushdown,
)
from repro.exec.plan import AGG_OPS, PLAN_JSON_VERSION, Plan
from repro.exec.pool import (
    MorselScheduler,
    configure_shared_scheduler,
    shared_scheduler,
)
from repro.exec.run import ExecResult, ExecStats, GranulePipeline, execute
from repro.exec.source import (
    ArraySource,
    ChainSource,
    ColumnSource,
    Granule,
)

__all__ = [
    "AGG_OPS",
    "And",
    "ArraySource",
    "Bitmap",
    "ChainSource",
    "Col",
    "ColumnSource",
    "CorruptChunkError",
    "ExecError",
    "ExecResult",
    "ExecStats",
    "ExecTimeout",
    "Expr",
    "GranuleError",
    "Granule",
    "GranulePipeline",
    "InSet",
    "MorselScheduler",
    "Or",
    "PLAN_JSON_VERSION",
    "Plan",
    "Range",
    "ServerBusy",
    "col",
    "configure_shared_scheduler",
    "conjuncts",
    "execute",
    "expr_from_json",
    "shared_scheduler",
    "split_pushdown",
]
