"""The ``ColumnSource`` protocol — one scan surface over every backend.

A source presents a table as an ordered list of **granules** (the
morsels of morsel-driven execution: a row group, a column-aligned chunk,
an in-memory slice) and answers three calls per granule:

* :meth:`ColumnSource.bounds` — conservative ``(zmin, zmax)`` value
  bounds for one column, or ``None`` when unknown.  Never decodes; the
  executor uses it for zone-map pruning.
* :meth:`ColumnSource.load` — the encoded sequence of one column
  restricted to the granule, charging the supplied
  :class:`~repro.exec.run.ExecStats` for bytes touched/read.  The
  returned object speaks the sequence protocol the executor needs:
  ``filter_range(lo, hi)``, ``gather(positions)``, ``decode_all()``.
* :attr:`ColumnSource.parallel_safe` — whether granules may be executed
  concurrently (sources with unlocked accounting state say ``False``
  and the executor stays on one thread).

A source may additionally implement ``implicit_filter()`` returning a
positional :class:`~repro.exec.expr.Bitmap` (or ``None``): the executor
ANDs it into every plan's predicate.  This is how a mutated store
table's deletion vectors suppress dead rows through the ordinary
expression machinery — all-dead granules prune like any bitmap, masked
rows are charged to ``ExecStats.rows_masked``, and no operator had to
learn about deletes.

Implementations in the tree:

* :class:`repro.engine.parquet.ParquetSource` — row-grouped in-memory
  files with simulated I/O charging;
* :class:`repro.store.executor.StoreSource` — the persistent sharded
  store (mmap + zone maps + chunk cache);
* :class:`ArraySource` (here) — plain in-memory columns, the zero-cost
  backend for joins over transient data and for tests.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Granule:
    """One morsel of a source: ``n_rows`` rows starting at global
    ``row_start``.  ``index`` is the source-local ordinal."""

    index: int
    row_start: int
    n_rows: int


class ColumnSource(ABC):
    """Abstract base documenting the protocol (duck typing suffices)."""

    #: may granules run concurrently on the executor's thread pool?
    parallel_safe: bool = True

    @property
    @abstractmethod
    def column_names(self) -> tuple:
        """All column names, in schema order."""

    @property
    @abstractmethod
    def n_rows(self) -> int: ...

    @abstractmethod
    def granules(self) -> tuple:
        """The ordered morsel list (:class:`Granule` instances)."""

    @abstractmethod
    def bounds(self, granule: Granule, column: str):
        """Zone map for one column of one granule, or ``None``."""

    @abstractmethod
    def load(self, granule: Granule, column: str, stats):
        """Sequence for one column of one granule, charging ``stats``."""

    def describe(self) -> str:
        """One-line label for ``explain()`` output."""
        return type(self).__name__

    def implicit_filter(self):
        """Source-implied positional ``Bitmap`` term, or ``None``."""
        return None


class ChainSource(ColumnSource):
    """Row-wise concatenation of sources sharing one schema.

    The mutation layer's read-your-writes view: the published snapshot
    (a ``StoreSource``) chained with the in-memory memtable tail (an
    ``ArraySource``).  Granules are the children's granules re-offset to
    global row coordinates; children's implicit bitmap filters — and an
    optional caller-supplied global ``live_mask`` (pending, uncommitted
    deletes) — compose into one implicit :class:`Bitmap` term.
    """

    def __init__(self, sources, live_mask=None, name: str | None = None):
        sources = tuple(sources)
        if not sources:
            raise ValueError("ChainSource needs at least one source")
        names = tuple(sources[0].column_names)
        for src in sources[1:]:
            if tuple(src.column_names) != names:
                raise ValueError(
                    f"chained source {src.describe()!r} columns "
                    f"{tuple(src.column_names)} do not match {names}")
        self._sources = sources
        self._names = names
        self._name = name
        self.parallel_safe = all(
            getattr(s, "parallel_safe", True) for s in sources)
        self._offsets = []
        self._granules: list[Granule] = []
        self._children: list[tuple[ColumnSource, Granule]] = []
        offset = 0
        for src in sources:
            self._offsets.append(offset)
            for g in src.granules():
                self._granules.append(Granule(
                    len(self._granules), offset + g.row_start, g.n_rows))
                self._children.append((src, g))
            offset += src.n_rows
        self._n = offset
        if live_mask is not None:
            live_mask = np.asarray(live_mask, dtype=bool)
            if len(live_mask) != self._n:
                raise ValueError(
                    f"live mask covers {len(live_mask)} rows, chain "
                    f"holds {self._n}")
        self._live_mask = live_mask

    @property
    def column_names(self) -> tuple:
        return self._names

    @property
    def n_rows(self) -> int:
        return self._n

    def granules(self) -> tuple:
        return tuple(self._granules)

    def bounds(self, granule: Granule, column: str):
        src, child = self._children[granule.index]
        return src.bounds(child, column)

    def load(self, granule: Granule, column: str, stats):
        src, child = self._children[granule.index]
        return src.load(child, column, stats)

    def implicit_filter(self):
        masks = []
        for src, offset in zip(self._sources, self._offsets):
            # same optional-hook probe the executor uses: duck-typed
            # sources need not implement the method at all
            hook = getattr(src, "implicit_filter", None)
            term = hook() if callable(hook) else None
            if term is not None:
                masks.append((offset, src.n_rows, term.bitmap))
        if not masks and self._live_mask is None:
            return None
        from repro.exec.expr import Bitmap

        combined = np.ones(self._n, dtype=bool) \
            if self._live_mask is None else self._live_mask.copy()
        for offset, n, bitmap in masks:
            combined[offset: offset + n] &= bitmap
        return Bitmap(combined)

    def describe(self) -> str:
        if self._name:
            return self._name
        return " + ".join(s.describe() for s in self._sources)


class _SliceView:
    """Granule-local view of an ndarray or an encoded sequence."""

    def __init__(self, backing, start: int, n: int):
        self._backing = backing
        self._start = start
        self._n = n

    def __len__(self) -> int:
        return self._n

    def _values(self) -> np.ndarray:
        if isinstance(self._backing, np.ndarray):
            return self._backing[self._start: self._start + self._n]
        return self._backing.decode_all()[self._start:
                                          self._start + self._n]

    def decode_all(self) -> np.ndarray:
        return np.asarray(self._values(), dtype=np.int64)

    def gather(self, positions: np.ndarray) -> np.ndarray:
        positions = np.asarray(positions, dtype=np.int64)
        if isinstance(self._backing, np.ndarray):
            return self._backing[self._start + positions]
        return self._backing.gather(positions + self._start)

    def filter_range(self, lo: int, hi: int) -> np.ndarray:
        if not isinstance(self._backing, np.ndarray) and \
                self._start == 0 and self._n == len(self._backing):
            # whole-sequence view: let the codec prune internally
            return self._backing.filter_range(lo, hi)
        values = self._values()
        return (values >= lo) & (values < hi)


class ArraySource(ColumnSource):
    """In-memory columns (ndarrays or encoded sequences) as a source.

    ``morsel_rows`` slices the table into fixed-size granules (``None``
    = one granule).  For ndarray columns, per-granule min/max zone maps
    are precomputed (``zone_maps=False`` disables, e.g. to benchmark
    unpruned execution); sequence-backed columns report
    ``model_bounds()`` where the codec exposes it.
    """

    parallel_safe = True

    def __init__(self, columns: dict, morsel_rows: int | None = None,
                 name: str = "memory", zone_maps: bool = True):
        if not columns:
            raise ValueError("ArraySource needs at least one column")
        self._columns = {}
        n = None
        for cname, backing in columns.items():
            if isinstance(backing, (list, tuple)):
                backing = np.asarray(backing, dtype=np.int64)
            if isinstance(backing, np.ndarray):
                backing = backing.astype(np.int64, copy=False)
            if n is None:
                n = len(backing)
            elif len(backing) != n:
                raise ValueError(f"column {cname!r} length mismatch")
            self._columns[cname] = backing
        self._n = int(n)
        self._name = name
        if morsel_rows is not None and morsel_rows <= 0:
            raise ValueError("morsel_rows must be positive")
        step = morsel_rows or max(self._n, 1)
        self._granules = tuple(
            Granule(i, start, min(step, self._n - start))
            for i, start in enumerate(range(0, max(self._n, 1), step)))
        self._bounds: dict[tuple[int, str], tuple | None] = {}
        if zone_maps:
            self._precompute_bounds()

    def _precompute_bounds(self) -> None:
        for cname, backing in self._columns.items():
            for g in self._granules:
                if g.n_rows == 0:
                    continue
                if isinstance(backing, np.ndarray):
                    seg = backing[g.row_start: g.row_start + g.n_rows]
                    self._bounds[(g.index, cname)] = (int(seg.min()),
                                                      int(seg.max()))
                elif len(self._granules) == 1:
                    bound = getattr(backing, "model_bounds",
                                    lambda: None)()
                    if bound is not None:
                        self._bounds[(g.index, cname)] = bound

    # ------------------------------------------------------------ protocol
    @property
    def column_names(self) -> tuple:
        return tuple(self._columns)

    @property
    def n_rows(self) -> int:
        return self._n

    def granules(self) -> tuple:
        return self._granules

    def bounds(self, granule: Granule, column: str):
        return self._bounds.get((granule.index, column))

    def load(self, granule: Granule, column: str, stats):
        view = _SliceView(self._columns[column], granule.row_start,
                          granule.n_rows)
        if stats is not None:
            stats.chunks_scanned += 1
            backing = self._columns[column]
            if isinstance(backing, np.ndarray):
                stats.bytes_scanned += granule.n_rows * backing.itemsize
            elif hasattr(backing, "size_bytes"):
                stats.bytes_scanned += backing.size_bytes()
        return view

    def describe(self) -> str:
        return self._name
