"""The vectorized physical executor: one engine for every backend.

:func:`execute` runs a logical :class:`~repro.exec.plan.Plan` over any
:class:`~repro.exec.source.ColumnSource`, morsel-driven: each granule
(row group / column chunk / memory slice) is an independent task on a
thread pool, and per granule the pipeline is

1. **Zone-map pruning** — ``expr.maybe_match`` against the source's
   conservative per-column bounds; failing granules are skipped without
   touching bytes (``prune=False`` disables, results identical).
2. **Pushdown filtering** — positional :class:`Bitmap` conjuncts are
   applied for free, then each pushable range conjunct runs through the
   encoded sequence's ``filter_range`` (LeCo-family codecs prune again
   at partition granularity inside the chunk).
3. **Residual predicate** — whatever the planner could not push (IN
   terms, OR trees, half-unbounded ranges) is evaluated vectorized on
   batches gathered at the surviving positions only.
4. **Late materialization** — output columns ``gather`` the survivors;
   ``pushdown=False`` instead decodes every needed column fully and
   filters afterwards (the naive baseline ``BENCH_exec.json`` measures
   against).
5. **Operator partials** — Aggregate partials are ``(sum, count, min,
   max)`` states merged exactly across granules (never merged means);
   HashJoin probes the granule's batch against the built side.

:class:`ExecStats` subsumes the store's ``ScanStats`` (granule/chunk/
byte/cache accounting) and the engine's ``QueryResult`` CPU/IO
breakdown; :meth:`ExecResult.explain` renders the plan annotated with
pruning counts and the full cost split.
"""

from __future__ import annotations

import errno
import os
import random
import threading
import time
from concurrent.futures import CancelledError, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass, field

import numpy as np

from repro.exec.errors import (CorruptChunkError, ExecTimeout,
                               GranuleError, ServerBusy)
from repro.exec.expr import And, split_pushdown
from repro.exec.plan import Aggregate, HashJoin, Plan
from repro.obs import metrics as obs_metrics

#: cap on auto-selected executor threads
MAX_AUTO_THREADS = 8

#: transient-read retry budget per granule load (EIO only)
DEFAULT_IO_RETRIES = 2

# process-wide executor metrics — charged ONCE per query from the merged
# ExecStats (never per row, never per granule), so always-on cost is a
# handful of lock acquisitions per execute() call
_M_QUERIES = obs_metrics.counter(
    "repro_exec_queries_total", "plan executions by terminal status",
    labels=("status",))
_M_QUERY_STATUS = {s: _M_QUERIES.labels(status=s)
                   for s in ("ok", "timeout", "error", "busy")}
_M_GRANULES = obs_metrics.counter(
    "repro_exec_granules_total", "granules examined by outcome",
    labels=("outcome",))
_M_GRANULES_RUN = _M_GRANULES.labels(outcome="executed")
_M_GRANULES_PRUNED = _M_GRANULES.labels(outcome="pruned")
_M_ROWS = obs_metrics.counter(
    "repro_exec_rows_total", "rows surviving filters / masked away",
    labels=("kind",))
_M_ROWS_SCANNED = _M_ROWS.labels(kind="scanned")
_M_ROWS_MASKED = _M_ROWS.labels(kind="masked")
_M_BYTES = obs_metrics.counter(
    "repro_exec_bytes_total",
    "stored bytes of chunks scanned / actually read (cache misses)",
    labels=("kind",))
_M_BYTES_SCANNED = _M_BYTES.labels(kind="scanned")
_M_BYTES_READ = _M_BYTES.labels(kind="read")
_M_IO_RETRIES = obs_metrics.counter(
    "repro_exec_io_retries_total", "transient EIO loads retried")
_M_CORRUPT = obs_metrics.counter(
    "repro_exec_corrupt_chunks_total",
    "granules quarantined by on_corruption=skip")
_M_CPU = obs_metrics.counter(
    "repro_exec_cpu_seconds_total", "executor CPU by pipeline phase",
    labels=("phase",))
_M_CPU_PHASE = {p: _M_CPU.labels(phase=p)
                for p in ("filter", "gather", "aggregate", "join")}
_M_QUERY_SECONDS = obs_metrics.histogram(
    "repro_exec_query_seconds", "wall-clock time per plan execution")


def _charge_query_metrics(stats: ExecStats, status: str) -> None:
    """Charge the merged per-query accounting to the registry (one call
    per execute() exit — ok, timeout, error, or busy).  Zero amounts are
    skipped: every inc is a lock round-trip, and a selective query
    leaves most of these at zero — the ≤5% always-on budget is paid
    here."""
    _M_QUERY_STATUS[status].inc()
    executed = stats.granules_total - stats.granules_pruned
    if executed:
        _M_GRANULES_RUN.inc(executed)
    if stats.granules_pruned:
        _M_GRANULES_PRUNED.inc(stats.granules_pruned)
    if stats.rows_scanned:
        _M_ROWS_SCANNED.inc(stats.rows_scanned)
    if stats.rows_masked:
        _M_ROWS_MASKED.inc(stats.rows_masked)
    if stats.bytes_scanned:
        _M_BYTES_SCANNED.inc(stats.bytes_scanned)
    if stats.bytes_read:
        _M_BYTES_READ.inc(stats.bytes_read)
    if stats.io_retries:
        _M_IO_RETRIES.inc(stats.io_retries)
    if stats.chunks_corrupt:
        _M_CORRUPT.inc(stats.chunks_corrupt)
    if stats.cpu_filter_s:
        _M_CPU_PHASE["filter"].inc(stats.cpu_filter_s)
    if stats.cpu_gather_s:
        _M_CPU_PHASE["gather"].inc(stats.cpu_gather_s)
    if stats.cpu_aggregate_s:
        _M_CPU_PHASE["aggregate"].inc(stats.cpu_aggregate_s)
    if stats.cpu_join_s:
        _M_CPU_PHASE["join"].inc(stats.cpu_join_s)
    if status in ("ok", "timeout"):
        _M_QUERY_SECONDS.observe(stats.wall_s)


@dataclass
class ExecStats:
    """Work accounting for one plan execution (merged across granules).

    Subsumes the store's ``ScanStats`` (granules/chunks/bytes/cache) and
    the engine's ``QueryResult`` breakdown (CPU per phase + charged IO).
    """

    granules_total: int = 0    # granules examined by the planner
    granules_pruned: int = 0   # skipped whole via zone maps / bitmaps
    chunks_scanned: int = 0    # column chunks materialized
    bytes_scanned: int = 0     # stored bytes of materialized chunks
    bytes_read: int = 0        # stored bytes actually read (cache misses)
    reads: int = 0             # read operations charged
    cache_hits: int = 0        # chunk loads served from the LRU cache
    cache_misses: int = 0      # chunk loads the cache could not serve
    cache_evictions: int = 0   # entries this query's inserts evicted
    rows_scanned: int = 0      # rows surviving the filter
    rows_masked: int = 0       # rows positional bitmaps (e.g. deletion
    #                            vectors) suppressed in scanned granules
    chunks_corrupt: int = 0    # granules quarantined by on_corruption=skip
    io_retries: int = 0        # transient EIO loads retried successfully
    cpu_filter_s: float = 0.0
    cpu_gather_s: float = 0.0
    cpu_aggregate_s: float = 0.0
    cpu_join_s: float = 0.0
    io_s: float = 0.0          # charged I/O time (simulated backends)
    wall_s: float = 0.0

    def merge(self, other: "ExecStats") -> None:
        self.granules_total += other.granules_total
        self.granules_pruned += other.granules_pruned
        self.chunks_scanned += other.chunks_scanned
        self.bytes_scanned += other.bytes_scanned
        self.bytes_read += other.bytes_read
        self.reads += other.reads
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.cache_evictions += other.cache_evictions
        self.rows_scanned += other.rows_scanned
        self.rows_masked += other.rows_masked
        self.chunks_corrupt += other.chunks_corrupt
        self.io_retries += other.io_retries
        self.cpu_filter_s += other.cpu_filter_s
        self.cpu_gather_s += other.cpu_gather_s
        self.cpu_aggregate_s += other.cpu_aggregate_s
        self.cpu_join_s += other.cpu_join_s
        self.io_s += other.io_s

    @property
    def cpu_s(self) -> float:
        return (self.cpu_filter_s + self.cpu_gather_s
                + self.cpu_aggregate_s + self.cpu_join_s)

    @property
    def total_s(self) -> float:
        return self.cpu_s + self.io_s


@dataclass
class ExecResult:
    """Output of one execution: rows or groups, plus accounting."""

    columns: dict
    row_ids: np.ndarray
    groups: dict | None
    stats: ExecStats
    plan: Plan
    source_desc: str
    pushed_desc: tuple = ()
    residual_desc: str | None = None
    pushdown: bool = True
    implicit_desc: str | None = None  # source-implied term (deletion
    #                                   vectors), ANDed into the filter
    trace: object | None = None  # the repro.obs.Trace when traced

    @property
    def n_rows(self) -> int:
        return len(self.row_ids)

    def explain(self) -> str:
        """The executed plan, annotated with pruning counts and costs."""
        stats = self.stats
        lines: list[str] = []
        for node in reversed(self.plan.nodes):
            name = type(node).__name__
            if name == "Scan":
                cols = "*" if node.columns is None else \
                    ", ".join(node.columns)
                lines.append(f"Scan[{self.source_desc}, columns=({cols})]")
            elif name == "Filter":
                continue  # folded into one pushdown summary below
            elif name == "Project":
                lines.append(f"Project[{', '.join(node.columns)}]")
            else:  # Aggregate / HashJoin: reuse the static rendering
                lines.append(Plan((node,)).describe_nodes()[0])
        # one combined filter line sits directly above the scan; the
        # source's implicit term (deletion vectors) renders here too even
        # when the plan itself carries no Filter node
        if self.plan.filter_expr() is not None or self.implicit_desc:
            parts = []
            if not self.pushdown:
                parts.append(f"naive: {self.residual_desc}")
            else:
                if self.pushed_desc:
                    parts.append("pushed: "
                                 + " AND ".join(self.pushed_desc))
                if self.residual_desc:
                    parts.append(f"residual: {self.residual_desc}")
            lines.insert(len(lines) - 1, f"Filter[{'; '.join(parts)}]")
        tree = "\n".join(f"{'  ' * i}{line}"
                         for i, line in enumerate(lines))
        pruned = (f"granules: {stats.granules_total} total, "
                  f"{stats.granules_pruned} pruned; "
                  f"chunks: {stats.chunks_scanned} scanned; "
                  f"cache: {stats.cache_hits} hits, "
                  f"{stats.cache_misses} misses, "
                  f"{stats.cache_evictions} evicted")
        if stats.chunks_corrupt:
            pruned += f"; corrupt: {stats.chunks_corrupt} quarantined"
        if stats.io_retries:
            pruned += f"; io: {stats.io_retries} retried"
        rows = (f"rows: {stats.rows_scanned} matched, "
                f"{stats.rows_masked} masked; "
                f"bytes: {stats.bytes_scanned} scanned, "
                f"{stats.bytes_read} read")
        cpu = (f"cpu: filter {stats.cpu_filter_s * 1e3:.2f} ms, "
               f"gather {stats.cpu_gather_s * 1e3:.2f} ms, "
               f"aggregate {stats.cpu_aggregate_s * 1e3:.2f} ms, "
               f"join {stats.cpu_join_s * 1e3:.2f} ms")
        tail = (f"io: {stats.io_s * 1e3:.2f} ms charged; "
                f"wall: {stats.wall_s * 1e3:.2f} ms")
        lines_out = [tree, pruned, rows, cpu, tail]
        if self.trace is not None:
            lines_out.append(f"trace: {self.trace.summary()}")
        return "\n".join(lines_out)


@dataclass
class _Partial:
    """One granule's contribution (rows or aggregate states).

    ``spans`` is only populated by a *worker process* running a traced
    descriptor: a ``(granule_start, granule_end, extra_spans)`` tuple
    whose timestamps are absolute on the worker's ``perf_counter``
    clock.  The "granule" span ships as bare timestamps (its attrs
    are resynthesized driver-side from ``stats``); ``extra_spans`` is
    ``None`` or raw ``(name, start, end, tid, attrs)`` tuples for the
    load/filter/... spans of a granule that survived pruning.  The
    driver re-anchors everything onto the query trace via the lane's
    handshake epoch (:meth:`repro.obs.Trace.adopt`).
    """

    row_ids: np.ndarray
    columns: dict
    agg: dict | None
    stats: ExecStats = field(default_factory=ExecStats)
    spans: tuple | None = None


_EMPTY = np.empty(0, dtype=np.int64)


def _thread_count(source, n_granules: int, threads: int | None) -> int:
    if not getattr(source, "parallel_safe", True):
        # unlocked accounting state (e.g. a caller's IOModel): stay serial
        return 1
    if threads is not None:
        return max(1, threads)
    return max(1, min(n_granules, os.cpu_count() or 1, MAX_AUTO_THREADS))


def _ordered_unique(*column_lists) -> tuple:
    seen: dict[str, None] = {}
    for cols in column_lists:
        for c in cols:
            seen.setdefault(c, None)
    return tuple(seen)


# --------------------------------------------------------------- aggregate
def _agg_partial(node: Aggregate, batch: dict, n_rows: int) -> dict:
    """Per-group accumulator states for one granule's surviving rows.

    ``n_rows`` is the surviving row count — the batch may be empty of
    columns when every aggregate is a ``count`` (no values needed).
    """
    if node.group_by is None:
        return {None: tuple(_agg_state(op, batch.get(column), n_rows)
                            for _, op, column in node.aggs)}
    keys = batch[node.group_by]
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    starts = np.concatenate([[0], np.flatnonzero(np.diff(sorted_keys)) + 1])
    counts = np.diff(np.append(starts, sorted_keys.size))
    columns = {}
    for _, op, column in node.aggs:
        if op != "count" and column not in columns:
            columns[column] = batch[column][order]
    per_agg = []
    for _, op, column in node.aggs:
        if op == "count":
            per_agg.append(counts)
        elif op in ("sum", "avg"):
            per_agg.append(np.add.reduceat(columns[column], starts))
        elif op == "min":
            per_agg.append(np.minimum.reduceat(columns[column], starts))
        else:  # max
            per_agg.append(np.maximum.reduceat(columns[column], starts))
    out = {}
    for j, key in enumerate(sorted_keys[starts]):
        states = []
        for (_, op, _), values in zip(node.aggs, per_agg):
            if op == "avg":
                states.append((int(values[j]), int(counts[j])))
            else:
                states.append(int(values[j]))
        out[int(key)] = tuple(states)
    return out


def _agg_state(op: str, values, n: int):
    """Whole-batch accumulator state for a global aggregate."""
    if op == "count":
        return n
    if op in ("sum", "avg"):
        total = int(values.sum()) if n else 0
        return (total, n) if op == "avg" else total
    if n == 0:
        return None  # min/max of nothing merges as identity
    return int(values.min()) if op == "min" else int(values.max())


def _merge_states(node: Aggregate, a: tuple, b: tuple) -> tuple:
    merged = []
    for (_, op, _), sa, sb in zip(node.aggs, a, b):
        if op in ("sum", "count"):
            merged.append(sa + sb)
        elif op == "avg":
            merged.append((sa[0] + sb[0], sa[1] + sb[1]))
        elif sa is None:
            merged.append(sb)
        elif sb is None:
            merged.append(sa)
        else:
            merged.append(min(sa, sb) if op == "min" else max(sa, sb))
    return tuple(merged)


def _finalize_groups(node: Aggregate, merged: dict) -> dict:
    out = {}
    for key, states in merged.items():
        row = {}
        for (name, op, _), state in zip(node.aggs, states):
            if op == "avg":
                total, count = state
                row[name] = total / count if count else float("nan")
            else:
                row[name] = state
        out[key] = row
    return out


# -------------------------------------------------------------------- join
def _probe(node: HashJoin, out: dict, row_ids: np.ndarray,
           output_cols: tuple):
    """Probe one granule's batch; returns (row_ids, columns)."""
    probe_values = out[node.on]
    matched = np.isin(probe_values, node.keys)
    positions = np.flatnonzero(matched)
    row_ids = row_ids[positions]
    columns = {c: out[c][positions] for c in output_cols}
    if node.how == "inner" and node.build:
        order = np.argsort(node.keys, kind="stable")
        sorted_keys = node.keys[order]
        slot = np.searchsorted(sorted_keys, probe_values[positions])
        build_rows = order[slot] if slot.size else slot
        for name, values in node.build:
            columns[name] = np.asarray(values)[build_rows]
    return row_ids, columns


# ---------------------------------------------------------------- pipeline
class GranulePipeline:
    """One plan's per-granule pipeline, bound to a column source.

    Factored out of :func:`execute` so every execution tier runs the
    *identical* code path: the in-process driver calls :meth:`run` from
    scheduler threads, and a :mod:`repro.par` worker process rebuilds
    the same pipeline from a shipped descriptor (its own mmap-opened
    copy of the table) and calls :meth:`run` there.  Construction does
    the plan/source validation, implicit-filter composition and
    pushdown splitting once; :meth:`run` is pure per-granule work and
    is safe to call concurrently from many threads.
    """

    def __init__(self, plan: Plan, source, *, prune: bool = True,
                 pushdown: bool = True, on_corruption: str = "raise",
                 io_retries: int = DEFAULT_IO_RETRIES):
        if on_corruption not in ("raise", "skip"):
            raise ValueError(
                f"on_corruption must be 'raise' or 'skip', "
                f"got {on_corruption!r}")
        self.plan = plan
        self.source = source
        self.prune = prune
        self.pushdown = pushdown
        self.on_corruption = on_corruption
        self.io_retries = io_retries
        names = tuple(source.column_names)
        expr = plan.filter_expr()
        # sources may imply a filter of their own — a mutated table's
        # deletion vectors arrive as a positional Bitmap term, applied
        # through the ordinary expression machinery (no dedicated
        # operator)
        implicit = getattr(source, "implicit_filter", None)
        self.implicit_expr = implicit() if callable(implicit) else None
        if self.implicit_expr is not None:
            expr = self.implicit_expr if expr is None \
                else And.of(expr, self.implicit_expr)
        self.expr = expr
        self.terminal = terminal = plan.terminal()
        self.output_cols = output_cols = plan.output_columns(names)
        self.pred_cols = pred_cols = \
            tuple(sorted(expr.columns())) if expr is not None else ()

        if isinstance(terminal, Aggregate):
            needed = [c for _, op, c in terminal.aggs if op != "count"]
            if terminal.group_by is not None:
                needed.append(terminal.group_by)
            mat_cols = _ordered_unique(needed)
        elif isinstance(terminal, HashJoin):
            mat_cols = _ordered_unique(output_cols, (terminal.on,))
        else:
            mat_cols = output_cols
        self.mat_cols = mat_cols

        referenced = _ordered_unique(plan.scan_node.columns or (),
                                     output_cols, mat_cols, pred_cols)
        unknown = [c for c in referenced if c not in names]
        if unknown:
            raise KeyError(
                f"unknown column(s) "
                f"{', '.join(repr(c) for c in unknown)}; "
                f"available: {', '.join(names)}")

        if pushdown:
            self.ranges, self.bitmaps, self.residual = \
                split_pushdown(expr)
        else:
            self.ranges, self.bitmaps, self.residual = {}, (), expr

    def run(self, granule, *, cancel: threading.Event | None = None,
            deadline: float | None = None, trace=None) -> _Partial | None:
        """Run one granule; returns its partial, or ``None`` when the
        deadline passed before work started.  ``cancel`` may be ``None``
        (a par worker has no shared event — its driver abandons the
        lane instead)."""
        # cooperative cancellation: a granule that starts after the
        # deadline passed (or after a sibling failed) does no work
        if cancel is not None and cancel.is_set():
            return None
        if deadline is not None and time.perf_counter() > deadline:
            if cancel is not None:
                cancel.set()
            return None
        source = self.source
        st = ExecStats(granules_total=1)
        loaded: dict[str, object] = {}
        where = {"column": None}  # last column touched, for error context
        rng: random.Random | None = None

        def load(column: str):
            nonlocal rng
            seq = loaded.get(column)
            if seq is not None:
                return seq
            where["column"] = column
            t_load = trace.now() if trace is not None else 0.0
            pre_hits = st.cache_hits
            attempt = 0
            while True:
                try:
                    seq = source.load(granule, column, st)
                    break
                except OSError as err:
                    # only EIO is plausibly transient; seeded jittered
                    # backoff keeps a failing schedule replayable
                    if err.errno != errno.EIO or \
                            attempt >= self.io_retries:
                        raise
                    attempt += 1
                    st.io_retries += 1
                    if rng is None:
                        rng = random.Random(0x9E3779B9 ^ granule.index)
                    time.sleep(rng.uniform(0.0005, 0.002) * attempt)
            loaded[column] = seq
            if trace is not None:
                trace.add("load", t_load, trace.now(),
                          granule=granule.index, column=column,
                          cache_hit=st.cache_hits > pre_hits)
            return seq

        t_span = trace.now() if trace is not None else 0.0
        try:
            part = self._pipeline(granule, st, load, trace)
        except CorruptChunkError:
            if self.on_corruption == "skip":
                st.chunks_corrupt += 1
                part = _Partial(_EMPTY,
                                {c: _EMPTY for c in self.output_cols},
                                None, st)
            else:
                if cancel is not None:
                    cancel.set()
                raise
        except GranuleError:
            if cancel is not None:
                cancel.set()
            raise
        except Exception as err:
            if cancel is not None:
                cancel.set()
            shard_of = getattr(source, "granule_shard", None)
            raise GranuleError(
                err, granule=granule.index,
                shard=shard_of(granule) if callable(shard_of) else None,
                column=where["column"]) from err
        if trace is not None:
            trace.add("granule", t_span, trace.now(),
                      granule=granule.index,
                      pruned=bool(st.granules_pruned),
                      cache_hits=st.cache_hits,
                      cache_misses=st.cache_misses,
                      rows=st.rows_scanned)
        return part

    def _pipeline(self, granule, st: ExecStats, load, trace) -> _Partial:
        source = self.source
        expr = self.expr
        terminal = self.terminal
        output_cols = self.output_cols
        pushdown = self.pushdown
        residual = self.residual
        n = granule.n_rows
        if expr is not None and self.prune:
            bounds = {c: source.bounds(granule, c)
                      for c in self.pred_cols}
            if not expr.maybe_match(bounds, granule.row_start, n):
                st.granules_pruned = 1
                return _Partial(_EMPTY, {c: _EMPTY for c in output_cols},
                                None, st)

        naive_batch: dict[str, np.ndarray] = {}
        residual_values: dict[str, np.ndarray] = {}
        if expr is None:
            positions = None
        elif pushdown:
            t0 = time.perf_counter()
            mask = None
            for term in self.bitmaps:
                local = term.bitmap[granule.row_start:
                                    granule.row_start + n]
                mask = local.copy() if mask is None else mask & local
            if self.bitmaps:
                st.rows_masked += n - int(mask.sum())
            for column, rng in self.ranges.items():
                if mask is not None and not mask.any():
                    break
                if rng.is_empty:
                    mask = np.zeros(n, dtype=bool)
                    break
                part = load(column).filter_range(rng.lo, rng.hi)
                mask = part if mask is None else mask & part
            positions = np.arange(n, dtype=np.int64) if mask is None \
                else np.flatnonzero(mask)
            if residual is not None and positions.size:
                batch = {c: load(c).gather(positions)
                         for c in sorted(residual.columns())}
                keep = residual.evaluate(batch,
                                         granule.row_start + positions)
                positions = positions[keep]
                # the residual gather already decoded these columns at
                # the surviving positions; reuse instead of re-gathering
                residual_values = {c: values[keep]
                                   for c, values in batch.items()}
            st.cpu_filter_s += time.perf_counter() - t0
            if trace is not None:
                trace.add("filter", t0 - trace.t0,
                          time.perf_counter() - trace.t0,
                          granule=granule.index)
        else:
            # naive: decode every predicate column fully, then compare
            for c in self.pred_cols:
                naive_batch[c] = load(c).decode_all()
            t0 = time.perf_counter()
            row_ids = granule.row_start + np.arange(n, dtype=np.int64)
            positions = np.flatnonzero(expr.evaluate(naive_batch,
                                                     row_ids))
            st.cpu_filter_s += time.perf_counter() - t0
            if trace is not None:
                trace.add("filter", t0 - trace.t0,
                          time.perf_counter() - trace.t0,
                          granule=granule.index)

        st.rows_scanned += n if positions is None else len(positions)
        if positions is not None and positions.size == 0:
            return _Partial(_EMPTY, {c: _EMPTY for c in output_cols},
                            None, st)

        t0 = time.perf_counter()
        out: dict[str, np.ndarray] = {}
        for c in self.mat_cols:
            if positions is None:
                out[c] = load(c).decode_all()
            elif c in naive_batch:
                out[c] = naive_batch[c][positions]
            elif c in residual_values:
                out[c] = residual_values[c]
            elif not pushdown:
                out[c] = load(c).decode_all()[positions]
            else:
                out[c] = load(c).gather(positions)
        st.cpu_gather_s += time.perf_counter() - t0
        if trace is not None:
            trace.add("gather", t0 - trace.t0,
                      time.perf_counter() - trace.t0,
                      granule=granule.index)
        row_ids = granule.row_start + (
            np.arange(n, dtype=np.int64) if positions is None
            else positions)

        if isinstance(terminal, Aggregate):
            t0 = time.perf_counter()
            agg = _agg_partial(terminal, out, len(row_ids))
            st.cpu_aggregate_s += time.perf_counter() - t0
            if trace is not None:
                trace.add("aggregate", t0 - trace.t0,
                          time.perf_counter() - trace.t0,
                          granule=granule.index)
            return _Partial(_EMPTY, {}, agg, st)
        if isinstance(terminal, HashJoin):
            t0 = time.perf_counter()
            row_ids, columns = _probe(terminal, out, row_ids,
                                      output_cols)
            st.cpu_join_s += time.perf_counter() - t0
            if trace is not None:
                trace.add("join", t0 - trace.t0,
                          time.perf_counter() - trace.t0,
                          granule=granule.index)
            return _Partial(row_ids, columns, None, st)
        return _Partial(row_ids, {c: out[c] for c in output_cols},
                        None, st)


# ----------------------------------------------------------------- execute
def execute(plan: Plan, source, threads: int | None = None,
            prune: bool = True, pushdown: bool = True,
            on_corruption: str = "raise",
            timeout_s: float | None = None,
            io_retries: int = DEFAULT_IO_RETRIES,
            scheduler=None, trace=None) -> ExecResult:
    """Run ``plan`` over ``source``.

    Parameters
    ----------
    threads:
        Granule-level parallelism (``None`` = auto; clamped to 1 for
        sources that are not ``parallel_safe``).  Auto-threaded queries
        run on the process-wide shared
        :class:`~repro.exec.pool.MorselScheduler` — one worker pool no
        matter how many queries are in flight; an *explicit* count
        keeps the legacy per-call pool (the pool-per-query baseline
        ``BENCH_serve.json`` measures against).
    prune:
        Zone-map granule pruning (disable for the unpruned baseline;
        results are identical).
    pushdown:
        ``False`` switches to naive decode-all-then-filter execution
        (no ``filter_range``, no late materialization) — the honest
        baseline the exec benchmark compares against.  Results are
        identical.
    on_corruption:
        ``"raise"`` (default) propagates :class:`CorruptChunkError` from
        a failed chunk checksum; ``"skip"`` quarantines the granule —
        its rows vanish from the result, :attr:`ExecStats.chunks_corrupt`
        is charged, and :meth:`ExecResult.explain` reports it.
    timeout_s:
        Wall-clock budget for the whole query.  On expiry outstanding
        granules are cancelled cooperatively and :class:`ExecTimeout`
        is raised carrying the partial stats accumulated so far.
    io_retries:
        Bounded retries (with seeded jittered backoff) for granule loads
        that fail with a transient ``EIO``; anything else — or the same
        granule failing past the budget — propagates wrapped in
        :class:`GranuleError`.
    scheduler:
        An explicit :class:`~repro.exec.pool.MorselScheduler` to run
        granules on (the table server passes its bounded instance, so
        admission control and fair/SJF interleaving apply; may raise
        :class:`~repro.exec.errors.ServerBusy`).  ``None`` uses the
        shared process pool for auto-threaded queries.
    trace:
        A :class:`repro.obs.Trace` to record spans into (pay-as-you-go:
        the default ``None`` skips all tracing).  The trace travels as
        an explicit parameter — through the scheduler's ``run_query``
        and into each granule's closure — never as a thread-local,
        because pool threads interleave granules of many queries.  The
        result carries it back as :attr:`ExecResult.trace`.
    """
    if timeout_s is not None and timeout_s <= 0:
        raise ValueError(f"timeout_s must be positive, got {timeout_s}")
    start = time.perf_counter()
    deadline = None if timeout_s is None else start + timeout_s
    cancel = threading.Event()
    pipeline = GranulePipeline(plan, source, prune=prune,
                               pushdown=pushdown,
                               on_corruption=on_corruption,
                               io_retries=io_retries)
    terminal = pipeline.terminal
    output_cols = pipeline.output_cols
    ranges, bitmaps, residual = \
        pipeline.ranges, pipeline.bitmaps, pipeline.residual
    implicit_expr = pipeline.implicit_expr

    def run_granule(granule) -> _Partial | None:
        return pipeline.run(granule, cancel=cancel, deadline=deadline,
                            trace=trace)

    granules = source.granules()
    n_threads = _thread_count(source, len(granules), threads)
    partials: list[_Partial] = []
    timed_out = False
    failure: BaseException | None = None
    try:
        if scheduler is None and (n_threads == 1 or len(granules) <= 1):
            for granule in granules:
                part = run_granule(granule)
                if part is None:
                    timed_out = True
                    break
                partials.append(part)
        elif scheduler is not None or threads is None:
            # the shared morsel scheduler: granules from every in-flight
            # query interleave on one process-wide pool (an explicit
            # ``threads=N`` keeps the legacy per-call pool below)
            from repro.exec.pool import shared_scheduler

            sched = scheduler if scheduler is not None \
                else shared_scheduler()
            kwargs = {}
            if getattr(sched, "wants_descriptors", False):
                # a process tier asks for a compact picklable descriptor
                # of the whole query; sources that cannot be described
                # (in-memory arrays, chains) return None and fall back
                # to in-driver execution on the lane threads
                from repro.par.descriptor import describe_query

                desc = describe_query(
                    plan, source, prune=prune, pushdown=pushdown,
                    on_corruption=on_corruption, io_retries=io_retries,
                    trace_enabled=trace is not None)
                if desc is not None:
                    kwargs["descriptor"] = desc
            for part in sched.run_query(run_granule, granules, cancel,
                                        deadline, trace=trace, **kwargs):
                if part is None:
                    timed_out = True
                else:
                    partials.append(part)
        else:
            with ThreadPoolExecutor(max_workers=n_threads) as pool:
                futures = [pool.submit(run_granule, g) for g in granules]
                for fut in futures:
                    if failure is not None or timed_out:
                        # first failure/timeout wins: cancel everything
                        # not yet started; running granules see the
                        # cancel event
                        fut.cancel()
                        continue
                    remaining = None if deadline is None \
                        else deadline - time.perf_counter()
                    try:
                        if remaining is not None and remaining <= 0:
                            raise FutureTimeout()
                        part = fut.result(timeout=remaining)
                    except FutureTimeout:
                        timed_out = True
                        cancel.set()
                        fut.cancel()
                        continue
                    except CancelledError:
                        continue
                    except BaseException as err:
                        failure = err
                        cancel.set()
                        fut.cancel()
                        continue
                    if part is None:
                        timed_out = True
                        cancel.set()
                        continue
                    partials.append(part)
    except BaseException as err:
        failure = err

    stats = ExecStats()
    for part in partials:
        stats.merge(part.stats)
    if failure is not None:
        stats.wall_s = time.perf_counter() - start
        _charge_query_metrics(
            stats, "busy" if isinstance(failure, ServerBusy) else "error")
        raise failure
    if timed_out:
        stats.wall_s = time.perf_counter() - start
        _charge_query_metrics(stats, "timeout")
        raise ExecTimeout(
            f"query exceeded timeout_s={timeout_s} "
            f"({len(partials)}/{len(granules)} granules completed)",
            stats=stats)

    t_merge = trace.now() if trace is not None else 0.0
    groups = None
    if isinstance(terminal, Aggregate):
        merged: dict = {}
        for part in partials:
            if not part.agg:
                continue
            for key, states in part.agg.items():
                prev = merged.get(key)
                merged[key] = states if prev is None else \
                    _merge_states(terminal, prev, states)
        groups = _finalize_groups(terminal, merged)
        row_ids, columns = _EMPTY, {}
    else:
        row_ids = np.concatenate([p.row_ids for p in partials]) \
            if partials else _EMPTY
        # inner joins append build payload columns beyond output_cols;
        # empty/pruned partials carry only the projection, so take the
        # union of names (projection order first, payload after)
        out_names = _ordered_unique(output_cols,
                                    *(tuple(p.columns) for p in partials))
        columns = {
            name: np.concatenate([
                p.columns.get(name, _EMPTY) for p in partials])
            if partials else _EMPTY.copy()
            for name in out_names
        }

    stats.wall_s = time.perf_counter() - start
    if trace is not None:
        trace.add("merge", t_merge, trace.now(),
                  partials=len(partials), granules=len(granules))
    _charge_query_metrics(stats, "ok")
    return ExecResult(
        columns=columns, row_ids=row_ids, groups=groups, stats=stats,
        plan=plan, source_desc=source.describe(),
        pushed_desc=tuple(repr(r) for r in ranges.values())
        + tuple(repr(b) for b in bitmaps),
        residual_desc=repr(residual) if residual is not None else None,
        pushdown=pushdown,
        implicit_desc=repr(implicit_expr) if implicit_expr is not None
        else None,
        trace=trace)
