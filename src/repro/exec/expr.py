"""Predicate expression trees for the execution layer.

A filter predicate is a small tree of per-column terms — range
(``lo <= v < hi``), equality (a width-1 range), ``IN``-set membership, a
positional :class:`Bitmap` — combined with :class:`And` / :class:`Or`.
Every node answers three questions, and the whole planner falls out of
them:

* :meth:`Expr.columns` — which columns evaluation needs;
* :meth:`Expr.maybe_match` — given conservative per-column value bounds
  (zone maps) for a granule, can *any* row match?  ``False`` lets the
  executor prune the granule without touching its bytes;
* :meth:`Expr.evaluate` — the exact vectorised mask over a decoded
  batch.

Top-level AND conjuncts that are plain :class:`Range` terms are
additionally *pushable*: the executor hands them to the encoded
sequences' ``filter_range`` (LeCo-family codecs prune again at partition
granularity inside the chunk); everything else is the *residual*
predicate, evaluated on gathered batches.  :func:`split_pushdown`
performs that classification.

Build expressions with the :func:`col` sugar::

    from repro.exec import col

    expr = (col("ts").between(1_000, 2_000)
            & (col("sensor_id") == 7)
            & col("status").isin([0, 2]))

Every node also serialises to a plain-JSON dict (:meth:`Expr.to_json` /
:func:`expr_from_json`) so a whole predicate can cross the wire to a
table server; bitmaps travel as base64 ``packbits`` payloads.  Unknown
node kinds reject with a one-line :class:`ValueError`.
"""

from __future__ import annotations

import base64
from dataclasses import dataclass

import numpy as np

#: bounds mapping handed to :meth:`Expr.maybe_match`: column name ->
#: conservative ``(zmin, zmax)`` (inclusive) or ``None`` when unknown
Bounds = "dict[str, tuple[int, int] | None]"


class Expr:
    """Base predicate node (combine with ``&`` and ``|``)."""

    def columns(self) -> frozenset:
        """Column names evaluation needs (positional terms need none)."""
        raise NotImplementedError

    def maybe_match(self, bounds, row_start: int, n_rows: int) -> bool:
        """Could any row of this granule match?  Conservative: ``True``
        unless the bounds (or bitmap region) *prove* no row can."""
        raise NotImplementedError

    def evaluate(self, batch: dict, row_ids: np.ndarray) -> np.ndarray:
        """Exact boolean mask over ``batch`` (``row_ids`` are global)."""
        raise NotImplementedError

    def to_json(self) -> dict:
        """Plain-JSON form (revive with :func:`expr_from_json`)."""
        raise NotImplementedError

    def __and__(self, other: "Expr") -> "Expr":
        return And.of(self, other)

    def __or__(self, other: "Expr") -> "Expr":
        return Or.of(self, other)


@dataclass(frozen=True)
class Range(Expr):
    """``lo <= column < hi`` (either side ``None`` = unbounded)."""

    column: str
    lo: int | None
    hi: int | None

    def columns(self) -> frozenset:
        return frozenset((self.column,))

    @property
    def is_empty(self) -> bool:
        return (self.lo is not None and self.hi is not None
                and self.lo >= self.hi)

    def maybe_match(self, bounds, row_start, n_rows) -> bool:
        if self.is_empty:
            return False
        band = bounds.get(self.column)
        if band is None:
            return True
        zmin, zmax = band
        if self.lo is not None and zmax < self.lo:
            return False
        if self.hi is not None and zmin >= self.hi:
            return False
        return True

    def evaluate(self, batch, row_ids) -> np.ndarray:
        values = batch[self.column]
        mask = np.ones(len(values), dtype=bool)
        if self.lo is not None:
            mask &= values >= self.lo
        if self.hi is not None:
            mask &= values < self.hi
        return mask

    def to_json(self) -> dict:
        return {"kind": "range", "column": self.column,
                "lo": self.lo, "hi": self.hi}

    def intersect(self, other: "Range") -> "Range":
        """Tightest range implied by both conjuncts (same column)."""
        if other.column != self.column:
            raise ValueError("cannot intersect ranges on different columns")
        lo = self.lo if other.lo is None else \
            other.lo if self.lo is None else max(self.lo, other.lo)
        hi = self.hi if other.hi is None else \
            other.hi if self.hi is None else min(self.hi, other.hi)
        return Range(self.column, lo, hi)

    def __repr__(self) -> str:
        if self.lo is not None and self.hi is not None:
            if self.hi == self.lo + 1:
                return f"{self.column} == {self.lo}"
            return f"{self.lo} <= {self.column} < {self.hi}"
        if self.lo is not None:
            return f"{self.column} >= {self.lo}"
        if self.hi is not None:
            return f"{self.column} < {self.hi}"
        return f"{self.column}: unbounded"


class InSet(Expr):
    """``column IN (values)`` membership."""

    def __init__(self, column: str, values):
        self.column = column
        self.values = np.unique(np.asarray(list(values), dtype=np.int64))

    def columns(self) -> frozenset:
        return frozenset((self.column,))

    def maybe_match(self, bounds, row_start, n_rows) -> bool:
        if self.values.size == 0:
            return False
        band = bounds.get(self.column)
        if band is None:
            return True
        zmin, zmax = band
        return bool(((self.values >= zmin) & (self.values <= zmax)).any())

    def evaluate(self, batch, row_ids) -> np.ndarray:
        return np.isin(batch[self.column], self.values)

    def to_json(self) -> dict:
        return {"kind": "inset", "column": self.column,
                "values": [int(v) for v in self.values]}

    def __repr__(self) -> str:
        shown = ", ".join(str(v) for v in self.values[:6])
        if self.values.size > 6:
            shown += f", ... ({self.values.size} values)"
        return f"{self.column} IN ({shown})"

    def __eq__(self, other) -> bool:
        return (isinstance(other, InSet) and other.column == self.column
                and np.array_equal(other.values, self.values))

    def __hash__(self) -> int:
        return hash((self.column, self.values.tobytes()))


class Bitmap(Expr):
    """Positional selection by a table-global boolean bitmap.

    The exec-layer form of the paper's §5.1.2 bitmap workloads: granules
    whose bitmap region is all-zero are pruned without touching bytes,
    exactly like the old per-row-group skip in the bitmap aggregation.
    """

    def __init__(self, bitmap: np.ndarray):
        self.bitmap = np.asarray(bitmap, dtype=bool)

    def columns(self) -> frozenset:
        return frozenset()

    def maybe_match(self, bounds, row_start, n_rows) -> bool:
        return bool(self.bitmap[row_start: row_start + n_rows].any())

    def evaluate(self, batch, row_ids) -> np.ndarray:
        return self.bitmap[row_ids]

    def to_json(self) -> dict:
        packed = np.packbits(self.bitmap)
        return {"kind": "bitmap", "n": int(self.bitmap.size),
                "bits": base64.b64encode(packed.tobytes()).decode("ascii")}

    def __repr__(self) -> str:
        return f"bitmap({int(self.bitmap.sum())}/{self.bitmap.size} set)"


class _Junction(Expr):
    """Shared machinery of :class:`And` / :class:`Or`."""

    def __init__(self, *children: Expr):
        flat: list[Expr] = []
        for child in children:
            if not isinstance(child, Expr):
                raise TypeError(f"not an expression: {child!r}")
            if isinstance(child, type(self)):
                flat.extend(child.children)
            else:
                flat.append(child)
        if not flat:
            raise ValueError(f"{type(self).__name__} needs children")
        self.children = tuple(flat)

    @classmethod
    def of(cls, *children: Expr) -> Expr:
        """Build, collapsing the single-child case to the child itself."""
        node = cls(*children)
        return node.children[0] if len(node.children) == 1 else node

    def columns(self) -> frozenset:
        return frozenset().union(*(c.columns() for c in self.children))

    def __eq__(self, other) -> bool:
        return type(other) is type(self) and other.children == self.children

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.children))

    def _parts(self) -> list[str]:
        return [f"({c!r})" if isinstance(c, _Junction) else repr(c)
                for c in self.children]

    def to_json(self) -> dict:
        return {"kind": "and" if isinstance(self, And) else "or",
                "children": [c.to_json() for c in self.children]}


class And(_Junction):
    def maybe_match(self, bounds, row_start, n_rows) -> bool:
        return all(c.maybe_match(bounds, row_start, n_rows)
                   for c in self.children)

    def evaluate(self, batch, row_ids) -> np.ndarray:
        mask = self.children[0].evaluate(batch, row_ids)
        for child in self.children[1:]:
            mask = mask & child.evaluate(batch, row_ids)
        return mask

    def __repr__(self) -> str:
        return " AND ".join(self._parts())


class Or(_Junction):
    def maybe_match(self, bounds, row_start, n_rows) -> bool:
        return any(c.maybe_match(bounds, row_start, n_rows)
                   for c in self.children)

    def evaluate(self, batch, row_ids) -> np.ndarray:
        mask = self.children[0].evaluate(batch, row_ids)
        for child in self.children[1:]:
            mask = mask | child.evaluate(batch, row_ids)
        return mask

    def __repr__(self) -> str:
        return " OR ".join(self._parts())


class Col:
    """Column reference sugar: comparison operators build terms."""

    def __init__(self, name: str):
        self.name = name

    def __ge__(self, value: int) -> Range:
        return Range(self.name, int(value), None)

    def __gt__(self, value: int) -> Range:
        return Range(self.name, int(value) + 1, None)

    def __lt__(self, value: int) -> Range:
        return Range(self.name, None, int(value))

    def __le__(self, value: int) -> Range:
        return Range(self.name, None, int(value) + 1)

    def __eq__(self, value) -> Range:  # type: ignore[override]
        return Range(self.name, int(value), int(value) + 1)

    def __hash__(self) -> int:
        return hash(self.name)

    def between(self, lo: int, hi: int) -> Range:
        """Half-open range ``lo <= column < hi``."""
        return Range(self.name, int(lo), int(hi))

    def isin(self, values) -> InSet:
        return InSet(self.name, values)


def col(name: str) -> Col:
    """Start an expression: ``col("ts").between(lo, hi)``."""
    return Col(name)


def expr_from_json(obj: dict) -> Expr:
    """Revive an expression from its :meth:`Expr.to_json` dict.

    Rejects unknown node kinds and malformed payloads with a one-line
    :class:`ValueError` (the wire layer forwards it verbatim).
    """
    if not isinstance(obj, dict) or "kind" not in obj:
        raise ValueError(f"expression JSON must be a dict with a 'kind', "
                         f"got {type(obj).__name__}")
    kind = obj["kind"]
    try:
        if kind == "range":
            lo, hi = obj["lo"], obj["hi"]
            return Range(str(obj["column"]),
                         None if lo is None else int(lo),
                         None if hi is None else int(hi))
        if kind == "inset":
            return InSet(str(obj["column"]), obj["values"])
        if kind == "bitmap":
            packed = np.frombuffer(
                base64.b64decode(obj["bits"], validate=True),
                dtype=np.uint8)
            n = int(obj["n"])
            if n > packed.size * 8:
                raise ValueError(
                    f"bitmap claims {n} rows but carries bits for "
                    f"at most {packed.size * 8}")
            return Bitmap(np.unpackbits(packed, count=n).astype(bool))
        if kind in ("and", "or"):
            children = [expr_from_json(c) for c in obj["children"]]
            return (And if kind == "and" else Or).of(*children)
    except (KeyError, TypeError) as err:
        raise ValueError(
            f"malformed {kind!r} expression JSON: {err}") from err
    raise ValueError(f"unknown expression kind {kind!r}; supported: "
                     f"range, inset, bitmap, and, or")


def conjuncts(expr: Expr) -> tuple[Expr, ...]:
    """Top-level AND conjuncts (the whole expression when not an AND)."""
    return expr.children if isinstance(expr, And) else (expr,)


def split_pushdown(expr: Expr | None):
    """Classify a predicate for execution.

    Returns ``(ranges, bitmaps, residual)``:

    * ``ranges`` — per-column tightest :class:`Range` merged from the
      pushable top-level conjuncts; the executor hands each one to the
      source sequence's ``filter_range`` (codec-internal pruning).
      Only fully-bounded ranges are pushed — ``filter_range(lo, hi)``
      takes int64 bounds, so a half-unbounded conjunct that did not
      merge into a closed interval stays residual (it still prunes via
      zone maps);
    * ``bitmaps`` — positional :class:`Bitmap` conjuncts, evaluated
      before any column is loaded;
    * ``residual`` — everything else (``IN`` terms, OR trees,
      half-unbounded ranges), an :class:`Expr` to evaluate on gathered
      batches, or ``None``.
    """
    if expr is None:
        return {}, (), None
    ranges: dict[str, Range] = {}
    bitmaps: list[Bitmap] = []
    rest: list[Expr] = []
    for term in conjuncts(expr):
        if isinstance(term, Range):
            prev = ranges.get(term.column)
            ranges[term.column] = term if prev is None \
                else prev.intersect(term)
        elif isinstance(term, Bitmap):
            bitmaps.append(term)
        else:
            rest.append(term)
    for column in list(ranges):
        merged = ranges[column]
        if merged.lo is None or merged.hi is None:
            rest.append(ranges.pop(column))
    residual = And.of(*rest) if rest else None
    return ranges, tuple(bitmaps), residual
