"""repro — a from-scratch reproduction of LeCo (SIGMOD'24).

LeCo (Learned Compression) removes *serial* redundancy from columnar data:
fit a lightweight regression model per partition, store only bit-packed
prediction residuals, and decode any position with one model inference plus
one slot read.

Public surface:

* :mod:`repro.codecs` — the unified codec registry, :class:`CodecSpec`,
  and the self-describing serialization envelope;
* :func:`repro.compress` / :func:`repro.decompress` — integer columns
  (thin shims over the registry);
* :class:`repro.StringCompressor` — varchar columns (§3.4);
* :mod:`repro.baselines` — FOR, RLE, Delta, Elias-Fano, rANS, FSST;
* :mod:`repro.engine` — Arrow/Parquet-like columnar engine (§5.1);
* :mod:`repro.exec` — the unified planner/operator layer (plans run
  unchanged over the engine, the store, or in-memory arrays);
* :mod:`repro.mutate` — WAL-backed mutable tables over the store
  (snapshot-isolated reads, deletion vectors, background compaction);
* :mod:`repro.kvstore` — RocksDB-like LSM store (§5.2);
* :mod:`repro.datasets` — every dataset family from the evaluation.
"""

from repro import codecs
from repro.codecs import CodecSpec
from repro.core import (
    CompressedArray,
    CompressedStrings,
    LecoEncoder,
    StringCompressor,
    compress,
    decompress,
)

__version__ = "0.1.0"

__all__ = [
    "codecs",
    "CodecSpec",
    "compress",
    "decompress",
    "CompressedArray",
    "CompressedStrings",
    "LecoEncoder",
    "StringCompressor",
    "__version__",
]
