"""CLI: ``python -m repro.obs render trace.json`` / ``... top URL``.

``render`` pretty-prints a trace file — either a plain
:meth:`Trace.to_json` payload or a slow-query-log JSONL line (it picks
the ``trace`` field out of log records automatically, along with the
record's ``worker_tier`` and per-lane granule counts).  ``--chrome``
re-emits the Chrome ``trace_event`` JSON instead, for chrome://tracing.

``top`` is the live view: it diffs two ``/metrics`` scrapes into QPS,
latency quantiles, cache hit rate, and per-lane worker activity — from
a running server (``top http://host:port/metrics``) or from a saved
snapshot pair (``top --snapshots before.txt after.txt --dt 5``).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.trace import Trace, dump_chrome, render_trace


def _load_payloads(path: str) -> list[dict]:
    """Trace payloads from ``path``: a single JSON document, or JSONL
    where each line is a trace or a slow-query record wrapping one."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    try:
        docs = [json.loads(text)]
    except json.JSONDecodeError:
        docs = [json.loads(line) for line in text.splitlines()
                if line.strip()]
    payloads = []
    for doc in docs:
        if "spans" in doc:
            payloads.append(doc)
        elif isinstance(doc.get("trace"), dict):  # slow-query record
            payload = doc["trace"]
            payload.setdefault("attrs", {})
            for key in ("table", "op", "elapsed_ms", "worker_tier"):
                if key in doc:
                    payload["attrs"].setdefault(key, doc[key])
            lanes = doc.get("lanes")
            if isinstance(lanes, dict) and lanes:
                payload["attrs"].setdefault(
                    "lanes", " ".join(f"{proc}:{count:.0f}"
                                      for proc, count
                                      in sorted(lanes.items())))
            payloads.append(payload)
        else:
            raise SystemExit(f"{path}: no trace found in record "
                             f"with keys {sorted(doc)}")
    return payloads


def _cmd_render(args: argparse.Namespace) -> int:
    for payload in _load_payloads(args.path):
        if args.chrome:
            print(dump_chrome(Trace.from_json(payload)))
        else:
            print(render_trace(payload, width=args.width))
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.obs import top as obs_top
    from repro.obs.metrics import parse_text

    if args.snapshots:
        before_path, after_path = args.snapshots
        scrapes = []
        for path in (before_path, after_path):
            with open(path, "r", encoding="utf-8") as fh:
                scrapes.append(parse_text(fh.read()))
        view = obs_top.compute_view(scrapes[0], scrapes[1], args.dt)
        print(obs_top.format_view(view))
        return 0
    if not args.url:
        raise SystemExit("top: give a /metrics URL or --snapshots")
    try:
        return obs_top.run_top(args.url, interval=args.interval,
                               iterations=args.iterations)
    except KeyboardInterrupt:
        return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="observability utilities")
    sub = parser.add_subparsers(dest="command", required=True)

    render = sub.add_parser(
        "render", help="pretty-print a trace JSON / slow-query JSONL file")
    render.add_argument("path", help="trace .json or slow-query .jsonl")
    render.add_argument("--width", type=int, default=72,
                        help="gantt bar width in characters")
    render.add_argument("--chrome", action="store_true",
                        help="emit Chrome trace_event JSON instead")
    render.set_defaults(fn=_cmd_render)

    top = sub.add_parser(
        "top", help="live rates view computed from /metrics scrapes")
    top.add_argument("url", nargs="?",
                     help="metrics endpoint, e.g. "
                          "http://127.0.0.1:9100/metrics")
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between scrapes (live mode)")
    top.add_argument("--iterations", type=int, default=0,
                     help="frames to print before exiting (0 = forever)")
    top.add_argument("--snapshots", nargs=2,
                     metavar=("BEFORE", "AFTER"),
                     help="diff two saved exposition files instead of "
                          "scraping a server")
    top.add_argument("--dt", type=float, default=1.0,
                     help="seconds between the snapshot files "
                          "(--snapshots mode)")
    top.set_defaults(fn=_cmd_top)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
