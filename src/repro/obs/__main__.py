"""CLI: ``python -m repro.obs render trace.json``.

``render`` pretty-prints a trace file — either a plain
:meth:`Trace.to_json` payload or a slow-query-log JSONL line (it picks
the ``trace`` field out of log records automatically).  ``--chrome``
re-emits the Chrome ``trace_event`` JSON instead, for chrome://tracing.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.trace import Trace, dump_chrome, render_trace


def _load_payloads(path: str) -> list[dict]:
    """Trace payloads from ``path``: a single JSON document, or JSONL
    where each line is a trace or a slow-query record wrapping one."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    try:
        docs = [json.loads(text)]
    except json.JSONDecodeError:
        docs = [json.loads(line) for line in text.splitlines()
                if line.strip()]
    payloads = []
    for doc in docs:
        if "spans" in doc:
            payloads.append(doc)
        elif isinstance(doc.get("trace"), dict):  # slow-query record
            payload = doc["trace"]
            payload.setdefault("attrs", {})
            for key in ("table", "op", "elapsed_ms"):
                if key in doc:
                    payload["attrs"].setdefault(key, doc[key])
            payloads.append(payload)
        else:
            raise SystemExit(f"{path}: no trace found in record "
                             f"with keys {sorted(doc)}")
    return payloads


def _cmd_render(args: argparse.Namespace) -> int:
    for payload in _load_payloads(args.path):
        if args.chrome:
            print(dump_chrome(Trace.from_json(payload)))
        else:
            print(render_trace(payload, width=args.width))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="observability utilities")
    sub = parser.add_subparsers(dest="command", required=True)

    render = sub.add_parser(
        "render", help="pretty-print a trace JSON / slow-query JSONL file")
    render.add_argument("path", help="trace .json or slow-query .jsonl")
    render.add_argument("--width", type=int, default=72,
                        help="gantt bar width in characters")
    render.add_argument("--chrome", action="store_true",
                        help="emit Chrome trace_event JSON instead")
    render.set_defaults(fn=_cmd_render)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
