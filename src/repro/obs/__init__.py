"""repro.obs — process-wide observability: metrics, traces, surfaces.

* :mod:`repro.obs.metrics` — thread-safe counter/gauge/histogram
  registry with Prometheus-style text exposition; every subsystem
  charges the process-wide default registry (``render_text()`` is the
  ``/metrics`` body).
* :mod:`repro.obs.trace` — per-query span tracing propagated as an
  explicit context object (``execute(..., trace=Trace())``),
  exportable as JSON or Chrome ``trace_event``.
* ``python -m repro.obs render trace.json`` — pretty-print a trace.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ReservoirQuantiles,
    counter,
    default_registry,
    gauge,
    histogram,
    parse_text,
    render_text,
    set_enabled,
)
from repro.obs.trace import Span, Trace, render_trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ReservoirQuantiles",
    "Span",
    "Trace",
    "counter",
    "default_registry",
    "gauge",
    "histogram",
    "parse_text",
    "render_text",
    "render_trace",
    "set_enabled",
]
