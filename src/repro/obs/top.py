"""``python -m repro.obs top`` — a live rates view over ``/metrics``.

Prometheus exposition is cumulative; what an operator wants is *rates*.
This module turns two scrapes (``t`` and ``t+dt``) into a one-screen
summary: QPS and request latency quantiles, executor throughput, cache
hit rate, scheduler occupancy, and — via the cross-process ``proc``
label the driver attaches to merged worker telemetry — a per-lane
breakdown of granules, cache traffic, and respawn/resend health.

Everything computes from parsed exposition text
(:func:`repro.obs.metrics.parse_text`), so the same code paths serve a
live server (``top http://host:port/metrics``) and a saved snapshot
pair (``top --snapshots before.txt after.txt``) — which is also how
the tests drive it, no HTTP involved.

Quantiles come from histogram *bucket deltas* (classic
``histogram_quantile`` linear interpolation within the winning
bucket), so p50/p99 describe only the scrape window, not the server's
whole life.
"""

from __future__ import annotations

import time
import urllib.request

from repro.obs.metrics import parse_text

__all__ = ["compute_view", "format_view", "run_top", "scrape"]


def scrape(url: str, timeout: float = 5.0) -> dict:
    """Fetch and parse one ``/metrics`` exposition."""
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        text = resp.read().decode("utf-8")
    return parse_text(text)


# ------------------------------------------------------------ extraction
def _samples(fams: dict, family: str, sample: str | None = None):
    """(labels, value) pairs of one family (optionally one sample name,
    for histogram ``_bucket``/``_sum``/``_count`` rows)."""
    entry = fams.get(family)
    if entry is None:
        return []
    want = sample or family
    return [(labels, value) for name, labels, value
            in entry["samples"] if name == want]


def counter_total(fams: dict, family: str,
                  where: dict | None = None) -> float:
    """Sum of a counter family's samples matching ``where`` (matching
    includes ``proc``-labelled worker series, so totals are
    process-tree-wide)."""
    total = 0.0
    for labels, value in _samples(fams, family):
        if where and any(labels.get(k) != v for k, v in where.items()):
            continue
        total += value
    return total


def counter_delta(prev: dict, curr: dict, family: str,
                  where: dict | None = None) -> float:
    return max(0.0, counter_total(curr, family, where)
               - counter_total(prev, family, where))


def by_label(fams: dict, family: str, label: str) -> dict[str, float]:
    """Counter totals grouped by one label's value (samples without the
    label fall under ``"driver"`` — unlabelled series are the driver's
    own activity)."""
    out: dict[str, float] = {}
    for labels, value in _samples(fams, family):
        key = labels.get(label, "driver")
        out[key] = out.get(key, 0.0) + value
    return out


def _hist_buckets(fams: dict, family: str) -> dict[float, float]:
    """Cumulative bucket counts summed across label combinations."""
    out: dict[float, float] = {}
    for labels, value in _samples(fams, family, f"{family}_bucket"):
        edge = float(labels["le"])
        out[edge] = out.get(edge, 0.0) + value
    return out


def hist_quantile(prev: dict, curr: dict, family: str,
                  q: float) -> float | None:
    """``histogram_quantile(q, rate(family_bucket))`` over the window.

    ``None`` when the family saw no observations between the scrapes.
    Linear interpolation inside the winning bucket; the +Inf bucket
    reports its lower edge (the largest finite bucket boundary).
    """
    before = _hist_buckets(prev, family)
    deltas = {edge: count - before.get(edge, 0.0)
              for edge, count in _hist_buckets(curr, family).items()}
    if not deltas:
        return None
    edges = sorted(deltas)
    total = deltas.get(float("inf"), max(deltas.values()))
    if total <= 0:
        return None
    rank = q * total
    lo_edge, lo_count = 0.0, 0.0
    for edge in edges:
        count = deltas[edge]
        if count >= rank:
            if edge == float("inf"):
                return lo_edge
            span = count - lo_count
            if span <= 0:
                return edge
            return lo_edge + (edge - lo_edge) * (rank - lo_count) / span
        lo_edge, lo_count = edge, count
    return lo_edge


def gauge_value(fams: dict, family: str,
                where: dict | None = None) -> float:
    total = 0.0
    for labels, value in _samples(fams, family):
        if where and any(labels.get(k) != v for k, v in where.items()):
            continue
        total += value
    return total


# --------------------------------------------------------------- the view
def compute_view(prev: dict, curr: dict, dt: float) -> dict:
    """Rates/deltas between two parsed scrapes, ``dt`` seconds apart."""
    dt = max(dt, 1e-9)
    requests = counter_delta(prev, curr, "repro_serve_requests_total")
    queries = counter_delta(prev, curr, "repro_exec_queries_total",
                            where={"status": "ok"})
    hits = counter_delta(prev, curr, "repro_cache_lookups_total",
                         where={"outcome": "hit"})
    misses = counter_delta(prev, curr, "repro_cache_lookups_total",
                           where={"outcome": "miss"})
    lookups = hits + misses
    lanes: dict[str, dict] = {}
    for fam, key in (("repro_par_worker_granules_total", "granules"),
                     ("repro_cache_lookups_total", "cache_lookups")):
        prev_by = by_label(prev, fam, "proc")
        for proc, value in by_label(curr, fam, "proc").items():
            if proc == "driver" and fam != "repro_cache_lookups_total":
                continue
            lanes.setdefault(proc, {})[key] = \
                max(0.0, value - prev_by.get(proc, 0.0))
    lanes.pop("driver", None)
    return {
        "dt": dt,
        "qps": requests / dt,
        "queries_per_s": queries / dt,
        "request_p50": hist_quantile(prev, curr,
                                     "repro_serve_request_seconds", 0.5),
        "request_p99": hist_quantile(prev, curr,
                                     "repro_serve_request_seconds", 0.99),
        "exec_p50": hist_quantile(prev, curr,
                                  "repro_exec_query_seconds", 0.5),
        "exec_p99": hist_quantile(prev, curr,
                                  "repro_exec_query_seconds", 0.99),
        "rows_per_s": counter_delta(
            prev, curr, "repro_exec_rows_total") / dt,
        "granules_per_s": counter_delta(
            prev, curr, "repro_exec_granules_total") / dt,
        "cache_hit_rate": (hits / lookups) if lookups else None,
        "cache_used_bytes": gauge_value(curr, "repro_cache_used_bytes"),
        "inflight": gauge_value(curr, "repro_sched_inflight"),
        "parked": gauge_value(curr, "repro_sched_parked"),
        "workers": gauge_value(curr, "repro_par_workers"),
        "respawns": counter_delta(prev, curr,
                                  "repro_par_respawns_total"),
        "needdesc": counter_delta(prev, curr,
                                  "repro_par_needdesc_total"),
        "pipe_p50": hist_quantile(
            prev, curr, "repro_par_pipe_roundtrip_seconds", 0.5),
        "pipe_p99": hist_quantile(
            prev, curr, "repro_par_pipe_roundtrip_seconds", 0.99),
        "lanes": dict(sorted(lanes.items())),
    }


def _ms(value: float | None) -> str:
    return "-" if value is None else f"{value * 1e3:.2f}ms"


def format_view(view: dict) -> str:
    """One refresh frame of the ``top`` display."""
    lines = [
        f"repro top — window {view['dt']:.1f}s",
        f"  serve   {view['qps']:8.1f} req/s   "
        f"p50 {_ms(view['request_p50'])}  p99 {_ms(view['request_p99'])}",
        f"  exec    {view['queries_per_s']:8.1f} q/s     "
        f"p50 {_ms(view['exec_p50'])}  p99 {_ms(view['exec_p99'])}   "
        f"{view['rows_per_s']:,.0f} rows/s  "
        f"{view['granules_per_s']:,.0f} granules/s",
        f"  cache   hit rate "
        + ("-" if view["cache_hit_rate"] is None
           else f"{view['cache_hit_rate'] * 100:5.1f}%")
        + f"   used {view['cache_used_bytes']:,.0f}B",
        f"  sched   inflight {view['inflight']:.0f}  "
        f"parked {view['parked']:.0f}",
    ]
    if view["workers"] or view["lanes"]:
        lines.append(
            f"  par     workers {view['workers']:.0f}  "
            f"respawns +{view['respawns']:.0f}  "
            f"needdesc +{view['needdesc']:.0f}  "
            f"pipe p50 {_ms(view['pipe_p50'])}  "
            f"p99 {_ms(view['pipe_p99'])}")
        for proc, stats in view["lanes"].items():
            lines.append(
                f"    {proc:<6} granules +{stats.get('granules', 0):.0f}"
                f"  cache lookups +{stats.get('cache_lookups', 0):.0f}")
    return "\n".join(lines)


def run_top(url: str, interval: float = 2.0, iterations: int = 0,
            out=print) -> int:
    """Scrape-diff-print loop against a live ``/metrics`` endpoint.
    ``iterations=0`` runs until interrupted."""
    prev = scrape(url)
    n = 0
    while True:
        time.sleep(interval)
        curr = scrape(url)
        out(format_view(compute_view(prev, curr, interval)))
        prev = curr
        n += 1
        if iterations and n >= iterations:
            return 0
