"""Per-query tracing: timestamped spans through the execution stack.

A :class:`Trace` is an explicit context object a caller threads through
``execute(..., trace=...)`` — the scheduler records admit/park spans,
each pool thread records its granule's load/filter/gather/aggregate
spans, the driver records the merge.  Pay-as-you-go: an untraced query
(the default) touches none of this code.

**Propagation rule: the trace travels as a parameter, never a
thread-local.**  The morsel scheduler interleaves granules of *many*
queries on the same pool threads, so any thread-keyed ambient state
would attribute spans to the wrong query.  ``run.execute`` closes over
its trace in ``run_granule``; ``MorselScheduler.run_query(trace=...)``
tags scheduling spans the same way.

Spans use ``time.perf_counter()`` offsets from the trace's birth (the
scheduler's clock), plus one wall-clock anchor (``epoch``) for log
correlation.  Export as plain JSON (:meth:`to_json`) or as Chrome's
``trace_event`` array (:meth:`to_chrome`) for chrome://tracing /
https://ui.perfetto.dev.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Span", "Trace", "render_trace"]


@dataclass(frozen=True)
class Span:
    """One timed operation: ``[start, end)`` in seconds since the
    trace's birth, attributed to the OS thread that ran it.  ``pid`` is
    0 for spans recorded in the trace's own process; spans adopted from
    a worker (see :meth:`Trace.adopt`) carry the worker's real pid."""

    name: str
    start: float
    end: float
    thread: int
    attrs: dict = field(default_factory=dict)
    pid: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start


class Trace:
    """Append-only span collection for one query.

    Thread-safe: pool threads append concurrently.  ``query`` labels
    exports; ``attrs`` carries trace-wide annotations (plan digest,
    table path, ...).
    """

    def __init__(self, query: str = "query", **attrs):
        self.query = query
        self.attrs = dict(attrs)
        self.epoch = time.time()           # wall-clock anchor
        self.t0 = time.perf_counter()      # span clock zero
        # raw (name, start, end, tid, attrs) tuples; Span objects
        # materialize lazily on read.  list.append is atomic under the
        # GIL, so the record path takes no lock — it runs once per
        # granule inside the executor's hot loop and has to stay within
        # the traced-query overhead budget.
        self._spans: list[tuple] = []

    # ------------------------------------------------------------ recording
    def now(self) -> float:
        """Seconds since the trace's birth (span-clock timestamp)."""
        return time.perf_counter() - self.t0

    def add(self, name: str, start: float, end: float, **attrs) -> None:
        """Record a span from already-measured timestamps (used where
        the code has timed the interval anyway, e.g. CPU buckets)."""
        self._spans.append(
            (name, start, end, threading.get_ident(), attrs))

    @contextmanager
    def span(self, name: str, **attrs):
        """Time a block: ``with trace.span("load", column="x"): ...``.
        Yields the mutable attrs dict so the block can annotate
        outcomes (rows loaded, cache hit, ...)."""
        start = self.now()
        try:
            yield attrs
        finally:
            self.add(name, start, self.now(), **attrs)

    def adopt(self, spans, *, shift: float, pid: int,
              proc: str | None = None) -> None:
        """Fold spans recorded on another process's clock into this
        trace.  ``spans`` are raw ``(name, start, end, tid, attrs)``
        tuples whose timestamps are absolute on the worker's
        ``perf_counter``; ``shift`` re-anchors them onto this trace's
        span clock (``worker_epoch0 - self.epoch``, where ``epoch0`` is
        the worker's wall-clock value at ``perf_counter() == 0``,
        exchanged once at lane handshake).  Each span gains the
        worker's real ``pid`` and — when given — a ``proc`` attribute
        naming the lane."""
        for name, start, end, tid, attrs in spans:
            if proc is not None:
                attrs = dict(attrs)
                attrs["proc"] = proc
            self._spans.append(
                (name, start + shift, end + shift, tid, attrs, pid))

    # ------------------------------------------------------------- reading
    @property
    def spans(self) -> list[Span]:
        return [Span(*rec) for rec in list(self._spans)]

    def __len__(self) -> int:
        return len(self._spans)

    def duration(self) -> float:
        spans = self.spans
        if not spans:
            return 0.0
        return max(s.end for s in spans) - min(s.start for s in spans)

    def summary(self) -> str:
        """One line for ``ExecResult.explain()``: span count, wall
        span, and the busiest span names by total time."""
        spans = self.spans
        if not spans:
            return "0 spans"
        by_name: dict[str, float] = {}
        for s in spans:
            by_name[s.name] = by_name.get(s.name, 0.0) + s.duration
        top = sorted(by_name.items(), key=lambda kv: -kv[1])[:3]
        hot = ", ".join(f"{name} {total * 1e3:.2f}ms"
                        for name, total in top)
        return (f"{len(spans)} spans over {self.duration() * 1e3:.2f}ms "
                f"({hot})")

    # ------------------------------------------------------------- export
    def to_json(self) -> dict:
        """Plain-JSON export (timestamps in ms since trace birth)."""
        return {
            "query": self.query,
            "epoch": self.epoch,
            "attrs": dict(self.attrs),
            "spans": [
                {"name": s.name,
                 "start_ms": s.start * 1e3,
                 "end_ms": s.end * 1e3,
                 "thread": s.thread,
                 "pid": s.pid,
                 "attrs": dict(s.attrs)}
                for s in sorted(self.spans, key=lambda s: s.start)
            ],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "Trace":
        trace = cls(payload.get("query", "query"),
                    **payload.get("attrs", {}))
        trace.epoch = payload.get("epoch", trace.epoch)
        for rec in payload.get("spans", ()):
            trace._spans.append((
                rec["name"], rec["start_ms"] / 1e3, rec["end_ms"] / 1e3,
                rec.get("thread", 0), dict(rec.get("attrs", {})),
                rec.get("pid", 0)))
        return trace

    def to_chrome(self) -> list[dict]:
        """Chrome ``trace_event`` array: complete events (``ph: "X"``)
        with microsecond timestamps on real pid/tid rows (pid 0 — spans
        recorded locally — resolves to this process's pid), sorted by
        ``ts`` (catapult wants monotonic input), preceded by
        ``process_name`` metadata rows naming each lane."""
        here = os.getpid()
        events = []
        procs: dict[int, str] = {}
        for s in sorted(self.spans, key=lambda s: s.start):
            pid = s.pid or here
            procs.setdefault(pid, "driver" if not s.pid
                             else str(s.attrs.get("proc", f"pid{pid}")))
            events.append({
                "name": s.name,
                "ph": "X",
                "ts": round(s.start * 1e6, 3),
                "dur": round(max(s.duration, 0.0) * 1e6, 3),
                "pid": pid,
                "tid": s.thread,
                "cat": "repro",
                "args": dict(s.attrs),
            })
        meta = [{"name": "process_name", "ph": "M", "pid": pid,
                 "args": {"name": label}}
                for pid, label in sorted(procs.items())]
        return meta + events


def render_trace(payload: dict, width: int = 72) -> str:
    """ASCII gantt of a :meth:`Trace.to_json` payload (the
    ``python -m repro.obs render`` output)."""
    trace = Trace.from_json(payload)
    spans = sorted(trace.spans, key=lambda s: s.start)
    lines = [f"trace: {trace.query} — {trace.summary()}"]
    for key, value in sorted(trace.attrs.items()):
        lines.append(f"  {key}: {value}")
    if not spans:
        return "\n".join(lines)
    t_lo = min(s.start for s in spans)
    t_hi = max(s.end for s in spans)
    window = max(t_hi - t_lo, 1e-9)
    tids: dict[tuple[int, int], int] = {}
    name_w = min(max(len(s.name) for s in spans), 24)
    for s in spans:
        tid = tids.setdefault((s.pid, s.thread), len(tids))
        lo = int((s.start - t_lo) / window * width)
        hi = max(int((s.end - t_lo) / window * width), lo + 1)
        bar = " " * lo + "#" * (hi - lo)
        attrs = " ".join(f"{k}={v}" for k, v in sorted(s.attrs.items()))
        lines.append(
            f"  t{tid} {s.name[:name_w]:<{name_w}} "
            f"|{bar:<{width}}| {s.duration * 1e3:8.3f}ms"
            + (f"  {attrs}" if attrs else ""))
    lines.append(f"  {'':<{name_w + 5}} "
                 f"0ms{'':<{width - 6}}{window * 1e3:.2f}ms")
    return "\n".join(lines)


def dump_chrome(trace: Trace) -> str:
    """Chrome trace JSON text (what ``--out foo.chrome.json`` writes)."""
    return json.dumps({"traceEvents": trace.to_chrome(),
                       "displayTimeUnit": "ms"}, indent=1)
