"""Process-wide metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` holds every instrument the stack exposes —
the scheduler's admission outcomes, the chunk cache's hit/miss/eviction
totals, the executor's work accounting, the WAL/flush/compaction
counters — and renders them as zero-dependency Prometheus-style text
exposition (the ``/metrics`` endpoint of the table server, and the
``metrics`` wire op).

Contracts:

* **Get-or-create by name.**  ``registry.counter(name, ...)`` returns
  the existing instrument when the name is already registered (and
  raises when the kind or label names disagree) — two ``ChunkCache``
  instances charging ``repro_cache_lookups_total`` share one series.
  The module-level :func:`counter`/:func:`gauge`/:func:`histogram`
  helpers operate on the process-wide default registry.
* **Always-on cheap.**  Every mutation is one short per-child lock
  (CPython ``+=`` is not atomic across threads — the conformance suite
  proves no increments are lost under contention).  Instrumented code
  charges *per granule / per chunk / per query*, never per row.
  :func:`set_enabled` flips a process-wide kill switch that turns every
  ``inc``/``set``/``observe`` into a no-op — the uninstrumented
  baseline ``benchmarks/bench_obs.py`` gates the ≤5 % overhead budget
  against.
* **Names** follow ``repro_<area>_<noun>[_<unit>]`` with counters
  suffixed ``_total``; label values are coerced to ``str``.

:func:`parse_text` parses the exposition format back (names, types,
labels, values) — the conformance tests round-trip every registered
instrument through it, so the rendering can never silently drift from
what a Prometheus scraper would read.

Cross-process merge: :meth:`MetricsRegistry.snapshot` captures every
local series as a compact picklable dict, :func:`snapshot_delta`
subtracts two snapshots (counters and histograms as monotonic deltas,
gauges as last-value), and :meth:`MetricsRegistry.merge` folds a delta
into this registry under a ``proc`` label — worker processes piggyback
deltas on their result envelopes and the driver's ``/metrics`` shows
the whole process tree.
"""

from __future__ import annotations

import bisect
import os
import random
import threading

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ReservoirQuantiles",
    "counter",
    "default_registry",
    "enabled",
    "gauge",
    "histogram",
    "parse_text",
    "render_text",
    "set_enabled",
    "snapshot_delta",
]

#: default histogram buckets (seconds): sub-ms through tens of seconds
DEFAULT_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
                   0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


def _env_disabled() -> bool:
    """``REPRO_OBS_DISABLED=1`` (or any truthy value) starts the process
    with instrumentation off — spawn-started workers inherit the flag
    through their ctor spec, so the kill switch reaches every tier."""
    raw = os.environ.get("REPRO_OBS_DISABLED", "").strip().lower()
    return raw not in ("", "0", "false", "no")


#: process-wide instrumentation kill switch (see :func:`set_enabled`)
_ENABLED = not _env_disabled()


def set_enabled(flag: bool) -> None:
    """Turn every instrument mutation into a no-op (``False``) or back
    on (``True``).  Registration and rendering are unaffected — series
    keep their last values while disabled."""
    global _ENABLED
    _ENABLED = bool(flag)


def enabled() -> bool:
    return _ENABLED


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n") \
                .replace('"', '\\"')


def _unescape(value: str) -> str:
    out, i = [], 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _format_value(v: float) -> str:
    if v == float("inf"):
        return "+Inf"
    if isinstance(v, bool):
        return str(int(v))
    if float(v).is_integer() and abs(v) < 1e15:
        return str(int(v))
    return repr(float(v))


def _format_labels(names: tuple[str, ...], values: tuple[str, ...]) -> str:
    if not names:
        return ""
    inner = ",".join(f'{n}="{_escape(v)}"'
                     for n, v in zip(names, values))
    return "{" + inner + "}"


class _Child:
    """One labelled series of an instrument (the ``()`` child when the
    instrument has no labels)."""

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class _CounterChild(_Child):
    def inc(self, amount: float = 1.0) -> None:
        if not _ENABLED:
            return
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount


class _GaugeChild(_Child):
    __slots__ = ("_fn",)

    def __init__(self):
        super().__init__()
        self._fn = None

    def set_function(self, fn) -> None:
        """Make this series *computed*: ``fn()`` is evaluated at render/
        read time instead of storing pushed values.  This is how multi-
        instance subsystems (one chunk cache per open table / worker)
        export one truthful aggregate gauge — each ``set()`` from N
        instances would otherwise clobber the others (last-writer-wins).
        Mutating a function-backed series is a programming error."""
        self._fn = fn

    @property
    def value(self) -> float:
        fn = self._fn
        if fn is not None:
            return float(fn())
        with self._lock:
            return self._value

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise ValueError("gauge series is function-backed; "
                             "mutate the underlying state instead")
        if not _ENABLED:
            return
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if self._fn is not None:
            raise ValueError("gauge series is function-backed; "
                             "mutate the underlying state instead")
        if not _ENABLED:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class _HistogramChild:
    __slots__ = ("_lock", "buckets", "counts", "sum", "count")

    def __init__(self, buckets: tuple[float, ...]):
        self._lock = threading.Lock()
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # +1 for the +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        if not _ENABLED:
            return
        idx = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self.counts[idx] += 1
            self.sum += value
            self.count += 1

    def snapshot(self) -> tuple[list[int], float, int]:
        """(cumulative bucket counts incl. +Inf, sum, count)."""
        with self._lock:
            counts = list(self.counts)
            total, n = self.sum, self.count
        cumulative, running = [], 0
        for c in counts:
            running += c
            cumulative.append(running)
        return cumulative, total, n

    def raw(self) -> tuple[tuple[int, ...], float, int]:
        """(per-bucket counts incl. +Inf — *not* cumulative, sum, count);
        the picklable snapshot form, subtractable bucket-wise."""
        with self._lock:
            return tuple(self.counts), self.sum, self.count

    def merge(self, counts, total: float, n: int) -> None:
        """Fold a delta of per-bucket counts/sum/count into this series
        (the driver-side half of the worker telemetry protocol)."""
        if not _ENABLED:
            return
        if len(counts) != len(self.counts):
            raise ValueError(
                f"histogram merge: bucket count mismatch "
                f"({len(counts)} != {len(self.counts)})")
        with self._lock:
            for i, c in enumerate(counts):
                self.counts[i] += c
            self.sum += total
            self.count += n


class _Instrument:
    """Named family of series; :meth:`labels` returns (and memoizes)
    one child per label-value tuple."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "",
                 labelnames: tuple[str, ...] = ()):
        _validate_name(name)
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], object] = {}
        # Series merged in from other processes, keyed by the local
        # label values *plus* the trailing ``proc`` value.  Kept apart
        # from ``_children`` so local charging, snapshot(), and the
        # labels() contract never see them.
        self._remote: dict[tuple[str, ...], object] = {}
        if not self.labelnames:
            self._children[()] = self._make_child()

    def _make_child(self):
        raise NotImplementedError

    def labels(self, **labelvalues):
        """The child series for these label values (created on first
        use).  Label keys must match the registered label names."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: labels() wants exactly "
                f"{self.labelnames}, got {tuple(labelvalues)}")
        key = tuple(str(labelvalues[n]) for n in self.labelnames)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key,
                                                  self._make_child())
        return child

    def children(self) -> dict[tuple[str, ...], object]:
        with self._lock:
            return dict(self._children)

    def remote_children(self) -> dict[tuple[str, ...], object]:
        """Merged-in series from other processes; keys are the local
        label values plus the trailing ``proc`` value."""
        with self._lock:
            return dict(self._remote)

    def _remote_child(self, key: tuple[str, ...]):
        child = self._remote.get(key)
        if child is None:
            with self._lock:
                child = self._remote.setdefault(key, self._make_child())
        return child

    def _default_child(self):
        if self.labelnames:
            raise ValueError(
                f"{self.name} is labelled by {self.labelnames}; "
                "call .labels(...) first")
        return self._children[()]


class Counter(_Instrument):
    """Monotonic counter (rendered with its ``_total`` suffix intact)."""

    kind = "counter"

    def _make_child(self):
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    @property
    def value(self) -> float:
        return self._default_child().value


class Gauge(_Instrument):
    """Point-in-time value (in-flight queries, cache bytes, ...)."""

    kind = "gauge"

    def _make_child(self):
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    def set_function(self, fn) -> None:
        """Back the (unlabelled) series with ``fn()``, evaluated at
        read/render time — see :meth:`_GaugeChild.set_function`."""
        self._default_child().set_function(fn)

    @property
    def value(self) -> float:
        return self._default_child().value


class Histogram(_Instrument):
    """Fixed-bucket histogram (cumulative ``le`` buckets + sum/count)."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 labelnames: tuple[str, ...] = (),
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        buckets = tuple(sorted(float(b) for b in buckets))
        if not buckets:
            raise ValueError("histogram needs at least one bucket")
        self.buckets = buckets
        super().__init__(name, help, labelnames)

    def _make_child(self):
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)


def _validate_name(name: str) -> None:
    ok = name and (name[0].isalpha() or name[0] == "_") and all(
        ch.isalnum() or ch == "_" for ch in name)
    if not ok:
        raise ValueError(f"bad metric name {name!r} "
                         "(want [a-zA-Z_][a-zA-Z0-9_]*)")


class MetricsRegistry:
    """Thread-safe name → instrument map with text exposition."""

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}

    # -------------------------------------------------------- registration
    def _get_or_create(self, cls, name: str, help: str,
                       labelnames: tuple[str, ...], **kwargs):
        labelnames = tuple(labelnames)
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if type(existing) is not cls or \
                        existing.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels "
                        f"{existing.labelnames}")
                return existing
            instrument = cls(name, help, labelnames, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "",
                labels: tuple[str, ...] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: tuple[str, ...] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: tuple[str, ...] = (),
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS
                  ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels,
                                   buckets=buckets)

    def get(self, name: str) -> _Instrument | None:
        with self._lock:
            return self._instruments.get(name)

    def instruments(self) -> list[_Instrument]:
        with self._lock:
            return list(self._instruments.values())

    # ---------------------------------------------------------- exposition
    def render(self) -> str:
        """Prometheus text exposition (format 0.0.4) of every series —
        local children first, then merged-in remote series with their
        extra ``proc`` label."""
        lines: list[str] = []
        for inst in sorted(self.instruments(), key=lambda i: i.name):
            if inst.help:
                lines.append(f"# HELP {inst.name} {inst.help}")
            lines.append(f"# TYPE {inst.name} {inst.kind}")
            series = [(inst.labelnames, key, child)
                      for key, child in sorted(inst.children().items())]
            series += [(inst.labelnames + ("proc",), key, child)
                       for key, child
                       in sorted(inst.remote_children().items())]
            for labelnames, key, child in series:
                if inst.kind == "histogram":
                    cumulative, total, n = child.snapshot()
                    edges = list(inst.buckets) + [float("inf")]
                    for edge, c in zip(edges, cumulative):
                        labels = _format_labels(
                            labelnames + ("le",),
                            key + (_format_value(edge),))
                        lines.append(f"{inst.name}_bucket{labels} {c}")
                    labels = _format_labels(labelnames, key)
                    lines.append(
                        f"{inst.name}_sum{labels} {_format_value(total)}")
                    lines.append(f"{inst.name}_count{labels} {n}")
                else:
                    labels = _format_labels(labelnames, key)
                    lines.append(f"{inst.name}{labels} "
                                 f"{_format_value(child.value)}")
        return "\n".join(lines) + "\n"

    # ------------------------------------------------- cross-process merge
    def snapshot(self) -> dict:
        """Picklable capture of every *local* series.

        ``{name: {"kind", "help", "labels", "series", ["buckets"]}}``
        where ``series`` maps label-value tuples to a float (counter /
        gauge — function-backed gauges are evaluated) or to
        ``(per_bucket_counts, sum, count)`` for histograms.  Remote
        series merged in from other processes are *not* re-exported:
        each process reports only its own activity, so a two-level
        merge never double-counts.
        """
        snap: dict = {}
        for inst in self.instruments():
            series: dict = {}
            for key, child in inst.children().items():
                if inst.kind == "histogram":
                    series[key] = child.raw()
                else:
                    series[key] = float(child.value)
            entry = {"kind": inst.kind, "help": inst.help,
                     "labels": inst.labelnames, "series": series}
            if inst.kind == "histogram":
                entry["buckets"] = inst.buckets
            snap[inst.name] = entry
        return snap

    def merge(self, delta: dict, proc: str) -> None:
        """Fold a :func:`snapshot_delta` into this registry under the
        ``proc`` label.  Unknown families are registered on the fly;
        kind/label/bucket disagreements raise (same contract as local
        get-or-create).  Counter and histogram payloads are *deltas*
        and accumulate; gauge payloads are last-values and overwrite.
        """
        for name, entry in delta.items():
            kind = entry["kind"]
            labels = tuple(entry["labels"])
            if kind == "counter":
                inst = self.counter(name, entry.get("help", ""), labels)
            elif kind == "gauge":
                inst = self.gauge(name, entry.get("help", ""), labels)
            elif kind == "histogram":
                inst = self.histogram(name, entry.get("help", ""),
                                      labels,
                                      tuple(entry["buckets"]))
                if inst.buckets != tuple(entry["buckets"]):
                    raise ValueError(
                        f"metric {name!r}: histogram bucket edges "
                        f"disagree across processes")
            else:
                raise ValueError(f"metric {name!r}: unknown kind "
                                 f"{kind!r} in telemetry delta")
            for key, payload in entry["series"].items():
                child = inst._remote_child(tuple(key) + (str(proc),))
                if kind == "counter":
                    child.inc(payload)
                elif kind == "gauge":
                    child.set(payload)
                else:
                    counts, total, n = payload
                    child.merge(counts, total, n)


def snapshot_delta(old: dict | None, new: dict) -> dict:
    """What changed between two :meth:`MetricsRegistry.snapshot` calls,
    in the same format — the compact payload a worker ships per result
    envelope.

    Counters and histograms subtract (monotonic, so deltas are ≥ 0; a
    registry restart — value below the old snapshot — resends the full
    new value).  Gauges are last-value and included only when changed.
    Unchanged and zero-from-birth series are dropped, so an idle worker
    produces an empty dict.
    """
    delta: dict = {}
    old = old or {}
    for name, entry in new.items():
        prev_series = old.get(name, {}).get("series", {})
        changed: dict = {}
        for key, payload in entry["series"].items():
            prev = prev_series.get(key)
            if entry["kind"] == "histogram":
                counts, total, n = payload
                if prev is not None:
                    pcounts, ptotal, pn = prev
                    if n >= pn:
                        counts = tuple(c - p
                                       for c, p in zip(counts, pcounts))
                        total, n = total - ptotal, n - pn
                if n > 0:
                    changed[key] = (counts, total, n)
            elif entry["kind"] == "counter":
                d = payload - (prev if prev is not None else 0.0)
                if d < 0:          # registry restarted: resend total
                    d = payload
                if d > 0:
                    changed[key] = d
            else:                  # gauge: last value wins
                if payload != (prev if prev is not None else 0.0):
                    changed[key] = payload
        if changed:
            slim = {k: v for k, v in entry.items() if k != "series"}
            slim["series"] = changed
            delta[name] = slim
    return delta


# ----------------------------------------------------------------- parsing
def _parse_labels(text: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    i = 0
    while i < len(text):
        eq = text.index("=", i)
        name = text[i:eq].strip().rstrip()
        assert text[eq + 1] == '"', f"unquoted label value in {text!r}"
        j = eq + 2
        raw = []
        while text[j] != '"':
            if text[j] == "\\":
                raw.append(text[j: j + 2])
                j += 2
            else:
                raw.append(text[j])
                j += 1
        labels[name] = _unescape("".join(raw))
        i = j + 1
        if i < len(text) and text[i] == ",":
            i += 1
    return labels


def parse_text(text: str) -> dict[str, dict]:
    """Parse the exposition format back into families.

    Returns ``{family_name: {"type": kind, "help": str|None,
    "samples": [(sample_name, labels_dict, value), ...]}}``.  Histogram
    ``_bucket``/``_sum``/``_count`` samples belong to their family.
    Raises on anything the renderer would never produce.
    """
    families: dict[str, dict] = {}
    current: str | None = None
    # split on "\n" only: str.splitlines() would also break lines on
    # \x0b-\x0d, \x1c-\x1e, \x85,  ... — characters that are legal
    # *unescaped* inside a quoted label value (escaping covers only
    # \n, \" and \\, as in the Prometheus exposition format)
    for line in text.split("\n"):
        line = line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            families.setdefault(
                name, {"type": None, "help": None, "samples": []})
            families[name]["help"] = help_text
            current = name
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            families.setdefault(
                name, {"type": None, "help": None, "samples": []})
            families[name]["type"] = kind.strip()
            current = name
            continue
        if line.startswith("#"):
            continue
        brace = line.find("{")
        if brace != -1:
            sample_name = line[:brace]
            end = line.rindex("}")
            labels = _parse_labels(line[brace + 1: end])
            value_text = line[end + 1:].strip()
        else:
            sample_name, _, value_text = line.partition(" ")
            labels = {}
        value = float("inf") if value_text == "+Inf" \
            else float(value_text)
        family = current
        if family is None or not sample_name.startswith(family):
            family = sample_name
            for suffix in ("_bucket", "_sum", "_count"):
                if sample_name.endswith(suffix):
                    family = sample_name[: -len(suffix)]
            families.setdefault(
                family, {"type": None, "help": None, "samples": []})
        families[family]["samples"].append((sample_name, labels, value))
    return families


# ------------------------------------------------------ latency reservoir
class ReservoirQuantiles:
    """O(1)-memory streaming quantile sketch (Vitter's algorithm R).

    A fixed-size uniform sample over *everything ever observed* — the
    table server's ``/stats`` p50/p99 read from one of these instead of
    an unbounded latency list, so a long-lived server's memory stays
    flat no matter how many requests it has answered.  Seeded, so a
    replayed request sequence yields the same sample.
    """

    def __init__(self, size: int = 1024, seed: int = 0x5EED):
        if size < 1:
            raise ValueError(f"reservoir size must be positive, got {size}")
        self.size = size
        self.count = 0          # observations ever seen
        self._values: list[float] = []
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._values)

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            if len(self._values) < self.size:
                self._values.append(float(value))
            else:
                slot = self._rng.randrange(self.count)
                if slot < self.size:
                    self._values[slot] = float(value)

    def quantiles(self, *qs: float) -> list[float]:
        """Linear-interpolated quantiles of the current sample
        (``0.0`` when nothing was observed yet)."""
        with self._lock:
            values = sorted(self._values)
        out = []
        for q in qs:
            if not values:
                out.append(0.0)
                continue
            pos = max(0.0, min(1.0, q)) * (len(values) - 1)
            lo = int(pos)
            hi = min(lo + 1, len(values) - 1)
            out.append(values[lo] + (values[hi] - values[lo])
                       * (pos - lo))
        return out

    def quantile(self, q: float) -> float:
        return self.quantiles(q)[0]


# ------------------------------------------------------- default registry
_default = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry every subsystem charges by default."""
    return _default


def counter(name: str, help: str = "",
            labels: tuple[str, ...] = ()) -> Counter:
    return _default.counter(name, help, labels)


def gauge(name: str, help: str = "",
          labels: tuple[str, ...] = ()) -> Gauge:
    return _default.gauge(name, help, labels)


def histogram(name: str, help: str = "", labels: tuple[str, ...] = (),
              buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
    return _default.histogram(name, help, labels, buckets)


def render_text() -> str:
    """Exposition text of the default registry (the ``/metrics`` body)."""
    return _default.render()
