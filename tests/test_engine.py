"""Tests for the columnar execution engine (paper §5.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    ENCODINGS,
    EncodedColumn,
    IOModel,
    ParquetLikeFile,
    block_compress,
    block_decompress,
    run_bitmap_aggregation,
    run_filter_groupby_query,
    run_hash_probe,
    zipf_cluster_bitmap,
)
from repro.engine.ops import bitmap_sum, groupby_avg

int_columns = st.lists(st.integers(-(1 << 40), 1 << 40), min_size=1,
                       max_size=300).map(
                           lambda v: np.array(v, dtype=np.int64))


class TestEncodedColumn:
    @pytest.mark.parametrize("encoding", ENCODINGS)
    @given(values=int_columns)
    @settings(max_examples=10, deadline=None)
    def test_decode_roundtrip(self, encoding, values):
        col = EncodedColumn(values, encoding, partition_size=32)
        assert np.array_equal(col.decode_all(), values)

    @pytest.mark.parametrize("encoding", ENCODINGS)
    def test_take_matches_reference(self, encoding):
        rng = np.random.default_rng(0)
        values = np.cumsum(rng.integers(0, 50, 3000)).astype(np.int64)
        col = EncodedColumn(values, encoding, partition_size=256)
        positions = rng.integers(0, 3000, 200)
        assert np.array_equal(col.take(positions), values[positions])

    @pytest.mark.parametrize("encoding", ENCODINGS)
    def test_filter_matches_reference(self, encoding):
        rng = np.random.default_rng(1)
        values = np.cumsum(rng.integers(0, 50, 3000)).astype(np.int64)
        col = EncodedColumn(values, encoding, partition_size=256)
        lo, hi = int(values[500]), int(values[800])
        expected = (values >= lo) & (values < hi)
        assert np.array_equal(col.filter_range(lo, hi), expected)

    def test_dict_falls_back_to_plain_for_unique_values(self):
        values = np.arange(1000, dtype=np.int64)
        col = EncodedColumn(values, "dict")
        assert col.encoding == "plain"
        # the fallback is no longer silent: both sides are recorded
        assert col.requested_encoding == "dict"
        assert col.effective_encoding == "plain"

    def test_requested_vs_effective_without_fallback(self):
        values = np.zeros(1000, dtype=np.int64)
        col = EncodedColumn(values, "dict")
        assert col.requested_encoding == "dict"
        assert col.effective_encoding == "dict"

    @pytest.mark.parametrize("encoding", ENCODINGS)
    def test_payload_is_self_describing(self, encoding):
        """Any column chunk revives via the envelope, scheme unseen."""
        from repro import codecs

        rng = np.random.default_rng(5)
        values = np.cumsum(rng.integers(0, 9, 2000)).astype(np.int64)
        col = EncodedColumn(values, encoding, partition_size=256)
        revived = codecs.from_bytes(col.payload_bytes())
        assert np.array_equal(revived.decode_all(), values)

    def test_dict_is_small_on_low_cardinality(self):
        rng = np.random.default_rng(2)
        values = rng.integers(0, 16, 10_000).astype(np.int64)
        dict_col = EncodedColumn(values, "dict")
        plain_col = EncodedColumn(values, "plain")
        assert dict_col.size_bytes() < plain_col.size_bytes() / 5

    def test_unknown_encoding(self):
        with pytest.raises(ValueError):
            EncodedColumn(np.arange(5), "nope")

    def test_leco_pruning_skips_partitions(self):
        """A range far below all values must touch no deltas."""
        values = (10 ** 6 + 7 * np.arange(10_000)).astype(np.int64)
        col = EncodedColumn(values, "leco", partition_size=500)
        bitmap = col.filter_range(0, 10)
        assert not bitmap.any()


class TestBlockCompression:
    @given(st.binary(max_size=5000))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip(self, data):
        assert block_decompress(block_compress(data)) == data

    def test_compresses_redundant_payloads(self):
        data = b"abcd" * 10_000
        assert len(block_compress(data)) < len(data) / 10


class TestParquetFile:
    def _table(self, n=5000, seed=0):
        rng = np.random.default_rng(seed)
        return {
            "ts": np.cumsum(rng.integers(1, 10, n)).astype(np.int64),
            "id": rng.integers(0, 50, n).astype(np.int64),
            "val": rng.integers(0, 1 << 20, n).astype(np.int64),
        }

    def test_rejects_ragged_tables(self):
        with pytest.raises(ValueError):
            ParquetLikeFile.write({"a": np.arange(5), "b": np.arange(6)},
                                  "plain")

    def test_row_group_layout(self):
        file = ParquetLikeFile.write(self._table(5000), "plain",
                                     row_group_size=2000)
        assert [g.n_rows for g in file.row_groups] == [2000, 2000, 1000]
        assert file.n_rows == 5000

    def test_scan_charges_io(self):
        file = ParquetLikeFile.write(self._table(), "leco",
                                     row_group_size=2500)
        io = IOModel()
        file.scan_column(file.row_groups[0], "ts", io)
        assert io.bytes_read == file.row_groups[0].chunks["ts"].stored_bytes()
        assert io.seconds > 0

    def test_block_compression_shrinks_file(self):
        table = self._table()
        plain = ParquetLikeFile.write(table, "plain")
        squeezed = ParquetLikeFile.write(table, "plain",
                                         block_compression=True)
        assert squeezed.file_size_bytes() < plain.file_size_bytes()

    @pytest.mark.parametrize("encoding", ["dict", "for", "delta", "leco"])
    def test_lightweight_encodings_beat_plain(self, encoding):
        table = self._table()
        plain = ParquetLikeFile.write(table, "plain").file_size_bytes()
        encoded = ParquetLikeFile.write(
            table, encoding, partition_size=1000).file_size_bytes()
        assert encoded < plain


class TestQueries:
    def _file(self, encoding, n=8000):
        rng = np.random.default_rng(3)
        table = {
            "ts": np.cumsum(rng.integers(1, 10, n)).astype(np.int64),
            "id": rng.integers(0, 100, n).astype(np.int64),
            "val": rng.integers(0, 10 ** 9, n).astype(np.int64),
        }
        return table, ParquetLikeFile.write(table, encoding,
                                            row_group_size=4000,
                                            partition_size=500)

    @pytest.mark.parametrize("encoding", ["dict", "for", "delta", "leco"])
    def test_filter_groupby_matches_reference(self, encoding):
        table, file = self._file(encoding)
        ts = table["ts"]
        lo, hi = int(ts[1000]), int(ts[2500])
        result = run_filter_groupby_query(file, lo, hi)
        mask = (ts >= lo) & (ts < hi)
        assert result.rows_selected == int(mask.sum())
        # reference answer
        expected = {}
        for key in np.unique(table["id"][mask]):
            sel = mask & (table["id"] == key)
            expected[int(key)] = float(table["val"][sel].mean())
        assert set(result.answer) == set(expected)
        for key in expected:
            assert result.answer[key] == pytest.approx(expected[key],
                                                       rel=1e-9)

    def test_all_encodings_agree(self):
        answers = []
        for encoding in ("dict", "for", "delta", "leco"):
            table, file = self._file(encoding)
            ts = table["ts"]
            result = run_filter_groupby_query(file, int(ts[100]),
                                              int(ts[400]))
            answers.append(result.answer)
        assert all(a == answers[0] for a in answers)

    def test_empty_selection(self):
        _, file = self._file("leco")
        result = run_filter_groupby_query(file, -100, -50)
        assert result.rows_selected == 0
        assert result.answer == {}

    def test_avg_merges_exactly_across_row_groups(self):
        # group 7 straddles the row-group boundary unevenly (3 rows, then
        # 1): merging per-group averages as a mean-of-means would report
        # (30 + 110) / 2 = 70, the exact answer is 200 / 4 = 50
        table = {
            "ts": np.arange(8, dtype=np.int64),
            "id": np.array([7, 7, 7, 1, 7, 1, 1, 1], dtype=np.int64),
            "val": np.array([10, 20, 60, 5, 110, 7, 9, 11],
                            dtype=np.int64),
        }
        file = ParquetLikeFile.write(table, "plain", row_group_size=4)
        result = run_filter_groupby_query(file, 0, 8)
        assert result.answer[7] == pytest.approx(50.0)
        assert result.answer[1] == pytest.approx(8.0)

    def test_filter_groupby_leaves_callers_io_model_untouched(self):
        table, file = self._file("leco")
        ts = table["ts"]
        io = IOModel()
        io.charge(12_345)  # the caller's running totals must survive
        result = run_filter_groupby_query(file, int(ts[1000]),
                                          int(ts[2500]), io)
        assert result.bytes_read > 0
        assert io.bytes_read == 12_345 + result.bytes_read
        assert io.reads == 1 + result.reads
        # io_s reflects only this query's deltas, not the prior charge
        expected = (result.bytes_read / io.bandwidth_bytes_per_s
                    + result.reads * io.latency_s)
        assert result.io_s == pytest.approx(expected)

    def test_hash_probe_accumulates_io_deltas(self):
        rng = np.random.default_rng(6)
        probe = rng.integers(0, 5000, 20_000).astype(np.int64)
        io = IOModel()
        io.charge(777)  # survives: run_hash_probe no longer resets
        result = run_hash_probe(probe, "raw", memory_budget_bytes=1 << 12,
                                hash_table_bytes=1 << 11, io=io)
        assert result.miss_fraction > 0
        assert io.bytes_read > 777
        assert io.reads >= 1

    def test_bitmap_aggregation_accumulates_io_deltas(self):
        table, file = self._file("leco")
        bitmap = zipf_cluster_bitmap(len(table["ts"]), 0.02, seed=4)
        io = IOModel()
        first = run_bitmap_aggregation(file, "val", bitmap, io)
        second = run_bitmap_aggregation(file, "val", bitmap, io)
        assert first.bytes_read == second.bytes_read > 0
        assert io.bytes_read == first.bytes_read + second.bytes_read
        assert first.io_s == pytest.approx(second.io_s)

    @pytest.mark.parametrize("encoding", ["dict", "delta", "leco"])
    def test_bitmap_aggregation_matches_reference(self, encoding):
        table, file = self._file(encoding)
        bitmap = zipf_cluster_bitmap(len(table["ts"]), 0.02, seed=4)
        result = run_bitmap_aggregation(file, "val", bitmap)
        assert result.answer == int(table["val"][bitmap].sum())

    def test_bitmap_aggregation_skips_row_groups(self):
        table, file = self._file("leco")
        bitmap = np.zeros(len(table["ts"]), dtype=bool)
        bitmap[:100] = True  # only the first row group is touched
        io = IOModel()
        run_bitmap_aggregation(file, "val", bitmap, io)
        first = file.row_groups[0].chunks["val"].stored_bytes()
        assert io.bytes_read == first


class TestOps:
    def test_groupby_avg_empty_bitmap(self):
        col = EncodedColumn(np.arange(10), "plain")
        assert groupby_avg(col, col, np.zeros(10, dtype=bool)) == {}

    def test_bitmap_sum_empty(self):
        col = EncodedColumn(np.arange(10), "plain")
        assert bitmap_sum(col, np.zeros(10, dtype=bool)) == 0

    def test_zipf_bitmap_selectivity(self):
        bitmap = zipf_cluster_bitmap(100_000, 0.01)
        assert 0.004 <= bitmap.mean() <= 0.03


class TestHashProbe:
    def test_leco_dictionary_is_smallest(self):
        from repro.datasets import load

        probe = load("medicare", n=30_000).values
        sizes = {}
        for method in ("raw", "for", "leco"):
            result = run_hash_probe(probe, method,
                                    memory_budget_bytes=1 << 30,
                                    hash_table_bytes=1 << 20)
            sizes[method] = result.dictionary_bytes
        assert sizes["leco"] < sizes["for"] < sizes["raw"]

    def test_tight_budget_penalises_big_dictionaries(self):
        from repro.datasets import load

        probe = load("medicare", n=30_000).values
        # leave ~4KB for the dictionary: the raw dict (~24KB) spills,
        # the LeCo dict (~2KB) stays resident
        budget = 1 << 20
        table_bytes = budget - 4096
        raw_tight = run_hash_probe(probe, "raw",
                                   memory_budget_bytes=budget,
                                   hash_table_bytes=table_bytes)
        leco_tight = run_hash_probe(probe, "leco",
                                    memory_budget_bytes=budget,
                                    hash_table_bytes=table_bytes)
        assert raw_tight.miss_fraction > 0.5
        assert leco_tight.miss_fraction == 0.0
        assert leco_tight.throughput_gbps > raw_tight.throughput_gbps


class TestIOModel:
    def test_accounting(self):
        io = IOModel(bandwidth_bytes_per_s=1e6, latency_s=0.001)
        io.charge(5000)
        io.charge(5000)
        assert io.bytes_read == 10_000
        assert io.seconds == pytest.approx(0.01 + 0.002)
        io.reset()
        assert io.seconds == 0

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            IOModel().charge(-1)
