"""Tests for the string extension (paper §3.4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.strings import CompressedStrings, StringCompressor, common_prefix

byte_strings = st.lists(st.binary(min_size=0, max_size=24), min_size=1,
                        max_size=150)


class TestCommonPrefix:
    def test_basic(self):
        assert common_prefix([b"abcd", b"abxy", b"abzz"]) == b"ab"

    def test_no_common(self):
        assert common_prefix([b"abc", b"xyz"]) == b""

    def test_empty_list(self):
        assert common_prefix([]) == b""

    def test_identical(self):
        assert common_prefix([b"same", b"same"]) == b"same"

    def test_prefix_of_each_other(self):
        assert common_prefix([b"ab", b"abc"]) == b"ab"


class TestRoundTrip:
    @given(byte_strings)
    @settings(max_examples=40, deadline=None)
    def test_arbitrary_bytes_lossless(self, strings):
        comp = StringCompressor(partition_size=16).encode(strings)
        assert comp.decode_all() == strings

    @given(byte_strings)
    @settings(max_examples=25, deadline=None)
    def test_tight_base_lossless(self, strings):
        comp = StringCompressor(partition_size=16,
                                power_of_two_base=False).encode(strings)
        assert comp.decode_all() == strings

    def test_sorted_emails_round_trip(self):
        from repro.datasets import gen_email

        emails = gen_email(500)
        comp = StringCompressor(partition_size=64).encode(emails)
        assert comp.decode_all() == emails

    def test_str_input_is_encoded(self):
        comp = StringCompressor(partition_size=4).encode(["abc", "abd"])
        assert comp.decode_all() == [b"abc", b"abd"]

    def test_empty_strings(self):
        strings = [b"", b"", b"a"]
        comp = StringCompressor(partition_size=8).encode(strings)
        assert comp.decode_all() == strings


class TestRandomAccess:
    @given(byte_strings, st.data())
    @settings(max_examples=30, deadline=None)
    def test_get_matches_decode(self, strings, data):
        comp = StringCompressor(partition_size=8).encode(strings)
        pos = data.draw(st.integers(0, len(strings) - 1))
        assert comp.get(pos) == strings[pos]

    def test_out_of_range(self):
        comp = StringCompressor(partition_size=4).encode([b"x"])
        with pytest.raises(IndexError):
            comp.get(1)


class TestAdaptivePadding:
    def test_sorted_similar_strings_get_zero_deltas(self):
        """On a clean arithmetic-like progression the clamped prediction
        should often land inside [s_min, s_max], zeroing the residual."""
        # hex keys stepping by one map to consecutive integers, so the
        # linear model should predict inside the padding range
        strings = [f"k{i:04x}".encode() for i in range(0, 256)]
        comp = StringCompressor(partition_size=64).encode(strings)
        widths = [p.deltas.width for p in comp.partitions]
        raw_bits = comp.partitions[0].max_len * comp.partitions[0].char_bits
        assert max(widths) <= 2
        assert max(widths) < raw_bits / 2

    def test_compresses_sorted_keys_well(self):
        strings = [f"user{i:08d}".encode() for i in range(5000)]
        raw = sum(len(s) for s in strings)
        comp = StringCompressor(partition_size=128).encode(strings)
        assert comp.compressed_size_bytes() < raw / 3


class TestBases:
    def test_tight_base_never_larger_char_bits(self):
        strings = [bytes([97 + i % 26]) * 4 for i in range(64)]
        pow2 = StringCompressor(8, power_of_two_base=True).encode(strings)
        tight = StringCompressor(8, power_of_two_base=False).encode(strings)
        assert tight.partitions[0].base <= pow2.partitions[0].base

    def test_lowercase_gets_base_32(self):
        """§3.4's example: lower-case-only strings map to base 32."""
        strings = sorted({bytes(np.random.default_rng(i).integers(
            97, 123, 6).astype(np.uint8)) for i in range(100)})
        comp = StringCompressor(len(strings)).encode(strings)
        assert comp.partitions[0].base == 32

    def test_partition_size_validation(self):
        with pytest.raises(ValueError):
            StringCompressor(partition_size=0)


class TestSizeAccounting:
    def test_size_matches_serialised_parts(self):
        strings = [f"p{i:05d}".encode() for i in range(300)]
        comp = StringCompressor(partition_size=64).encode(strings)
        total = sum(p.size_bytes() for p in comp.partitions)
        assert comp.compressed_size_bytes() == total + 8 * len(
            comp.partitions)

    def test_len(self):
        comp = StringCompressor(4).encode([b"a", b"b", b"c"])
        assert len(comp) == 3


class TestWideWidthRegression:
    """The >64-bit residual widths exercised by long low-entropy strings."""

    def test_decode_range_beyond_64_bit_width(self):
        # 24-char suffixes over a large charset force the mapped-integer
        # width well past one machine word
        rng = np.random.default_rng(7)
        alphabet = bytes(range(32, 127))
        strings = sorted(
            bytes(rng.choice(np.frombuffer(alphabet, dtype=np.uint8), 24))
            for _ in range(64))
        comp = StringCompressor(partition_size=16).encode(strings)
        part = comp.partitions[0]
        assert part.deltas.width > 64 or comp.partitions[-1].deltas.width > 64
        assert comp.decode_all() == strings
        for i in range(len(strings)):
            assert comp.get(i) == strings[i]

    def test_vectorised_small_width_path_matches_get(self):
        # short lowercase strings stay within one machine word, hitting the
        # numpy shift/mask digit-extraction path
        strings = sorted(
            f"key{i:04d}".encode() for i in range(200))
        comp = StringCompressor(partition_size=64).encode(strings)
        for part in comp.partitions:
            assert part.max_len * part.char_bits <= 63
        assert comp.decode_all() == strings
