"""Tests for the minimax regressors (paper §3.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.regressors import (
    BasisModel,
    ConstantRegressor,
    ExponentialRegressor,
    LinearRegressor,
    LogarithmRegressor,
    PolynomialRegressor,
    SinusoidalRegressor,
    available_regressors,
    chebyshev_line,
    estimate_frequencies,
    get_regressor,
)

int_arrays = st.lists(st.integers(-(1 << 40), 1 << 40), min_size=1,
                      max_size=120).map(lambda v: np.array(v, dtype=np.int64))


def _lp_minimax_error(values: np.ndarray) -> float:
    """Reference minimax error via linear programming."""
    from scipy.optimize import linprog

    n = len(values)
    design = np.column_stack([np.ones(n), np.arange(n)])
    c = np.array([0.0, 0.0, 1.0])
    a_ub = np.vstack([
        np.hstack([design, -np.ones((n, 1))]),
        np.hstack([-design, -np.ones((n, 1))]),
    ])
    b_ub = np.concatenate([values, -values]).astype(float)
    res = linprog(c, A_ub=a_ub, b_ub=b_ub,
                  bounds=[(None, None)] * 2 + [(0, None)], method="highs")
    return float(res.x[2])


class TestChebyshevLine:
    def test_empty_and_singleton(self):
        assert chebyshev_line(np.array([], dtype=np.int64)) == (0.0, 0.0, 0.0)
        a, b, e = chebyshev_line(np.array([42]))
        assert (a, b, e) == (42.0, 0.0, 0.0)

    def test_two_points_exact(self):
        a, b, e = chebyshev_line(np.array([10, 14]))
        assert (a, b, e) == (10.0, 4.0, 0.0)

    def test_collinear_has_zero_error(self):
        values = 7 + 3 * np.arange(50)
        _, slope, err = chebyshev_line(values)
        assert slope == pytest.approx(3.0)
        assert err == pytest.approx(0.0, abs=1e-9)

    @given(int_arrays)
    @settings(max_examples=60, deadline=None)
    def test_reported_error_is_achieved(self, values):
        a, b, e = chebyshev_line(values)
        pred = a + b * np.arange(len(values))
        assert np.abs(values - pred).max() <= e + 1e-6 * (1 + abs(e))

    @given(st.lists(st.integers(-10 ** 6, 10 ** 6), min_size=3, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_matches_lp_optimum(self, raw):
        values = np.array(raw, dtype=np.int64)
        _, _, err = chebyshev_line(values)
        assert err == pytest.approx(_lp_minimax_error(values), abs=1e-5)


class TestConstantRegressor:
    def test_midrange_fit(self):
        reg = ConstantRegressor()
        model = reg.fit(np.array([0, 10], dtype=np.int64))
        assert model.params[0] == pytest.approx(5.0)

    def test_minimax_beats_min_reference(self):
        values = np.array([0, 100], dtype=np.int64)
        model = ConstantRegressor().fit(values)
        assert model.max_abs_residual(values) <= 50

    def test_fast_delta_bits_matches_span(self):
        values = np.array([3, 3, 11], dtype=np.int64)
        assert ConstantRegressor().fast_delta_bits(values) == 4  # span 8

    def test_empty_fit(self):
        model = ConstantRegressor().fit(np.array([], dtype=np.int64))
        assert model.params[0] == 0.0


class TestLinearRegressor:
    def test_residuals_small_on_linear_data(self):
        values = (5 + 17 * np.arange(200)).astype(np.int64)
        model = LinearRegressor().fit(values)
        assert model.max_abs_residual(values) <= 1  # floor slack only

    @given(int_arrays)
    @settings(max_examples=40, deadline=None)
    def test_load_reproduces_predictions(self, values):
        reg = LinearRegressor()
        model = reg.fit(values)
        clone = reg.load(model.params)
        positions = np.arange(len(values))
        assert np.array_equal(model.predict_int(positions),
                              clone.predict_int(positions))

    def test_fast_delta_bits_zero_for_arithmetic_progression(self):
        values = (100 + 7 * np.arange(64)).astype(np.int64)
        assert LinearRegressor().fast_delta_bits(values) == 0

    def test_fast_delta_bits_short_input(self):
        assert LinearRegressor().fast_delta_bits(np.array([5])) == 0


class TestPolynomialRegressor:
    def test_quadratic_fits_quadratic(self):
        x = np.arange(100)
        values = (3 * x ** 2 + 5 * x + 7).astype(np.int64)
        model = PolynomialRegressor(2).fit(values)
        assert model.max_abs_residual(values) <= 1

    def test_cubic_fits_cubic(self):
        x = np.arange(60)
        values = (x ** 3 - 4 * x).astype(np.int64)
        model = PolynomialRegressor(3).fit(values)
        assert model.max_abs_residual(values) <= 1

    def test_lp_no_worse_than_centred_ls(self):
        rng = np.random.default_rng(0)
        x = np.arange(80)
        values = (2 * x ** 2 + rng.integers(-40, 41, 80)).astype(np.int64)
        with_lp = PolynomialRegressor(2, use_lp=True).fit(values)
        without = PolynomialRegressor(2, use_lp=False).fit(values)
        assert (with_lp.max_abs_residual(values)
                <= without.max_abs_residual(values))

    def test_degree_validation(self):
        with pytest.raises(ValueError):
            PolynomialRegressor(0)

    def test_fast_delta_bits_constant_kth_difference(self):
        x = np.arange(50)
        values = (x ** 2).astype(np.int64)
        assert PolynomialRegressor(2).fast_delta_bits(values) == 0


class TestSpecialRegressors:
    def test_exponential_beats_linear_on_exponential_data(self):
        values = np.round(5 * np.exp(0.05 * np.arange(200))).astype(np.int64)
        exp_res = ExponentialRegressor().fit(values).max_abs_residual(values)
        lin_res = LinearRegressor().fit(values).max_abs_residual(values)
        assert exp_res < lin_res / 4

    def test_logarithm_beats_linear_on_log_data(self):
        values = np.round(1e4 * np.log1p(np.arange(500))).astype(np.int64)
        log_res = LogarithmRegressor().fit(values).max_abs_residual(values)
        lin_res = LinearRegressor().fit(values).max_abs_residual(values)
        assert log_res < lin_res / 4

    def test_sinusoidal_captures_carrier(self):
        x = np.arange(2000)
        values = np.round(1e5 * np.sin(0.05 * x)).astype(np.int64)
        sin_res = SinusoidalRegressor(1).fit(values).max_abs_residual(values)
        lin_res = LinearRegressor().fit(values).max_abs_residual(values)
        assert sin_res < lin_res / 10

    def test_known_frequency_variant(self):
        x = np.arange(1500)
        freq = 0.031
        values = np.round(5e4 * np.sin(freq * x)).astype(np.int64)
        reg = SinusoidalRegressor(1, freqs=[freq])
        res = reg.fit(values).max_abs_residual(values)
        assert res <= 2

    def test_estimate_frequencies_finds_dominant(self):
        x = np.arange(4096)
        freq = 2 * np.pi * 32 / 4096
        values = 1000 * np.sin(freq * x)
        found = estimate_frequencies(values, 1)[0]
        assert found == pytest.approx(freq, rel=0.05)

    def test_sinusoidal_validates_args(self):
        with pytest.raises(ValueError):
            SinusoidalRegressor(0)
        with pytest.raises(ValueError):
            SinusoidalRegressor(2, freqs=[0.1])

    def test_exponential_load_roundtrip(self):
        values = np.round(3 * np.exp(0.02 * np.arange(100))).astype(np.int64)
        reg = ExponentialRegressor()
        model = reg.fit(values)
        clone = reg.load(model.params)
        positions = np.arange(len(values))
        assert np.array_equal(model.predict_int(positions),
                              clone.predict_int(positions))


class TestRegistry:
    def test_builtins_registered(self):
        names = available_regressors()
        for expected in ("constant", "linear", "poly2", "poly3",
                         "exponential", "logarithm", "sin1", "sin2"):
            assert expected in names

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_regressor("nope")

    @pytest.mark.parametrize("name", ["constant", "linear", "poly2",
                                      "poly3", "exponential", "logarithm",
                                      "sin1", "sin2"])
    def test_param_count_matches_fit(self, name):
        reg = get_regressor(name)
        n = max(reg.min_partition_size, 16)
        values = (np.arange(n) * 3 + 1).astype(np.int64)
        model = reg.fit(values)
        assert len(model.params) == reg.param_count


class TestBasisModel:
    def test_params_concatenate_theta_and_extra(self):
        terms = [lambda x: np.ones_like(x), lambda x: x]
        model = BasisModel("test", terms, [1.0, 2.0], extra_params=[9.0])
        assert list(model.params) == [1.0, 2.0, 9.0]
        assert list(model.theta) == [1.0, 2.0]
        assert list(model.extra) == [9.0]
