"""Tests for the LSM key-value store substrate (paper §5.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvstore import (
    LRUBlockCache,
    LecoIndex,
    MiniLSM,
    RestartDeltaIndex,
    encode_block_handles,
    make_records,
    parse_block,
    serialize_block,
    shortest_separator,
    skewed_seek_keys,
    split_into_blocks,
)


class TestBlocks:
    @given(st.lists(st.tuples(st.binary(min_size=1, max_size=20),
                              st.binary(max_size=40)),
                    min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_serialise_roundtrip(self, pairs):
        assert parse_block(serialize_block(pairs)) == pairs

    def test_split_respects_block_size(self):
        pairs = [(f"k{i:05d}".encode(), bytes(50)) for i in range(100)]
        blocks = split_into_blocks(pairs, block_size=256)
        for block in blocks:
            used = sum(len(k) + len(v) + 4 for k, v in block)
            assert used <= 256 or len(block) == 1
        assert sum(len(b) for b in blocks) == 100

    @given(st.binary(min_size=1, max_size=10),
           st.binary(min_size=1, max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_separator_interval_property(self, a, b):
        lo, hi = sorted([a, b])
        if lo == hi:
            return
        sep = shortest_separator(lo, hi)
        assert lo <= sep < hi
        assert len(sep) <= max(len(lo), len(hi))


class TestIndexCodecs:
    def _keys(self, n=500):
        return [f"key{i * 7:09d}".encode() for i in range(n)]

    @pytest.mark.parametrize("ri", [1, 4, 16, 128])
    def test_restart_lookup_matches_reference(self, ri):
        keys = self._keys()
        index = RestartDeltaIndex(keys, ri)
        assert index.entry_count == len(keys)
        from bisect import bisect_left

        for probe in [keys[0], keys[1], keys[137], keys[-1],
                      b"key000000005", b"a", b"key999999999"]:
            expected = min(bisect_left(keys, probe), len(keys) - 1)
            assert index.lookup(probe) == expected, probe

    def test_leco_lookup_matches_reference(self):
        keys = self._keys()
        index = LecoIndex(keys)
        from bisect import bisect_left

        for probe in [keys[0], keys[42], keys[-1], b"key000000001", b"a"]:
            expected = min(bisect_left(keys, probe), len(keys) - 1)
            assert index.lookup(probe) == expected, probe

    def test_larger_ri_is_smaller(self):
        keys = self._keys(2000)
        sizes = [RestartDeltaIndex(keys, ri).size_bytes()
                 for ri in (1, 16, 128)]
        assert sizes[0] > sizes[1] > sizes[2]

    def test_leco_index_compresses_sequential_keys(self):
        keys = self._keys(2000)
        raw = sum(len(k) for k in keys)
        assert LecoIndex(keys).size_bytes() < raw / 2

    def test_ri_validation(self):
        with pytest.raises(ValueError):
            RestartDeltaIndex([b"a"], 0)

    def test_handle_encodings(self):
        offsets = (4096 * np.arange(1000)).astype(np.int64)
        leco = encode_block_handles(offsets, "leco")
        delta = encode_block_handles(offsets, "delta")
        raw = encode_block_handles(offsets, "raw")
        assert leco < raw and delta < raw
        with pytest.raises(ValueError):
            encode_block_handles(offsets, "nope")


class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUBlockCache(100)
        cache.put((0, 0), "a", 40)
        cache.put((0, 1), "b", 40)
        cache.get((0, 0))          # touch: (0,1) becomes LRU
        cache.put((0, 2), "c", 40)  # evicts (0,1)
        assert cache.get((0, 1)) is None
        assert cache.get((0, 0)) == "a"
        assert cache.get((0, 2)) == "c"

    def test_hit_miss_counters(self):
        cache = LRUBlockCache(100)
        cache.put((0, 0), "a", 10)
        cache.get((0, 0))
        cache.get((9, 9))
        assert cache.hits == 1
        assert cache.misses == 1

    def test_duplicate_put_keeps_budget(self):
        cache = LRUBlockCache(100)
        cache.put((0, 0), "a", 60)
        cache.put((0, 0), "a", 60)
        assert cache.used_bytes == 60


class TestMiniLSM:
    @pytest.fixture(scope="class")
    def records(self):
        return make_records(5000, value_bytes=40)

    @pytest.mark.parametrize("codec,ri", [("restart", 1), ("restart", 16),
                                          ("leco", 1)])
    def test_seek_finds_every_existing_key(self, records, codec, ri):
        db = MiniLSM(records, codec, restart_interval=ri,
                     table_records=2000, cache_bytes=1 << 18)
        rng = np.random.default_rng(0)
        for idx in rng.integers(0, len(records), 200):
            key, value = records[int(idx)]
            hit = db.seek(key)
            assert hit == (key, value)

    def test_seek_lower_bound_semantics(self, records):
        db = MiniLSM(records, "leco", table_records=2000)
        # a probe just below an existing key lands on that key
        key = records[100][0]
        probe = key[:-1] + bytes([key[-1] - 1])
        hit = db.seek(probe)
        assert hit is not None
        assert hit[0] >= probe

    def test_seek_past_end_returns_none(self, records):
        db = MiniLSM(records, "restart", table_records=2000)
        assert db.seek(b"\xff" * 24) is None

    def test_index_sizes_ordered(self, records):
        sizes = {}
        for label, codec, ri in [("ri1", "restart", 1),
                                 ("ri128", "restart", 128),
                                 ("leco", "leco", 1)]:
            db = MiniLSM(records, codec, restart_interval=ri,
                         table_records=2000)
            sizes[label] = db.index_bytes()
        assert sizes["leco"] < sizes["ri1"]
        assert sizes["ri128"] < sizes["ri1"]

    def test_run_seeks_reports_breakdown(self, records):
        db = MiniLSM(records, "leco", table_records=2000,
                     cache_bytes=1 << 16)
        keys = skewed_seek_keys(records, 300)
        stats = db.run_seeks(keys)
        assert stats.operations == 300
        assert stats.cpu_seconds > 0
        assert stats.cache_hits + stats.cache_misses > 0
        assert stats.throughput_mops > 0

    def test_bigger_cache_fewer_misses(self, records):
        keys = skewed_seek_keys(records, 500)
        small = MiniLSM(records, "restart", table_records=2000,
                        cache_bytes=1 << 14)
        big = MiniLSM(records, "restart", table_records=2000,
                      cache_bytes=1 << 22)
        misses_small = small.run_seeks(keys).cache_misses
        misses_big = big.run_seeks(keys).cache_misses
        assert misses_big <= misses_small

    def test_unknown_codec(self, records):
        with pytest.raises(ValueError):
            MiniLSM(records[:10], "nope")


class TestWorkload:
    def test_records_sorted_unique(self):
        records = make_records(1000)
        keys = [k for k, _ in records]
        assert keys == sorted(keys)
        assert len(set(keys)) == 1000

    def test_key_and_value_sizes(self):
        records = make_records(10, key_bytes=20, value_bytes=100)
        for key, value in records:
            assert len(key) == 20
            assert len(value) == 100

    def test_skew_concentrates_on_hot_range(self):
        records = make_records(10_000)
        keys = skewed_seek_keys(records, 5000, hot_fraction=0.2,
                                hot_probability=0.8)
        assert len(set(keys)) < 5000


class TestBlockTruncation:
    def test_truncated_varint_raises_value_error(self):
        with pytest.raises(ValueError, match="truncated varint"):
            parse_block(b"\x80")

    def test_missing_value_length_raises_value_error(self):
        blob = serialize_block([(b"k", b"v")])
        with pytest.raises(ValueError, match="truncated varint"):
            parse_block(blob[:2])
