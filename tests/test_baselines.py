"""Tests for the baseline codecs (paper §4.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    DeltaCodec,
    EliasFanoCodec,
    FORCodec,
    LecoCodec,
    RansCodec,
    RLECodec,
    infer_value_width,
    standard_codecs,
)

int_arrays = st.lists(st.integers(-(1 << 40), 1 << 40), min_size=1,
                      max_size=300).map(
                          lambda v: np.array(v, dtype=np.int64))
sorted_arrays = int_arrays.map(np.sort)


def check_codec(codec, values):
    enc = codec.encode(values)
    assert len(enc) == len(values)
    assert np.array_equal(enc.decode_all(), values)
    rng = np.random.default_rng(0)
    for pos in rng.integers(0, len(values), min(20, len(values))):
        assert enc.get(int(pos)) == values[pos]
    assert enc.compressed_size_bytes() > 0


class TestFOR:
    @given(int_arrays)
    @settings(max_examples=25, deadline=None)
    def test_roundtrip(self, values):
        check_codec(FORCodec(frame_size=32), values)

    def test_is_constant_special_case(self):
        """FOR frames store a horizontal-line model (paper §2)."""
        values = np.arange(1000, dtype=np.int64)
        enc = FORCodec(frame_size=100).encode(values)
        assert all(p.regressor_name == "constant"
                   for p in enc.array.partitions)

    def test_leco_never_worse_than_for(self):
        """LeCo's linear model subsumes FOR's constant (paper §4.3.1)."""
        rng = np.random.default_rng(1)
        for seed in range(3):
            values = np.cumsum(
                rng.integers(0, 100, 20_000)).astype(np.int64)
            for_size = FORCodec(frame_size=256).encode(
                values).compressed_size_bytes()
            leco_size = LecoCodec("linear", partitioner=256).encode(
                values).compressed_size_bytes()
            assert leco_size <= for_size * 1.01


class TestDelta:
    @given(int_arrays)
    @settings(max_examples=25, deadline=None)
    def test_fix_roundtrip(self, values):
        check_codec(DeltaCodec("fix", partition_size=32), values)

    @given(int_arrays)
    @settings(max_examples=15, deadline=None)
    def test_var_roundtrip(self, values):
        check_codec(DeltaCodec("var"), values)

    def test_variant_validation(self):
        with pytest.raises(ValueError):
            DeltaCodec("nope")

    def test_sequential_access_flag(self):
        assert DeltaCodec("fix").sequential_access

    def test_arithmetic_progression_is_tiny(self):
        values = (7 * np.arange(10_000)).astype(np.int64)
        enc = DeltaCodec("fix", partition_size=1000).encode(values)
        assert enc.compressed_size_bytes() < values.nbytes / 50

    def test_empty_input(self):
        enc = DeltaCodec("fix").encode(np.array([], dtype=np.int64))
        assert enc.decode_all().size == 0


class TestRLE:
    @given(int_arrays)
    @settings(max_examples=25, deadline=None)
    def test_roundtrip(self, values):
        check_codec(RLECodec(), values)

    def test_run_detection(self):
        values = np.array([5, 5, 5, 2, 2, 9], dtype=np.int64)
        enc = RLECodec().encode(values)
        assert enc.run_count == 3

    def test_wins_on_repetitive_data(self):
        values = np.repeat(np.arange(10), 1000).astype(np.int64)
        enc = RLECodec().encode(values)
        assert enc.compressed_size_bytes() < values.nbytes / 100


class TestEliasFano:
    @given(sorted_arrays)
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_on_sorted(self, values):
        check_codec(EliasFanoCodec(), values)

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            EliasFanoCodec().encode(np.array([3, 1, 2], dtype=np.int64))

    def test_applicability_check(self):
        assert EliasFanoCodec.applicable(np.array([1, 2, 2, 5]))
        assert not EliasFanoCodec.applicable(np.array([2, 1]))

    def test_quasi_succinct_size(self):
        """EF needs about (2 + log2(m/n)) bits per element (§4.1)."""
        rng = np.random.default_rng(2)
        n = 50_000
        values = np.sort(rng.integers(0, n * 1024, n)).astype(np.int64)
        enc = EliasFanoCodec().encode(values)
        bits_per_elem = enc.compressed_size_bytes() * 8 / n
        assert bits_per_elem == pytest.approx(2 + 10, rel=0.25)

    def test_handles_duplicates(self):
        values = np.array([7, 7, 7, 7], dtype=np.int64)
        check_codec(EliasFanoCodec(), values)


class TestRans:
    @given(st.lists(st.integers(0, (1 << 32) - 1), min_size=1, max_size=150))
    @settings(max_examples=15, deadline=None)
    def test_roundtrip(self, raw):
        values = np.array(raw, dtype=np.int64)
        enc = RansCodec().encode(values)
        assert np.array_equal(enc.decode_all(), values)

    def test_negative_values_roundtrip(self):
        values = np.array([-5, -1, 0, 3], dtype=np.int64)
        enc = RansCodec(width=8).encode(values)
        assert np.array_equal(enc.decode_all(), values)

    def test_get_decodes_prefix(self):
        values = np.arange(100, dtype=np.int64)
        enc = RansCodec().encode(values)
        assert enc.get(57) == 57

    def test_skewed_bytes_compress(self):
        """Entropy coding shines on skewed byte distributions."""
        rng = np.random.default_rng(3)
        values = rng.choice([0, 1, 255], size=20_000,
                            p=[0.9, 0.08, 0.02]).astype(np.int64)
        enc = RansCodec(width=4).encode(values)
        assert enc.compressed_size_bytes() < 20_000 * 4 / 4

    def test_uniform_bytes_do_not_compress(self):
        rng = np.random.default_rng(4)
        values = rng.integers(0, 1 << 32, 5000).astype(np.int64)
        enc = RansCodec(width=4).encode(values)
        assert enc.compressed_size_bytes() > 5000 * 4 * 0.95

    def test_width_inference(self):
        assert infer_value_width(np.array([0, 100])) == 4
        assert infer_value_width(np.array([1 << 40])) == 8
        assert infer_value_width(np.array([-1])) == 8


class TestLecoCodec:
    @given(int_arrays)
    @settings(max_examples=20, deadline=None)
    def test_roundtrip(self, values):
        check_codec(LecoCodec("linear", partitioner=32), values)

    def test_model_size_exposed(self):
        enc = LecoCodec("linear", partitioner=100).encode(
            np.arange(1000, dtype=np.int64))
        assert enc.model_size_bytes() == 16 * 10

    def test_names(self):
        assert LecoCodec(partitioner="fixed").name == "leco-fix"
        assert LecoCodec(partitioner="variable").name == "leco-var"
        assert FORCodec().name == "for"


class TestStandardLineup:
    def test_lineup_contents(self):
        names = [c.name for c in standard_codecs()]
        assert names == ["rans", "for", "delta-fix", "delta-var",
                         "leco-fix", "leco-var"]

    def test_lineup_without_rans(self):
        names = [c.name for c in standard_codecs(include_rans=False)]
        assert "rans" not in names


class TestDeltaFullRangeRandomAccess:
    def test_get_exact_for_huge_diffs(self):
        # adjacent differences spanning >= 2**63 force width-64 slots whose
        # int64 view is negative; random access must still be exact
        values = np.array([0, 2 ** 62, -(2 ** 62), 5, -7], dtype=np.int64)
        enc = DeltaCodec("fix").encode(values)
        for i, v in enumerate(values):
            assert enc.get(i) == int(v), i
        assert np.array_equal(enc.decode_all(), values)
