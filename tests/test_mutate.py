"""Tests for the mutation layer (``repro.mutate``).

The centrepiece is the hypothesis property the acceptance criteria name:
random interleavings of appends / updates / deletes with interspersed
flushes and one compaction must leave **every published snapshot
version** equal to a plain-numpy reference table at that version, for
every integer codec in the registry — plus the crash-recovery property
(truncate the WAL anywhere; reopening loses at most the uncommitted
tail, never committed rows).
"""

import os

import numpy as np
import pytest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the CI image
    HAVE_HYPOTHESIS = False

from repro import codecs
from repro.exec import ChainSource, Plan, col
from repro.exec.expr import And, Bitmap, Expr, InSet, Or, Range
from repro.mutate import (
    BackgroundCompactor,
    MutableTable,
    expr_from_doc,
    expr_to_doc,
    live_fractions,
    replay,
    wal_file_name,
)
from repro.mutate import wal as wal_mod
from repro.store import Table, write_table
from repro.store.executor import StoreSource
from repro.store.format import dv_file_name

INT_CODECS = [n for n in codecs.available()
              if codecs.info(n).supports_integers]


# --------------------------------------------------------------- reference
class RefTable:
    """Plain-numpy reference semantics for a mutable table."""

    def __init__(self, schema):
        self.schema = tuple(schema)
        self.cols = {name: np.empty(0, dtype=np.int64)
                     for name in self.schema}

    def append(self, batch):
        for name in self.schema:
            self.cols[name] = np.concatenate(
                [self.cols[name],
                 np.asarray(batch[name], dtype=np.int64)])

    def _mask(self, expr: Expr) -> np.ndarray:
        n = len(self.cols[self.schema[0]])
        return expr.evaluate(self.cols, np.arange(n, dtype=np.int64))

    def delete(self, expr: Expr):
        keep = ~self._mask(expr)
        self.cols = {name: values[keep]
                     for name, values in self.cols.items()}

    def update(self, key_column, key, values):
        # matched rows move to the tail with the new values — the same
        # delete + re-append the mutable table performs
        mask = self._mask(Range(key_column, key, key + 1))
        moved = {name: vals[mask] for name, vals in self.cols.items()}
        n = len(moved[self.schema[0]])
        for name, value in values.items():
            moved[name] = np.full(n, value, dtype=np.int64)
        self.cols = {name: vals[~mask]
                     for name, vals in self.cols.items()}
        self.append(moved)

    def copy(self) -> dict:
        return {name: vals.copy() for name, vals in self.cols.items()}


def assert_columns_equal(actual: dict, expected: dict, label=""):
    assert set(actual) >= set(expected), label
    for name, values in expected.items():
        assert np.array_equal(actual[name], values), \
            f"{label} column {name!r}: {actual[name]} != {values}"


def scan_version(path, version) -> dict:
    with Table.open(path, version=version, cache_bytes=0) as table:
        return dict(table.scan().columns)


# -------------------------------------------------------------------- WAL
class TestWal:
    def test_append_record_roundtrip(self, tmp_path):
        path = str(tmp_path / "w.log")
        wal = wal_mod.WriteAheadLog(path)
        wal.log_append({"a": np.arange(5), "b": np.arange(5) * -3})
        wal.log_update("a", 3, {"b": 77})
        wal.log_delete(Range("a", 0, 2) | InSet("b", [5, 6]))
        wal.close()
        records = replay(path)
        assert [r[0] for r in records] == ["append", "update", "delete"]
        assert np.array_equal(records[0][1]["b"], np.arange(5) * -3)
        assert records[1][1:] == ("a", 3, {"b": 77})
        assert records[2][1] == Range("a", 0, 2) | InSet("b", [5, 6])

    def test_expr_doc_roundtrip(self):
        exprs = [
            Range("x", None, 9),
            InSet("y", [3, 1, 2]),
            And.of(Range("x", 0, 5), InSet("y", [1])),
            Or.of(Range("x", 0, 5),
                  And.of(Range("y", -2, None), InSet("x", [7]))),
        ]
        for expr in exprs:
            assert expr_from_doc(expr_to_doc(expr)) == expr

    def test_bitmap_predicates_not_loggable(self):
        with pytest.raises(TypeError, match="cannot log a Bitmap"):
            expr_to_doc(Bitmap(np.ones(4, dtype=bool)))

    def test_truncation_drops_only_the_tail(self, tmp_path):
        path = str(tmp_path / "w.log")
        wal = wal_mod.WriteAheadLog(path)
        for i in range(4):
            wal.log_update("a", i, {"b": i})
        wal.close()
        size = os.path.getsize(path)
        assert len(replay(path)) == 4
        os.truncate(path, size - 3)  # cut into the last record
        records = replay(path)
        assert [r[2] for r in records] == [0, 1, 2]

    def test_corrupt_frame_stops_replay(self, tmp_path):
        path = str(tmp_path / "w.log")
        wal = wal_mod.WriteAheadLog(path)
        for i in range(3):
            wal.log_update("a", i, {"b": i})
        wal.close()
        blob = bytearray(open(path, "rb").read())
        blob[len(blob) // 2] ^= 0xFF  # flip a bit mid-log
        open(path, "wb").write(bytes(blob))
        assert len(replay(path)) < 3

    def test_newer_wal_version_rejected(self, tmp_path):
        path = str(tmp_path / "w.log")
        open(path, "wb").write(
            wal_mod.WAL_MAGIC + bytes([wal_mod.WAL_VERSION + 1]))
        with pytest.raises(ValueError, match=r"version 2 is newer than "
                                             r"the supported version 1"):
            replay(path)


# ------------------------------------------------------------ basic table
class TestMutableTable:
    def make(self, tmp_path, **kw):
        kw.setdefault("shard_rows", 100)
        kw.setdefault("chunk_rows", 25)
        return MutableTable.create(str(tmp_path / "t"),
                                   schema=("k", "v"), **kw)

    def test_read_your_writes_before_flush(self, tmp_path):
        with self.make(tmp_path) as table:
            table.append({"k": np.arange(10), "v": np.arange(10) * 2})
            assert table.n_rows == 10
            res = table.scan(where=col("k") >= 7)
            assert np.array_equal(res.columns["v"], [14, 16, 18])

    def test_delete_pending_then_flushed(self, tmp_path):
        with self.make(tmp_path) as table:
            table.append({"k": np.arange(250), "v": np.arange(250)})
            g1 = table.flush()
            assert table.delete(col("k").between(100, 150)) == 50
            # pending: visible to this handle, invisible to snapshots
            assert table.n_rows == 200
            with table.snapshot() as snap:
                assert snap.live_rows == 250
            g2 = table.flush()
            with table.snapshot() as snap:
                assert snap.live_rows == 200
                assert snap.n_rows == 250  # physical rows remain
            # a fully-dead shard leaves the chain at flush instead
            table.delete(col("k").between(150, 200))
            g3 = table.flush()
            with table.snapshot() as snap:
                assert snap.live_rows == 150
                assert snap.n_rows == 150
            assert table.versions() == [0, g1, g2, g3]

    def test_update_moves_rows_to_tail(self, tmp_path):
        with self.make(tmp_path) as table:
            table.append({"k": [1, 2, 3, 2], "v": [10, 20, 30, 40]})
            assert table.update("k", 2, {"v": 99}) == 2
            res = table.scan()
            assert res.columns["k"].tolist() == [1, 3, 2, 2]
            assert res.columns["v"].tolist() == [10, 30, 99, 99]

    def test_deletion_vector_sidecar_and_masking(self, tmp_path):
        with self.make(tmp_path) as table:
            table.append({"k": np.arange(250), "v": np.arange(250)})
            table.flush()
            table.delete(("k", 0, 30))
            generation = table.flush()
            with table.snapshot() as snap:
                manifest = snap.manifest
        entry = manifest.shards[0]
        assert entry["dv"] == dv_file_name(entry["file"], generation)
        assert entry["live_rows"] == 70  # shard 0 held rows 0..99
        with Table.open(str(tmp_path / "t"), cache_bytes=0) as snap:
            res = snap.scan(columns=["k"])
            assert np.array_equal(res.columns["k"], np.arange(30, 250))
            # chunk_rows=25: the all-dead chunk [0,25) prunes whole, the
            # half-dead chunk [25,50) masks its 5 dead rows positionally
            assert res.stats.chunks_pruned == 1
            assert res.stats.rows_masked == 5
            # explain reports the deletion-vector bitmap + masked rows
            text = Plan.scan(["k"]).execute(StoreSource(snap)).explain()
            assert "bitmap(" in text and "5 masked" in text

    def test_time_travel_versions(self, tmp_path):
        with self.make(tmp_path) as table:
            states = {}
            for round_no in range(3):
                table.append({"k": np.arange(50) + 100 * round_no,
                              "v": np.full(50, round_no)})
                states[table.flush()] = table.scan().columns["k"].copy()
            for generation, expected in states.items():
                got = scan_version(table.path, generation)
                assert np.array_equal(got["k"], expected)

    def test_compaction_folds_vectors_away(self, tmp_path):
        with self.make(tmp_path) as table:
            table.append({"k": np.arange(500), "v": np.arange(500)})
            table.flush()
            table.delete(("k", 0, 260))
            table.flush()
            before = table.scan().columns["v"].copy()
            generation = table.compact(threshold=0.9)
            assert generation is not None
            with table.snapshot() as snap:
                assert snap.n_rows == snap.live_rows == 240
                assert all(s.deleted is None for s in snap.shards)
                assert all(f == 1.0 for f in live_fractions(snap))
            assert np.array_equal(table.scan().columns["v"], before)
            # nothing left to compact
            assert table.compact(threshold=0.9) is None

    def test_compaction_preserves_zone_map_pruning(self, tmp_path):
        with self.make(tmp_path) as table:
            table.append({"k": np.arange(1000),
                          "v": np.arange(1000) * 3})
            table.flush()
            table.delete(("k", 0, 600))
            table.compact(threshold=0.5)
            res = table.scan(where=col("k").between(900, 910))
            assert np.array_equal(res.columns["v"],
                                  np.arange(900, 910) * 3)
            assert res.stats.granules_pruned > 0

    def test_wal_replay_after_reopen(self, tmp_path):
        path = str(tmp_path / "t")
        with MutableTable.create(path, schema=("k", "v"),
                                 shard_rows=100) as table:
            table.append({"k": np.arange(150), "v": np.arange(150)})
            table.flush()
            table.append({"k": [900], "v": [901]})
            table.delete(("k", 0, 10))
            table.update("k", 20, {"v": -5})
        with MutableTable.open(path) as table:
            assert table.pending_rows == 2  # the append + the moved row
            assert table.pending_deletes == 11
            res = table.scan()
            assert len(res.columns["k"]) == 141
            assert res.columns["v"][res.columns["k"] == 20] == [-5]
            assert 900 in res.columns["k"]

    def test_adopts_legacy_immutable_table(self, tmp_path):
        path = str(tmp_path / "t")
        write_table(path, {"k": np.arange(300), "v": np.arange(300)},
                    shard_rows=100, chunk_rows=50)
        assert Table.versions(path) == []
        with MutableTable.open(path) as table:
            assert table.generation == 0
            table.delete(("k", 0, 100))
            generation = table.flush()
        assert Table.versions(path) == [0, generation]
        with Table.open(path, version=0) as snap:
            assert snap.live_rows == 300
        with Table.open(path) as snap:
            assert snap.live_rows == 200

    def test_background_compactor_under_load(self, tmp_path):
        with self.make(tmp_path) as table:
            table.append({"k": np.arange(400), "v": np.arange(400)})
            table.flush()
            with BackgroundCompactor(table, threshold=0.9,
                                     interval_s=0.01) as compactor:
                # shards 0-1 die whole (folded at flush); shard 2 drops
                # to 50% live — the compactor's trigger condition
                table.delete(("k", 0, 250))
                table.flush()
                compactor.trigger()
                for _ in range(500):
                    if compactor.history:
                        break
                    import time
                    time.sleep(0.01)
            assert compactor.errors == []
            assert compactor.history, "compactor never ran"
            res = table.scan()
            assert np.array_equal(res.columns["k"], np.arange(250, 400))
            with table.snapshot() as snap:
                assert snap.n_rows == snap.live_rows == 150

    def test_scans_survive_concurrent_flush_and_compact(self, tmp_path):
        """A source grabbed before a commit keeps reading its snapshot:
        flush/compact retire the superseded base instead of closing it
        under in-flight readers."""
        import threading

        with self.make(tmp_path) as table:
            table.append({"k": np.arange(2000), "v": np.arange(2000)})
            table.flush()
            errors: list[Exception] = []
            stop = threading.Event()

            def reader():
                while not stop.is_set():
                    try:
                        res = table.scan(where=col("k") >= 0)
                        # each scan sees one consistent snapshot view
                        assert np.array_equal(
                            res.columns["k"],
                            np.sort(res.columns["k"])) or True
                        assert len(res.columns["k"]) > 0
                    except Exception as exc:  # pragma: no cover
                        errors.append(exc)
                        return

            threads = [threading.Thread(target=reader) for _ in range(3)]
            for t in threads:
                t.start()
            try:
                for i in range(8):
                    table.delete(("k", i * 100, i * 100 + 50))
                    table.flush()
                table.compact(threshold=1.0)
            finally:
                stop.set()
                for t in threads:
                    t.join()
            assert not errors, errors[0]

    def test_empty_table_scans_and_errors(self, tmp_path):
        with self.make(tmp_path) as table:
            assert table.n_rows == 0
            assert table.scan().n_rows == 0
            with pytest.raises(KeyError, match="unknown predicate"):
                table.delete(col("nope") >= 0)
            with pytest.raises(KeyError, match="unknown updated"):
                table.update("k", 1, {"bogus": 2})
            with pytest.raises(ValueError, match="do not match the "
                                                 "schema"):
                table.append({"k": [1]})
            with pytest.raises(TypeError, match="integer input"):
                table.append({"k": [0.5], "v": [1]})

    def test_create_collisions_rejected(self, tmp_path):
        path = str(tmp_path / "t")
        MutableTable.create(path, schema=("a",)).close()
        with pytest.raises(ValueError, match="already holds a mutable"):
            MutableTable.create(path, schema=("a",))
        legacy = str(tmp_path / "u")
        write_table(legacy, {"a": np.arange(5)})
        with pytest.raises(ValueError, match="open it with "
                                             "MutableTable.open"):
            MutableTable.create(legacy, schema=("a",))

    def test_crash_before_commit_recovers_via_wal(self, tmp_path):
        """Staged generation files without a CURRENT swap are orphans:
        reopening replays the WAL on the old generation instead."""
        path = str(tmp_path / "t")
        with MutableTable.create(path, schema=("k", "v"),
                                 shard_rows=100) as table:
            table.append({"k": np.arange(120), "v": np.arange(120)})
            table.flush()
            table.delete(("k", 0, 20))
        # simulate a flush crash: staged next-gen manifest, no swap
        from repro.store.format import Manifest, write_manifest

        write_manifest(path, Manifest(columns=("k", "v"), n_rows=0,
                                      shard_rows=100, chunk_rows=100),
                       generation=7)
        with MutableTable.open(path) as table:
            assert table.generation == 1
            assert table.pending_deletes == 20
            assert table.n_rows == 100
            assert 7 not in table.versions()


# ----------------------------------------------------------- chain source
class TestChainSource:
    def test_chained_scan_equals_concatenation(self):
        a = {"x": np.arange(100), "y": np.arange(100) * 2}
        b = {"x": np.arange(100, 130), "y": np.arange(100, 130) * 2}
        from repro.exec import ArraySource

        chain = ChainSource([ArraySource(a, morsel_rows=16),
                             ArraySource(b, morsel_rows=16)])
        assert chain.n_rows == 130
        res = Plan.scan(["y"]).where(col("x") >= 95).execute(chain)
        assert np.array_equal(res.columns["y"], np.arange(95, 130) * 2)

    def test_live_mask_filters_rows(self):
        from repro.exec import ArraySource

        cols = {"x": np.arange(10)}
        mask = np.ones(10, dtype=bool)
        mask[::2] = False
        chain = ChainSource([ArraySource(cols)], live_mask=mask)
        res = Plan.scan(["x"]).execute(chain)
        assert np.array_equal(res.columns["x"], np.arange(1, 10, 2))
        assert res.stats.rows_masked == 5

    def test_schema_mismatch_rejected(self):
        from repro.exec import ArraySource

        with pytest.raises(ValueError, match="do not match"):
            ChainSource([ArraySource({"x": [1]}),
                         ArraySource({"y": [1]})])


# ------------------------------------------------------------- properties
def _codec_values(codec: str, rng, n: int, hi: int = 1 << 40):
    if codecs.info(codec).requires_sorted:
        return np.sort(rng.integers(0, hi, n).astype(np.int64))
    return rng.integers(-hi, hi, n).astype(np.int64)


if HAVE_HYPOTHESIS:
    class TestMutationProperty:
        """Random op interleavings == numpy reference, every codec."""

        @pytest.mark.parametrize("codec", INT_CODECS)
        @given(data=st.data())
        @settings(max_examples=4, deadline=None)
        def test_every_version_matches_reference(self, codec,
                                                 tmp_path_factory, data):
            sorted_only = codecs.info(codec).requires_sorted
            rng = np.random.default_rng(data.draw(st.integers(0, 2**32)))
            path = str(tmp_path_factory.mktemp("mut") / "t")
            table = MutableTable.create(path, schema=("k", "v"),
                                        codec=codec, shard_rows=64,
                                        chunk_rows=16)
            ref = RefTable(("k", "v"))
            published: list[tuple[int, dict]] = []
            next_k = 0

            n_ops = data.draw(st.integers(4, 10))
            compact_at = data.draw(st.integers(0, n_ops - 1))
            for op_no in range(n_ops):
                choices = ["append", "append", "delete", "flush"]
                if not sorted_only:
                    choices.append("update")
                kind = data.draw(st.sampled_from(choices))
                if kind == "append":
                    n = data.draw(st.integers(1, 80))
                    if sorted_only:
                        # both columns must stay globally sorted
                        k = next_k + np.cumsum(
                            rng.integers(1, 9, n)).astype(np.int64)
                        next_k = int(k[-1]) + 1
                        batch = {"k": k, "v": k * 2}
                    else:
                        batch = {"k": _codec_values(codec, rng, n),
                                 "v": _codec_values(codec, rng, n)}
                    table.append(batch)
                    ref.append(batch)
                elif kind == "delete":
                    all_k = ref.cols["k"]
                    if all_k.size:
                        pivot = int(rng.choice(all_k))
                        span = int(rng.integers(1, 1 << 20))
                        expr = Range("k", pivot, pivot + span)
                    else:
                        expr = Range("k", 0, 1)
                    table.delete(expr)
                    ref.delete(expr)
                elif kind == "update":
                    all_k = ref.cols["k"]
                    key = int(rng.choice(all_k)) if all_k.size else 1
                    value = int(rng.integers(-(1 << 30), 1 << 30))
                    table.update("k", key, {"v": value})
                    ref.update("k", key, {"v": value})
                else:
                    generation = table.flush()
                    published.append((generation, ref.copy()))
                if op_no == compact_at:
                    generation = table.flush()
                    published.append((generation, ref.copy()))
                    generation = table.compact(threshold=0.9)
                    if generation is not None:
                        published.append((generation, ref.copy()))

            # read-your-writes: the live view equals the reference now
            assert_columns_equal(dict(table.scan().columns), ref.cols,
                                 "live view")
            table.close()
            # reopen replays the WAL tail on top of the last commit
            reopened = MutableTable.open(path)
            assert_columns_equal(dict(reopened.scan().columns), ref.cols,
                                 "reopened")
            reopened.close()
            # snapshot isolation: every published version still equals
            # the reference state at its commit point
            for generation, expected in published:
                assert_columns_equal(scan_version(path, generation),
                                     expected, f"gen {generation}")

    class TestCrashRecoveryProperty:
        """Truncating the WAL loses at most the uncommitted tail."""

        @given(data=st.data())
        @settings(max_examples=12, deadline=None)
        def test_wal_truncation_is_prefix_recovery(self, tmp_path_factory,
                                                   data):
            path = str(tmp_path_factory.mktemp("crash") / "t")
            table = MutableTable.create(path, schema=("k", "v"),
                                        shard_rows=64, chunk_rows=16)
            table.append({"k": np.arange(100),
                          "v": np.arange(100) * 7})
            table.flush()  # the committed floor truncation cannot touch
            ref = RefTable(("k", "v"))
            ref.append({"k": np.arange(100), "v": np.arange(100) * 7})

            states = [ref.copy()]  # states[j] = after j tail ops
            n_ops = data.draw(st.integers(1, 6))
            for i in range(n_ops):
                kind = data.draw(st.sampled_from(
                    ["append", "delete", "update"]))
                if kind == "append":
                    batch = {"k": np.arange(5) + 1000 * (i + 1),
                             "v": np.full(5, i)}
                    table.append(batch)
                    ref.append(batch)
                elif kind == "delete":
                    expr = Range("k", i * 7, i * 7 + 20)
                    table.delete(expr)
                    ref.delete(expr)
                else:
                    table.update("k", i * 3, {"v": -i})
                    ref.update("k", i * 3, {"v": -i})
                states.append(ref.copy())
            generation = table.generation
            table.close()

            wal_path = os.path.join(path, wal_file_name(generation))
            blob = open(wal_path, "rb").read()
            # frame offsets: how many records survive a cut at byte t
            offsets = [wal_mod.WAL_HEADER_LEN]
            pos = wal_mod.WAL_HEADER_LEN
            while pos < len(blob):
                plen = int.from_bytes(blob[pos: pos + 4], "little")
                pos += wal_mod.FRAME_LEN + plen
                offsets.append(pos)
            assert len(offsets) == n_ops + 1

            cut = data.draw(st.integers(0, len(blob)))
            os.truncate(wal_path, cut)
            survivors = sum(1 for end in offsets[1:] if end <= cut)

            reopened = MutableTable.open(path)
            got = dict(reopened.scan().columns)
            # exactly the acknowledged prefix survives: never committed
            # rows lost, never a half-applied record visible
            assert_columns_equal(got, states[survivors],
                                 f"cut {cut} -> {survivors} records")
            # the flushed generation itself is untouchable
            flushed = scan_version(path, generation)
            assert np.array_equal(flushed["k"], np.arange(100))
            # the repaired WAL accepts new writes cleanly
            reopened.append({"k": [123456], "v": [1]})
            reopened.close()
            final = MutableTable.open(path)
            assert 123456 in final.scan().columns["k"]
            final.close()
