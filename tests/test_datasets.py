"""Tests for the dataset generators and registry."""

import numpy as np
import pytest

from repro.datasets import (
    FIG10_DATASETS,
    NONLINEAR_DATASETS,
    TABLE_NAMES,
    available_datasets,
    gen_email,
    gen_hex,
    gen_word,
    load,
    load_strings,
    load_table,
    sortedness,
)


class TestRegistry:
    def test_all_fig10_datasets_available(self):
        for name in FIG10_DATASETS:
            assert name in available_datasets()

    def test_all_nonlinear_datasets_available(self):
        for name in NONLINEAR_DATASETS:
            assert name in available_datasets()

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            load("nope")

    @pytest.mark.parametrize("name", FIG10_DATASETS)
    def test_deterministic_generation(self, name):
        a = load(name, n=2000)
        b = load(name, n=2000)
        assert np.array_equal(a.values, b.values)

    @pytest.mark.parametrize("name", FIG10_DATASETS)
    def test_metadata_consistency(self, name):
        ds = load(name, n=2000)
        assert len(ds) == 2000
        assert ds.width_bytes in (4, 8)
        assert ds.uncompressed_bytes == 2000 * ds.width_bytes
        if ds.sorted:
            assert np.all(np.diff(ds.values) >= 0)
        if ds.width_bytes == 4:
            assert int(ds.values.max()) < (1 << 32)
            assert int(ds.values.min()) >= -(1 << 31)

    def test_seed_changes_data(self):
        a = load("booksale", n=1000, seed=0)
        b = load("booksale", n=1000, seed=1)
        assert not np.array_equal(a.values, b.values)

    def test_unsorted_sets_really_unsorted(self):
        for name in ("movieid", "poisson"):
            ds = load(name, n=5000)
            assert not np.all(np.diff(ds.values) >= 0), name


class TestShapes:
    def test_cosmos_matches_paper_formula_scale(self):
        ds = load("cosmos", n=10_000)
        assert abs(int(ds.values.max())) <= 1.3e6

    def test_wiki_has_duplicates(self):
        ds = load("wiki", n=5000)
        assert len(np.unique(ds.values)) < len(ds.values)

    def test_house_price_has_runs(self):
        ds = load("house_price", n=10_000)
        runs = np.flatnonzero(np.diff(ds.values) == 0)
        assert len(runs) > 100

    def test_ml_is_bursty(self):
        ds = load("ml", n=20_000)
        gaps = np.diff(ds.values)
        assert gaps.max() > 100 * np.median(gaps)

    def test_medicare_low_cardinality(self):
        ds = load("medicare", n=20_000)
        assert len(np.unique(ds.values)) <= len(ds.values) / 10


class TestSortednessMetric:
    def test_sorted_scores_one(self):
        assert sortedness(np.arange(1000)) == pytest.approx(1.0)

    def test_reversed_scores_minus_one(self):
        assert sortedness(np.arange(1000)[::-1]) == pytest.approx(-1.0)

    def test_random_scores_near_zero(self):
        rng = np.random.default_rng(0)
        score = sortedness(rng.integers(0, 1 << 30, 5000))
        assert abs(score) < 0.1

    def test_short_input(self):
        assert sortedness(np.array([5])) == 1.0


class TestTables:
    @pytest.mark.parametrize("name", TABLE_NAMES)
    def test_table_loads_with_consistent_columns(self, name):
        table = load_table(name, n=1000)
        assert table.n_rows == 1000
        for col in table.columns.values():
            assert len(col) == 1000
            assert col.dtype == np.int64
        assert table.numeric_column_count <= table.total_column_count

    def test_primary_key_is_sorted(self):
        for name in TABLE_NAMES:
            table = load_table(name, n=500)
            pk = next(iter(table.columns.values()))
            assert np.all(np.diff(pk) >= 0), name

    def test_sortedness_spread(self):
        """Tables must span low and high sortedness (Fig. 13's x-axis)."""
        scores = {name: load_table(name, n=2000).average_sortedness()
                  for name in TABLE_NAMES}
        assert max(scores.values()) > 0.8
        assert min(scores.values()) < 0.3

    def test_high_cardinality_filter(self):
        table = load_table("lineitem", n=2000)
        high = table.high_cardinality_columns()
        for col in high.values():
            assert len(np.unique(col)) > 0.1 * 2000

    def test_unknown_table(self):
        with pytest.raises(KeyError):
            load_table("nope")


class TestStringDatasets:
    @pytest.mark.parametrize("name", ["email", "hex", "word"])
    def test_sorted_and_deterministic(self, name):
        a = load_strings(name, 500)
        b = load_strings(name, 500)
        assert a == b
        assert a == sorted(a)

    def test_email_shape(self):
        emails = gen_email(300)
        assert all(b"." in e for e in emails)
        avg = sum(len(e) for e in emails) / len(emails)
        assert 10 <= avg <= 25

    def test_hex_charset(self):
        for h in gen_hex(200):
            assert all(c in b"0123456789abcdef" for c in h)

    def test_word_lowercase(self):
        for w in gen_word(200):
            assert all(97 <= c <= 122 for c in w)

    def test_unknown_string_dataset(self):
        with pytest.raises(KeyError):
            load_strings("nope")
